#!/usr/bin/env python
"""The paper's Section 5 experiment, end to end (Figures 10 and 11).

Recreates the SP2 measurement on the simulated testbed: closed-loop
enqueues per processor, arrow on a balanced binary tree vs the two-message
centralized protocol, sweeping the system size.  Prints both figures as
tables and ASCII plots.

Scaled down by default (300 requests/processor instead of 100 000 — the
loop reaches steady state quickly); pass a request count to change that:

Run:  python examples/sp2_experiment.py [requests_per_proc]
"""

import sys

from repro.experiments import format_table, plot, run_fig10, run_fig11


def main() -> None:
    rpp = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    procs = [2, 4, 8, 16, 32, 48, 64, 76]

    fig10 = run_fig10(procs, requests_per_proc=rpp)
    print(format_table(fig10))
    print()
    print(plot(fig10))
    print()

    fig11 = run_fig11(procs, requests_per_proc=rpp)
    print(format_table(fig11))
    print()
    print(plot(fig11))

    arrow = fig10.series_by_name("arrow").ys
    central = fig10.series_by_name("centralized").ys
    hops = fig11.series_by_name("mean hops/op").ys
    print()
    print(f"arrow slowdown  2 -> 76 procs: {arrow[-1]/arrow[0]:.2f}x "
          f"(paper: nearly flat)")
    print(f"central slowdown 2 -> 76 procs: {central[-1]/central[0]:.2f}x "
          f"(paper: linear)")
    print(f"arrow hops/op at 76 procs: {hops[-1]:.2f} (paper: < 1)")


if __name__ == "__main__":
    main()
