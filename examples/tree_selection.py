#!/usr/bin/env python
"""Choosing the spanning tree: stretch vs protocol cost (§1.1).

The arrow protocol's competitive ratio is O(s log D): both the stretch
and the diameter of the pre-selected tree matter.  Demmer & Herlihy
suggested minimum spanning trees; Peleg & Reshef minimum *communication*
trees.  This example takes one random geometric network and runs the same
contended workload over four different spanning trees, reporting stretch,
diameter and the measured protocol cost for each.

Run:  python examples/tree_selection.py
"""

from repro import run_arrow
from repro.graphs import random_geometric_graph
from repro.spanning import (
    bfs_tree,
    mst_prim,
    random_spanning_tree,
    tree_diameter,
    tree_stretch,
)
from repro.workloads import poisson


def main() -> None:
    graph = random_geometric_graph(40, 0.28, seed=13)
    schedule = poisson(40, count=120, rate=3.0, seed=4)

    candidates = {
        "minimum spanning tree": mst_prim(graph, 0),
        "BFS (shortest-path) tree": bfs_tree(graph, 0),
        "random tree (Wilson)": random_spanning_tree(graph, 0, seed=1),
        "random tree (Wilson #2)": random_spanning_tree(graph, 0, seed=2),
    }

    print(f"{'tree':28} {'stretch':>8} {'diam':>6} {'total latency':>14} "
          f"{'msgs':>6}")
    rows = []
    for name, tree in candidates.items():
        res = run_arrow(graph, tree, schedule)
        s = tree_stretch(graph, tree).stretch
        d = tree_diameter(tree)
        rows.append((name, s, d, res.total_latency,
                     res.network_stats["messages_sent"]))
        print(f"{name:28} {s:>8.1f} {d:>6.0f} {res.total_latency:>14.0f} "
              f"{rows[-1][4]:>6}")

    best = min(rows, key=lambda r: r[3])
    print(f"\nbest tree for this workload: {best[0]} "
          f"(cost {best[3]:.0f})")
    print("rule of thumb from the analysis: prefer low stretch first, "
          "then low diameter.")


if __name__ == "__main__":
    main()
