#!/usr/bin/env python
"""Distributed mutual exclusion over the arrow queue (§1 of the paper).

The motivating application: a single mobile object (a lock, a file, a
privilege) must move between processors so that at most one holds it at a
time.  Each acquisition is a queuing request; the queue order is the lock
order; the object travels directly from each holder to its successor's
node once released.

This example runs a contended workload on a grid network, replays the
token motion, verifies mutual exclusion, and prints per-node wait times
and the object's travel distance — contrasted with a centralized lock
manager on the same workload.

Run:  python examples/mutual_exclusion.py
"""

from repro import run_arrow, run_centralized, verify_total_order
from repro.graphs import grid_graph
from repro.spanning import bfs_tree
from repro.workloads import poisson


CS_TIME = 1.5  # critical-section duration at each holder


def replay_token(graph, order, schedule, start_node):
    """Replay the object's motion down the queue; return intervals/travel."""
    intervals = []
    travel = 0.0
    holder, release_time = start_node, 0.0
    from repro.graphs import dijkstra

    dcache = {}

    def dist(u, v):
        if u not in dcache:
            dcache[u] = dijkstra(graph, u)[0]
        return dcache[u][v]

    for rid in order:
        req = schedule.by_rid(rid)
        arrive = release_time + dist(holder, req.node)
        acquire = max(req.time, arrive)
        release = acquire + CS_TIME
        intervals.append((rid, req.node, acquire, release))
        travel += dist(holder, req.node)
        holder, release_time = req.node, release
    return intervals, travel


def main() -> None:
    graph = grid_graph(5, 5)
    tree = bfs_tree(graph, root=12)  # root at the grid centre
    schedule = poisson(25, count=30, rate=0.8, seed=7)

    result = run_arrow(graph, tree, schedule)
    order = verify_total_order(result)
    intervals, travel = replay_token(graph, order, schedule, tree.root)

    # Mutual exclusion: no two critical sections overlap.
    for (_, _, a1, r1), (_, _, a2, r2) in zip(intervals, intervals[1:]):
        assert r1 <= a2 + 1e-9, "exclusion violated"

    waits = [a - schedule.by_rid(rid).time for rid, _, a, _ in intervals]
    print("arrow lock service over a 5x5 grid, 30 acquisitions:")
    print(f"  queuing messages:       {result.network_stats['messages_sent']}")
    print(f"  object travel distance: {travel:.0f} hops")
    print(f"  mean wait to acquire:   {sum(waits)/len(waits):.2f}")
    print(f"  max wait to acquire:    {max(waits):.2f}")

    central = run_centralized(graph, 12, schedule)
    verify_total_order(central)
    print("\ncentralized manager on the same workload:")
    print(f"  queuing messages:       {central.network_stats['messages_sent']}")
    print(f"  total queuing latency:  {central.total_latency:.0f} "
          f"(arrow: {result.total_latency:.0f})")
    print("\nmutual exclusion verified: no overlapping critical sections.")


if __name__ == "__main__":
    main()
