#!/usr/bin/env python
"""The Section 4 lower bound, visually (the paper's Figure 9).

Renders the adversarial request instances as (position x time) dot
pictures, runs arrow on them, and shows the measured arrow/optimal
ratios growing with the path diameter — the Ω(log D / log log D) shape.
Both the literal construction from the paper's text and the bitonic
layered reconstruction are shown (see DESIGN.md / EXPERIMENTS.md for why
the two exist).

Run:  python examples/lower_bound_gallery.py
"""

from repro.analysis import opt_bounds, predict_arrow_run
from repro.experiments import render_instance, worst_case_arrow_cost
from repro.lowerbound import layered_instance, theorem41_instance


def show(title, inst, k):
    cost = worst_case_arrow_cost(inst.tree, inst.schedule)
    bounds = opt_bounds(inst.graph, inst.tree, inst.schedule, 1.0, exact_limit=0)
    print(f"--- {title} (D={inst.D}, k={k}, |R|={len(inst.schedule)}) ---")
    print(render_instance(inst.schedule, inst.D))
    print(f"arrow cost: {cost:.0f}   opt <= {bounds.upper:.0f}   "
          f"ratio >= {cost / bounds.upper:.2f}")
    print()


def main() -> None:
    print("The Figure 9 instance, literal transcription (D=64, k=6):\n")
    show("literal Theorem 4.1", theorem41_instance(64, 6), 6)

    print("Bitonic layered reconstruction at the same scale:\n")
    show("bitonic layered", layered_instance(64, 3), 3)

    print("Ratio growth with D (bitonic layered, k ~ log D / log log D):")
    print(f"{'D':>6} {'k':>3} {'|R|':>6} {'arrow':>8} {'opt<=':>8} {'ratio':>7}")
    for D, k in [(64, 3), (256, 4), (1024, 5)]:
        inst = layered_instance(D, k)
        cost = predict_arrow_run(inst.tree, inst.schedule).arrow_cost
        ob = opt_bounds(inst.graph, inst.tree, inst.schedule, 1.0, exact_limit=0)
        print(f"{D:>6} {k:>3} {len(inst.schedule):>6} {cost:>8.0f} "
              f"{ob.upper:>8.0f} {cost/ob.upper:>7.2f}")


if __name__ == "__main__":
    main()
