#!/usr/bin/env python
"""Totally ordered multicast via distributed queuing (§1 of the paper).

Every multicast message is a queuing request; the position in the queue
is its global sequence number.  Replicas apply messages in sequence-number
order, so all end up in the same state — without any central sequencer.

The example runs under *asynchronous* message delays (the §3.8 model) to
show agreement does not depend on synchrony, and prints the divergence-
free replica digests plus ordering statistics.

Run:  python examples/ordered_multicast.py
"""

import hashlib

from repro import UniformLatency, run_arrow, verify_total_order
from repro.graphs import hypercube_graph
from repro.spanning import bfs_tree
from repro.workloads import poisson


def replica_digest(events):
    """Digest of an ordered message log (models replica state)."""
    h = hashlib.sha256()
    for seq, origin, payload in events:
        h.update(f"{seq}:{origin}:{payload}".encode())
    return h.hexdigest()[:12]


def main() -> None:
    graph = hypercube_graph(4)  # 16 nodes
    tree = bfs_tree(graph, root=0)
    schedule = poisson(16, count=40, rate=4.0, seed=21)

    result = run_arrow(
        graph, tree, schedule, latency=UniformLatency(0.2, 1.0), seed=5
    )
    order = verify_total_order(result)
    seqno = {rid: i for i, rid in enumerate(order)}

    # Build every replica's log: all messages sorted by sequence number.
    log = sorted(
        (seqno[r.rid], r.node, f"msg-{r.rid}") for r in schedule
    )
    digests = {node: replica_digest(log) for node in range(16)}

    print("totally ordered multicast on a 4-cube, 40 messages, async delays")
    print(f"  unique replica digests: {len(set(digests.values()))} (must be 1)")
    print(f"  digest: {next(iter(digests.values()))}")

    # How much did the queue order deviate from issue order?  (Concurrent
    # messages may be sequenced either way; time-separated ones may not —
    # Lemma 3.9.)
    inversions = sum(
        1
        for i, a in enumerate(order)
        for b in order[i + 1:]
        if schedule.by_rid(a).time > schedule.by_rid(b).time
    )
    print(f"  issue-order inversions among {len(order)} messages: {inversions}")
    mean_lat = result.total_latency / len(order)
    print(f"  mean sequencing latency: {mean_lat:.2f} time units")
    assert len(set(digests.values())) == 1


if __name__ == "__main__":
    main()
