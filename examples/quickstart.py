#!/usr/bin/env python
"""Quickstart: run the arrow protocol on a small network.

Builds a 16-node network (complete graph, as on the paper's SP2), selects
a balanced binary spanning tree, issues a handful of concurrent queuing
requests, and prints the resulting total order together with per-request
latencies and hop counts — then cross-checks the simulated order against
the paper's nearest-neighbour characterisation (Lemma 3.8).

Run:  python examples/quickstart.py
"""

from repro import RequestSchedule, run_arrow, verify_total_order
from repro.analysis import check_lemma_3_8, predict_arrow_run
from repro.graphs import complete_graph
from repro.spanning import balanced_binary_overlay, tree_diameter, tree_stretch


def main() -> None:
    # 1. The network: 16 processors, any-to-any unit-latency links.
    graph = complete_graph(16)

    # 2. The pre-selected spanning tree (pointers live on its edges).
    tree = balanced_binary_overlay(graph, root=0)
    print(f"spanning tree: diameter D = {tree_diameter(tree):.0f}, "
          f"stretch s = {tree_stretch(graph, tree).stretch:.0f}")

    # 3. A queuing workload: (node, issue-time) pairs; several concurrent.
    schedule = RequestSchedule(
        [
            (5, 0.0),   # three requests at t = 0 race toward the root
            (9, 0.0),
            (14, 0.0),
            (3, 2.0),   # later requests chase the moving queue tail
            (9, 2.5),
            (11, 4.0),
        ]
    )

    # 4. Run the protocol (synchronous model: every link takes 1 time unit).
    result = run_arrow(graph, tree, schedule)
    order = verify_total_order(result)

    print("\nqueue order (request ids):", order)
    print(f"{'rid':>4} {'node':>4} {'t_issue':>8} {'latency':>8} {'hops':>5} "
          f"{'behind':>6}")
    for rid in order:
        req = schedule.by_rid(rid)
        rec = result.completions[rid]
        print(f"{rid:>4} {req.node:>4} {req.time:>8.1f} "
              f"{result.latency(rid):>8.1f} {rec.hops:>5} {rec.predecessor:>6}")

    print(f"\ntotal latency (Definition 3.3): {result.total_latency:.1f}")
    print(f"messages sent: {result.network_stats['messages_sent']}")

    # 5. The paper's key structural fact: the order is a nearest-neighbour
    #    TSP path under the cost c_T (Lemma 3.8).
    assert check_lemma_3_8(tree, schedule, order), "NN property violated?!"
    predicted = predict_arrow_run(tree, schedule)
    print(f"fast-executor prediction matches: "
          f"{predicted.order == order} (ties: {predicted.had_ties})")


if __name__ == "__main__":
    main()
