"""Applications built on distributed queuing (§1 / §5.1 of the paper)."""

from repro.apps.directory import DirectoryResult, arrow_directory, home_directory

__all__ = ["DirectoryResult", "arrow_directory", "home_directory"]
