"""Distributed directories: the application of §1 and §5.1.

The paper's motivating application is synchronising access to a single
mobile object.  Herlihy & Warres (§5.1) compared two directory designs:

* the **arrow directory**: acquisitions are arrow queuing requests; the
  object travels directly from each holder to its successor once
  released (one routed transfer message per handoff);
* the **home-based directory**: a fixed home node tracks the holder;
  every acquisition goes through the home (request to home, forward to
  the current holder, transfer from holder to requester — three routed
  messages per handoff), so the home serialises all control traffic.

Both are implemented here at full message level on the network substrate,
driven by a closed acquire→use→release loop, and instrumented for the
§5.1 comparison: total completion time, message counts, and a global
mutual-exclusion check (the test-suite asserts the holding intervals
never overlap).
"""

from __future__ import annotations

import time as _wall
from dataclasses import dataclass, field

from repro.core.arrow import ArrowNode
from repro.core.requests import ROOT_RID
from repro.errors import ProtocolError
from repro.graphs.graph import Graph
from repro.net.latency import LatencyModel, UnitLatency
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import ProtocolNode
from repro.sim.kernel import Simulator
from repro.spanning.tree import SpanningTree

__all__ = ["DirectoryResult", "arrow_directory", "home_directory"]


@dataclass(slots=True)
class DirectoryResult:
    """Outcome of one directory run."""

    protocol: str
    num_procs: int
    acquisitions_per_proc: int
    makespan: float = 0.0
    completions: int = 0
    messages_sent: int = 0
    #: (acquire_time, release_time, node) per acquisition, in handoff order.
    intervals: list[tuple[float, float, int]] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def total_acquisitions(self) -> int:
        """Total acquisitions across all processors."""
        return self.num_procs * self.acquisitions_per_proc

    def exclusion_holds(self, tol: float = 1e-9) -> bool:
        """True iff no two holding intervals overlap."""
        ordered = sorted(self.intervals)
        return all(
            r1 <= a2 + tol for (a1, r1, _), (a2, r2, _) in zip(ordered, ordered[1:])
        )

    @property
    def mean_wait(self) -> float:
        """Mean time from handoff start to the next acquisition (proxy)."""
        if len(self.intervals) < 2:
            return 0.0
        ordered = sorted(self.intervals)
        gaps = [a2 - r1 for (_, r1, _), (a2, _, _) in zip(ordered, ordered[1:])]
        return sum(gaps) / len(gaps)

    def row_metrics(self) -> dict[str, object]:
        """Sweep-row view of this run (scale-free, wall clock excluded).

        The ``exclusion_ok`` column persists the mutual-exclusion
        invariant with every row, so a sweep file is auditable after the
        fact — ``sweep-verify``/``sweep-merge`` consumers can refuse
        files whose rows carry ``false`` without re-running anything.
        """
        return {
            "protocol": self.protocol,
            "requests": self.total_acquisitions,
            "makespan": self.makespan,
            "messages_sent": self.messages_sent,
            "msgs_per_acquisition": (
                self.messages_sent / self.total_acquisitions
                if self.total_acquisitions
                else 0.0
            ),
            "mean_wait": self.mean_wait,
            "exclusion_ok": self.exclusion_holds(),
        }


class _ObjectState:
    """Shared bookkeeping: who holds the object, who comes next."""

    def __init__(self, result: DirectoryResult, cs_time: float) -> None:
        self.result = result
        self.cs_time = cs_time
        # rid -> (successor_rid, successor_origin), learned at completion.
        self.successor: dict[int, tuple[int, int]] = {}
        # rids whose critical section has finished with the object at
        # `released_at[rid]`, waiting for their successor to be known.
        self.released_at: dict[int, int] = {}


class _ArrowDirectoryNode(ArrowNode):
    """Arrow node plus object handling for the directory application."""

    __slots__ = ("shared", "driver")

    def __init__(self, on_complete, shared: _ObjectState) -> None:
        super().__init__(on_complete)
        self.shared = shared
        self.driver = None  # set by the runner
        self.app_handler = self._on_app_message

    def _on_app_message(self, msg: Message) -> None:
        if msg.kind != "object":
            raise ProtocolError(f"directory got unexpected message {msg.kind!r}")
        self._acquire(msg.payload["rid"])

    def _acquire(self, rid: int) -> None:
        assert self.net is not None
        sim = self.net.sim
        acquire = sim.now
        release = acquire + self.shared.cs_time
        self.shared.result.intervals.append((acquire, release, self.node_id))
        self.shared.result.completions += 1
        sim.call_at(release, self._release, rid)

    def _release(self, rid: int) -> None:
        """Critical section over: hand off if the successor is known."""
        assert self.net is not None
        nxt = self.shared.successor.get(rid)
        if nxt is None:
            self.shared.released_at[rid] = self.node_id
        else:
            self._hand_off(rid, *nxt)
        if self.driver is not None:
            self.driver(self.node_id)

    def _hand_off(self, rid: int, succ_rid: int, succ_origin: int) -> None:
        assert self.net is not None
        if succ_origin == self.node_id:
            # Local successor: the object never leaves this node.
            self.net.sim.call_in(0.0, self._acquire, succ_rid)
        else:
            self.send_routed("object", succ_origin, rid=succ_rid)

    def on_successor_known(self, pred: int, rid: int, origin: int) -> None:
        """Completion hook: the successor of ``pred`` is ``rid``@``origin``."""
        self.shared.successor[pred] = (rid, origin)
        holder = self.shared.released_at.pop(pred, None)
        if holder is not None:
            # The object is idle at `holder`; ship it now.
            assert self.net is not None
            node = self.net.node(holder)
            assert isinstance(node, _ArrowDirectoryNode)
            node._hand_off(pred, rid, origin)


def arrow_directory(
    graph: Graph,
    tree: SpanningTree,
    *,
    acquisitions_per_proc: int,
    cs_time: float = 0.5,
    latency: LatencyModel | None = None,
    seed: int = 0,
    service_time: float = 0.0,
    max_events: int | None = None,
) -> DirectoryResult:
    """Run the arrow-based directory under a closed acquire loop."""
    n = graph.num_nodes
    result = DirectoryResult("arrow-directory", n, acquisitions_per_proc)
    shared = _ObjectState(result, cs_time)
    sim = Simulator(max_events=max_events)
    net = Network(
        graph,
        sim,
        latency if latency is not None else UnitLatency(),
        seed=seed,
        service_time=service_time,
    )

    nodes: list[_ArrowDirectoryNode] = []

    def on_complete(rid: int, pred: int, node_id: int, when: float, hops: int):
        nodes[node_id].on_successor_known(pred, rid, _owner[rid])

    nodes.extend(_ArrowDirectoryNode(on_complete, shared) for _ in range(n))
    net.register_all(nodes)
    for nd in nodes:
        nd.init_pointers(tree)

    # The virtual root request holds the object, already released at t=0.
    shared.released_at[ROOT_RID] = tree.root

    remaining = [acquisitions_per_proc] * n
    _owner: dict[int, int] = {}
    counter = [0]

    def issue(proc: int) -> None:
        if remaining[proc] <= 0:
            return
        remaining[proc] -= 1
        rid = counter[0]
        counter[0] += 1
        _owner[rid] = proc
        nodes[proc].initiate(rid)

    def driver(proc: int) -> None:
        result.makespan = sim.now
        issue(proc)

    for nd in nodes:
        nd.driver = driver
    for p in range(n):
        sim.call_at(0.0, issue, p)

    t0 = _wall.perf_counter()
    sim.run()
    result.wall_seconds = _wall.perf_counter() - t0
    result.messages_sent = net.stats.messages_sent
    if result.completions != result.total_acquisitions:
        raise ProtocolError(
            f"arrow directory completed {result.completions} of "
            f"{result.total_acquisitions} acquisitions"
        )
    return result


class _HomeDirectoryNode(ProtocolNode):
    """Home-based directory node (fixed home tracks the holder)."""

    __slots__ = ("home", "result", "cs_time", "driver", "holder", "busy", "queue")

    def __init__(self, home: int, result: DirectoryResult, cs_time: float) -> None:
        super().__init__()
        self.home = home
        self.result = result
        self.cs_time = cs_time
        self.driver = None
        # Home state: current holder and whether a transfer is in flight;
        # pending requester queue (FIFO at the home).
        self.holder = home
        self.busy = False
        self.queue: list[int] = []

    def initiate(self) -> None:
        """Request the object: one routed message to the home."""
        self.send_routed("dreq", self.home, origin=self.node_id)

    def on_message(self, msg: Message) -> None:
        assert self.net is not None
        if msg.kind == "dreq":
            # Home: forward to the holder, or queue if a transfer is live.
            if self.node_id != self.home:
                raise ProtocolError("dreq at non-home node")
            self.queue.append(msg.payload["origin"])
            self._pump()
        elif msg.kind == "dfwd":
            # Current holder: ship the object to the requester when free.
            self.send_routed("dobj", msg.payload["to"])
        elif msg.kind == "dobj":
            self._acquire()
        elif msg.kind == "ddone":
            # Home learns the transfer finished; next request may proceed.
            if self.node_id != self.home:
                raise ProtocolError("ddone at non-home node")
            self.holder = msg.payload["holder"]
            self.busy = False
            self._pump()
        else:
            raise ProtocolError(f"unexpected message {msg.kind!r}")

    def _pump(self) -> None:
        assert self.net is not None
        if self.busy or not self.queue:
            return
        requester = self.queue.pop(0)
        self.busy = True
        if self.holder == requester:
            # Object already local to the requester.
            self.net.node(requester)._acquire()  # type: ignore[attr-defined]
        else:
            self.send_routed("dfwd", self.holder, to=requester)

    def _acquire(self) -> None:
        assert self.net is not None
        sim = self.net.sim
        acquire = sim.now
        release = acquire + self.cs_time
        self.result.intervals.append((acquire, release, self.node_id))
        self.result.completions += 1
        sim.call_at(release, self._release)

    def _release(self) -> None:
        assert self.net is not None
        self.send_routed("ddone", self.home, holder=self.node_id)
        if self.driver is not None:
            self.driver(self.node_id)


def home_directory(
    graph: Graph,
    home: int,
    *,
    acquisitions_per_proc: int,
    cs_time: float = 0.5,
    latency: LatencyModel | None = None,
    seed: int = 0,
    service_time: float = 0.0,
    max_events: int | None = None,
) -> DirectoryResult:
    """Run the home-based directory under the same closed acquire loop."""
    n = graph.num_nodes
    result = DirectoryResult("home-directory", n, acquisitions_per_proc)
    sim = Simulator(max_events=max_events)
    net = Network(
        graph,
        sim,
        latency if latency is not None else UnitLatency(),
        seed=seed,
        service_time=service_time,
    )
    nodes = [_HomeDirectoryNode(home, result, cs_time) for _ in range(n)]
    net.register_all(nodes)

    remaining = [acquisitions_per_proc] * n

    def issue(proc: int) -> None:
        if remaining[proc] <= 0:
            return
        remaining[proc] -= 1
        nodes[proc].initiate()

    def driver(proc: int) -> None:
        result.makespan = sim.now
        issue(proc)

    for nd in nodes:
        nd.driver = driver
    for p in range(n):
        sim.call_at(0.0, issue, p)

    t0 = _wall.perf_counter()
    sim.run()
    result.wall_seconds = _wall.perf_counter() - t0
    result.messages_sent = net.stats.messages_sent
    if result.completions != result.total_acquisitions:
        raise ProtocolError(
            f"home directory completed {result.completions} of "
            f"{result.total_acquisitions} acquisitions"
        )
    return result
