"""Workload generators: request schedules and the closed-loop driver."""

from repro.workloads.closed_loop import (
    ClosedLoopResult,
    closed_loop_arrow,
    closed_loop_centralized,
)
from repro.workloads.schedules import (
    bursty,
    hotspot,
    one_shot,
    poisson,
    random_times,
    sequential,
)

__all__ = [
    "ClosedLoopResult",
    "closed_loop_arrow",
    "closed_loop_centralized",
    "bursty",
    "hotspot",
    "one_shot",
    "poisson",
    "random_times",
    "sequential",
]
