"""Request-schedule generators.

The paper's analysis covers *any* finite request set; these generators
produce the families used by the experiments and tests:

* **one-shot concurrent** — all requests at ``t = 0`` (the setting of the
  precursor paper [10]);
* **sequential** — requests spaced far enough apart that no two are ever
  active concurrently (the Demmer–Herlihy [4] setting: per-op cost <= D);
* **Poisson** — memoryless arrivals at a configurable aggregate rate: the
  generic "dynamic" workload;
* **bursty** — alternating high-activity windows and idle gaps, the shape
  that motivates the Lemma 3.11 idle-time compression;
* **hotspot** — node choice biased toward a region of the tree, modelling
  contention for a popular object.

All generators take a seed and are deterministic given their arguments.
"""

from __future__ import annotations

import numpy as np

from repro.core.requests import RequestSchedule
from repro.errors import ScheduleError
from repro.sim.rng import spawn_rng

__all__ = [
    "one_shot",
    "sequential",
    "poisson",
    "bursty",
    "hotspot",
    "random_times",
]


def one_shot(nodes: list[int]) -> RequestSchedule:
    """Every listed node issues one request at time 0 (concurrent case)."""
    return RequestSchedule([(v, 0.0) for v in nodes])


def sequential(
    nodes: list[int], gap: float, *, start: float = 0.0
) -> RequestSchedule:
    """One request per listed node, ``gap`` time units apart.

    Choose ``gap > 2 D`` to guarantee the sequential regime (each request
    completes before the next is issued, whatever the pair of nodes).
    """
    if gap <= 0:
        raise ScheduleError(f"gap must be positive, got {gap}")
    return RequestSchedule(
        [(v, start + i * gap) for i, v in enumerate(nodes)]
    )


def poisson(
    num_nodes: int,
    count: int,
    rate: float,
    *,
    seed: int = 0,
    nodes: list[int] | None = None,
) -> RequestSchedule:
    """``count`` requests with exponential inter-arrival times.

    ``rate`` is the aggregate arrival rate (requests per time unit);
    issuing nodes are uniform over ``nodes`` (default: all nodes).
    """
    if rate <= 0:
        raise ScheduleError(f"rate must be positive, got {rate}")
    rng = spawn_rng(seed, f"poisson-{num_nodes}-{count}-{rate}")
    gaps = rng.exponential(1.0 / rate, size=count)
    times = np.cumsum(gaps)
    pool = nodes if nodes is not None else list(range(num_nodes))
    picks = rng.integers(0, len(pool), size=count)
    return RequestSchedule(
        [(pool[picks[i]], float(times[i])) for i in range(count)]
    )


def bursty(
    num_nodes: int,
    bursts: int,
    burst_size: int,
    burst_span: float,
    idle_gap: float,
    *,
    seed: int = 0,
) -> RequestSchedule:
    """Alternating activity bursts and idle periods.

    Each burst issues ``burst_size`` requests at uniform random times
    within a ``burst_span`` window from uniform random nodes; bursts are
    separated by ``idle_gap``.
    """
    if burst_span < 0 or idle_gap < 0:
        raise ScheduleError("burst_span and idle_gap must be non-negative")
    rng = spawn_rng(seed, f"bursty-{num_nodes}-{bursts}-{burst_size}")
    pairs: list[tuple[int, float]] = []
    t0 = 0.0
    for _ in range(bursts):
        offsets = rng.uniform(0.0, burst_span, size=burst_size)
        picks = rng.integers(0, num_nodes, size=burst_size)
        pairs.extend(
            (int(picks[i]), t0 + float(offsets[i])) for i in range(burst_size)
        )
        t0 += burst_span + idle_gap
    return RequestSchedule(pairs)


def hotspot(
    num_nodes: int,
    count: int,
    rate: float,
    hot_nodes: list[int],
    hot_fraction: float = 0.8,
    *,
    seed: int = 0,
) -> RequestSchedule:
    """Poisson arrivals with node choice biased toward ``hot_nodes``."""
    if not 0.0 <= hot_fraction <= 1.0:
        raise ScheduleError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
    if not hot_nodes:
        raise ScheduleError("hot_nodes must be non-empty")
    rng = spawn_rng(seed, f"hotspot-{num_nodes}-{count}")
    gaps = rng.exponential(1.0 / rate, size=count)
    times = np.cumsum(gaps)
    pairs = []
    for i in range(count):
        if rng.random() < hot_fraction:
            v = hot_nodes[int(rng.integers(0, len(hot_nodes)))]
        else:
            v = int(rng.integers(0, num_nodes))
        pairs.append((v, float(times[i])))
    return RequestSchedule(pairs)


def random_times(
    num_nodes: int,
    count: int,
    horizon: float,
    *,
    seed: int = 0,
    continuous: bool = True,
) -> RequestSchedule:
    """Uniform random (node, time) pairs over ``[0, horizon]``.

    With ``continuous`` the times are real-valued, which makes cost ties
    measure-zero — the regime where the fast NN executor must match the
    simulator exactly (used heavily by the integration tests).
    """
    rng = spawn_rng(seed, f"random-{num_nodes}-{count}-{horizon}")
    picks = rng.integers(0, num_nodes, size=count)
    if continuous:
        times = rng.uniform(0.0, horizon, size=count)
    else:
        times = rng.integers(0, max(1, int(horizon)) + 1, size=count).astype(float)
    return RequestSchedule([(int(picks[i]), float(times[i])) for i in range(count)])
