"""Theorem 4.1 / 4.2 experiments: lower-bound ratio growth.

Sweeps the adversarial instances over the path diameter and reports the
measured arrow/optimal ratio for

* the **literal** Theorem 4.1 recursion (as printed in the paper), and
* the **bitonic layered** reconstruction (see
  :mod:`repro.lowerbound.layered` for why both exist),

plus the Theorem 4.2 stretch-scaled variant.  The worst legal message
scheduler is approximated by taking the max cost over the ``min``/``max``
tie-breaking policies of the fast executor.
"""

from __future__ import annotations

import math

from repro.analysis.nearest_neighbor import predict_arrow_run
from repro.analysis.optimal import opt_bounds
from repro.experiments.records import ExperimentResult, Series
from repro.lowerbound.construction import default_k, theorem41_instance
from repro.lowerbound.layered import layered_instance
from repro.lowerbound.stretch_graph import theorem42_instance
from repro.spanning.metrics import tree_stretch

__all__ = ["run_theorem41_sweep", "run_theorem42_sweep", "worst_case_arrow_cost"]


def worst_case_arrow_cost(tree, schedule) -> float:
    """Max arrow cost over the executor's tie-breaking policies.

    Every tie-break policy corresponds to a legal arrow execution
    (Lemma 3.8 leaves simultaneity resolution to the scheduler), so the
    max over policies is a certified lower bound on the worst case.
    """
    lo = predict_arrow_run(tree, schedule, tie_break="min").arrow_cost
    hi = predict_arrow_run(tree, schedule, tie_break="max").arrow_cost
    return max(lo, hi)


def run_theorem41_sweep(
    diameters: list[int] | None = None,
    *,
    k_values: dict[int, int] | None = None,
) -> ExperimentResult:
    """Ratio growth of the adversarial instances vs diameter."""
    Ds = diameters if diameters is not None else [16, 64, 256, 1024]
    lit_ratio: list[float] = []
    lay_ratio: list[float] = []
    target: list[float] = []
    for D in Ds:
        k = (k_values or {}).get(D, default_k(D))
        lit = theorem41_instance(D, k)
        cost_lit = worst_case_arrow_cost(lit.tree, lit.schedule)
        ob_lit = opt_bounds(lit.graph, lit.tree, lit.schedule, 1.0, exact_limit=0)
        lit_ratio.append(cost_lit / ob_lit.upper)

        # The layered reconstruction sustains one extra refinement level.
        lay = layered_instance(D, k + 1)
        cost_lay = worst_case_arrow_cost(lay.tree, lay.schedule)
        ob_lay = opt_bounds(lay.graph, lay.tree, lay.schedule, 1.0, exact_limit=0)
        lay_ratio.append(cost_lay / ob_lay.upper)

        target.append(math.log2(D) / max(1.0, math.log2(max(2.0, math.log2(D)))))
    xs = [float(d) for d in Ds]
    return ExperimentResult(
        experiment_id="thm41",
        title="Lower-bound instances: measured arrow/opt ratio vs D",
        xlabel="path diameter D",
        series=[
            Series("literal construction", xs, lit_ratio),
            Series("bitonic layered", xs, lay_ratio),
            Series("log D / log log D target", xs, target),
        ],
        params={},
        notes=[
            "Theorem 4.1 target: ratio = Omega(log D / log log D)",
            "see repro.lowerbound.layered for the reconstruction note",
        ],
    )


def run_theorem42_sweep(
    stretches: list[int] | None = None,
    *,
    D_over_s: int = 64,
) -> ExperimentResult:
    """Theorem 4.2: ratio scaling with the spanning tree's stretch."""
    ss = stretches if stretches is not None else [1, 2, 4, 8]
    ratios: list[float] = []
    stretch_measured: list[float] = []
    for s in ss:
        inst = theorem42_instance(D_over_s, s)
        cost = worst_case_arrow_cost(inst.tree, inst.schedule)
        stretch = tree_stretch(inst.graph, inst.tree).stretch
        ob = opt_bounds(inst.graph, inst.tree, inst.schedule, stretch, exact_limit=0)
        ratios.append(cost / ob.upper)
        stretch_measured.append(stretch)
    xs = [float(s) for s in ss]
    return ExperimentResult(
        experiment_id="thm42",
        title="Lower bound vs stretch (shortcut graphs)",
        xlabel="construction stretch s",
        series=[
            Series("measured ratio", xs, ratios),
            Series("measured tree stretch", xs, stretch_measured),
        ],
        params={"D_over_s": D_over_s},
        notes=["Theorem 4.2: ratio = Omega(s log(D/s)/log log(D/s))"],
    )
