"""Theorem 4.1 / 4.2 experiments: lower-bound ratio growth.

Sweeps the adversarial instances over the path diameter and reports the
measured arrow/optimal ratio for

* the **literal** Theorem 4.1 recursion (as printed in the paper), and
* the **bitonic layered** reconstruction (see
  :mod:`repro.lowerbound.layered` for why both exist),

plus the Theorem 4.2 stretch-scaled variant.  The worst legal message
scheduler is approximated by taking the max cost over the ``min``/``max``
tie-breaking policies of the fast executor.

Per-diameter points are independent and route through
:func:`repro.sweep.executor.map_jobs` (``workers > 1`` fans them out).
Passing ``engine="fast"``, ``"message"`` or ``"batch"`` additionally simulates each
instance on the chosen arrow engine and reports the realised execution's
ratio alongside the tie-break bracket — the kernel's deterministic
simultaneity resolution is one legal scheduler, so its ratio must sit at
or below the bracket's max.
"""

from __future__ import annotations

import math

from repro.analysis.nearest_neighbor import predict_arrow_run
from repro.analysis.optimal import opt_bounds
from repro.core.fast_arrow import arrow_runner
from repro.experiments.records import ExperimentResult, Series
from repro.lowerbound.construction import default_k, theorem41_instance
from repro.lowerbound.layered import layered_instance
from repro.lowerbound.stretch_graph import theorem42_instance
from repro.spanning.metrics import tree_stretch
from repro.sweep.executor import map_jobs

__all__ = ["run_theorem41_sweep", "run_theorem42_sweep", "worst_case_arrow_cost"]


def worst_case_arrow_cost(tree, schedule) -> float:
    """Max arrow cost over the executor's tie-breaking policies.

    Every tie-break policy corresponds to a legal arrow execution
    (Lemma 3.8 leaves simultaneity resolution to the scheduler), so the
    max over policies is a certified lower bound on the worst case.
    """
    lo = predict_arrow_run(tree, schedule, tie_break="min").arrow_cost
    hi = predict_arrow_run(tree, schedule, tie_break="max").arrow_cost
    return max(lo, hi)


def _simulated_cost(inst, engine: str) -> float:
    """Total latency of the kernel's realised execution on one instance."""
    return arrow_runner(engine)(inst.graph, inst.tree, inst.schedule).total_latency


def _thm41_cell(
    job: tuple[int, int, str | None]
) -> tuple[float, float, float, float, float]:
    """One diameter: (lit ratio, lay ratio, target, sim lit, sim lay)."""
    D, k, engine = job
    lit = theorem41_instance(D, k)
    cost_lit = worst_case_arrow_cost(lit.tree, lit.schedule)
    ob_lit = opt_bounds(lit.graph, lit.tree, lit.schedule, 1.0, exact_limit=0)

    # The layered reconstruction sustains one extra refinement level.
    lay = layered_instance(D, k + 1)
    cost_lay = worst_case_arrow_cost(lay.tree, lay.schedule)
    ob_lay = opt_bounds(lay.graph, lay.tree, lay.schedule, 1.0, exact_limit=0)

    target = math.log2(D) / max(1.0, math.log2(max(2.0, math.log2(D))))
    sim_lit = _simulated_cost(lit, engine) / ob_lit.upper if engine else 0.0
    sim_lay = _simulated_cost(lay, engine) / ob_lay.upper if engine else 0.0
    return (
        cost_lit / ob_lit.upper,
        cost_lay / ob_lay.upper,
        target,
        sim_lit,
        sim_lay,
    )


def run_theorem41_sweep(
    diameters: list[int] | None = None,
    *,
    k_values: dict[int, int] | None = None,
    engine: str | None = None,
    workers: int = 1,
) -> ExperimentResult:
    """Ratio growth of the adversarial instances vs diameter."""
    Ds = diameters if diameters is not None else [16, 64, 256, 1024]
    jobs = [(D, (k_values or {}).get(D, default_k(D)), engine) for D in Ds]
    points = map_jobs(_thm41_cell, jobs, workers=workers)
    xs = [float(d) for d in Ds]
    series = [
        Series("literal construction", xs, [p[0] for p in points]),
        Series("bitonic layered", xs, [p[1] for p in points]),
        Series("log D / log log D target", xs, [p[2] for p in points]),
    ]
    if engine:
        series.append(Series("literal (simulated)", xs, [p[3] for p in points]))
        series.append(Series("layered (simulated)", xs, [p[4] for p in points]))
    return ExperimentResult(
        experiment_id="thm41",
        title="Lower-bound instances: measured arrow/opt ratio vs D",
        xlabel="path diameter D",
        series=series,
        params={"engine": engine} if engine else {},
        notes=[
            "Theorem 4.1 target: ratio = Omega(log D / log log D)",
            "see repro.lowerbound.layered for the reconstruction note",
        ],
    )


def _thm42_cell(
    job: tuple[int, int, str | None]
) -> tuple[float, float, float]:
    """One stretch value: (ratio, measured stretch, simulated ratio)."""
    s, D_over_s, engine = job
    inst = theorem42_instance(D_over_s, s)
    cost = worst_case_arrow_cost(inst.tree, inst.schedule)
    stretch = tree_stretch(inst.graph, inst.tree).stretch
    ob = opt_bounds(inst.graph, inst.tree, inst.schedule, stretch, exact_limit=0)
    sim = _simulated_cost(inst, engine) / ob.upper if engine else 0.0
    return cost / ob.upper, stretch, sim


def run_theorem42_sweep(
    stretches: list[int] | None = None,
    *,
    D_over_s: int = 64,
    engine: str | None = None,
    workers: int = 1,
) -> ExperimentResult:
    """Theorem 4.2: ratio scaling with the spanning tree's stretch."""
    ss = stretches if stretches is not None else [1, 2, 4, 8]
    jobs = [(s, D_over_s, engine) for s in ss]
    points = map_jobs(_thm42_cell, jobs, workers=workers)
    xs = [float(s) for s in ss]
    series = [
        Series("measured ratio", xs, [p[0] for p in points]),
        Series("measured tree stretch", xs, [p[1] for p in points]),
    ]
    if engine:
        series.append(Series("simulated ratio", xs, [p[2] for p in points]))
    return ExperimentResult(
        experiment_id="thm42",
        title="Lower bound vs stretch (shortcut graphs)",
        xlabel="construction stretch s",
        series=series,
        params={"D_over_s": D_over_s, **({"engine": engine} if engine else {})},
        notes=["Theorem 4.2: ratio = Omega(s log(D/s)/log log(D/s))"],
    )
