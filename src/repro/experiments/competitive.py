"""Theorem 3.19 / 3.21 experiments: measured competitive ratios.

Sweeps tree diameter (and latency model) over random dynamic workloads
and reports the measured ratio bracket against the theorem's explicit
``O(s log D)`` ceiling.  Random workloads sit far below the worst case —
the point of the sweep is (a) the bound is never violated and (b) the
measured ratio grows at most logarithmically with ``D``.

Per-diameter points are independent and route through
:func:`repro.sweep.executor.map_jobs` (``workers > 1`` fans them out);
the ``engine`` knob selects the message-level simulator or one of the
bit-identical fast/batch engines for the arrow runs, so results are the
same any way — "fast" and "batch" simply get there sooner on large
diameters.
"""

from __future__ import annotations

from repro.analysis.competitive import CompetitiveReport, measure_competitive_ratio
from repro.core.fast_arrow import arrow_runner
from repro.experiments.records import ExperimentResult, Series
from repro.graphs.generators import path_graph
from repro.net.latency import UniformLatency
from repro.spanning.tree import SpanningTree
from repro.sweep.executor import map_jobs
from repro.workloads.schedules import random_times

__all__ = ["run_competitive_sweep", "run_async_comparison"]


def _path_instance(D: int) -> tuple:
    graph = path_graph(D + 1)
    tree = SpanningTree([max(0, i - 1) for i in range(D + 1)], root=0)
    return graph, tree


def _sync_cell(
    job: tuple[int, int, float, int, str]
) -> tuple[float, float, float]:
    """One diameter of the synchronous sweep: (ratio_hi, ratio_lo, ceiling)."""
    D, requests, horizon_factor, seed, engine = job
    graph, tree = _path_instance(D)
    sched = random_times(
        D + 1, requests, horizon=horizon_factor * D, seed=seed + D
    )
    rep: CompetitiveReport = measure_competitive_ratio(
        graph, tree, sched, simulate=True, exact_limit=10, engine=engine
    )
    return rep.ratio_upper, rep.ratio_lower, rep.ceiling


def run_competitive_sweep(
    diameters: list[int] | None = None,
    *,
    requests: int = 60,
    horizon_factor: float = 1.0,
    seed: int = 0,
    engine: str = "message",
    workers: int = 1,
) -> ExperimentResult:
    """Measured ratio bracket vs tree diameter, synchronous model.

    Uses path graphs (stretch 1) so the diameter dependence is isolated;
    the workload is uniform random (node, time) with the time horizon
    proportional to ``D``.
    """
    Ds = diameters if diameters is not None else [8, 16, 32, 64, 128]
    jobs = [(D, requests, horizon_factor, seed, engine) for D in Ds]
    points = map_jobs(_sync_cell, jobs, workers=workers)
    ratio_hi = [p[0] for p in points]
    ratio_lo = [p[1] for p in points]
    ceilings = [p[2] for p in points]
    xs = [float(d) for d in Ds]
    return ExperimentResult(
        experiment_id="thm319",
        title="Competitive ratio vs diameter (synchronous, random workload)",
        xlabel="tree diameter D",
        series=[
            Series("ratio (vs opt upper bd)", xs, ratio_lo),
            Series("ratio (vs opt lower bd)", xs, ratio_hi),
            Series("O(s log D) ceiling", xs, ceilings),
        ],
        params={"requests": requests, "seed": seed, "engine": engine},
        notes=["Theorem 3.19: ratio = O(s log D); measured stays far below"],
    )


def _async_cell(
    job: tuple[int, int, int, float, str]
) -> tuple[float, float, float]:
    """One diameter of the async comparison: (sync, async, ratio_hi)."""
    D, requests, seed, lo, engine = job
    graph, tree = _path_instance(D)
    sched = random_times(D + 1, requests, horizon=float(D), seed=seed + D)
    runner = arrow_runner(engine)
    sync_res = runner(graph, tree, sched)
    async_res = runner(
        graph, tree, sched, latency=UniformLatency(lo, 1.0), seed=seed
    )
    # Hand the realised async cost to the ratio measurement instead of
    # letting it rerun the identical simulation.
    rep = measure_competitive_ratio(
        graph,
        tree,
        sched,
        simulate=True,
        exact_limit=10,
        engine=engine,
        arrow_cost=async_res.total_latency,
    )
    return sync_res.total_latency, async_res.total_latency, rep.ratio_upper


def run_async_comparison(
    diameters: list[int] | None = None,
    *,
    requests: int = 60,
    seed: int = 0,
    lo: float = 0.2,
    engine: str = "message",
    workers: int = 1,
) -> ExperimentResult:
    """Theorem 3.21: arrow cost under asynchronous delays <= 1.

    Runs the same schedules under the synchronous model and under uniform
    random delays in ``[lo, 1]`` and reports both total costs: the
    asynchronous execution can only be cheaper per message (delays <= 1),
    and its competitive ceiling is the same ``O(s log D)``.
    """
    Ds = diameters if diameters is not None else [8, 16, 32, 64, 128]
    jobs = [(D, requests, seed, lo, engine) for D in Ds]
    points = map_jobs(_async_cell, jobs, workers=workers)
    sync_cost = [p[0] for p in points]
    async_cost = [p[1] for p in points]
    ratio_hi = [p[2] for p in points]
    xs = [float(d) for d in Ds]
    return ExperimentResult(
        experiment_id="thm321",
        title="Asynchronous arrow: cost vs synchronous on the same schedules",
        xlabel="tree diameter D",
        series=[
            Series("sync total latency", xs, sync_cost),
            Series("async total latency", xs, async_cost),
            Series("async ratio (vs opt lower bd)", xs, ratio_hi),
        ],
        params={"requests": requests, "seed": seed, "delay_lo": lo, "engine": engine},
        notes=[
            "Theorem 3.21: same O(s log D) bound under delays scaled to <= 1;"
            " async executions are message-wise no slower than the sync bound",
        ],
    )
