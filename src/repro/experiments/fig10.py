"""Figure 10: arrow vs centralized total latency under the closed loop.

The paper measures, on an IBM SP2 with up to 76 processors, the wall time
for 100 000 closed-loop enqueues per processor: the centralized protocol
degrades linearly with the processor count while arrow stays nearly flat.

Our reproduction runs the same closed loop on the simulated SP2 model
(complete unit-latency graph, balanced binary spanning tree, per-node
service time, §5 two-message centralized discipline) over a sweep of
system sizes.  Request counts are scaled down by default — the closed loop
reaches steady state within a few hundred requests per processor, and the
*shape* (flat vs linear, who wins where) is what the experiment checks —
with the full-size run available via ``requests_per_proc=100_000``.
"""

from __future__ import annotations

from repro.experiments.records import ExperimentResult, Series
from repro.graphs.generators import complete_graph
from repro.spanning.construct import balanced_binary_overlay
from repro.workloads.closed_loop import closed_loop_arrow, closed_loop_centralized

__all__ = ["DEFAULT_PROC_COUNTS", "run_fig10"]

#: The paper sweeps 2..76 processors; these are the plotted sizes.
DEFAULT_PROC_COUNTS = [2, 4, 8, 16, 32, 48, 64, 76]


def run_fig10(
    proc_counts: list[int] | None = None,
    *,
    requests_per_proc: int = 300,
    service_time: float = 0.1,
    think_time: float = 0.1,
    seed: int = 0,
) -> ExperimentResult:
    """Run the Figure 10 sweep; returns total-time series per protocol.

    ``service_time`` models the per-message CPU cost relative to the unit
    network latency (the SP2's ~µs handler vs ~40µs message latency puts
    the real ratio near 0.1); it is what makes the centralized centre a
    bottleneck, exactly as on the real machine.
    """
    procs = proc_counts if proc_counts is not None else DEFAULT_PROC_COUNTS
    arrow_times: list[float] = []
    central_times: list[float] = []
    for n in procs:
        g = complete_graph(n)
        tree = balanced_binary_overlay(g, root=0)
        a = closed_loop_arrow(
            g,
            tree,
            requests_per_proc=requests_per_proc,
            service_time=service_time,
            think_time=think_time,
            seed=seed,
        )
        c = closed_loop_centralized(
            g,
            0,
            requests_per_proc=requests_per_proc,
            service_time=service_time,
            think_time=think_time,
            seed=seed,
        )
        arrow_times.append(a.makespan)
        central_times.append(c.makespan)
    return ExperimentResult(
        experiment_id="fig10",
        title="Arrow vs centralized: total time for closed-loop enqueues",
        xlabel="processors",
        series=[
            Series("arrow", [float(p) for p in procs], arrow_times, "sim time"),
            Series("centralized", [float(p) for p in procs], central_times, "sim time"),
        ],
        params={
            "requests_per_proc": requests_per_proc,
            "service_time": service_time,
            "think_time": think_time,
            "seed": seed,
        },
        notes=[
            "paper: centralized grows linearly with n; arrow sub-linear, "
            "nearly flat at large n (Fig. 10)",
        ],
    )
