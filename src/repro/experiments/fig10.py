"""Figure 10: arrow vs centralized total latency under the closed loop.

The paper measures, on an IBM SP2 with up to 76 processors, the wall time
for 100 000 closed-loop enqueues per processor: the centralized protocol
degrades linearly with the processor count while arrow stays nearly flat.

Our reproduction runs the same closed loop on the simulated SP2 model
(complete unit-latency graph, balanced binary spanning tree, per-node
service time, §5 two-message centralized discipline) over a sweep of
system sizes.  Request counts are scaled down by default — the closed loop
reaches steady state within a few hundred requests per processor, and the
*shape* (flat vs linear, who wins where) is what the experiment checks —
with the full-size run available via ``requests_per_proc=100_000``.

Three engines drive each cell, selected by ``engine=``:

* ``"fast"`` (default) — :mod:`repro.core.fast_closed_loop`, the flat
  heap-based replay of the closed-loop dynamics;
* ``"message"`` — the original message-level drivers in
  :mod:`repro.workloads.closed_loop`;
* ``"batch"`` — :mod:`repro.core.batch`, the same flat-heap replay with
  numpy block-buffered RNG draws and vectorized delay tables.

All three are bit-identical (the parity suites enforce it), so the figure
does not depend on the choice; the fast and batch engines just regenerate
it several times faster.  Per-size points are independent and route through
:func:`repro.sweep.executor.map_jobs`: pass ``workers > 1`` to fan the
system sizes out over processes.
"""

from __future__ import annotations

from repro.core.fast_closed_loop import closed_loop_runner
from repro.experiments.records import ExperimentResult, Series
from repro.graphs.generators import complete_graph
from repro.spanning.construct import balanced_binary_overlay
from repro.sweep.executor import map_jobs

__all__ = ["DEFAULT_PROC_COUNTS", "run_fig10"]

#: The paper sweeps 2..76 processors; these are the plotted sizes.
DEFAULT_PROC_COUNTS = [2, 4, 8, 16, 32, 48, 64, 76]


def _fig10_cell(job: tuple[int, int, float, float, int, str]) -> tuple[float, float]:
    """One system size: (arrow makespan, centralized makespan)."""
    n, requests_per_proc, service_time, think_time, seed, engine = job
    run_arrow_loop = closed_loop_runner("arrow", engine)
    run_central_loop = closed_loop_runner("centralized", engine)
    g = complete_graph(n)
    tree = balanced_binary_overlay(g, root=0)
    a = run_arrow_loop(
        g,
        tree,
        requests_per_proc=requests_per_proc,
        service_time=service_time,
        think_time=think_time,
        seed=seed,
    )
    c = run_central_loop(
        g,
        0,
        requests_per_proc=requests_per_proc,
        service_time=service_time,
        think_time=think_time,
        seed=seed,
    )
    return a.makespan, c.makespan


def run_fig10(
    proc_counts: list[int] | None = None,
    *,
    requests_per_proc: int = 300,
    service_time: float = 0.1,
    think_time: float = 0.1,
    seed: int = 0,
    engine: str = "fast",
    workers: int = 1,
) -> ExperimentResult:
    """Run the Figure 10 sweep; returns total-time series per protocol.

    ``service_time`` models the per-message CPU cost relative to the unit
    network latency (the SP2's ~µs handler vs ~40µs message latency puts
    the real ratio near 0.1); it is what makes the centralized centre a
    bottleneck, exactly as on the real machine.
    """
    closed_loop_runner("arrow", engine)  # validate the engine name up front
    procs = proc_counts if proc_counts is not None else DEFAULT_PROC_COUNTS
    jobs = [
        (n, requests_per_proc, service_time, think_time, seed, engine)
        for n in procs
    ]
    points = map_jobs(_fig10_cell, jobs, workers=workers)
    arrow_times = [p[0] for p in points]
    central_times = [p[1] for p in points]
    return ExperimentResult(
        experiment_id="fig10",
        title="Arrow vs centralized: total time for closed-loop enqueues",
        xlabel="processors",
        series=[
            Series("arrow", [float(p) for p in procs], arrow_times, "sim time"),
            Series("centralized", [float(p) for p in procs], central_times, "sim time"),
        ],
        params={
            "requests_per_proc": requests_per_proc,
            "service_time": service_time,
            "think_time": think_time,
            "seed": seed,
            "engine": engine,
        },
        notes=[
            "paper: centralized grows linearly with n; arrow sub-linear, "
            "nearly flat at large n (Fig. 10)",
        ],
    )
