"""The concurrent one-shot case (precursor paper [10], combined in §1).

Herlihy, Tirthapura & Wattenhofer analysed the case where **all requests
are issued simultaneously**: arrow's cost is within ``s · log |R|`` of
optimal, with an almost matching lower bound.  With all times equal, the
cost ``c_T`` collapses to the tree metric ``d_T`` and arrow's order is a
plain nearest-neighbour TSP path on the requesting nodes from the root —
so this experiment doubles as a direct check of the NN machinery on a
pure metric instance.
"""

from __future__ import annotations

import math

from repro.analysis.competitive import measure_competitive_ratio
from repro.experiments.records import ExperimentResult, Series
from repro.graphs.generators import random_geometric_graph
from repro.sim.rng import spawn_rng
from repro.spanning.construct import mst_prim
from repro.spanning.metrics import tree_stretch
from repro.workloads.schedules import one_shot

__all__ = ["run_one_shot_analysis"]


def run_one_shot_analysis(
    request_counts: list[int] | None = None,
    *,
    num_nodes: int = 64,
    seed: int = 0,
) -> ExperimentResult:
    """Measured one-shot ratio vs |R| against the s·log|R| ceiling."""
    counts = request_counts if request_counts is not None else [4, 8, 16, 32, 64]
    graph = random_geometric_graph(num_nodes, 0.25, seed=seed)
    tree = mst_prim(graph, 0)
    s = tree_stretch(graph, tree).stretch
    rng = spawn_rng(seed, "one-shot-requests")

    ratios_hi: list[float] = []
    ratios_lo: list[float] = []
    ceilings: list[float] = []
    for r in counts:
        nodes = list(rng.choice(num_nodes, size=min(r, num_nodes), replace=False))
        sched = one_shot([int(v) for v in nodes])
        rep = measure_competitive_ratio(graph, tree, sched, exact_limit=10)
        ratios_hi.append(rep.ratio_upper)
        ratios_lo.append(rep.ratio_lower)
        # The [10] bound with an explicit (loose) constant for comparison.
        ceilings.append(4.0 * s * max(1.0, math.log2(len(sched))) * 12.0)
    xs = [float(c) for c in counts]
    return ExperimentResult(
        experiment_id="one-shot",
        title="One-shot concurrent case: ratio vs |R| ([10])",
        xlabel="|R| (simultaneous requests)",
        series=[
            Series("ratio (vs opt upper bd)", xs, ratios_lo),
            Series("ratio (vs opt lower bd)", xs, ratios_hi),
            Series("s log|R| ceiling", xs, ceilings),
        ],
        params={"num_nodes": num_nodes, "stretch": s, "seed": seed},
        notes=["[10]: one-shot arrow is s*log|R| competitive"],
    )
