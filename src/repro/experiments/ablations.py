"""Ablation experiments for the design choices DESIGN.md calls out.

* **Spanning-tree choice** (§1.1: MST suggested by [4], min-communication
  trees by [18]): same graph and workload, different trees — lower stretch
  should mean lower arrow cost.
* **Protocol comparison** (§1.1: NTA [17] / Ivy [15] adaptive pointers vs
  arrow's fixed tree; §5's centralized): message counts per operation on a
  complete graph.
* **Service-time sensitivity**: where the Fig. 10 arrow/centralized
  crossover sits as the CPU/network cost ratio varies.
"""

from __future__ import annotations

from repro.core.adaptive import run_adaptive
from repro.core.runner import run_arrow, run_centralized
from repro.experiments.records import ExperimentResult, Series
from repro.graphs.generators import complete_graph, random_geometric_graph
from repro.spanning.construct import (
    balanced_binary_overlay,
    bfs_tree,
    mst_prim,
    random_spanning_tree,
    star_overlay,
)
from repro.spanning.metrics import tree_stretch
from repro.workloads.closed_loop import closed_loop_arrow, closed_loop_centralized
from repro.workloads.schedules import poisson

__all__ = [
    "run_tree_ablation",
    "run_protocol_ablation",
    "run_service_time_ablation",
]


def run_tree_ablation(
    *, num_nodes: int = 48, requests: int = 150, rate: float = 3.0, seed: int = 0
) -> ExperimentResult:
    """Arrow cost under different spanning trees of one geometric graph."""
    graph = random_geometric_graph(num_nodes, 0.3, seed=seed)
    builders = [
        ("mst", lambda: mst_prim(graph, 0)),
        ("bfs", lambda: bfs_tree(graph, 0)),
        ("random", lambda: random_spanning_tree(graph, 0, seed=seed)),
    ]
    sched = poisson(num_nodes, requests, rate, seed=seed)
    xs: list[float] = []
    stretches: list[float] = []
    costs: list[float] = []
    for i, (name, build) in enumerate(builders):
        tree = build()
        res = run_arrow(graph, tree, sched)
        xs.append(float(i))
        stretches.append(tree_stretch(graph, tree).stretch)
        costs.append(res.total_latency)
    return ExperimentResult(
        experiment_id="ablation-trees",
        title="Spanning-tree choice: stretch vs arrow cost (same workload)",
        xlabel="tree (0=mst, 1=bfs, 2=random)",
        series=[
            Series("stretch", xs, stretches),
            Series("arrow total latency", xs, costs),
        ],
        params={"num_nodes": num_nodes, "requests": requests, "seed": seed},
        notes=["lower-stretch trees should give lower arrow cost ([4], [18])"],
    )


def run_protocol_ablation(
    *, num_nodes: int = 32, requests: int = 200, rate: float = 4.0, seed: int = 0
) -> ExperimentResult:
    """Messages per op: arrow vs NTA/Ivy pointers vs centralized (K_n)."""
    graph = complete_graph(num_nodes)
    tree = balanced_binary_overlay(graph, 0)
    star = star_overlay(graph, 0)
    sched = poisson(num_nodes, requests, rate, seed=seed)

    runs = [
        ("arrow/binary-tree", run_arrow(graph, tree, sched)),
        ("arrow/star-tree", run_arrow(graph, star, sched)),
        ("nta-ivy", run_adaptive(graph, 0, sched)),
        ("centralized", run_centralized(graph, 0, sched)),
    ]
    xs = [float(i) for i in range(len(runs))]
    msgs = [r.network_stats["messages_sent"] / len(sched) for _, r in runs]
    latency = [r.total_latency / len(sched) for _, r in runs]
    return ExperimentResult(
        experiment_id="ablation-protocols",
        title="Protocol comparison on K_n: messages and latency per op",
        xlabel="protocol (0=arrow/bin, 1=arrow/star, 2=nta-ivy, 3=centralized)",
        series=[
            Series("messages/op", xs, msgs),
            Series("latency/op", xs, latency),
        ],
        params={"num_nodes": num_nodes, "requests": requests, "seed": seed},
        notes=[
            "NTA/Ivy adaptive pointers average O(log n) messages/op ([7], [17]);"
            " arrow's are bounded by the tree distance to the predecessor",
        ],
    )


def run_service_time_ablation(
    *,
    num_procs: int = 48,
    requests_per_proc: int = 150,
    service_times: list[float] | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 10 sensitivity: total time vs per-message CPU cost."""
    sts = service_times if service_times is not None else [0.0, 0.05, 0.1, 0.2, 0.4]
    graph = complete_graph(num_procs)
    tree = balanced_binary_overlay(graph, 0)
    arrow_t: list[float] = []
    central_t: list[float] = []
    for st in sts:
        a = closed_loop_arrow(
            graph,
            tree,
            requests_per_proc=requests_per_proc,
            service_time=st,
            think_time=st,
            seed=seed,
        )
        c = closed_loop_centralized(
            graph,
            0,
            requests_per_proc=requests_per_proc,
            service_time=st,
            think_time=st,
            seed=seed,
        )
        arrow_t.append(a.makespan)
        central_t.append(c.makespan)
    return ExperimentResult(
        experiment_id="ablation-service-time",
        title="Closed-loop total time vs per-message service time",
        xlabel="service time (fraction of link latency)",
        series=[
            Series("arrow", sts, arrow_t, "sim time"),
            Series("centralized", sts, central_t, "sim time"),
        ],
        params={"num_procs": num_procs, "requests_per_proc": requests_per_proc},
        notes=[
            "the centralized protocol's disadvantage grows with the CPU "
            "cost per message (the centre serialises all requests)",
        ],
    )
