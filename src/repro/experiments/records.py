"""Result records shared by all experiments.

An experiment produces an :class:`ExperimentResult`: a set of named series
over a common x-axis plus free-form parameters and notes.  Results render
as ASCII tables/plots (for the CLI and the benchmark logs) and serialise
to JSON for archival; EXPERIMENTS.md is written from these records.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Series", "ExperimentResult"]


@dataclass(slots=True)
class Series:
    """One named data series ``(x, y)`` with an optional unit label."""

    name: str
    xs: list[float]
    ys: list[float]
    unit: str = ""

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(
                f"series {self.name!r}: {len(self.xs)} xs vs {len(self.ys)} ys"
            )


@dataclass(slots=True)
class ExperimentResult:
    """A complete experiment outcome (one figure/table of the paper)."""

    experiment_id: str
    title: str
    xlabel: str
    series: list[Series] = field(default_factory=list)
    params: dict[str, Any] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def series_by_name(self, name: str) -> Series:
        """Find a series; raises ``KeyError`` with the available names."""
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"{name!r} not in {[s.name for s in self.series]}")

    def to_json(self) -> str:
        """Serialise to a stable JSON document."""
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "xlabel": self.xlabel,
                "series": [
                    {"name": s.name, "xs": s.xs, "ys": s.ys, "unit": s.unit}
                    for s in self.series
                ],
                "params": self.params,
                "notes": self.notes,
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, doc: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json`."""
        d = json.loads(doc)
        return cls(
            experiment_id=d["experiment_id"],
            title=d["title"],
            xlabel=d["xlabel"],
            series=[Series(s["name"], s["xs"], s["ys"], s.get("unit", "")) for s in d["series"]],
            params=d.get("params", {}),
            notes=d.get("notes", []),
        )
