"""ASCII table rendering for experiment results."""

from __future__ import annotations

from repro.experiments.records import ExperimentResult

__all__ = ["format_table", "format_kv"]


def format_table(result: ExperimentResult, *, float_fmt: str = "{:.3f}") -> str:
    """Render a result as a fixed-width table, one row per x value."""
    headers = [result.xlabel] + [
        s.name + (f" [{s.unit}]" if s.unit else "") for s in result.series
    ]
    xs = result.series[0].xs if result.series else []
    rows: list[list[str]] = []
    for i, x in enumerate(xs):
        row = [_fmt(x, float_fmt)]
        for s in result.series:
            row.append(_fmt(s.ys[i], float_fmt) if i < len(s.ys) else "-")
        rows.append(row)
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else len(headers[c])
        for c in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = [
        f"== {result.experiment_id}: {result.title} ==",
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for r in rows:
        out.append(" | ".join(v.rjust(w) for v, w in zip(r, widths)))
    for note in result.notes:
        out.append(f"note: {note}")
    return "\n".join(out)


def format_kv(pairs: dict, title: str = "") -> str:
    """Render a flat key/value mapping as aligned lines."""
    width = max((len(str(k)) for k in pairs), default=0)
    lines = [f"== {title} =="] if title else []
    lines += [f"{str(k).ljust(width)} : {v}" for k, v in pairs.items()]
    return "\n".join(lines)


def _fmt(v, float_fmt: str) -> str:
    if isinstance(v, float):
        if v == int(v) and abs(v) < 1e15:
            return str(int(v))
        return float_fmt.format(v)
    return str(v)
