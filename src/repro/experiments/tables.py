"""ASCII table rendering for experiment results."""

from __future__ import annotations

from repro.experiments.records import ExperimentResult

__all__ = ["format_table", "format_kv"]


def format_table(result: ExperimentResult, *, float_fmt: str = "{:.3f}") -> str:
    """Render a result as a fixed-width table, one row per x value.

    All series are assumed to share one x axis.  When they do not — the
    series carry different point counts — the x column follows the
    *longest* series, shorter series pad their missing rows with ``-``,
    and a ``note:`` line names the mismatched series instead of silently
    misaligning values against the first series' x values.
    """
    headers = [result.xlabel] + [
        s.name + (f" [{s.unit}]" if s.unit else "") for s in result.series
    ]
    xs: list[float] = []
    mismatched: list[str] = []
    if result.series:
        longest = max(result.series, key=lambda s: len(s.xs))
        xs = longest.xs
        mismatched = [
            f"{s.name} ({len(s.xs)} points)"
            for s in result.series
            if len(s.xs) != len(xs)
        ]
    rows: list[list[str]] = []
    for i, x in enumerate(xs):
        row = [_fmt(x, float_fmt)]
        for s in result.series:
            row.append(_fmt(s.ys[i], float_fmt) if i < len(s.ys) else "-")
        rows.append(row)
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else len(headers[c])
        for c in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = [
        f"== {result.experiment_id}: {result.title} ==",
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for r in rows:
        out.append(" | ".join(v.rjust(w) for v, w in zip(r, widths)))
    if mismatched:
        out.append(
            "note: series lengths differ — x column follows the longest "
            f"series ({len(xs)} points); padded: {', '.join(mismatched)}"
        )
    for note in result.notes:
        out.append(f"note: {note}")
    return "\n".join(out)


def format_kv(pairs: dict, title: str = "") -> str:
    """Render a flat key/value mapping as aligned lines."""
    width = max((len(str(k)) for k in pairs), default=0)
    lines = [f"== {title} =="] if title else []
    lines += [f"{str(k).ljust(width)} : {v}" for k, v in pairs.items()]
    return "\n".join(lines)


def _fmt(v, float_fmt: str) -> str:
    if isinstance(v, float):
        if v == int(v) and abs(v) < 1e15:
            return str(int(v))
        return float_fmt.format(v)
    return str(v)
