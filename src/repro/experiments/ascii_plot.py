"""Minimal ASCII scatter/line plots for terminal output.

Good enough to eyeball the paper's figure shapes (flat vs linear growth in
Fig. 10, sub-1 hop counts in Fig. 11) straight from the CLI or the bench
logs, with no plotting dependency.
"""

from __future__ import annotations

from repro.experiments.records import ExperimentResult

__all__ = ["plot"]

_MARKS = "ox+*#@%"


def plot(
    result: ExperimentResult, *, width: int = 64, height: int = 16
) -> str:
    """Render all series of a result into one character grid.

    Only complete ``(x, y)`` pairs are plotted: a series whose ``ys``
    ran short of its ``xs`` (or that is empty outright) contributes its
    paired prefix — possibly nothing — to the grid and the axis ranges,
    and still gets a legend entry (marked ``no data`` when it plotted no
    points) rather than crashing the whole plot on an empty ``min()``.
    """
    points = [list(zip(s.xs, s.ys)) for s in result.series]
    xs_all = [x for pts in points for x, _ in pts]
    ys_all = [y for pts in points for _, y in pts]
    if not xs_all or not ys_all:
        return f"(empty plot: {result.title})"
    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo, y_hi = min(ys_all), max(ys_all)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, pts in enumerate(points):
        mark = _MARKS[si % len(_MARKS)]
        for x, y in pts:
            c = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            r = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - r][c] = mark
    lines = [f"{result.title}  (y: {y_lo:.3g}..{y_hi:.3g})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" x: {result.xlabel} {x_lo:.3g}..{x_hi:.3g}")
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]} {s.name}"
        + ("" if points[i] else " (no data)")
        for i, s in enumerate(result.series)
    )
    lines.append(" " + legend)
    return "\n".join(lines)
