"""The sequential baseline regime (Demmer–Herlihy [4], §1.1 of the paper).

When no two requests are ever concurrently active, every queuing
operation costs at most ``D`` messages/time on the tree and the
competitive ratio collapses to the stretch ``s``.  This experiment drives
well-separated schedules across topologies and verifies both facts —
a sanity anchor for the dynamic analysis above it.
"""

from __future__ import annotations

from repro.analysis.costs import (
    augmented_nodes_times,
    c_o_matrix,
    order_to_indices,
    path_cost,
    request_distance_matrix,
)
from repro.core.runner import run_arrow
from repro.experiments.records import ExperimentResult, Series
from repro.graphs.generators import complete_graph, grid_graph, random_geometric_graph
from repro.spanning.construct import bfs_tree, mst_prim
from repro.spanning.metrics import tree_diameter, tree_stretch
from repro.workloads.schedules import sequential
from repro.sim.rng import spawn_rng

__all__ = ["run_sequential_experiment"]


def run_sequential_experiment(
    *, num_requests: int = 40, seed: int = 0
) -> ExperimentResult:
    """Sequential schedules on three topologies; per-op cost and ratio."""
    cases = [
        ("complete-32/bfs", complete_graph(32), bfs_tree),
        ("grid-6x6/mst", grid_graph(6, 6), mst_prim),
        ("geometric-40/mst", random_geometric_graph(40, 0.35, seed=seed), mst_prim),
    ]
    names: list[float] = []
    max_op_cost: list[float] = []
    diameters: list[float] = []
    ratios: list[float] = []
    stretches: list[float] = []
    rng = spawn_rng(seed, "sequential-experiment")
    for idx, (label, graph, make_tree) in enumerate(cases):
        tree = make_tree(graph, 0)
        D = tree_diameter(tree)
        s = tree_stretch(graph, tree).stretch
        nodes = [int(rng.integers(0, graph.num_nodes)) for _ in range(num_requests)]
        sched = sequential(nodes, gap=2.0 * D + 2.0)
        res = run_arrow(graph, tree, sched)
        per_op = [res.latency(r.rid) for r in sched]
        # Sequential optimum: the same order, paying d_G per link (the
        # offline algorithm cannot reorder a fully sequential history
        # more cheaply than following it).
        nvec, times = augmented_nodes_times(sched, tree.root)
        DG = request_distance_matrix(graph, nvec)
        opt_cost = path_cost(order_to_indices(res.order), c_o_matrix(DG, times))
        names.append(float(idx))
        max_op_cost.append(max(per_op))
        diameters.append(D)
        ratios.append(res.total_latency / opt_cost if opt_cost else 1.0)
        stretches.append(s)
    return ExperimentResult(
        experiment_id="sequential",
        title="Sequential regime: per-op cost <= D, ratio <= stretch",
        xlabel="case index",
        series=[
            Series("max per-op latency", names, max_op_cost),
            Series("tree diameter D", names, diameters),
            Series("total ratio (vs seq opt)", names, ratios),
            Series("tree stretch s", names, stretches),
        ],
        params={"num_requests": num_requests, "seed": seed},
        notes=[
            "Demmer-Herlihy: sequential ops cost <= D; ratio <= s",
            "cases: 0=complete-32/bfs, 1=grid-6x6/mst, 2=geometric-40/mst",
        ],
    )
