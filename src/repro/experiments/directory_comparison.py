"""§5.1 related experiment: arrow directory vs home-based directory.

Herlihy & Warres compared the two directory designs over 2–16 processing
elements and observed the arrow directory outperforming the home-based
one across the range (their measurements include the object-transfer
cost, unlike the pure queuing measurements of Fig. 10).  This experiment
reproduces that comparison on the simulated testbed.
"""

from __future__ import annotations

from repro.apps.directory import arrow_directory, home_directory
from repro.experiments.records import ExperimentResult, Series
from repro.graphs.generators import complete_graph
from repro.spanning.construct import balanced_binary_overlay

__all__ = ["run_directory_comparison"]


def run_directory_comparison(
    proc_counts: list[int] | None = None,
    *,
    acquisitions_per_proc: int = 50,
    cs_time: float = 0.5,
    service_time: float = 0.1,
    seed: int = 0,
) -> ExperimentResult:
    """Total completion time of both directories vs system size (2-16 PEs)."""
    procs = proc_counts if proc_counts is not None else [2, 4, 8, 12, 16]
    arrow_t: list[float] = []
    home_t: list[float] = []
    arrow_msgs: list[float] = []
    home_msgs: list[float] = []
    for n in procs:
        g = complete_graph(n)
        tree = balanced_binary_overlay(g, root=0)
        a = arrow_directory(
            g,
            tree,
            acquisitions_per_proc=acquisitions_per_proc,
            cs_time=cs_time,
            service_time=service_time,
            seed=seed,
        )
        h = home_directory(
            g,
            0,
            acquisitions_per_proc=acquisitions_per_proc,
            cs_time=cs_time,
            service_time=service_time,
            seed=seed,
        )
        assert a.exclusion_holds() and h.exclusion_holds()
        arrow_t.append(a.makespan)
        home_t.append(h.makespan)
        arrow_msgs.append(a.messages_sent / a.total_acquisitions)
        home_msgs.append(h.messages_sent / h.total_acquisitions)
    xs = [float(p) for p in procs]
    return ExperimentResult(
        experiment_id="directory",
        title="Distributed directory: arrow vs home-based (§5.1)",
        xlabel="processing elements",
        series=[
            Series("arrow directory", xs, arrow_t, "sim time"),
            Series("home-based directory", xs, home_t, "sim time"),
            Series("arrow msgs/acq", xs, arrow_msgs),
            Series("home msgs/acq", xs, home_msgs),
        ],
        params={
            "acquisitions_per_proc": acquisitions_per_proc,
            "cs_time": cs_time,
            "service_time": service_time,
        },
        notes=[
            "Herlihy-Warres: arrow directory outperformed the home-based "
            "directory from 2 to 16 processing elements",
        ],
    )
