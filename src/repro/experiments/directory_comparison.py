"""§5.1 related experiment: arrow directory vs home-based directory.

Herlihy & Warres compared the two directory designs over 2–16 processing
elements and observed the arrow directory outperforming the home-based
one across the range (their measurements include the object-transfer
cost, unlike the pure queuing measurements of Fig. 10).  This experiment
reproduces that comparison on the simulated testbed; per-size points are
independent and route through :func:`repro.sweep.executor.map_jobs`, so
``workers > 1`` fans the system sizes out over processes.  The same
comparison is available as a declarative grid — including the
mutual-exclusion invariant persisted per row — via
``repro-arrow sweep --grid directory`` (see
:func:`repro.sweep.spec.directory_grid`).
"""

from __future__ import annotations

from repro.apps.directory import arrow_directory, home_directory
from repro.errors import ProtocolError
from repro.experiments.records import ExperimentResult, Series
from repro.graphs.generators import complete_graph
from repro.spanning.construct import balanced_binary_overlay
from repro.sweep.executor import map_jobs

__all__ = ["run_directory_comparison"]


def _directory_cell(
    job: tuple[int, int, float, float, int]
) -> tuple[float, float, float, float]:
    """One system size: (arrow makespan, home makespan, msgs/acq each)."""
    n, acquisitions_per_proc, cs_time, service_time, seed = job
    g = complete_graph(n)
    tree = balanced_binary_overlay(g, root=0)
    a = arrow_directory(
        g,
        tree,
        acquisitions_per_proc=acquisitions_per_proc,
        cs_time=cs_time,
        service_time=service_time,
        seed=seed,
    )
    h = home_directory(
        g,
        0,
        acquisitions_per_proc=acquisitions_per_proc,
        cs_time=cs_time,
        service_time=service_time,
        seed=seed,
    )
    if not (a.exclusion_holds() and h.exclusion_holds()):
        raise ProtocolError(
            f"mutual exclusion violated at n={n} "
            f"(arrow ok: {a.exclusion_holds()}, home ok: {h.exclusion_holds()})"
        )
    return (
        a.makespan,
        h.makespan,
        a.messages_sent / a.total_acquisitions,
        h.messages_sent / h.total_acquisitions,
    )


def run_directory_comparison(
    proc_counts: list[int] | None = None,
    *,
    acquisitions_per_proc: int = 50,
    cs_time: float = 0.5,
    service_time: float = 0.1,
    seed: int = 0,
    workers: int = 1,
) -> ExperimentResult:
    """Total completion time of both directories vs system size (2-16 PEs)."""
    procs = proc_counts if proc_counts is not None else [2, 4, 8, 12, 16]
    jobs = [
        (n, acquisitions_per_proc, cs_time, service_time, seed) for n in procs
    ]
    points = map_jobs(_directory_cell, jobs, workers=workers)
    arrow_t = [p[0] for p in points]
    home_t = [p[1] for p in points]
    arrow_msgs = [p[2] for p in points]
    home_msgs = [p[3] for p in points]
    xs = [float(p) for p in procs]
    return ExperimentResult(
        experiment_id="directory",
        title="Distributed directory: arrow vs home-based (§5.1)",
        xlabel="processing elements",
        series=[
            Series("arrow directory", xs, arrow_t, "sim time"),
            Series("home-based directory", xs, home_t, "sim time"),
            Series("arrow msgs/acq", xs, arrow_msgs),
            Series("home msgs/acq", xs, home_msgs),
        ],
        params={
            "acquisitions_per_proc": acquisitions_per_proc,
            "cs_time": cs_time,
            "service_time": service_time,
        },
        notes=[
            "Herlihy-Warres: arrow directory outperformed the home-based "
            "directory from 2 to 16 processing elements",
        ],
    )
