"""Figure 11: average interprocessor messages (hops) per arrow operation.

The paper reports fewer than one interprocessor message per queuing
request — most requests find their predecessor locally or one hop away —
over the same closed-loop workload as Fig. 10.  This experiment records
arrow's mean queue-message hop count and the local-find fraction per
system size.

Four engines are available:

* ``engine="fast"`` (default) — the §5 closed loop replayed on
  :mod:`repro.core.fast_closed_loop`, bit-identical to the message-level
  driver at a fraction of the wall clock;
* ``engine="message"`` — the same closed loop on the message-level
  simulator, exactly as the paper measures it (identical output);
* ``engine="batch"`` — the same closed loop through
  :mod:`repro.core.batch`'s vectorized delay sources (identical output);
* ``engine="open"`` — the open-loop steady-state analogue: Poisson
  traffic at one request per processor per time unit replayed on the
  :class:`~repro.core.fast_arrow.FastArrowEngine`.  The closed loop's
  issue rate converges to exactly that once acknowledgements pipeline,
  so the hop metrics agree closely; useful for cross-checking the two
  workload styles against each other.

Per-size points route through :func:`repro.sweep.executor.map_jobs`;
``workers > 1`` fans them out over processes.
"""

from __future__ import annotations

from repro.core.fast_arrow import run_arrow_fast
from repro.core.fast_closed_loop import closed_loop_runner
from repro.experiments.fig10 import DEFAULT_PROC_COUNTS
from repro.experiments.records import ExperimentResult, Series
from repro.graphs.generators import complete_graph
from repro.spanning.construct import balanced_binary_overlay
from repro.sweep.executor import map_jobs
from repro.workloads.schedules import poisson

__all__ = ["run_fig11"]


def _fig11_cell(
    job: tuple[int, int, float, float, int, str]
) -> tuple[float, float]:
    """One system size: (mean hops/op, local-find fraction)."""
    n, requests_per_proc, service_time, think_time, seed, engine = job
    g = complete_graph(n)
    tree = balanced_binary_overlay(g, root=0)
    if engine == "open":
        sched = poisson(n, requests_per_proc * n, rate=float(n), seed=seed)
        res = run_arrow_fast(g, tree, sched, seed=seed, service_time=service_time)
        return res.mean_hops, res.local_find_fraction()
    a = closed_loop_runner("arrow", engine)(
        g,
        tree,
        requests_per_proc=requests_per_proc,
        service_time=service_time,
        think_time=think_time,
        seed=seed,
    )
    return a.mean_hops, a.local_find_fraction


def run_fig11(
    proc_counts: list[int] | None = None,
    *,
    requests_per_proc: int = 300,
    service_time: float = 0.1,
    think_time: float = 0.1,
    seed: int = 0,
    engine: str = "fast",
    workers: int = 1,
) -> ExperimentResult:
    """Run the Figure 11 sweep: hops per operation vs system size."""
    if engine != "open":
        closed_loop_runner("arrow", engine)  # validate the engine name
    procs = proc_counts if proc_counts is not None else DEFAULT_PROC_COUNTS
    jobs = [
        (n, requests_per_proc, service_time, think_time, seed, engine)
        for n in procs
    ]
    points = map_jobs(_fig11_cell, jobs, workers=workers)
    mean_hops = [p[0] for p in points]
    local_frac = [p[1] for p in points]
    xs = [float(p) for p in procs]
    loop = "open loop, fast engine" if engine == "open" else "closed loop"
    return ExperimentResult(
        experiment_id="fig11",
        title=f"Arrow: queue-message hops per operation ({loop})",
        xlabel="processors",
        series=[
            Series("mean hops/op", xs, mean_hops, "hops"),
            Series("local-find fraction", xs, local_frac, ""),
        ],
        params={
            "requests_per_proc": requests_per_proc,
            "service_time": service_time,
            # think_time only shapes the closed loop; the open-loop
            # analogue has no acknowledgement round-trip to think after.
            **({"think_time": think_time} if engine != "open" else {}),
            "seed": seed,
            "engine": engine,
        },
        notes=[
            "paper: average below 1 hop/op because many requests find "
            "their predecessor locally (Fig. 11)",
            # engine="fast" used to name the open-loop analogue; since the
            # closed loop gained its own fast engine, fast/message both run
            # the closed loop (bit-identical) and the analogue is "open".
            "engines: fast/message/batch = closed loop (identical "
            "results), open = open-loop steady-state analogue",
        ],
    )
