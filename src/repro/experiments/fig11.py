"""Figure 11: average interprocessor messages (hops) per arrow operation.

The paper reports fewer than one interprocessor message per queuing
request — most requests find their predecessor locally or one hop away —
over the same closed-loop workload as Fig. 10.  This experiment records
arrow's mean queue-message hop count and the local-find fraction per
system size.
"""

from __future__ import annotations

from repro.experiments.fig10 import DEFAULT_PROC_COUNTS
from repro.experiments.records import ExperimentResult, Series
from repro.graphs.generators import complete_graph
from repro.spanning.construct import balanced_binary_overlay
from repro.workloads.closed_loop import closed_loop_arrow

__all__ = ["run_fig11"]


def run_fig11(
    proc_counts: list[int] | None = None,
    *,
    requests_per_proc: int = 300,
    service_time: float = 0.1,
    think_time: float = 0.1,
    seed: int = 0,
) -> ExperimentResult:
    """Run the Figure 11 sweep: hops per operation vs system size."""
    procs = proc_counts if proc_counts is not None else DEFAULT_PROC_COUNTS
    mean_hops: list[float] = []
    local_frac: list[float] = []
    for n in procs:
        g = complete_graph(n)
        tree = balanced_binary_overlay(g, root=0)
        a = closed_loop_arrow(
            g,
            tree,
            requests_per_proc=requests_per_proc,
            service_time=service_time,
            think_time=think_time,
            seed=seed,
        )
        mean_hops.append(a.mean_hops)
        local_frac.append(a.local_find_fraction)
    xs = [float(p) for p in procs]
    return ExperimentResult(
        experiment_id="fig11",
        title="Arrow: queue-message hops per operation (closed loop)",
        xlabel="processors",
        series=[
            Series("mean hops/op", xs, mean_hops, "hops"),
            Series("local-find fraction", xs, local_frac, ""),
        ],
        params={
            "requests_per_proc": requests_per_proc,
            "service_time": service_time,
            "think_time": think_time,
            "seed": seed,
        },
        notes=[
            "paper: average below 1 hop/op because many requests find "
            "their predecessor locally (Fig. 11)",
        ],
    )
