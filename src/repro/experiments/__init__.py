"""Experiment harness: one module per paper figure/theorem (see DESIGN.md)."""

from repro.experiments.ablations import (
    run_protocol_ablation,
    run_service_time_ablation,
    run_tree_ablation,
)
from repro.experiments.ascii_plot import plot
from repro.experiments.competitive import run_async_comparison, run_competitive_sweep
from repro.experiments.directory_comparison import run_directory_comparison
from repro.experiments.fig9 import Fig9Report, render_instance, run_fig9
from repro.experiments.fig10 import DEFAULT_PROC_COUNTS, run_fig10
from repro.experiments.fig11 import run_fig11
from repro.experiments.lowerbound_sweep import (
    run_theorem41_sweep,
    run_theorem42_sweep,
    worst_case_arrow_cost,
)
from repro.experiments.one_shot_analysis import run_one_shot_analysis
from repro.experiments.records import ExperimentResult, Series
from repro.experiments.sequential import run_sequential_experiment
from repro.experiments.tables import format_kv, format_table

__all__ = [
    "run_protocol_ablation",
    "run_service_time_ablation",
    "run_tree_ablation",
    "plot",
    "run_async_comparison",
    "run_competitive_sweep",
    "run_directory_comparison",
    "run_one_shot_analysis",
    "Fig9Report",
    "render_instance",
    "run_fig9",
    "DEFAULT_PROC_COUNTS",
    "run_fig10",
    "run_fig11",
    "run_theorem41_sweep",
    "run_theorem42_sweep",
    "worst_case_arrow_cost",
    "ExperimentResult",
    "Series",
    "run_sequential_experiment",
    "format_kv",
    "format_table",
]
