"""Figure 9: the lower-bound instance and arrow's realised order.

The paper's Figure 9 draws the Theorem 4.1 instance for ``D = 64, k = 6``:
requests as dots in (position, time) space, connected by arrow's queuing
order.  This experiment regenerates the picture as ASCII art for both the
literal construction and the bitonic layered reconstruction, and reports
the realised arrow cost against the ``k·D`` sweep target and the comb
bound on the optimal cost (see the reproduction note in
:mod:`repro.lowerbound.layered`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.nearest_neighbor import predict_arrow_run
from repro.analysis.optimal import opt_bounds
from repro.core.requests import RequestSchedule
from repro.lowerbound.comb import comb_mst_weight
from repro.lowerbound.construction import theorem41_instance
from repro.lowerbound.layered import layered_instance

__all__ = ["Fig9Report", "run_fig9", "render_instance"]


@dataclass(slots=True)
class Fig9Report:
    """Outcome of one Figure 9 regeneration."""

    variant: str
    D: int
    k: int
    num_requests: int
    arrow_cost: float
    sweep_target: float
    opt_upper: float
    opt_lower: float
    comb_weight: float
    ratio: float
    picture: str
    #: Total latency of the realised execution on the chosen arrow engine
    #: (None unless ``run_fig9`` was given an ``engine``).
    sim_cost: float | None = None


def render_instance(
    schedule: RequestSchedule, D: int, *, width: int = 65
) -> str:
    """ASCII rendering of the (position, time) dot pattern, Fig. 9 style."""
    times = sorted({r.time for r in schedule})
    scale = (width - 1) / max(1, D)
    lines = []
    for t in times:
        row = [" "] * width
        for r in schedule:
            if r.time == t:
                row[int(r.node * scale)] = "*"
        lines.append(f"t={int(t):3d} |" + "".join(row) + "|")
    return "\n".join(lines)


def run_fig9(
    D: int = 64, k: int = 6, *, variant: str = "layered", engine: str | None = None
) -> Fig9Report:
    """Regenerate the Figure 9 instance and measure arrow against opt.

    ``variant`` is ``"literal"`` (the construction exactly as printed) or
    ``"layered"`` (the bitonic reconstruction that realises the sweep
    mechanism; default).  ``engine`` (``"fast"``, ``"message"`` or ``"batch"``) adds a
    simulated cross-check: the realised execution's total latency on the
    chosen arrow engine, one legal scheduling of the same instance.
    """
    if variant == "literal":
        inst = theorem41_instance(D, k)
        sweep_target = float(k * D)
    elif variant == "layered":
        li = layered_instance(D, k)
        inst = li
        sweep_target = li.sweep_cost_target
    else:
        raise ValueError(f"unknown variant {variant!r}")
    pred = predict_arrow_run(inst.tree, inst.schedule, tie_break="min")
    bounds = opt_bounds(inst.graph, inst.tree, inst.schedule, 1.0, exact_limit=0)
    sim_cost = None
    if engine is not None:
        from repro.core.fast_arrow import arrow_runner

        sim_cost = arrow_runner(engine)(
            inst.graph, inst.tree, inst.schedule
        ).total_latency
    return Fig9Report(
        variant=variant,
        D=D,
        k=k,
        num_requests=len(inst.schedule),
        arrow_cost=pred.arrow_cost,
        sweep_target=sweep_target,
        opt_upper=bounds.upper,
        opt_lower=bounds.lower,
        comb_weight=comb_mst_weight(inst.schedule),
        ratio=pred.arrow_cost / bounds.upper if bounds.upper else float("inf"),
        picture=render_instance(inst.schedule, D),
        sim_cost=sim_cost,
    )
