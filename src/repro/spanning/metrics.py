"""Quality metrics for spanning trees: stretch, diameter, radius.

Definition 3.1 of the paper: given graph ``G`` and spanning tree ``T``, the
stretch is ``s = max_{u,v} d_T(u, v) / d_G(u, v)``.  For the maximum it
suffices to scan the *edges* of ``G``: for any pair ``(u, v)`` with a
shortest ``G``-path ``u = x_0, x_1, ..., x_k = v``,

    d_T(u, v) <= sum_i d_T(x_i, x_{i+1})
              <= max_edge_stretch * sum_i d_G(x_i, x_{i+1})
              =  max_edge_stretch * d_G(u, v),

so the per-edge maximum dominates every pair.  This turns an ``O(n^2)``
scan into ``O(m)`` LCA queries and also yields a *certificate edge* that
the tests check against a brute-force all-pairs computation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TreeError
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import all_pairs_distances
from repro.spanning.tree import SpanningTree

__all__ = [
    "StretchReport",
    "tree_stretch",
    "tree_stretch_brute_force",
    "average_stretch",
    "tree_diameter",
    "tree_radius",
    "tree_center",
]


@dataclass(frozen=True, slots=True)
class StretchReport:
    """Stretch value plus the edge certifying it."""

    stretch: float
    witness: tuple[int, int]


def tree_stretch(graph: Graph, tree: SpanningTree) -> StretchReport:
    """Maximum stretch of ``tree`` w.r.t. ``graph`` (Definition 3.1).

    Scans the graph's edges (see module docstring for why that is enough)
    and verifies the tree's edges exist in the graph.
    """
    best = 1.0
    witness = (tree.root, tree.root)
    for u, v, w in tree.edges():
        if not graph.has_edge(u, v):
            raise TreeError(f"tree edge ({u}, {v}) missing from graph")
    for u, v, w in graph.edges():
        ratio = tree.distance(u, v) / w
        if ratio > best:
            best = ratio
            witness = (u, v)
    return StretchReport(best, witness)


def tree_stretch_brute_force(graph: Graph, tree: SpanningTree) -> float:
    """All-pairs stretch (O(n^2) pairs); test oracle for :func:`tree_stretch`."""
    dg = all_pairs_distances(graph)
    n = graph.num_nodes
    best = 1.0
    for u in range(n):
        for v in range(u + 1, n):
            best = max(best, tree.distance(u, v) / dg[u, v])
    return best


def average_stretch(graph: Graph, tree: SpanningTree) -> float:
    """Mean of ``d_T(u,v)/d_G(u,v)`` over all unordered pairs.

    Peleg–Reshef [18] show the *sequential* protocol overhead is governed by
    communication-weighted averages rather than the max; this metric feeds
    the tree-selection ablation benches.
    """
    dg = all_pairs_distances(graph)
    n = graph.num_nodes
    total = 0.0
    count = 0
    for u in range(n):
        for v in range(u + 1, n):
            total += tree.distance(u, v) / dg[u, v]
            count += 1
    return total / count if count else 1.0


def tree_diameter(tree: SpanningTree) -> float:
    """Weighted diameter ``D`` of the tree (double sweep).

    Two passes of the standard farthest-node sweep; exact on trees.
    """
    far, _ = _farthest(tree, tree.root)
    _, dist = _farthest(tree, far)
    return dist


def tree_radius(tree: SpanningTree) -> float:
    """Weighted radius: ``min_u max_v d_T(u, v)``."""
    _, ecc = tree_center(tree)
    return ecc


def tree_center(tree: SpanningTree) -> tuple[int, float]:
    """A center node and its eccentricity.

    The weighted center lies on the diameter path at the point minimising
    the maximum distance to the two diameter endpoints.
    """
    a, _ = _farthest(tree, tree.root)
    b, diam = _farthest(tree, a)
    path = tree.path(a, b)
    best_node = a
    best_ecc = diam
    run = 0.0
    for i, x in enumerate(path):
        if i > 0:
            run += _edge_w(tree, path[i - 1], x)
        ecc = max(run, diam - run)
        if ecc < best_ecc:
            best_ecc = ecc
            best_node = x
    return best_node, best_ecc


def _edge_w(tree: SpanningTree, u: int, v: int) -> float:
    if tree.parent[u] == v:
        return tree.edge_weight[u]
    if tree.parent[v] == u:
        return tree.edge_weight[v]
    raise TreeError(f"({u}, {v}) is not a tree edge")


def _farthest(tree: SpanningTree, src: int) -> tuple[int, float]:
    """Farthest node from ``src`` and its distance, by DFS."""
    n = tree.num_nodes
    dist = [-1.0] * n
    dist[src] = 0.0
    stack = [src]
    best_node, best_dist = src, 0.0
    while stack:
        u = stack.pop()
        for v in tree.neighbors(u):
            if dist[v] < 0:
                dist[v] = dist[u] + _edge_w(tree, u, v)
                if dist[v] > best_dist:
                    best_node, best_dist = v, dist[v]
                stack.append(v)
    return best_node, best_dist
