"""Spanning-tree constructions.

The choice of spanning tree determines the stretch ``s`` and diameter ``D``
that appear in the paper's competitive ratio ``O(s log D)``.  This module
provides the constructions discussed in §1.1:

* **minimum spanning tree** (Demmer–Herlihy's suggestion) — Prim and
  Kruskal variants, implemented from scratch;
* **BFS / shortest-path tree** — small depth from a chosen root;
* **balanced binary overlay tree** — the tree the paper's own experiments
  use on the complete SP2 graph (§5);
* **random spanning tree** (Wilson's loop-erased random walk) — used by the
  test-suite to exercise the protocol on unstructured trees;
* **star overlay** — degenerate comparison point (centralized-like shape).
"""

from __future__ import annotations

import heapq

from repro.errors import GraphError, TreeError
from repro.graphs.graph import Graph
from repro.spanning.tree import SpanningTree
from repro.sim.rng import spawn_rng

__all__ = [
    "mst_prim",
    "mst_kruskal",
    "bfs_tree",
    "balanced_binary_overlay",
    "star_overlay",
    "random_spanning_tree",
    "UnionFind",
]


class UnionFind:
    """Disjoint-set forest with union by rank and path compression."""

    __slots__ = ("parent", "rank", "components")

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.rank = [0] * n
        self.components = n

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with path compression)."""
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; False if already merged."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.components -= 1
        return True


def mst_prim(graph: Graph, root: int = 0) -> SpanningTree:
    """Minimum spanning tree by Prim's algorithm, rooted at ``root``."""
    n = graph.num_nodes
    in_tree = [False] * n
    parent = [-1] * n
    weight_to = [float("inf")] * n
    parent[root] = root
    weight_to[root] = 0.0
    heap: list[tuple[float, int, int]] = [(0.0, root, root)]
    edges: list[tuple[int, int, float]] = []
    while heap:
        w, u, par = heapq.heappop(heap)
        if in_tree[u]:
            continue
        in_tree[u] = True
        parent[u] = par
        if u != root:
            edges.append((u, par, w))
        for v, wv in graph.neighbor_weights(u):
            if not in_tree[v] and wv < weight_to[v]:
                weight_to[v] = wv
                heapq.heappush(heap, (wv, v, u))
    if not all(in_tree):
        raise GraphError("graph is disconnected; no spanning tree exists")
    return SpanningTree.from_edges(n, edges, root)


def mst_kruskal(graph: Graph, root: int = 0) -> SpanningTree:
    """Minimum spanning tree by Kruskal's algorithm, rooted at ``root``.

    Ties are broken by ``(weight, u, v)`` so the result is deterministic.
    """
    n = graph.num_nodes
    uf = UnionFind(n)
    chosen: list[tuple[int, int, float]] = []
    for u, v, w in sorted(graph.edges(), key=lambda e: (e[2], e[0], e[1])):
        if uf.union(u, v):
            chosen.append((u, v, w))
            if len(chosen) == n - 1:
                break
    if len(chosen) != n - 1:
        raise GraphError("graph is disconnected; no spanning tree exists")
    return SpanningTree.from_edges(n, chosen, root)


def bfs_tree(graph: Graph, root: int = 0) -> SpanningTree:
    """Shortest-path tree from ``root`` (Dijkstra; BFS on unit weights).

    Guarantees ``d_T(root, v) = d_G(root, v)`` for every ``v``, hence tree
    diameter at most twice the graph's eccentricity of the root.
    """
    from repro.graphs.shortest_paths import dijkstra

    dist, pred = dijkstra(graph, root)
    if any(d == float("inf") for d in dist):
        raise GraphError("graph is disconnected; no spanning tree exists")
    edges = [
        (v, pred[v], graph.weight(v, pred[v]))
        for v in graph.nodes()
        if v != root
    ]
    return SpanningTree.from_edges(graph.num_nodes, edges, root)


def balanced_binary_overlay(graph: Graph, root: int = 0) -> SpanningTree:
    """Balanced binary tree overlay over the nodes of a complete graph.

    This reproduces the paper's experimental setup (§5): on a network where
    every pair is directly connected with equal latency, pick a perfectly
    balanced binary tree of depth ``log2 n`` as the arrow spanning tree.
    Node ids are assigned in heap order starting from ``root``.

    Raises :class:`TreeError` if some required overlay edge is missing from
    the graph (i.e. the graph is not complete enough to host the overlay).
    """
    n = graph.num_nodes
    # Heap-order permutation placing `root` at position 0.
    order = [root] + [v for v in graph.nodes() if v != root]
    edges = []
    for i in range(1, n):
        u, p = order[i], order[(i - 1) // 2]
        if not graph.has_edge(u, p):
            raise TreeError(
                f"balanced overlay needs edge ({u}, {p}) which is absent; "
                "use a complete graph or a BFS/MST tree instead"
            )
        edges.append((u, p, graph.weight(u, p)))
    return SpanningTree.from_edges(n, edges, root)


def star_overlay(graph: Graph, center: int = 0) -> SpanningTree:
    """Star spanning tree centred at ``center`` (requires those edges)."""
    n = graph.num_nodes
    edges = []
    for v in graph.nodes():
        if v == center:
            continue
        if not graph.has_edge(v, center):
            raise TreeError(f"star overlay needs edge ({v}, {center})")
        edges.append((v, center, graph.weight(v, center)))
    return SpanningTree.from_edges(n, edges, center)


def random_spanning_tree(graph: Graph, root: int = 0, seed: int = 0) -> SpanningTree:
    """Uniform random spanning tree via Wilson's loop-erased random walk.

    Weights on the chosen edges are inherited from the graph.  Uniformity
    holds for unweighted sampling (the walk ignores weights) — exactly what
    the tests need: unbiased random tree shapes.
    """
    n = graph.num_nodes
    rng = spawn_rng(seed, f"wilson-{n}")
    in_tree = [False] * n
    parent = [-1] * n
    in_tree[root] = True
    parent[root] = root
    nbrs = [list(graph.neighbors(u)) for u in range(n)]
    for start in range(n):
        if in_tree[start]:
            continue
        # Random walk from `start` until hitting the tree, recording the
        # successor of each visited node (loop erasure by overwrite).
        u = start
        while not in_tree[u]:
            if not nbrs[u]:
                raise GraphError("graph is disconnected; no spanning tree exists")
            nxt = nbrs[u][rng.integers(len(nbrs[u]))]
            parent[u] = nxt
            u = nxt
        # Retrace the erased walk and attach it to the tree.
        u = start
        while not in_tree[u]:
            in_tree[u] = True
            u = parent[u]
    edges = [
        (v, parent[v], graph.weight(v, parent[v])) for v in range(n) if v != root
    ]
    return SpanningTree.from_edges(n, edges, root)
