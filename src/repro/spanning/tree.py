"""Rooted spanning tree with fast distance queries.

The arrow protocol operates on a pre-selected spanning tree ``T`` of the
network.  :class:`SpanningTree` stores the rooted structure (parents,
children, depths), answers ``d_T(u, v)`` distance queries in ``O(log n)``
via binary-lifting LCA, and exposes the path between two nodes (used by the
tests that verify queue messages travel the direct tree path, [4]).

Trees may be weighted; ``depth`` counts hops while ``wdepth`` accumulates
edge weights, and ``distance`` returns the weighted tree metric (which
collapses to hop count on unit-weighted trees — the synchronous model).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from repro.errors import TreeError
from repro.graphs.graph import Graph

__all__ = ["SpanningTree"]


class SpanningTree:
    """A rooted tree over nodes ``0..n-1`` with LCA-based distance queries."""

    __slots__ = (
        "_n",
        "root",
        "parent",
        "children",
        "depth",
        "wdepth",
        "edge_weight",
        "_up",
        "_log",
    )

    def __init__(
        self,
        parent: Sequence[int],
        root: int,
        edge_weights: Sequence[float] | None = None,
    ) -> None:
        """Build from a parent array.

        Parameters
        ----------
        parent:
            ``parent[v]`` is the parent of ``v``; ``parent[root]`` must be
            ``root`` itself.
        root:
            The root node (initial queue tail / sink in the protocol).
        edge_weights:
            ``edge_weights[v]`` is the weight of the edge ``v — parent[v]``
            (ignored at the root).  Defaults to all ones.
        """
        n = len(parent)
        if not 0 <= root < n:
            raise TreeError(f"root {root} out of range [0, {n})")
        if parent[root] != root:
            raise TreeError("parent[root] must equal root")
        self._n = n
        self.root = root
        self.parent = list(parent)
        self.edge_weight = (
            [1.0] * n if edge_weights is None else [float(w) for w in edge_weights]
        )
        self.edge_weight[root] = 0.0

        self.children: list[list[int]] = [[] for _ in range(n)]
        for v in range(n):
            p = self.parent[v]
            if v != root:
                if not 0 <= p < n:
                    raise TreeError(f"parent[{v}]={p} out of range")
                if p == v:
                    raise TreeError(f"non-root node {v} is its own parent")
                self.children[p].append(v)

        # BFS from the root: computes depths and validates that the parent
        # array encodes a single tree reaching every node (no cycles, no
        # disconnected pieces).
        self.depth = [-1] * n
        self.wdepth = [0.0] * n
        self.depth[root] = 0
        q: deque[int] = deque([root])
        seen = 1
        while q:
            u = q.popleft()
            for c in self.children[u]:
                if self.depth[c] != -1:
                    raise TreeError(f"node {c} reached twice; parent array has a cycle")
                self.depth[c] = self.depth[u] + 1
                self.wdepth[c] = self.wdepth[u] + self.edge_weight[c]
                seen += 1
                q.append(c)
        if seen != n:
            raise TreeError(
                f"parent array reaches only {seen}/{n} nodes (cycle or forest)"
            )

        self._build_lifting()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[tuple[int, int] | tuple[int, int, float]],
        root: int = 0,
    ) -> "SpanningTree":
        """Build from an undirected edge list, rooting at ``root``."""
        adj: list[list[tuple[int, float]]] = [[] for _ in range(num_nodes)]
        count = 0
        for e in edges:
            u, v = e[0], e[1]
            w = float(e[2]) if len(e) == 3 else 1.0
            adj[u].append((v, w))
            adj[v].append((u, w))
            count += 1
        if count != num_nodes - 1:
            raise TreeError(f"tree needs {num_nodes - 1} edges, got {count}")
        parent = [-1] * num_nodes
        weights = [1.0] * num_nodes
        parent[root] = root
        q: deque[int] = deque([root])
        while q:
            u = q.popleft()
            for v, w in adj[u]:
                if parent[v] == -1 and v != root:
                    parent[v] = u
                    weights[v] = w
                    q.append(v)
        if any(p == -1 for p in parent):
            raise TreeError("edge list does not form a connected tree")
        return cls(parent, root, weights)

    @classmethod
    def from_graph(cls, tree_graph: Graph, root: int = 0) -> "SpanningTree":
        """Build from a :class:`Graph` that is itself a tree."""
        return cls.from_edges(tree_graph.num_nodes, tree_graph.edges(), root)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._n

    def reroot(self, new_root: int) -> "SpanningTree":
        """Return the same tree rooted at a different node."""
        return SpanningTree.from_edges(self._n, self.edges(), new_root)

    def edges(self) -> list[tuple[int, int, float]]:
        """Undirected edge list ``(child, parent, weight)``."""
        return [
            (v, self.parent[v], self.edge_weight[v])
            for v in range(self._n)
            if v != self.root
        ]

    def neighbors(self, u: int) -> list[int]:
        """Tree neighbours of ``u`` (parent first, then children)."""
        out = [] if u == self.root else [self.parent[u]]
        out.extend(self.children[u])
        return out

    def degree(self, u: int) -> int:
        """Number of tree neighbours of ``u``."""
        return len(self.children[u]) + (0 if u == self.root else 1)

    def lca(self, u: int, v: int) -> int:
        """Lowest common ancestor of ``u`` and ``v``."""
        if self.depth[u] < self.depth[v]:
            u, v = v, u
        diff = self.depth[u] - self.depth[v]
        up = self._up
        k = 0
        while diff:
            if diff & 1:
                u = up[k][u]
            diff >>= 1
            k += 1
        if u == v:
            return u
        for k in range(self._log - 1, -1, -1):
            if up[k][u] != up[k][v]:
                u = up[k][u]
                v = up[k][v]
        return self.parent[u]

    def distance(self, u: int, v: int) -> float:
        """Weighted tree distance ``d_T(u, v)``."""
        a = self.lca(u, v)
        return self.wdepth[u] + self.wdepth[v] - 2.0 * self.wdepth[a]

    def hop_distance(self, u: int, v: int) -> int:
        """Unweighted (hop) tree distance."""
        a = self.lca(u, v)
        return self.depth[u] + self.depth[v] - 2 * self.depth[a]

    def path(self, u: int, v: int) -> list[int]:
        """The unique tree path from ``u`` to ``v``, inclusive."""
        a = self.lca(u, v)
        left = []
        x = u
        while x != a:
            left.append(x)
            x = self.parent[x]
        right = []
        x = v
        while x != a:
            right.append(x)
            x = self.parent[x]
        return left + [a] + list(reversed(right))

    def next_hop_towards(self, u: int, target: int) -> int:
        """The tree neighbour of ``u`` on the path to ``target``.

        Used to initialise arrow pointers (everything points toward the
        initial root) and by tests that replay message routes.
        """
        if u == target:
            return u
        a = self.lca(u, target)
        if u == a:
            # target is in u's subtree: step to the child whose subtree
            # contains target.
            x = target
            while self.parent[x] != u:
                x = self.parent[x]
            return x
        return self.parent[u]

    def subtree_nodes(self, u: int) -> list[int]:
        """All nodes in the subtree rooted at ``u`` (preorder)."""
        out = []
        stack = [u]
        while stack:
            x = stack.pop()
            out.append(x)
            stack.extend(reversed(self.children[x]))
        return out

    def leaves(self) -> list[int]:
        """All leaf nodes (nodes with no children; root excluded if it has)."""
        return [v for v in range(self._n) if not self.children[v] and v != self.root] + (
            [self.root] if not self.children[self.root] and self._n > 1 else []
        )

    def to_graph(self) -> Graph:
        """The tree as an undirected :class:`Graph`."""
        g = Graph(self._n)
        for u, v, w in self.edges():
            g.add_edge(u, v, w)
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanningTree(n={self._n}, root={self.root})"

    # ------------------------------------------------------------------
    # internal: binary lifting table
    # ------------------------------------------------------------------
    def _build_lifting(self) -> None:
        n = self._n
        log = max(1, (max(self.depth)).bit_length())
        up = [self.parent[:]]
        for k in range(1, log):
            prev = up[k - 1]
            up.append([prev[prev[v]] for v in range(n)])
        self._up = up
        self._log = log
