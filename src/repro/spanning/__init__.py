"""Spanning-tree substrate: rooted trees, constructions, quality metrics."""

from repro.spanning.construct import (
    UnionFind,
    balanced_binary_overlay,
    bfs_tree,
    mst_kruskal,
    mst_prim,
    random_spanning_tree,
    star_overlay,
)
from repro.spanning.metrics import (
    StretchReport,
    average_stretch,
    tree_center,
    tree_diameter,
    tree_radius,
    tree_stretch,
    tree_stretch_brute_force,
)
from repro.spanning.tree import SpanningTree

__all__ = [
    "SpanningTree",
    "UnionFind",
    "balanced_binary_overlay",
    "bfs_tree",
    "mst_kruskal",
    "mst_prim",
    "random_spanning_tree",
    "star_overlay",
    "StretchReport",
    "average_stretch",
    "tree_center",
    "tree_diameter",
    "tree_radius",
    "tree_stretch",
    "tree_stretch_brute_force",
]
