"""Canonical tables/plots per paper figure, rebuilt from stored rows.

The sweep grids already cover the paper's measured figures — ``fig10``
(closed-loop arrow vs centralized), ``fig11`` (hops per operation),
``directory`` (§5.1 arrow vs home-based) — so their canonical
:class:`~repro.experiments.records.ExperimentResult` is a pure function
of the stored rows: group by schedule family, x = system size, average
over seeds.  No simulation re-runs; regenerating a figure from the
results store is a read.

Non-grid experiments (fig9, the competitive/lower-bound theorem sweeps)
archive their :class:`ExperimentResult` documents directly in the store
(:meth:`repro.results.store.ResultsStore.put_experiment`); this module
adds the :func:`fig9_result` adapter for the fig9 report, which
historically rendered as key/value pairs only.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ResultsError
from repro.experiments.records import ExperimentResult, Series

__all__ = ["FIGURE_METRICS", "figure_from_rows", "fig9_result"]

#: Grid name -> (default metric column, unit, title).  Any other grid
#: falls back to ``makespan`` with a generic title; ``--metric``
#: overrides the column for all of them.
FIGURE_METRICS: dict[str, tuple[str, str, str]] = {
    "fig10": (
        "makespan",
        "sim time",
        "Arrow vs centralized: total time for closed-loop enqueues",
    ),
    "fig11": ("mean_hops", "hops", "Arrow hops per operation"),
    "directory": (
        "makespan",
        "sim time",
        "Arrow vs home-based directory: closed-loop makespan",
    ),
}


def _series_key(row: dict[str, Any], *, many_trees: bool, many_graphs: bool) -> str:
    """Stable series label for one row.

    The schedule family is the primary split (it is what every paper
    figure contrasts); tree strategy and graph family join the label
    only when the grid actually sweeps them, and a fault plan always
    shows (faulted and fault-free rows must never average together).
    """
    parts = [str(row.get("schedule", "?")).split("(")[0]]
    if many_trees:
        parts.append(str(row.get("tree", "?")))
    if many_graphs:
        parts.append(str(row.get("graph", "?")).split("(")[0])
    faults = row.get("faults")
    if faults:
        parts.append(f"f[{faults}]")
    return "/".join(parts)


def figure_from_rows(
    name: str,
    rows: Iterable[dict[str, Any]],
    *,
    metric: str | None = None,
) -> ExperimentResult:
    """Build the canonical figure for a stored grid from its rows.

    ``metric`` selects the y column (default per figure, see
    :data:`FIGURE_METRICS`); x is the system size ``n``; each series is
    one schedule family (split further by tree/graph/fault axes when the
    grid sweeps them), with the metric averaged over seeds per x.
    """
    default_metric, unit, title = FIGURE_METRICS.get(
        name, ("makespan", "", f"Grid {name!r} summary")
    )
    if metric is not None and metric != default_metric:
        unit = ""
        title = f"Grid {name!r}: {metric}"
    column = metric or default_metric

    rows = list(rows)
    if not rows:
        raise ResultsError(f"no rows to build figure {name!r} from")
    many_trees = len({r.get("tree") for r in rows}) > 1
    many_graphs = (
        len({str(r.get("graph", "")).split("(")[0] for r in rows}) > 1
    )
    # (series key, n) -> metric values over the seed axis.
    buckets: dict[str, dict[float, list[float]]] = {}
    seeds: set[Any] = set()
    for row in rows:
        if column not in row:
            numeric = sorted(
                k
                for k, v in row.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            )
            raise ResultsError(
                f"rows of grid {name!r} have no {column!r} column; "
                f"numeric columns: {numeric}"
            )
        value = row[column]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ResultsError(
                f"column {column!r} is not numeric (got {value!r})"
            )
        key = _series_key(
            row, many_trees=many_trees, many_graphs=many_graphs
        )
        x = float(row.get("n", 0))
        buckets.setdefault(key, {}).setdefault(x, []).append(float(value))
        seeds.add(row.get("seed"))

    series = []
    for key in sorted(buckets):
        xs = sorted(buckets[key])
        ys = [sum(buckets[key][x]) / len(buckets[key][x]) for x in xs]
        series.append(Series(key, xs, ys, unit))
    notes = [f"rebuilt from {len(rows)} stored row(s); metric: {column}"]
    if len(seeds) > 1:
        notes.append(f"each point averages {len(seeds)} seed(s)")
    return ExperimentResult(
        experiment_id=name,
        title=title,
        xlabel="n (nodes)",
        series=series,
        params={"metric": column, "source": "results-store"},
        notes=notes,
    )


def fig9_result(report: Any) -> ExperimentResult:
    """Adapt a :class:`~repro.experiments.fig9.Fig9Report` for the store.

    Fig. 9 is a single lower-bound instance, not a sweep, so its
    canonical record is one x point (the instance diameter ``D``) with
    one series per cost measure — enough to archive, tabulate and
    compare without re-deriving the instance.
    """
    x = [float(report.D)]
    series = [
        Series("arrow cost", x, [float(report.arrow_cost)], "Manhattan"),
        Series("opt upper", x, [float(report.opt_upper)], "Manhattan"),
        Series("opt lower", x, [float(report.opt_lower)], "Manhattan"),
        Series("ratio", x, [float(report.ratio)]),
    ]
    if report.sim_cost is not None:
        series.append(Series("simulated cost", x, [float(report.sim_cost)]))
    return ExperimentResult(
        experiment_id="fig9",
        title="Lower-bound instance costs",
        xlabel="D",
        series=series,
        params={
            "variant": report.variant,
            "k": report.k,
            "requests": report.num_requests,
            "sweep_target": report.sweep_target,
            "comb_weight": report.comb_weight,
        },
        notes=["single-instance record (Fig. 9); see the CLI for the picture"],
    )
