"""Content-addressed results store over sweep JSONL artifacts.

Layout (everything deterministic — no timestamps — so a store can be
checked into a repository as a golden fixture and compared byte for
byte)::

    <root>/
      runs/<spec_hash>/spec.json      # canonical SweepSpec document
      runs/<spec_hash>/rows.jsonl     # ingested rows, grid order
      runs/<spec_hash>/manifest.json  # ingest bookkeeping
      experiments/<experiment_id>.json  # ExperimentResult documents

The store key is :meth:`repro.sweep.spec.SweepSpec.spec_hash` — a
SHA-256 of the grid's canonical identity (axes + seeds + engine/fault
knobs) — so re-ingesting the same grid is a **no-op** (no file is
rewritten; mtimes do not move), and ingesting a *partial* grid (one
shard, an interrupted run) fills in per cell on resume: rows already
present are kept, new cells slot into grid order, and the manifest
tracks completeness against the spec's expected cell count.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import ResultsError
from repro.experiments.records import ExperimentResult
from repro.sweep import persist
from repro.sweep.spec import SweepSpec
from repro.sweep.stats import DEFAULT_COMPRESSION, QuantileSketch

__all__ = ["IngestReport", "ResultsStore"]


@dataclass(frozen=True)
class IngestReport:
    """Outcome of one :meth:`ResultsStore.ingest` call."""

    spec_hash: str
    name: str
    new_rows: int
    total_rows: int
    expected_cells: int
    #: Damaged JSONL lines the lenient source parse dropped (torn tails).
    damaged_skipped: int
    #: True when any store file was (re)written by this ingest.
    updated: bool

    @property
    def complete(self) -> bool:
        """Every cell of the grid is ingested."""
        return self.total_rows == self.expected_cells

    def summary(self) -> str:
        """One human-readable status line."""
        state = "complete" if self.complete else "partial"
        damaged = (
            f", {self.damaged_skipped} damaged line(s) skipped"
            if self.damaged_skipped
            else ""
        )
        return (
            f"{self.name} [{self.spec_hash[:12]}]: {self.new_rows} new "
            f"row(s), {self.total_rows}/{self.expected_cells} cells "
            f"({state}){damaged}"
        )


def _atomic_write(path: str, text: str) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(tmp, path)


def _write_if_changed(path: str, text: str) -> bool:
    """Atomic write that leaves an identical file untouched (idempotence)."""
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as fh:
            if fh.read() == text:
                return False
    _atomic_write(path, text)
    return True


class ResultsStore:
    """A directory of content-addressed sweep runs + experiment documents."""

    def __init__(self, root: str):
        self.root = root

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _runs_dir(self) -> str:
        return os.path.join(self.root, "runs")

    def run_dir(self, spec_hash: str) -> str:
        return os.path.join(self._runs_dir(), spec_hash)

    def rows_path(self, spec_hash: str) -> str:
        return os.path.join(self.run_dir(spec_hash), "rows.jsonl")

    def _experiments_dir(self) -> str:
        return os.path.join(self.root, "experiments")

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def ingest(self, spec: SweepSpec, jsonl_path: str) -> IngestReport:
        """Ingest a sweep JSONL file (merged, shard, or partial) for ``spec``.

        Incremental and idempotent: rows are keyed by ``cell_id`` within
        the spec-hash entry, re-ingesting already-stored cells changes
        nothing (not even an mtime), and cells missing from a partial
        file fill in on a later ingest.  Every source row must belong to
        the grid — a foreign ``cell_id``, a mismatched ``index`` or two
        conflicting versions of one cell raise :class:`ResultsError`
        rather than silently polluting the entry.
        """
        spec_hash = spec.spec_hash()
        cells = {c.cell_id: c.index for c in spec.cells()}
        expected = len(cells)

        stored: dict[int, str] = {}  # index -> canonical line
        rows_path = self.rows_path(spec_hash)
        if os.path.exists(rows_path):
            for row in persist.iter_rows(rows_path):
                stored[row["index"]] = persist.dumps_row(row)

        skipped: list[str] = []
        new_rows = 0
        for row in persist.iter_rows(jsonl_path, skipped=skipped):
            cid = row.get("cell_id")
            if not isinstance(cid, str) or cid not in cells:
                raise ResultsError(
                    f"{jsonl_path}: row with cell_id {cid!r} does not "
                    f"belong to grid {spec.name!r} [{spec_hash[:12]}]; "
                    "is this file from a different spec?"
                )
            index = cells[cid]
            if row.get("index") != index:
                raise ResultsError(
                    f"{jsonl_path}: cell {cid!r} carries index "
                    f"{row.get('index')!r} but the grid places it at "
                    f"{index}; file and spec disagree"
                )
            line = persist.dumps_row(row)
            if index in stored:
                if stored[index] != line:
                    raise ResultsError(
                        f"{jsonl_path}: cell {cid!r} conflicts with the "
                        f"already-stored row under [{spec_hash[:12]}] "
                        "(same grid, different content — engines are "
                        "bit-identical, so this means damaged input)"
                    )
                continue
            stored[index] = line
            new_rows += 1

        updated = False
        if new_rows:
            os.makedirs(self.run_dir(spec_hash), exist_ok=True)
            text = "".join(
                stored[i] + "\n" for i in sorted(stored)
            )
            _atomic_write(rows_path, text)
            updated = True
        if stored or new_rows:
            os.makedirs(self.run_dir(spec_hash), exist_ok=True)
            updated |= _write_if_changed(
                os.path.join(self.run_dir(spec_hash), "spec.json"),
                json.dumps(
                    {"spec_hash": spec_hash, "spec": spec.canonical()},
                    indent=2,
                    sort_keys=True,
                )
                + "\n",
            )
            updated |= _write_if_changed(
                os.path.join(self.run_dir(spec_hash), "manifest.json"),
                json.dumps(
                    {
                        "spec_hash": spec_hash,
                        "name": spec.name,
                        "cells": expected,
                        "ingested": len(stored),
                        "complete": len(stored) == expected,
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n",
            )
        return IngestReport(
            spec_hash=spec_hash,
            name=spec.name,
            new_rows=new_rows,
            total_rows=len(stored),
            expected_cells=expected,
            damaged_skipped=len(skipped),
            updated=updated,
        )

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def list_runs(self) -> list[dict[str, Any]]:
        """Manifests of every stored run, sorted by (name, hash)."""
        runs_dir = self._runs_dir()
        out: list[dict[str, Any]] = []
        if not os.path.isdir(runs_dir):
            return out
        for entry in sorted(os.listdir(runs_dir)):
            manifest = os.path.join(runs_dir, entry, "manifest.json")
            if os.path.exists(manifest):
                with open(manifest, "r", encoding="utf-8") as fh:
                    out.append(json.load(fh))
        out.sort(key=lambda m: (m.get("name", ""), m.get("spec_hash", "")))
        return out

    def resolve(self, key: str) -> str:
        """Resolve a run key — full hash, unique hash prefix, or grid name."""
        runs = self.list_runs()
        matches = [
            m["spec_hash"]
            for m in runs
            if m["spec_hash"].startswith(key) or m.get("name") == key
        ]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            known = ", ".join(
                f"{m.get('name')}[{m['spec_hash'][:12]}]" for m in runs
            )
            raise ResultsError(
                f"no stored run matches {key!r} in {self.root} "
                f"(have: {known or 'none'})"
            )
        raise ResultsError(
            f"{key!r} is ambiguous in {self.root}: matches "
            f"{[m[:12] for m in matches]}; use a longer hash prefix"
        )

    def manifest(self, key: str) -> dict[str, Any]:
        """Manifest of one stored run (key resolved via :meth:`resolve`)."""
        spec_hash = self.resolve(key)
        with open(
            os.path.join(self.run_dir(spec_hash), "manifest.json"),
            "r",
            encoding="utf-8",
        ) as fh:
            return json.load(fh)

    def rows(self, key: str) -> Iterator[dict[str, Any]]:
        """Stream the stored rows of one run in grid order."""
        spec_hash = self.resolve(key)
        path = self.rows_path(spec_hash)
        if not os.path.exists(path):
            raise ResultsError(f"{path}: stored run has no rows yet")
        yield from persist.iter_rows(path)

    # ------------------------------------------------------------------
    # grid-level aggregation
    # ------------------------------------------------------------------
    def grid_sketch(
        self,
        key: str,
        *,
        prefix: str = "latency_",
        compression: int = DEFAULT_COMPRESSION,
    ) -> QuantileSketch:
        """Merge every stored row's histogram into one quantile sketch.

        One streaming pass: each row's persisted ``{prefix}hist`` /
        ``{prefix}max`` columns rebuild a per-cell sketch
        (:meth:`QuantileSketch.from_histogram`), merged as they stream,
        so grid-level percentiles over millions of requests never hold
        more than ``O(compression)`` centroids.  Rows without histogram
        columns (e.g. directory cells) are skipped.
        """
        merged = QuantileSketch(compression)
        for row in self.rows(key):
            hist = row.get(f"{prefix}hist")
            hi = row.get(f"{prefix}max")
            if isinstance(hist, list) and isinstance(hi, (int, float)):
                merged = merged.merge(
                    QuantileSketch.from_histogram(hist, float(hi))
                )
        return merged

    # ------------------------------------------------------------------
    # experiment documents (non-grid figures: fig9, competitive, ...)
    # ------------------------------------------------------------------
    def put_experiment(self, result: ExperimentResult) -> str:
        """Archive an experiment result document; returns its path.

        Idempotent like row ingest: an unchanged document is not
        rewritten.  The document is keyed by ``experiment_id`` — one
        canonical result per paper figure.
        """
        os.makedirs(self._experiments_dir(), exist_ok=True)
        path = os.path.join(
            self._experiments_dir(), f"{result.experiment_id}.json"
        )
        _write_if_changed(path, result.to_json() + "\n")
        return path

    def get_experiment(self, experiment_id: str) -> ExperimentResult:
        """Load a stored experiment document."""
        path = os.path.join(
            self._experiments_dir(), f"{experiment_id}.json"
        )
        if not os.path.exists(path):
            raise ResultsError(
                f"no stored experiment {experiment_id!r} in {self.root} "
                f"(have: {self.list_experiments() or 'none'})"
            )
        with open(path, "r", encoding="utf-8") as fh:
            return ExperimentResult.from_json(fh.read())

    def list_experiments(self) -> list[str]:
        """Ids of every archived experiment document."""
        exp_dir = self._experiments_dir()
        if not os.path.isdir(exp_dir):
            return []
        return sorted(
            os.path.splitext(f)[0]
            for f in os.listdir(exp_dir)
            if f.endswith(".json")
        )
