"""Content-addressed results store + analysis pipeline over sweep JSONL.

Grids produce large merged JSONL artifacts (the sweep executor, shard
orchestrator and streaming merge); this package makes them *legible*
without re-running a single simulation:

* :mod:`repro.results.store` — a content-addressed store keyed by the
  canonical :meth:`~repro.sweep.spec.SweepSpec.spec_hash`, with
  incremental, idempotent ingest of (possibly partial) sweep JSONL and
  archived :class:`~repro.experiments.records.ExperimentResult`
  documents for the non-grid experiments (fig9, competitive, lower
  bound);
* :mod:`repro.results.figures` — canonical tables/plots per paper
  figure, rebuilt from stored rows;
* :mod:`repro.results.compare` — cross-run comparison (branch vs
  committed baseline) with per-cell percent deltas, plus the benchmark
  speedup gate that ``benchmarks/check_regression.py`` delegates to;

all surfaced through the ``repro-arrow results`` CLI subcommand group
(``ingest`` / ``list`` / ``table`` / ``plot`` / ``compare``).

Grid-level latency percentiles aggregate in one streaming pass: each
stored row's histogram columns rebuild a mergeable
:class:`~repro.sweep.stats.QuantileSketch`, and the merged sketch
answers percentile queries with a documented rank tolerance.
"""

from repro.results.compare import (
    RowComparison,
    compare_bench,
    compare_rows,
)
from repro.results.figures import FIGURE_METRICS, fig9_result, figure_from_rows
from repro.results.store import IngestReport, ResultsStore

__all__ = [
    "FIGURE_METRICS",
    "IngestReport",
    "ResultsStore",
    "RowComparison",
    "compare_bench",
    "compare_rows",
    "fig9_result",
    "figure_from_rows",
]
