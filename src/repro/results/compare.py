"""Cross-run comparison: stored grids and benchmark trajectories.

Two modes, one subcommand (``repro-arrow results compare``):

* **Row mode** (:func:`compare_rows`) diffs two stored runs — typically
  this branch's fresh grid against a committed baseline store — cell by
  cell, reporting percent deltas per numeric column.  Identity columns
  (``cell_id``, ``index``, seeds...) are compared for equality; the
  ``engine`` label is ignored by default (the engines are
  bit-identical).  With a tolerance, any delta beyond it fails the
  comparison — the grid-level analogue of the benchmark gate.
* **Bench mode** (:func:`compare_bench`) is the speedup-trajectory gate
  that ``benchmarks/check_regression.py`` historically implemented; the
  script now delegates here, so the CLI, the CI job and the results
  pipeline share one verdict.

Both modes serialise a canonical ``BENCH_results.json`` document
(:meth:`RowComparison.to_doc` / :func:`bench_doc`): sorted keys, no
timestamps, so committed trajectories diff cleanly run over run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "RowComparison",
    "bench_doc",
    "compare_bench",
    "compare_rows",
]

#: How many offending per-cell deltas a comparison names before eliding.
_DELTA_CAP = 50


# ----------------------------------------------------------------------
# row mode
# ----------------------------------------------------------------------
@dataclass
class RowComparison:
    """Outcome of a per-cell diff between two runs of one grid shape."""

    cells_a: int
    cells_b: int
    #: Cells present in both runs (the compared population).
    compared: int
    #: Structural problems: missing cells, non-numeric disagreements.
    problems: list[str] = field(default_factory=list)
    #: column -> {"cells", "changed", "mean_pct", "max_abs_pct"}.
    columns: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Largest per-cell deltas: (abs_pct, cell_id, column, a, b, pct).
    top_deltas: list[tuple[float, str, str, float, float, float]] = field(
        default_factory=list
    )
    #: Deltas beyond the tolerance (empty when none given or none exceed).
    exceeding: list[str] = field(default_factory=list)
    max_delta_pct: float | None = None

    @property
    def ok(self) -> bool:
        return not self.problems and not self.exceeding

    def to_doc(self) -> dict[str, Any]:
        """Canonical JSON-able trajectory document (BENCH_results.json)."""
        return {
            "mode": "rows",
            "cells_a": self.cells_a,
            "cells_b": self.cells_b,
            "compared": self.compared,
            "columns": {
                k: dict(sorted(v.items())) for k, v in sorted(self.columns.items())
            },
            "top_deltas": [
                {
                    "cell_id": cell,
                    "column": col,
                    "a": a,
                    "b": b,
                    "pct": pct,
                }
                for _, cell, col, a, b, pct in self.top_deltas
            ],
            "problems": list(self.problems),
            "exceeding": list(self.exceeding),
            "max_delta_pct": self.max_delta_pct,
            "ok": self.ok,
        }

    def report_lines(self) -> list[str]:
        """Human-readable summary, one line per column + notable deltas."""
        lines = [
            f"compared {self.compared} cell(s) "
            f"({self.cells_a} in A, {self.cells_b} in B)"
        ]
        for col, stats in sorted(self.columns.items()):
            if stats["changed"]:
                lines.append(
                    f"  {col}: {int(stats['changed'])}/{int(stats['cells'])} "
                    f"cell(s) changed, mean {stats['mean_pct']:+.2f}%, "
                    f"max |{stats['max_abs_pct']:.2f}|%"
                )
            else:
                lines.append(
                    f"  {col}: identical across {int(stats['cells'])} cell(s)"
                )
        for _, cell, col, a, b, pct in self.top_deltas[:10]:
            lines.append(f"  {cell}: {col} {a:g} -> {b:g} ({pct:+.2f}%)")
        return lines


def _numeric_items(row: dict[str, Any], ignore: tuple[str, ...]):
    for k, v in row.items():
        if k in ignore:
            continue
        if isinstance(v, (int, float)) and not isinstance(v, bool):
            yield k, float(v)


def compare_rows(
    rows_a: Iterable[dict[str, Any]],
    rows_b: Iterable[dict[str, Any]],
    *,
    ignore: tuple[str, ...] = ("engine",),
    max_delta_pct: float | None = None,
) -> RowComparison:
    """Diff two row sets cell by cell; returns a :class:`RowComparison`.

    Rows pair up by ``cell_id``; a cell present on only one side is a
    problem (the runs cover different grids or one is partial).  Every
    shared numeric column (minus ``ignore``) gets a percent delta
    ``(b - a) / a * 100`` — a zero baseline with a non-zero fresh value
    reports as a problem rather than an infinite percentage.  Non-numeric
    columns (cell ids, fault labels, ``exclusion_ok``...) must be equal.
    """
    by_id_a = {r["cell_id"]: r for r in rows_a if "cell_id" in r}
    by_id_b = {r["cell_id"]: r for r in rows_b if "cell_id" in r}
    cmp = RowComparison(
        cells_a=len(by_id_a),
        cells_b=len(by_id_b),
        compared=0,
        max_delta_pct=max_delta_pct,
    )
    only_a = sorted(set(by_id_a) - set(by_id_b))
    only_b = sorted(set(by_id_b) - set(by_id_a))
    if only_a:
        cmp.problems.append(
            f"{len(only_a)} cell(s) only in A, e.g. {only_a[:3]}"
        )
    if only_b:
        cmp.problems.append(
            f"{len(only_b)} cell(s) only in B, e.g. {only_b[:3]}"
        )

    sums: dict[str, list[float]] = {}
    deltas: list[tuple[float, str, str, float, float, float]] = []
    for cid in sorted(set(by_id_a) & set(by_id_b)):
        ra, rb = by_id_a[cid], by_id_b[cid]
        cmp.compared += 1
        na = dict(_numeric_items(ra, ignore))
        nb = dict(_numeric_items(rb, ignore))
        for k in sorted(na.keys() | nb.keys()):
            if k not in na or k not in nb:
                cmp.problems.append(
                    f"{cid}: column {k!r} present on one side only"
                )
                continue
            a, b = na[k], nb[k]
            if a == b:
                pct = 0.0
            elif a == 0.0:
                cmp.problems.append(
                    f"{cid}: {k} changed from 0 to {b:g} "
                    "(percent delta undefined)"
                )
                continue
            else:
                pct = (b - a) / a * 100.0
            sums.setdefault(k, []).append(pct)
            if pct != 0.0:
                deltas.append((abs(pct), cid, k, a, b, pct))
        for k in sorted(
            (ra.keys() | rb.keys())
            - set(na)
            - set(nb)
            - set(ignore)
        ):
            if ra.get(k) != rb.get(k):
                cmp.problems.append(
                    f"{cid}: non-numeric column {k!r} differs: "
                    f"{ra.get(k)!r} vs {rb.get(k)!r}"
                )

    for k, pcts in sums.items():
        changed = [p for p in pcts if p != 0.0]
        cmp.columns[k] = {
            "cells": float(len(pcts)),
            "changed": float(len(changed)),
            "mean_pct": sum(pcts) / len(pcts),
            "max_abs_pct": max((abs(p) for p in pcts), default=0.0),
        }
    deltas.sort(key=lambda d: (-d[0], d[1], d[2]))
    cmp.top_deltas = deltas[:_DELTA_CAP]
    if max_delta_pct is not None:
        for absp, cid, k, a, b, pct in deltas:
            if absp > max_delta_pct:
                cmp.exceeding.append(
                    f"{cid}: {k} {a:g} -> {b:g} ({pct:+.2f}% beyond "
                    f"±{max_delta_pct}%)"
                )
    return cmp


# ----------------------------------------------------------------------
# bench mode (the benchmarks/check_regression.py gate)
# ----------------------------------------------------------------------
def compare_bench(
    baseline: dict, fresh: dict, tolerance: float
) -> tuple[list[str], list[str]]:
    """Compare per-scenario speedups; return (report_lines, regressions).

    The one-sided benchmark gate: any scenario whose fresh speedup fell
    below ``baseline * (1 - tolerance)`` — or that vanished from the
    fresh results — is a regression; improvements are reported but never
    fail.  Scenarios whose baseline is below 1.0 carry a "no worse"
    contract asserted in-suite, so they are reported, not gated (they
    are the most machine-sensitive ratios).
    """
    report: list[str] = []
    regressions: list[str] = []
    for name in sorted(baseline):
        base = baseline[name].get("speedup")
        if name not in fresh:
            regressions.append(
                f"{name}: in baseline but missing from fresh results"
            )
            continue
        new = fresh[name].get("speedup")
        if not isinstance(base, (int, float)) or not isinstance(new, (int, float)):
            regressions.append(f"{name}: speedup missing or non-numeric")
            continue
        if base < 1.0:
            report.append(
                f"{name}: speedup {base:.3f} -> {new:.3f} "
                "(baseline < 1.0: no-worse contract, reported not gated)"
            )
            continue
        floor = base * (1.0 - tolerance)
        delta = (new - base) / base * 100.0
        line = (
            f"{name}: speedup {base:.3f} -> {new:.3f} "
            f"({delta:+.1f}%, floor {floor:.3f})"
        )
        if new < floor:
            regressions.append(line + "  REGRESSION")
        else:
            report.append(line + "  ok")
    for name in sorted(set(fresh) - set(baseline)):
        report.append(f"{name}: new scenario (no baseline), not gated")
    return report, regressions


def bench_doc(
    baseline: dict,
    fresh: dict,
    tolerance: float,
    report: list[str],
    regressions: list[str],
) -> dict[str, Any]:
    """Canonical trajectory document for a bench-mode comparison."""
    scenarios = {}
    for name in sorted(set(baseline) | set(fresh)):
        scenarios[name] = {
            "baseline": baseline.get(name, {}).get("speedup"),
            "fresh": fresh.get(name, {}).get("speedup"),
        }
    return {
        "mode": "bench",
        "tolerance": tolerance,
        "scenarios": scenarios,
        "report": list(report),
        "regressions": list(regressions),
        "ok": not regressions,
    }
