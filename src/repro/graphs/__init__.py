"""Graph substrate: topologies, shortest paths, validation."""

from repro.graphs.generators import (
    balanced_binary_tree_graph,
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    gnp_connected_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    random_geometric_graph,
    star_graph,
    torus_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import (
    all_pairs_distances,
    bfs_distances,
    connected_components,
    dijkstra,
    eccentricity,
    graph_diameter,
    is_connected,
    shortest_path,
    single_source_distances,
)
from repro.graphs.validation import (
    is_tree,
    require_connected,
    require_spanning_subgraph,
    require_tree,
)

__all__ = [
    "Graph",
    "balanced_binary_tree_graph",
    "caterpillar_graph",
    "complete_graph",
    "cycle_graph",
    "gnp_connected_graph",
    "grid_graph",
    "hypercube_graph",
    "lollipop_graph",
    "path_graph",
    "random_geometric_graph",
    "star_graph",
    "torus_graph",
    "all_pairs_distances",
    "bfs_distances",
    "connected_components",
    "dijkstra",
    "eccentricity",
    "graph_diameter",
    "is_connected",
    "shortest_path",
    "single_source_distances",
    "is_tree",
    "require_connected",
    "require_spanning_subgraph",
    "require_tree",
]
