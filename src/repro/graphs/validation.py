"""Structural validation helpers for graphs and candidate trees."""

from __future__ import annotations

from repro.errors import GraphError, TreeError
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import is_connected

__all__ = ["require_connected", "is_tree", "require_tree", "require_spanning_subgraph"]


def require_connected(graph: Graph) -> None:
    """Raise :class:`GraphError` unless the graph is connected."""
    if not is_connected(graph):
        raise GraphError("graph is not connected")


def is_tree(graph: Graph) -> bool:
    """True iff the graph is connected and has exactly ``n - 1`` edges."""
    return graph.num_edges == graph.num_nodes - 1 and is_connected(graph)


def require_tree(graph: Graph) -> None:
    """Raise :class:`TreeError` unless the graph is a tree."""
    if graph.num_edges != graph.num_nodes - 1:
        raise TreeError(
            f"tree on {graph.num_nodes} nodes must have {graph.num_nodes - 1} "
            f"edges, found {graph.num_edges}"
        )
    if not is_connected(graph):
        raise TreeError("candidate tree is disconnected")


def require_spanning_subgraph(graph: Graph, tree_edges: list[tuple[int, int]]) -> None:
    """Check every tree edge exists in ``graph`` (spanning-tree legality).

    The arrow protocol requires the pre-selected tree to be a spanning tree
    *of the communication graph*: pointers may only reference tree
    neighbours, and tree neighbours must share a physical link.
    """
    for u, v in tree_edges:
        if not graph.has_edge(u, v):
            raise TreeError(f"tree edge ({u}, {v}) is not an edge of the graph")
