"""Topology generators.

Provides the network shapes used throughout the paper and its experiments:

* the **complete graph** with uniform weights — the SP2 testbed of Section 5
  ("the message latency between any pair of nodes ... was roughly the same,
  we could treat the network as a complete graph");
* the **path** — the lower-bound constructions of Section 4 live on a path
  realising the tree diameter;
* assorted standard families (ring, star, grid, torus, hypercube, random
  geometric, Erdős–Rényi, caterpillar, lollipop) used by the integration
  and property tests to exercise the protocol on diverse shapes.

All generators take node counts and an optional seed and return
:class:`repro.graphs.Graph`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import is_connected
from repro.sim.rng import spawn_rng

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "balanced_binary_tree_graph",
    "grid_graph",
    "torus_graph",
    "hypercube_graph",
    "random_geometric_graph",
    "gnp_connected_graph",
    "caterpillar_graph",
    "lollipop_graph",
]


def path_graph(n: int, weight: float = 1.0) -> Graph:
    """Path ``0 - 1 - ... - n-1``."""
    g = Graph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1, weight)
    return g


def cycle_graph(n: int, weight: float = 1.0) -> Graph:
    """Cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise GraphError(f"cycle needs n >= 3, got {n}")
    g = path_graph(n, weight)
    g.add_edge(n - 1, 0, weight)
    return g


def star_graph(n: int, weight: float = 1.0) -> Graph:
    """Star with centre 0 and ``n - 1`` leaves."""
    g = Graph(n)
    for i in range(1, n):
        g.add_edge(0, i, weight)
    return g


def complete_graph(n: int, weight: float = 1.0) -> Graph:
    """Complete graph ``K_n`` with uniform edge weight (SP2 model, §5)."""
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v, weight)
    return g


def balanced_binary_tree_graph(n: int, weight: float = 1.0) -> Graph:
    """Complete binary tree on ``n`` nodes in heap layout (depth ⌈log2 n⌉).

    Node ``i`` has children ``2i+1`` and ``2i+2``.  This is the overlay the
    paper's experiments use as the arrow spanning tree ("a perfectly
    balanced binary tree (log2 n depth for n nodes)").
    """
    g = Graph(n)
    for i in range(1, n):
        g.add_edge(i, (i - 1) // 2, weight)
    return g


def grid_graph(rows: int, cols: int, weight: float = 1.0) -> Graph:
    """``rows x cols`` 2-D mesh; node ``(r, c)`` is ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise GraphError("grid needs positive dimensions")
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                g.add_edge(u, u + 1, weight)
            if r + 1 < rows:
                g.add_edge(u, u + cols, weight)
    return g


def torus_graph(rows: int, cols: int, weight: float = 1.0) -> Graph:
    """2-D torus (mesh with wraparound links); needs both dims >= 3."""
    if rows < 3 or cols < 3:
        raise GraphError("torus needs rows, cols >= 3")
    g = grid_graph(rows, cols, weight)
    for r in range(rows):
        g.add_edge(r * cols, r * cols + cols - 1, weight)
    for c in range(cols):
        g.add_edge(c, (rows - 1) * cols + c, weight)
    return g


def hypercube_graph(dim: int, weight: float = 1.0) -> Graph:
    """``dim``-dimensional hypercube on ``2**dim`` nodes."""
    if dim < 1:
        raise GraphError("hypercube needs dim >= 1")
    n = 1 << dim
    g = Graph(n)
    for u in range(n):
        for b in range(dim):
            v = u ^ (1 << b)
            if v > u:
                g.add_edge(u, v, weight)
    return g


def random_geometric_graph(
    n: int, radius: float, seed: int = 0, *, euclidean_weights: bool = False
) -> Graph:
    """Random geometric graph on the unit square.

    Nodes are uniform points; an edge joins pairs within ``radius``.  If the
    sample is disconnected, the nearest pair across components is linked so
    the result is always usable by the protocol.  With
    ``euclidean_weights=True`` edges carry their Euclidean length, giving a
    "constant dimensional Euclidean graph" in the sense of §1.1.
    """
    rng = spawn_rng(seed, f"geometric-{n}-{radius}")
    pts = rng.random((n, 2))
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            d = math.dist(pts[u], pts[v])
            if d <= radius:
                g.add_edge(u, v, d if euclidean_weights else 1.0)
    _stitch_components(g, pts, euclidean_weights)
    return g


def _stitch_components(g: Graph, pts: np.ndarray, euclidean_weights: bool) -> None:
    """Connect a geometric graph's components via nearest cross-pairs."""
    from repro.graphs.shortest_paths import connected_components

    comps = connected_components(g)
    while len(comps) > 1:
        a, b = comps[0], comps[1]
        best = (math.inf, -1, -1)
        for u in a:
            for v in b:
                d = math.dist(pts[u], pts[v])
                if d < best[0]:
                    best = (d, u, v)
        _, u, v = best
        g.add_edge(u, v, best[0] if euclidean_weights else 1.0)
        comps = connected_components(g)


def gnp_connected_graph(n: int, p: float, seed: int = 0) -> Graph:
    """Erdős–Rényi ``G(n, p)`` conditioned on connectivity.

    Draws samples until connected (probability of failure shrinks fast for
    ``p`` above the connectivity threshold); gives up after 200 attempts.
    """
    if not 0.0 < p <= 1.0:
        raise GraphError(f"p must be in (0, 1], got {p}")
    rng = spawn_rng(seed, f"gnp-{n}-{p}")
    for _ in range(200):
        g = Graph(n)
        mask = rng.random((n, n)) < p
        for u in range(n):
            for v in range(u + 1, n):
                if mask[u, v]:
                    g.add_edge(u, v)
        if is_connected(g):
            return g
    raise GraphError(f"could not sample a connected G({n}, {p}) in 200 tries")


def caterpillar_graph(spine: int, legs_per_node: int, weight: float = 1.0) -> Graph:
    """Path of ``spine`` nodes, each with ``legs_per_node`` pendant leaves."""
    n = spine * (1 + legs_per_node)
    g = Graph(n)
    for i in range(spine - 1):
        g.add_edge(i, i + 1, weight)
    nxt = spine
    for i in range(spine):
        for _ in range(legs_per_node):
            g.add_edge(i, nxt, weight)
            nxt += 1
    return g


def lollipop_graph(clique: int, tail: int, weight: float = 1.0) -> Graph:
    """Clique ``K_clique`` with a path of ``tail`` nodes hanging off node 0."""
    n = clique + tail
    g = Graph(n)
    for u in range(clique):
        for v in range(u + 1, clique):
            g.add_edge(u, v, weight)
    prev = 0
    for i in range(clique, n):
        g.add_edge(prev, i, weight)
        prev = i
    return g
