"""Shortest-path algorithms over :class:`repro.graphs.Graph`.

Provides BFS (unit weights), Dijkstra (general positive weights), and
all-pairs distance matrices.  The analysis layer uses ``d_G`` distances to
evaluate the optimal algorithm's cost measure ``c_Opt`` (eq. 3 of the paper)
and to compute the stretch of spanning trees (Definition 3.1).
"""

from __future__ import annotations

import heapq
import math
from collections import deque

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph

__all__ = [
    "bfs_distances",
    "dijkstra",
    "single_source_distances",
    "all_pairs_distances",
    "shortest_path",
    "is_connected",
    "connected_components",
    "eccentricity",
    "graph_diameter",
]


def bfs_distances(graph: Graph, source: int) -> list[float]:
    """Hop distances from ``source`` (ignores weights); ``inf`` if unreachable."""
    dist = [math.inf] * graph.num_nodes
    dist[source] = 0.0
    q: deque[int] = deque([source])
    while q:
        u = q.popleft()
        du = dist[u]
        for v in graph.neighbors(u):
            if dist[v] == math.inf:
                dist[v] = du + 1.0
                q.append(v)
    return dist


def dijkstra(graph: Graph, source: int) -> tuple[list[float], list[int]]:
    """Weighted distances and predecessor array from ``source``.

    Returns ``(dist, pred)`` where ``pred[v]`` is the previous node on one
    shortest path from the source (``-1`` for the source and unreachable
    nodes).
    """
    n = graph.num_nodes
    dist = [math.inf] * n
    pred = [-1] * n
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in graph.neighbor_weights(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, pred


def single_source_distances(graph: Graph, source: int) -> list[float]:
    """Distances from ``source``; BFS when unit-weighted, Dijkstra otherwise."""
    if graph.is_unit_weighted():
        return bfs_distances(graph, source)
    return dijkstra(graph, source)[0]


def all_pairs_distances(graph: Graph) -> np.ndarray:
    """Dense ``n x n`` distance matrix (float64; ``inf`` if disconnected).

    O(n·(m + n log n)); fine for the experiment scales in this repository
    (n up to a few thousand).
    """
    n = graph.num_nodes
    out = np.empty((n, n), dtype=np.float64)
    unit = graph.is_unit_weighted()
    for s in range(n):
        row = bfs_distances(graph, s) if unit else dijkstra(graph, s)[0]
        out[s, :] = row
    return out


def shortest_path(graph: Graph, source: int, target: int) -> list[int]:
    """One shortest path from ``source`` to ``target`` as a node list.

    Raises :class:`GraphError` when the target is unreachable.
    """
    dist, pred = dijkstra(graph, source)
    if math.isinf(dist[target]):
        raise GraphError(f"node {target} unreachable from {source}")
    path = [target]
    while path[-1] != source:
        path.append(pred[path[-1]])
    path.reverse()
    return path


def is_connected(graph: Graph) -> bool:
    """True iff the graph is connected."""
    return not math.isinf(max(bfs_distances(graph, 0)))


def connected_components(graph: Graph) -> list[list[int]]:
    """Connected components as sorted node lists."""
    seen = [False] * graph.num_nodes
    comps: list[list[int]] = []
    for s in graph.nodes():
        if seen[s]:
            continue
        comp = []
        q: deque[int] = deque([s])
        seen[s] = True
        while q:
            u = q.popleft()
            comp.append(u)
            for v in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    q.append(v)
        comps.append(sorted(comp))
    return comps


def eccentricity(graph: Graph, u: int) -> float:
    """Maximum distance from ``u`` to any node."""
    return max(single_source_distances(graph, u))


def graph_diameter(graph: Graph) -> float:
    """Maximum pairwise distance (``inf`` for disconnected graphs)."""
    best = 0.0
    for u in graph.nodes():
        ecc = eccentricity(graph, u)
        if ecc > best:
            best = ecc
    return best
