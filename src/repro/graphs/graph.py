"""Undirected weighted graph with adjacency-list storage.

This is the network model of the paper: ``G = (V, E)`` where ``V`` is the
set of processors and ``E`` the point-to-point FIFO communication links.
Nodes are integers ``0..n-1``; edges carry positive weights (communication
latencies).  The class is intentionally minimal — just what the protocol,
spanning-tree and analysis layers need — and is implemented from scratch
(``networkx`` is used only as an independent oracle inside the test-suite).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import GraphError

__all__ = ["Graph"]


class Graph:
    """Simple undirected graph with positive edge weights."""

    __slots__ = ("_n", "_adj", "_num_edges")

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise GraphError(f"graph needs at least one node, got {num_nodes}")
        self._n = int(num_nodes)
        # _adj[u] maps neighbour -> weight
        self._adj: list[dict[int, float]] = [dict() for _ in range(self._n)]
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add the undirected edge ``{u, v}`` with the given weight.

        Re-adding an existing edge overwrites its weight.  Self-loops are
        rejected: the paper's links connect distinct processors.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphError(f"self-loop at node {u} not allowed")
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight}")
        if v not in self._adj[u]:
            self._num_edges += 1
        self._adj[u][v] = float(weight)
        self._adj[v][u] = float(weight)

    @classmethod
    def from_edges(
        cls, num_nodes: int, edges: Iterable[tuple[int, int] | tuple[int, int, float]]
    ) -> "Graph":
        """Build a graph from ``(u, v)`` or ``(u, v, weight)`` tuples."""
        g = cls(num_nodes)
        for e in edges:
            if len(e) == 2:
                g.add_edge(e[0], e[1])
            else:
                g.add_edge(e[0], e[1], e[2])
        return g

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n`` (nodes are ``0..n-1``)."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    def nodes(self) -> range:
        """Iterate over node ids."""
        return range(self._n)

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the undirected edge ``{u, v}`` exists."""
        self._check_node(u)
        self._check_node(v)
        return v in self._adj[u]

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}``; raises if absent."""
        self._check_node(u)
        self._check_node(v)
        try:
            return self._adj[u][v]
        except KeyError:
            raise GraphError(f"no edge between {u} and {v}") from None

    def neighbors(self, u: int) -> Iterator[int]:
        """Iterate over the neighbours of ``u`` (insertion order)."""
        self._check_node(u)
        return iter(self._adj[u])

    def neighbor_weights(self, u: int) -> Iterator[tuple[int, float]]:
        """Iterate over ``(neighbour, weight)`` pairs of ``u``."""
        self._check_node(u)
        return iter(self._adj[u].items())

    def degree(self, u: int) -> int:
        """Number of neighbours of ``u``."""
        self._check_node(u)
        return len(self._adj[u])

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over undirected edges once each, as ``(u, v, w), u < v``."""
        for u in range(self._n):
            for v, w in self._adj[u].items():
                if u < v:
                    yield (u, v, w)

    def is_unit_weighted(self) -> bool:
        """True iff every edge has weight exactly 1 (the synchronous model)."""
        return all(w == 1.0 for _, _, w in self.edges())

    def copy(self) -> "Graph":
        """Deep copy of the graph."""
        g = Graph(self._n)
        for u, v, w in self.edges():
            g.add_edge(u, v, w)
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self._n}, m={self._num_edges})"

    # ------------------------------------------------------------------
    # internal
    # ------------------------------------------------------------------
    def _check_node(self, u: int) -> None:
        if not 0 <= u < self._n:
            raise GraphError(f"node {u} out of range [0, {self._n})")
