"""The comb-shaped Manhattan MST bound for the Theorem 4.1 instance.

The proof bounds the optimal offline cost via an explicit "comb" spanning
tree of the requests under the Manhattan metric: a horizontal chain
connecting all requests at time 0, plus one vertical chain per node
linking that node's requests across time.  Its Manhattan weight is

    C_M(comb) <= D + Σ_t (t * #requests-last-issued-at-time-t)
              <  D + log^{k+1} D / (log D - 1)^2  =  O(D)  for the
                 paper's choice of k.

This module computes the exact comb weight for a concrete instance and
also exposes an explicit *comb ordering* (sweep time-0 row, then each
column bottom-up) whose ``c_Opt`` path cost upper-bounds the true optimal
cost — the quantity the lower-bound experiments divide by.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.requests import RequestSchedule

__all__ = ["comb_mst_weight", "comb_order", "comb_cost_bound_formula"]


def comb_mst_weight(schedule: RequestSchedule, root_pos: int = 0) -> float:
    """Manhattan weight of the comb spanning structure of the requests.

    Horizontal chain: consecutive distinct node positions (plus the root
    position) at their earliest requests — costs the position span.
    Vertical chains: per node, the span of its request times.

    This is an upper bound on the Manhattan MST weight (the comb is one
    spanning tree); the proof only needs its ``O(D)`` growth.
    """
    if len(schedule) == 0:
        return 0.0
    by_node: dict[int, list[float]] = defaultdict(list)
    for r in schedule:
        by_node[r.node].append(r.time)
    positions = sorted(set(by_node) | {root_pos})
    horizontal = float(positions[-1] - positions[0])
    vertical = sum(max(ts) - min(ts) for ts in by_node.values())
    return horizontal + float(vertical)


def comb_order(schedule: RequestSchedule) -> list[int]:
    """An explicit queuing order tracing the comb: by node, then by time.

    Visits nodes left to right; within a node, requests in time order.
    Its ``c_Opt`` path cost is ``O(D + Σ vertical extents)`` on the
    Theorem 4.1 instances — an achievable offline cost used as the
    denominator's upper bound.
    """
    return [
        r.rid
        for r in sorted(schedule, key=lambda r: (r.node, r.time, r.rid))
    ]


def comb_cost_bound_formula(D: int, k: int) -> float:
    """The proof's closed-form bound ``D + log^{k+1} D / (log D - 1)^2``."""
    import math

    logd = math.log2(D)
    if logd <= 1.0:
        return float(D + k)
    return D + logd ** (k + 1) / (logd - 1.0) ** 2
