"""Section 4 lower-bound constructions."""

from repro.lowerbound.comb import comb_cost_bound_formula, comb_mst_weight, comb_order
from repro.lowerbound.construction import (
    Theorem41Instance,
    default_k,
    theorem41_instance,
    theorem41_requests,
)
from repro.lowerbound.layered import (
    LayeredInstance,
    layer_sweep_order,
    layered_instance,
    layered_requests,
)
from repro.lowerbound.stretch_graph import Theorem42Instance, theorem42_instance

__all__ = [
    "comb_cost_bound_formula",
    "comb_mst_weight",
    "comb_order",
    "Theorem41Instance",
    "default_k",
    "theorem41_instance",
    "theorem41_requests",
    "LayeredInstance",
    "layer_sweep_order",
    "layered_instance",
    "layered_requests",
    "Theorem42Instance",
    "theorem42_instance",
]
