"""The Theorem 4.2 construction: lower bounds at a prescribed stretch.

For any stretch ``s`` and tree diameter ``D`` (with ``D/s`` a power of
two), build the graph ``G`` as the path ``v_0..v_D`` plus shortcut edges
``(v_{(i-1)s}, v_{is})`` of weight ``s`` for ``i = 1..D/s``; the path is a
spanning tree of ``G`` with stretch exactly ``s`` (each shortcut of weight
``s``... wait — shortcuts have weight 1 in hops?  The paper adds plain
edges, making ``d_G(v_{(i-1)s}, v_{is}) = 1`` while the tree needs ``s``
hops, so the stretch is ``s``).  The Theorem 4.1 request set for a path of
length ``D/s`` is placed on the shortcut endpoints ``v_0, v_s, v_2s, ...``;
arrow pays ``Θ(D log(D/s)/log log(D/s))`` while the optimal algorithm uses
the shortcuts and pays ``O(D/s)``... precisely, ``O(D)`` in tree-distance
units — either way a ratio of ``Ω(s · log(D/s)/log log(D/s))``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.requests import RequestSchedule
from repro.errors import ScheduleError
from repro.graphs.generators import path_graph
from repro.graphs.graph import Graph
from repro.lowerbound.construction import default_k, theorem41_requests
from repro.spanning.tree import SpanningTree

__all__ = ["Theorem42Instance", "theorem42_instance"]


@dataclass(frozen=True, slots=True)
class Theorem42Instance:
    """A stretch-``s`` lower-bound instance."""

    graph: Graph
    tree: SpanningTree
    schedule: RequestSchedule
    D: int
    s: int
    k: int

    @property
    def predicted_arrow_cost(self) -> float:
        """Arrow pays ``k`` sweeps of the full path: ``Θ(k D)``."""
        return float(self.k * self.D)


def theorem42_instance(D_over_s: int, s: int, k: int | None = None) -> Theorem42Instance:
    """Build the Theorem 4.2 instance with tree diameter ``D = s * D_over_s``.

    ``D_over_s`` must be a power of two; ``s >= 1``.  The tree is the full
    path rooted at ``v_0``; the graph adds one unit-weight shortcut per
    ``s`` path hops, giving the tree stretch ``s``.
    """
    if s < 1:
        raise ScheduleError(f"stretch must be >= 1, got {s}")
    if k is None:
        k = default_k(D_over_s)
    D = s * D_over_s
    graph = path_graph(D + 1)
    if s > 1:
        for i in range(1, D_over_s + 1):
            graph.add_edge((i - 1) * s, i * s, 1.0)
    parent = [max(0, i - 1) for i in range(D + 1)]
    tree = SpanningTree(parent, root=0)
    # Requests of the path-(D/s) construction, placed s hops apart.
    pairs = [
        (pos * s, t) for (pos, t) in theorem41_requests(D_over_s, k)
    ]
    return Theorem42Instance(graph, tree, RequestSchedule(pairs), D, s, k)
