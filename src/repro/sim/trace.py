"""Structured tracing and counters for simulation runs.

Protocol implementations emit trace records (message sends, deliveries,
request completions) through a :class:`Tracer`.  Tracing is optional and
cheap when disabled; when enabled it records a list of typed, timestamped
records that the test-suite uses to verify message paths (e.g. the
direct-path theorem of [4]) and that the experiment harness aggregates into
per-run statistics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["TraceRecord", "Tracer", "NullTracer"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One timestamped trace entry.

    ``kind`` is a short tag such as ``"send"``, ``"deliver"``,
    ``"queue_complete"``; ``payload`` carries kind-specific fields.
    """

    time: float
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects trace records and maintains per-kind counters."""

    __slots__ = ("records", "counts", "enabled")

    def __init__(self, enabled: bool = True) -> None:
        self.records: list[TraceRecord] = []
        self.counts: Counter[str] = Counter()
        self.enabled = enabled

    def emit(self, time: float, kind: str, **payload: Any) -> None:
        """Record one event (no-op for the record list when disabled).

        Counters are always maintained — they are the cheap part and the
        experiment harness relies on them even in un-traced bulk runs.
        """
        self.counts[kind] += 1
        if self.enabled:
            self.records.append(TraceRecord(time, kind, payload))

    def of_kind(self, kind: str) -> Iterator[TraceRecord]:
        """Iterate over records with the given kind tag."""
        return (r for r in self.records if r.kind == kind)

    def clear(self) -> None:
        """Drop all records and counters."""
        self.records.clear()
        self.counts.clear()


class NullTracer(Tracer):
    """A tracer that drops everything, including counters.

    Useful in micro-benchmarks where even counter upkeep is measurable.
    """

    def __init__(self) -> None:  # noqa: D107 - trivial
        super().__init__(enabled=False)

    def emit(self, time: float, kind: str, **payload: Any) -> None:  # noqa: D102
        return
