"""Event representation and event queue for the discrete-event kernel.

The simulation kernel is deliberately small: an event is a callback scheduled
at an absolute simulation time, and the event queue is a binary heap ordered
by ``(time, priority, seq)``.  The sequence number makes the ordering total
and deterministic: two events scheduled for the same time with the same
priority always fire in the order they were scheduled, on every run, on every
platform.  Determinism matters here because the paper's model (Section 3.1)
allows *arbitrary* processing order for simultaneously arriving messages —
the analysis must hold for every order — so the test-suite exercises several
priority assignments while each individual run stays reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue", "PRIORITY_DEFAULT", "PRIORITY_LATE"]

#: Default priority for ordinary events (message deliveries, timers).
PRIORITY_DEFAULT = 0
#: Priority for events that must run after every same-time default event
#: (used e.g. by trace flushing and by closed-loop workload bookkeeping).
PRIORITY_LATE = 1_000_000


@dataclass(order=True, slots=True)
class Event:
    """A single scheduled callback.

    Events compare by ``(time, priority, seq)`` which is exactly the order in
    which the kernel fires them.  ``fn`` and ``args`` are excluded from the
    comparison.
    """

    time: float
    priority: int
    seq: int
    fn: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped.

        Cancellation is O(1); the heap entry is lazily discarded.
        """
        self.cancelled = True


class EventQueue:
    """Binary-heap event queue with deterministic total ordering."""

    __slots__ = ("_heap", "_counter", "_live")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_DEFAULT,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time``; returns the event."""
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        ev = Event(time, priority, next(self._counter), fn, args)
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises :class:`SimulationError` when the queue is empty.
        """
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._live -= 1
            return ev
        raise SimulationError("pop from an empty event queue")

    def peek_time(self) -> float:
        """Return the firing time of the earliest live event."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            raise SimulationError("peek on an empty event queue")
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Account for one externally cancelled event (kept lazily in heap)."""
        self._live -= 1
