"""Discrete-event simulation kernel.

The kernel substitutes for the paper's IBM SP2 testbed: all protocol code
runs as atomic callbacks over a deterministic virtual clock.  See
``DESIGN.md`` §2 for the substitution argument.
"""

from repro.sim.events import Event, EventQueue, PRIORITY_DEFAULT, PRIORITY_LATE
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry, spawn_rng
from repro.sim.trace import NullTracer, TraceRecord, Tracer

__all__ = [
    "Event",
    "EventQueue",
    "PRIORITY_DEFAULT",
    "PRIORITY_LATE",
    "Simulator",
    "RngRegistry",
    "spawn_rng",
    "NullTracer",
    "TraceRecord",
    "Tracer",
]
