"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock and the event queue.  All protocol
code in this library is written as plain callbacks against this kernel; a
callback runs atomically (no other event interleaves with it), which models
the paper's atomic initiation / path-reversal steps directly.

Typical use::

    sim = Simulator()
    sim.call_at(3.0, handler, arg1, arg2)
    sim.call_in(1.5, other_handler)
    sim.run()                # drain all events
    print(sim.now)           # time of the last fired event

The kernel is single-threaded and deterministic: ties are broken by
``(priority, scheduling order)`` — see :mod:`repro.sim.events`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue, PRIORITY_DEFAULT

__all__ = ["Simulator"]


class Simulator:
    """Single-threaded deterministic discrete-event simulator."""

    __slots__ = ("_queue", "_now", "_running", "_fired", "_max_events")

    def __init__(self, max_events: int | None = None) -> None:
        """Create a simulator.

        Parameters
        ----------
        max_events:
            Optional safety valve: :meth:`run` raises
            :class:`SimulationError` after firing this many events.  Useful
            for catching accidental livelock in protocol code under test.
        """
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._fired = 0
        self._max_events = max_events

    # ------------------------------------------------------------------
    # clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (time of the event being processed)."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events processed so far (cancelled events excluded)."""
        return self._fired

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still scheduled."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``.

        Scheduling into the past raises :class:`SimulationError`; scheduling
        exactly at :attr:`now` is allowed and the event fires after every
        event already scheduled for the current instant with lower-or-equal
        priority, preserving causality within a time step.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} (now is t={self._now})"
            )
        return self._queue.push(time, fn, args, priority)

    def call_in(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
    ) -> Event:
        """Schedule ``fn(*args)`` after a non-negative relative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._queue.push(self._now + delay, fn, args, priority)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (no-op if already fired)."""
        if not event.cancelled:
            event.cancel()
            self._queue.note_cancelled()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single earliest event.  Returns False if queue empty."""
        if not self._queue:
            return False
        ev = self._queue.pop()
        self._now = ev.time
        self._fired += 1
        ev.fn(*ev.args)
        return True

    def run(self, until: float | None = None) -> float:
        """Run until the queue drains (or the clock passes ``until``).

        Returns the final simulation time.  Events scheduled exactly at
        ``until`` still fire; the first event strictly beyond it does not,
        and remains queued.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        try:
            while self._queue:
                if until is not None and self._queue.peek_time() > until:
                    self._now = until
                    break
                self.step()
                if self._max_events is not None and self._fired > self._max_events:
                    raise SimulationError(
                        f"exceeded max_events={self._max_events}; "
                        "possible livelock in protocol code"
                    )
        finally:
            self._running = False
        return self._now
