"""Seeded random-number streams for reproducible experiments.

Every stochastic component (latency models, workload generators, random
topologies) draws from its own named stream derived from a single master
seed, so adding a new consumer never perturbs the draws seen by existing
ones — runs stay comparable across library versions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngRegistry", "spawn_rng"]


def spawn_rng(master_seed: int, name: str) -> np.random.Generator:
    """Derive an independent generator from ``(master_seed, name)``.

    The stream is a deterministic function of both arguments; distinct names
    give statistically independent streams (SeedSequence spawn keys).
    """
    # Hash the name into spawn-key material; SeedSequence mixes it soundly.
    key = [ord(c) for c in name]
    seq = np.random.SeedSequence(entropy=master_seed, spawn_key=tuple(key))
    return np.random.Generator(np.random.PCG64(seq))


class RngRegistry:
    """Lazily creates and caches named RNG streams for one experiment run."""

    __slots__ = ("master_seed", "_streams")

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            rng = spawn_rng(self.master_seed, name)
            self._streams[name] = rng
        return rng

    def reset(self) -> None:
        """Drop all cached streams; subsequent draws restart their sequences."""
        self._streams.clear()
