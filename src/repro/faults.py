"""Fault injection for arrow runs: crashes, link drops, message loss.

The fault axis (after the dynamic-network characterisations of Casteigts
et al.) applies a declarative :class:`FaultPlan` uniformly across the
engines:

* **node crash** (``crash@<t>:<node>``) — at time ``t`` the node resets
  its pointer to itself and goes down: messages addressed to it are
  dropped on arrival and its own initiations are lost, until the next
  repair (a crash-restart model: the repair pass brings the node back
  with a consistent pointer);
* **link drop window** (``link@<u>-<v>:<t0>-<t1>``) — the tree link
  {u, v} drops every message sent in ``[t0, t1)``, both directions, then
  recovers;
* **i.i.d. message loss** (``loss:<rate>``) — every send independently
  drops with the given probability, drawn from the dedicated
  ``spawn_rng(seed, "fault-loss")`` stream so the network-latency draw
  sequence of surviving messages is untouched.

A dropped ``queue`` message loses its request: the arrow protocol carries
each request in exactly one message, so the request is *accounted lost*
rather than retried — :class:`FaultReport` and the monitors' completion
accounting both track it.

Repair is :mod:`repro.core.stabilize`: at the first quiescent point after
a degradation (no queue messages in flight, checked immediately before
each initiation) and once more at the end of a degraded run, the engine
runs the one-pass stabilisation, restamps the unique repaired sink's
``last_rid`` with a fresh *epoch* rid (:func:`epoch_rid` — stabilisation
can leave a stale tail whose request already has a successor, so every
repair must start a fresh acquisition chain), and brings crashed nodes
back up.  Recovery metrics (corrections applied, repairs run, requests
lost, time from first degradation to repair) come back in the
:class:`FaultReport`.

Engine parity: ``engine="fast"`` and ``engine="batch"`` run one shared
flat-heap loop (batch differs only in drawing its loss stream in
bitstream-identical blocks); ``engine="message"`` runs the genuine
:class:`~repro.net.network.Network` simulation with a fault-aware
subclass.  All three produce identical results for identical inputs —
the same event order, the same drops, the same repairs — which the fault
differential tests enforce.
"""

from __future__ import annotations

import time as _wall
from dataclasses import dataclass
from heapq import heappop, heappush

from repro.core.arrow import ArrowNode
from repro.core.fast_arrow import _raise_livelock, arrow_runner
from repro.core.queueing import CompletionRecord, RunResult
from repro.core.requests import NO_RID, ROOT_RID, RequestSchedule
from repro.core.stabilize import find_violations_links, stabilize_links
from repro.errors import FaultPlanError, ProtocolError
from repro.graphs.graph import Graph
from repro.graphs.validation import require_spanning_subgraph
from repro.net.latency import LatencyModel, UnitLatency
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.rng import spawn_rng
from repro.spanning.tree import SpanningTree

__all__ = [
    "FaultPlan",
    "FaultReport",
    "epoch_rid",
    "parse_fault_plan",
    "run_arrow_faulted",
]

#: Loss draws per block refill on the batch engine (an array fill of
#: ``Generator.random`` consumes the bitstream exactly like the same
#: number of scalar calls, so block draws replay the scalar order).
_LOSS_BLOCK = 4096


def epoch_rid(k: int) -> int:
    """The fresh rid minted for the ``k``-th repair's sink (k from 0).

    Negative and below both sentinels (``ROOT_RID`` = -1, ``NO_RID`` =
    -2), so epoch rids can never collide with schedule rids or either
    sentinel.
    """
    return -3 - k


def _fmt(x: float) -> str:
    return format(x, "g")


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A declarative, engine-independent fault scenario.

    Stored canonically (crashes sorted by time then node; link windows
    with ``u < v``, sorted), so equal plans compare equal and
    :meth:`label` is deterministic — it doubles as the plan's identity in
    sweep cell ids.
    """

    #: ``(node, time)`` pairs.
    crashes: tuple[tuple[int, float], ...] = ()
    #: ``(u, v, t_down, t_up)`` windows on tree links.
    link_drops: tuple[tuple[int, int, float, float], ...] = ()
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        crashes = []
        for node, t in self.crashes:
            node, t = int(node), float(t)
            if node < 0:
                raise FaultPlanError(f"crash node must be >= 0, got {node}")
            if t < 0:
                raise FaultPlanError(f"crash time must be >= 0, got {t}")
            crashes.append((node, t))
        crashes.sort(key=lambda c: (c[1], c[0]))
        drops = []
        for u, v, t0, t1 in self.link_drops:
            u, v, t0, t1 = int(u), int(v), float(t0), float(t1)
            if u < 0 or v < 0 or u == v:
                raise FaultPlanError(f"bad link endpoints ({u}, {v})")
            if not 0 <= t0 < t1:
                raise FaultPlanError(
                    f"link window needs 0 <= t_down < t_up, got [{t0}, {t1})"
                )
            drops.append((min(u, v), max(u, v), t0, t1))
        drops.sort()
        rate = float(self.loss_rate)
        if not 0.0 <= rate < 1.0:
            raise FaultPlanError(f"loss rate must be in [0, 1), got {rate}")
        object.__setattr__(self, "crashes", tuple(crashes))
        object.__setattr__(self, "link_drops", tuple(drops))
        object.__setattr__(self, "loss_rate", rate)

    @property
    def empty(self) -> bool:
        """True iff the plan injects nothing."""
        return not self.crashes and not self.link_drops and self.loss_rate == 0.0

    def label(self) -> str:
        """Canonical spec string; ``parse_fault_plan`` round-trips it."""
        terms = [f"crash@{_fmt(t)}:{node}" for node, t in self.crashes]
        terms += [
            f"link@{u}-{v}:{_fmt(t0)}-{_fmt(t1)}"
            for u, v, t0, t1 in self.link_drops
        ]
        if self.loss_rate > 0.0:
            terms.append(f"loss:{_fmt(self.loss_rate)}")
        return ",".join(terms)

    def validate_nodes(self, num_nodes: int) -> None:
        """Raise if any plan entry names a node outside ``[0, num_nodes)``."""
        for node, t in self.crashes:
            if node >= num_nodes:
                raise FaultPlanError(
                    f"crash@{_fmt(t)}:{node} out of range for {num_nodes} nodes"
                )
        for u, v, _, _ in self.link_drops:
            if u >= num_nodes or v >= num_nodes:
                raise FaultPlanError(
                    f"link {u}-{v} out of range for {num_nodes} nodes"
                )


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse a comma-separated fault-plan spec string.

    Terms: ``crash@<t>:<node>``, ``link@<u>-<v>:<t0>-<t1>``,
    ``loss:<rate>``.  An empty/whitespace string is the empty plan.
    Raises :class:`~repro.errors.FaultPlanError` on malformed input.
    """
    crashes: list[tuple[int, float]] = []
    drops: list[tuple[int, int, float, float]] = []
    rate = 0.0
    saw_loss = False
    for term in text.split(","):
        term = term.strip()
        if not term:
            continue
        try:
            if term.startswith("crash@"):
                when, _, node = term[len("crash@"):].partition(":")
                crashes.append((int(node), float(when)))
            elif term.startswith("link@"):
                edge, _, window = term[len("link@"):].partition(":")
                u, _, v = edge.partition("-")
                t0, _, t1 = window.partition("-")
                drops.append((int(u), int(v), float(t0), float(t1)))
            elif term.startswith("loss:"):
                if saw_loss:
                    raise FaultPlanError(f"duplicate loss term {term!r}")
                rate = float(term[len("loss:"):])
                saw_loss = True
            else:
                raise FaultPlanError(
                    f"unknown fault term {term!r} (expected crash@<t>:<node>, "
                    "link@<u>-<v>:<t0>-<t1> or loss:<rate>)"
                )
        except (ValueError, TypeError) as exc:
            raise FaultPlanError(f"malformed fault term {term!r}: {exc}") from exc
    return FaultPlan(tuple(crashes), tuple(drops), rate)


@dataclass(slots=True)
class FaultReport:
    """Recovery metrics of one faulted run."""

    requests_lost: int = 0
    messages_dropped: int = 0
    corrections_applied: int = 0
    repairs_run: int = 0
    #: Summed time from each degradation's first fault event to the
    #: repair that cleared it.
    time_to_recovery: float = 0.0
    lost_rids: tuple[int, ...] = ()
    #: Illegal tree edges remaining after the run (0 unless repair is
    #: broken — asserted by the tests, reported for auditability).
    final_violations: int = 0

    def as_columns(self) -> dict[str, float | int]:
        """The persisted sweep-row columns for this report."""
        return {
            "requests_lost": self.requests_lost,
            "messages_dropped": self.messages_dropped,
            "corrections_applied": self.corrections_applied,
            "repairs_run": self.repairs_run,
            "time_to_recovery": self.time_to_recovery,
        }


class _LossStream:
    """Uniform [0, 1) draws from the ``fault-loss`` stream, in send order.

    ``block=True`` refills from ``Generator.random(_LOSS_BLOCK)`` — the
    batch engine's draw style, bitstream-identical to scalar calls.
    """

    __slots__ = ("_rng", "_buf", "_pos", "_block")

    def __init__(self, rng, block: bool) -> None:
        self._rng = rng
        self._block = block
        self._buf: list[float] = []
        self._pos = 0

    def one(self) -> float:
        if not self._block:
            return float(self._rng.random())
        if self._pos >= len(self._buf):
            self._buf = self._rng.random(_LOSS_BLOCK).tolist()
            self._pos = 0
        v = self._buf[self._pos]
        self._pos += 1
        return v


def _drop_windows(
    plan: FaultPlan, tree: SpanningTree
) -> dict[int, tuple[tuple[float, float], ...]]:
    """Link-drop windows keyed by the tree edge's child endpoint."""
    parent = tree.parent
    out: dict[int, list[tuple[float, float]]] = {}
    for u, v, t0, t1 in plan.link_drops:
        if parent[u] == v:
            child = u
        elif parent[v] == u:
            child = v
        else:
            raise FaultPlanError(
                f"link {u}-{v} is not a spanning-tree edge of this run"
            )
        out.setdefault(child, []).append((t0, t1))
    return {c: tuple(ws) for c, ws in out.items()}


class _FaultState:
    """Shared fault bookkeeping: drop decisions, degradation, recovery.

    One instance per run; both the flat-heap loop and the message-engine
    network subclass drive the same state machine, which is what keeps
    the engines' fault semantics identical.
    """

    __slots__ = (
        "tree",
        "parent",
        "down",
        "windows",
        "loss_rate",
        "loss",
        "in_flight",
        "degraded",
        "degraded_since",
        "lost",
        "report",
        "emit",
    )

    def __init__(
        self,
        tree: SpanningTree,
        plan: FaultPlan,
        seed: int,
        *,
        block_loss: bool,
        emit,
    ) -> None:
        self.tree = tree
        self.parent = tree.parent
        self.down = [False] * tree.num_nodes
        self.windows = _drop_windows(plan, tree)
        self.loss_rate = plan.loss_rate
        self.loss = (
            _LossStream(spawn_rng(seed, "fault-loss"), block_loss)
            if plan.loss_rate > 0.0
            else None
        )
        self.in_flight = 0
        self.degraded = False
        self.degraded_since = 0.0
        self.lost: set[int] = set()
        self.report = FaultReport()
        self.emit = emit

    # -- degradation ----------------------------------------------------
    def _degrade(self, now: float) -> None:
        if not self.degraded:
            self.degraded = True
            self.degraded_since = now

    def crash(self, node: int, now: float) -> bool:
        """Apply a crash event; returns True if the pointer was reset."""
        self.down[node] = True
        self._degrade(now)
        if self.emit is not None:
            self.emit("crash", node, now)
        return True

    # -- drop decisions (checked in this order on both engines) ---------
    def drops_send(self, src: int, dst: int, rid: int, now: float) -> bool:
        """Fault check for one send; records the drop if it happens.

        The link-down window is checked first (no draw); only then does a
        positive loss rate consume one ``fault-loss`` draw — so the draw
        sequence is a pure function of the surviving-send order.
        """
        child = dst if self.parent[dst] == src else src
        for t0, t1 in self.windows.get(child, ()):
            if t0 <= now < t1:
                self._record_drop(rid, src, dst, now)
                return True
        if self.loss is not None and self.loss.one() < self.loss_rate:
            self._record_drop(rid, src, dst, now)
            return True
        return False

    def drops_arrival(self, src: int, dst: int, rid: int, now: float) -> bool:
        """Drop messages reaching a crashed node (the message was in flight)."""
        if not self.down[dst]:
            return False
        self.in_flight -= 1
        self._record_drop(rid, src, dst, now)
        return True

    def _record_drop(self, rid: int, src: int, dst: int, now: float) -> None:
        self.report.messages_dropped += 1
        self.lost.add(rid)
        self._degrade(now)
        if self.emit is not None:
            self.emit("drop", rid, src, dst, now)

    def drop_initiation(self, rid: int, node: int, now: float) -> None:
        """A request issued on a down node is lost outright (no message)."""
        self.lost.add(rid)
        if self.emit is not None:
            self.emit("drop", rid, -1, node, now)

    # -- repair ---------------------------------------------------------
    def repair_due(self) -> bool:
        """Repair runs only at quiescent points: degraded, nothing in flight."""
        return self.degraded and self.in_flight == 0

    def repair(self, link: list[int], now: float) -> tuple[int, int]:
        """Stabilise ``link`` in place; returns ``(sink, epoch_rid)``.

        The caller must restamp ``last_rid[sink]`` with the returned
        epoch rid — a repaired sink's stale tail may already have a
        successor, so every repair starts a fresh acquisition chain.
        """
        rep = self.report
        fixes = stabilize_links(link, self.tree)
        sink = next(v for v, x in enumerate(link) if x == v)
        er = epoch_rid(rep.repairs_run)
        rep.corrections_applied += fixes
        rep.repairs_run += 1
        rep.time_to_recovery += now - self.degraded_since
        for v in range(len(self.down)):
            self.down[v] = False
        self.degraded = False
        if self.emit is not None:
            self.emit("repair", fixes, er, sink, now)
        return sink, er

    # -- epilogue -------------------------------------------------------
    def finish(
        self, link: list[int], completions: int, total: int
    ) -> FaultReport:
        rep = self.report
        rep.requests_lost = len(self.lost)
        rep.lost_rids = tuple(sorted(self.lost))
        rep.final_violations = len(find_violations_links(link, self.tree))
        if completions + rep.requests_lost != total:
            raise ProtocolError(
                f"faulted run accounted {completions} completions + "
                f"{rep.requests_lost} lost of {total} requests"
            )
        return rep


# ----------------------------------------------------------------------
# the flat-heap faulted loop (engines "fast" and "batch")
# ----------------------------------------------------------------------
# Heap tuples are (time, seq, tag, node, src, rid, hops); seq is globally
# unique, so ordering reduces to the kernel's (time, seq) tie-breaking.
_CRASH = 0
_ARRIVE = 1
_DISPATCH = 2


def _run_flat_faulted(
    graph: Graph,
    tree: SpanningTree,
    schedule: RequestSchedule,
    plan: FaultPlan,
    *,
    latency: LatencyModel,
    seed: int,
    service_time: float,
    max_events: int | None,
    on_event,
    block_loss: bool,
) -> tuple[RunResult, FaultReport]:
    """The fault-aware flat-heap loop (mirrors ``FastArrowEngine``).

    Kernel-parity sequence numbering: initiations own seqs ``0..m-1``,
    the plan's crash events ``m..m+c-1`` (the message runner schedules
    them in exactly that order), messages count on from ``m+c``; dropped
    sends consume no sequence number, no latency draw and no FIFO clamp —
    the message engine never reaches ``transmit`` for them either.
    """
    n = tree.num_nodes
    root = tree.root
    parent = list(tree.parent)
    weight = [0.0] * n
    for v in range(n):
        if v != root:
            weight[v] = graph.weight(v, parent[v])

    rng = spawn_rng(seed, "network-latency")
    sample = latency.sample
    det_up = det_down = None
    if not latency.stochastic:
        det_up = [
            sample(v, parent[v], weight[v], rng) if v != root else 0.0
            for v in range(n)
        ]
        det_down = [
            sample(parent[v], v, weight[v], rng) if v != root else 0.0
            for v in range(n)
        ]

    link = parent[:]
    link[root] = root
    last_rid = [NO_RID] * n
    last_rid[root] = ROOT_RID
    last_delivery = [0.0] * (2 * n)
    busy_until = [0.0] * n
    service = service_time

    emit = on_event
    fs = _FaultState(tree, plan, seed, block_loss=block_loss, emit=emit)
    down = fs.down

    result = RunResult(schedule)
    done: list[tuple[int, int, int, float, int]] = []
    append = done.append

    init_times = schedule.times
    init_nodes = schedule.nodes
    m = len(init_times)
    heap: list[tuple[float, int, int, int, int, int, int]] = [
        (t, m + k, _CRASH, v, -1, -1, 0)
        for k, (v, t) in enumerate(plan.crashes)
    ]
    heap.sort()
    seq = m + len(plan.crashes)
    limit = float("inf") if max_events is None else max_events
    i = 0
    fired = 0
    messages = 0
    now = 0.0

    t0_wall = _wall.perf_counter()
    while True:
        if i < m and (not heap or init_times[i] <= heap[0][0]):
            # Initiation of request i; the quiescent-point repair check
            # runs first, so the request sees a consistent configuration
            # whenever one is restorable.
            now = init_times[i]
            v = init_nodes[i]
            rid = i
            i += 1
            fired += 1
            if fired > limit:
                _raise_livelock(max_events)
            if fs.repair_due():
                sink, er = fs.repair(link, now)
                last_rid[sink] = er
            if down[v]:
                fs.drop_initiation(rid, v, now)
                continue
            if emit is not None:
                emit("init", rid, v, now)
            x = link[v]
            if x == v:
                if emit is not None:
                    emit("complete", rid, last_rid[v], v, now, 0)
                append((rid, last_rid[v], v, now, 0))
                last_rid[v] = rid
                continue
            last_rid[v] = rid
            link[v] = v
            dst = x
            hops = 1
        elif heap:
            now, _, tag, v, src, rid, hops = heappop(heap)
            fired += 1
            if fired > limit:
                _raise_livelock(max_events)
            if tag == _CRASH:
                fs.crash(v, now)
                link[v] = v
                continue
            if tag == _ARRIVE:
                if fs.drops_arrival(src, v, rid, now):
                    continue
                if service > 0.0:
                    # Serialise handling at v (Network._arrive).
                    begin = busy_until[v]
                    if now > begin:
                        begin = now
                    finish = begin + service
                    busy_until[v] = finish
                    heappush(heap, (finish, seq, _DISPATCH, v, src, rid, hops))
                    seq += 1
                    continue
            elif fs.drops_arrival(src, v, rid, now):
                # _DISPATCH: the node crashed while the message waited
                # for service — it is dropped at the handler, undelivered.
                continue
            # Path reversal (ArrowNode.on_message).
            fs.in_flight -= 1
            if emit is not None:
                emit("deliver", rid, v, src, now)
            x = link[v]
            link[v] = src
            if x == v:
                if emit is not None:
                    emit("complete", rid, last_rid[v], v, now, hops)
                append((rid, last_rid[v], v, now, hops))
                continue
            dst = x
            hops += 1
        else:
            break

        # One link traversal v -> dst, fault checks first (a dropped send
        # consumes no seq, no draw, no FIFO clamp — it never transmits).
        if emit is not None:
            emit("send", rid, v, dst, now)
        if fs.drops_send(v, dst, rid, now):
            continue
        down_dir = parent[dst] == v
        if det_up is None:
            delay = sample(v, dst, weight[dst if down_dir else v], rng)
        else:
            delay = det_down[dst] if down_dir else det_up[v]
        chan = 2 * dst + 1 if down_dir else 2 * v
        at = now + delay
        if at < last_delivery[chan]:
            at = last_delivery[chan]
        last_delivery[chan] = at
        heappush(heap, (at, seq, _ARRIVE, dst, v, rid, hops))
        seq += 1
        messages += 1
        fs.in_flight += 1

    if fs.degraded:
        # End-of-run repair: the heap drained, so the run is quiescent.
        sink, er = fs.repair(link, now)
        last_rid[sink] = er
    wall = _wall.perf_counter() - t0_wall

    completions = result.completions
    for row in done:
        completions[row[0]] = CompletionRecord(*row)
    if len(completions) != len(done):
        raise ProtocolError("a request completed twice")
    result.makespan = now if fired else 0.0
    result.wall_seconds = wall
    result.network_stats = {
        "messages_sent": messages,
        "link_messages": messages,
        "routed_messages": 0,
        "hops_total": messages,
    }
    report = fs.finish(link, len(completions), m)
    return result, report


# ----------------------------------------------------------------------
# the message engine: a fault-aware Network
# ----------------------------------------------------------------------
class _FaultyNetwork(Network):
    """A :class:`Network` that applies a :class:`_FaultState` to queue traffic.

    Drop checks run before any stats/latency/FIFO side effect, so a
    dropped message is observationally absent — exactly like the flat
    loop, which never transmits it.
    """

    def __init__(self, *args, fault_state: _FaultState, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._fs = fault_state

    def send_link(self, src, dst, kind, payload=None):
        fs = self._fs
        if fs.drops_send(src, dst, (payload or {}).get("rid", -1), self.sim.now):
            return None
        msg = super().send_link(src, dst, kind, payload)
        fs.in_flight += 1
        return msg

    def forward(self, msg: Message, new_dst: int):
        fs = self._fs
        if fs.drops_send(msg.dst, new_dst, msg.payload.get("rid", -1), self.sim.now):
            return None
        nxt = super().forward(msg, new_dst)
        fs.in_flight += 1
        return nxt

    def _arrive(self, msg: Message) -> None:
        # Pre-service drop: a down node's queue never accepts the message.
        if msg.kind == "queue" and self._fs.drops_arrival(
            msg.src, msg.dst, msg.payload.get("rid", -1), self.sim.now
        ):
            return
        super()._arrive(msg)

    def _dispatch(self, msg: Message) -> None:
        if msg.kind == "queue":
            fs = self._fs
            if fs.drops_arrival(
                msg.src, msg.dst, msg.payload.get("rid", -1), self.sim.now
            ):
                # The node crashed while the message waited for service.
                return
            fs.in_flight -= 1
        super()._dispatch(msg)


def _run_message_faulted(
    graph: Graph,
    tree: SpanningTree,
    schedule: RequestSchedule,
    plan: FaultPlan,
    *,
    latency: LatencyModel,
    seed: int,
    service_time: float,
    max_events: int | None,
    on_event,
) -> tuple[RunResult, FaultReport]:
    """Genuine message-level run under the fault model."""
    sim = Simulator(max_events=max_events)
    fs = _FaultState(tree, plan, seed, block_loss=False, emit=on_event)
    net = _FaultyNetwork(
        graph,
        sim,
        latency,
        seed=seed,
        service_time=service_time,
        fault_state=fs,
    )
    result = RunResult(schedule)

    def on_complete(rid: int, pred: int, node: int, when: float, hops: int) -> None:
        result.record(CompletionRecord(rid, pred, node, when, hops))

    nodes = [ArrowNode(on_complete) for _ in range(graph.num_nodes)]
    net.register_all(nodes)
    for nd in nodes:
        nd.init_pointers(tree)
        nd.on_event = on_event

    def repair_nodes(now: float) -> None:
        link = [nd.link for nd in nodes]
        sink, er = fs.repair(link, now)
        for nd, target in zip(nodes, link):
            nd.link = target
        nodes[sink].last_rid = er

    def initiate(req_node: int, rid: int) -> None:
        # Quiescent-point repair check, then the down-node gate — the
        # flat loop runs the identical sequence before each initiation.
        if fs.repair_due():
            repair_nodes(sim.now)
        if fs.down[req_node]:
            fs.drop_initiation(rid, req_node, sim.now)
            return
        nodes[req_node].initiate(rid)

    def crash(node: int) -> None:
        fs.crash(node, sim.now)
        nodes[node].link = node

    # Kernel-parity sequence numbering: initiations first (seqs 0..m-1),
    # then the crash events (m..m+c-1) — the flat loop replays exactly
    # these sequence numbers.
    for req in schedule:
        sim.call_at(req.time, initiate, req.node, req.rid)
    for node, t in plan.crashes:
        sim.call_at(t, crash, node)

    t0 = _wall.perf_counter()
    result.makespan = sim.run()
    if fs.degraded:
        repair_nodes(result.makespan)
    result.wall_seconds = _wall.perf_counter() - t0
    result.network_stats = net.stats.as_dict()

    report = fs.finish(
        [nd.link for nd in nodes], len(result.completions), len(schedule)
    )
    return result, report


# ----------------------------------------------------------------------
# public entry point
# ----------------------------------------------------------------------
def run_arrow_faulted(
    graph: Graph,
    tree: SpanningTree,
    schedule: RequestSchedule,
    plan: FaultPlan | str,
    *,
    engine: str = "fast",
    latency: LatencyModel | None = None,
    seed: int = 0,
    service_time: float = 0.0,
    max_events: int | None = None,
    on_event=None,
) -> tuple[RunResult, FaultReport]:
    """Run the arrow protocol under a fault plan; results plus recovery report.

    Accepts the open-loop model knobs of :func:`repro.core.runner.run_arrow`
    plus the ``engine`` selector (``"fast"``, ``"batch"``, ``"message"``).
    For the empty plan the returned :class:`RunResult` is bit-identical
    to the fault-free engines' — the run is in fact delegated to the
    selected stock engine, so an empty plan costs nothing beyond one
    dispatch.  ``on_event`` receives the protocol trace *including* the
    fault vocabulary (``drop``/``crash``/``repair``), so an attached
    :class:`repro.monitors.ArrowMonitor` audits the recovery path too.
    """
    if isinstance(plan, str):
        plan = parse_fault_plan(plan)
    if service_time < 0:
        raise ProtocolError(f"service_time must be >= 0, got {service_time}")
    schedule.validate_nodes(graph.num_nodes)
    require_spanning_subgraph(graph, [(u, v) for u, v, _ in tree.edges()])
    plan.validate_nodes(graph.num_nodes)
    model = latency if latency is not None else UnitLatency()
    if plan.empty and engine in ("fast", "batch", "message"):
        result = arrow_runner(engine)(
            graph,
            tree,
            schedule,
            latency=model,
            seed=seed,
            service_time=float(service_time),
            max_events=max_events,
            on_event=on_event,
        )
        return result, FaultReport()
    if engine in ("fast", "batch"):
        return _run_flat_faulted(
            graph,
            tree,
            schedule,
            plan,
            latency=model,
            seed=seed,
            service_time=float(service_time),
            max_events=max_events,
            on_event=on_event,
            block_loss=engine == "batch",
        )
    if engine == "message":
        return _run_message_faulted(
            graph,
            tree,
            schedule,
            plan,
            latency=model,
            seed=seed,
            service_time=float(service_time),
            max_events=max_events,
            on_event=on_event,
        )
    raise ValueError(
        f"engine must be 'fast', 'message' or 'batch', got {engine!r}"
    )
