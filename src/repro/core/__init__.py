"""The queuing protocols: arrow (the paper's subject) and its baselines."""

from repro.core.adaptive import AdaptivePointerNode, run_adaptive
from repro.core.arrow import ArrowNode, make_arrow_nodes
from repro.core.batch import (
    BatchArrowEngine,
    closed_loop_arrow_batch,
    closed_loop_centralized_batch,
    run_arrow_batch,
)
from repro.core.centralized import CentralizedNode
from repro.core.fast_arrow import FastArrowEngine, run_arrow_fast
from repro.core.fast_closed_loop import (
    closed_loop_arrow_fast,
    closed_loop_centralized_fast,
    closed_loop_runner,
)
from repro.core.queueing import CompletionRecord, RunResult, verify_total_order
from repro.core.requests import NO_RID, ROOT_RID, Request, RequestSchedule
from repro.core.runner import run_arrow, run_centralized
from repro.core.stabilize import (
    EdgeViolation,
    count_sinks,
    find_violations,
    is_legal_configuration,
    sink_reached_from,
    stabilize,
)

__all__ = [
    "AdaptivePointerNode",
    "run_adaptive",
    "ArrowNode",
    "make_arrow_nodes",
    "CentralizedNode",
    "BatchArrowEngine",
    "run_arrow_batch",
    "closed_loop_arrow_batch",
    "closed_loop_centralized_batch",
    "FastArrowEngine",
    "run_arrow_fast",
    "closed_loop_arrow_fast",
    "closed_loop_centralized_fast",
    "closed_loop_runner",
    "CompletionRecord",
    "RunResult",
    "verify_total_order",
    "NO_RID",
    "ROOT_RID",
    "Request",
    "RequestSchedule",
    "run_arrow",
    "run_centralized",
    "EdgeViolation",
    "count_sinks",
    "find_violations",
    "is_legal_configuration",
    "sink_reached_from",
    "stabilize",
]
