"""Protocol runners: execute a request schedule and collect results.

The runners build the network, install protocol nodes, schedule every
request's initiation at its issue time, run the simulation to completion
and return a :class:`repro.core.queueing.RunResult`.

``run_arrow`` is the message-level ground truth for everything in this
repository; the analysis layer's fast nearest-neighbour executor
(:mod:`repro.analysis.nearest_neighbor`) must agree with it on tie-free
instances — an invariant the integration tests enforce.
"""

from __future__ import annotations

import time as _wall

from repro.core.arrow import ArrowNode
from repro.core.centralized import CentralizedNode
from repro.core.queueing import CompletionRecord, RunResult
from repro.core.requests import RequestSchedule
from repro.errors import ProtocolError
from repro.graphs.graph import Graph
from repro.graphs.validation import require_spanning_subgraph
from repro.net.latency import LatencyModel, UnitLatency
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer
from repro.spanning.tree import SpanningTree

__all__ = ["run_arrow", "run_centralized"]


def run_arrow(
    graph: Graph,
    tree: SpanningTree,
    schedule: RequestSchedule,
    *,
    latency: LatencyModel | None = None,
    seed: int = 0,
    service_time: float = 0.0,
    notify_origin: bool = False,
    tracer: Tracer | None = None,
    max_events: int | None = None,
    on_event=None,
) -> RunResult:
    """Run the arrow protocol on one schedule; return the results.

    Parameters mirror the paper's model knobs: ``latency`` selects
    synchronous (:class:`UnitLatency`, the default) or asynchronous
    behaviour; ``service_time`` adds per-node sequential message handling
    (0 = the §3.1 analysis model); ``notify_origin`` adds the
    application-level acknowledgement used by closed-loop workloads.
    ``on_event``, when set, receives the protocol trace (see
    :mod:`repro.monitors`) and leaves the results untouched.
    """
    schedule.validate_nodes(graph.num_nodes)
    require_spanning_subgraph(graph, [(u, v) for u, v, _ in tree.edges()])
    sim = Simulator(max_events=max_events)
    net = Network(
        graph,
        sim,
        latency if latency is not None else UnitLatency(),
        seed=seed,
        service_time=service_time,
        tracer=tracer,
    )
    result = RunResult(schedule)

    def on_complete(rid: int, pred: int, node: int, when: float, hops: int) -> None:
        result.record(CompletionRecord(rid, pred, node, when, hops))

    nodes = [
        ArrowNode(on_complete, notify_origin=notify_origin)
        for _ in range(graph.num_nodes)
    ]
    net.register_all(nodes)  # attach assigns node ids
    for nd in nodes:
        nd.init_pointers(tree)
        nd.on_event = on_event

    for req in schedule:
        node = nodes[req.node]
        sim.call_at(req.time, node.initiate, req.rid)

    t0 = _wall.perf_counter()
    result.makespan = sim.run()
    result.wall_seconds = _wall.perf_counter() - t0
    result.network_stats = net.stats.as_dict()

    if len(result.completions) != len(schedule):
        raise ProtocolError(
            f"arrow run completed {len(result.completions)} of "
            f"{len(schedule)} requests"
        )
    return result


def run_centralized(
    graph: Graph,
    center: int,
    schedule: RequestSchedule,
    *,
    latency: LatencyModel | None = None,
    seed: int = 0,
    service_time: float = 0.0,
    notify_origin: bool = False,
    reply_mode: bool = False,
    tracer: Tracer | None = None,
    max_events: int | None = None,
) -> RunResult:
    """Run the §5 centralized baseline; same result interface as arrow."""
    schedule.validate_nodes(graph.num_nodes)
    sim = Simulator(max_events=max_events)
    net = Network(
        graph,
        sim,
        latency if latency is not None else UnitLatency(),
        seed=seed,
        service_time=service_time,
        tracer=tracer,
    )
    result = RunResult(schedule)

    def on_complete(rid: int, pred: int, node: int, when: float, hops: int) -> None:
        result.record(CompletionRecord(rid, pred, node, when, hops))

    nodes = [
        CentralizedNode(
            center, on_complete, notify_origin=notify_origin, reply_mode=reply_mode
        )
        for _ in range(graph.num_nodes)
    ]
    net.register_all(nodes)
    nodes[center].init_center()

    for req in schedule:
        sim.call_at(req.time, nodes[req.node].initiate, req.rid)

    t0 = _wall.perf_counter()
    result.makespan = sim.run()
    result.wall_seconds = _wall.perf_counter() - t0
    result.network_stats = net.stats.as_dict()

    if len(result.completions) != len(schedule):
        raise ProtocolError(
            f"centralized run completed {len(result.completions)} of "
            f"{len(schedule)} requests"
        )
    return result
