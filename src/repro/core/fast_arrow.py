"""Fast-path arrow engine: ``run_arrow`` semantics without the message layer.

:class:`FastArrowEngine` executes open-loop arrow runs on a precomputed
tree adjacency with a flat binary heap over ``(time, seq)`` tuples and
plain int/float array node state (``link``, ``last_rid``) — no
:class:`~repro.net.message.Message` objects, no per-event
:class:`~repro.sim.events.Event` dataclasses, no
:class:`~repro.net.network.Network` dispatch.  The produced
:class:`~repro.core.queueing.RunResult` is bit-identical to
:func:`repro.core.runner.run_arrow` (same completions, predecessors, hop
counts, makespan and tie-breaking), which the differential suite in
``tests/core/test_fast_arrow_differential.py`` enforces instance by
instance.

Why bit-identical is achievable
-------------------------------
The message-level kernel orders events by ``(time, priority, seq)`` with a
single global sequence counter and every event in an arrow run using the
default priority, so the total order reduces to ``(time, seq)``.  The fast
engine schedules the *same* events in the *same* order — initiations in
canonical rid order, then one arrival per link traversal (plus one
dispatch per arrival when ``service_time > 0``) — so its own sequence
counter reproduces the kernel's tie-breaking exactly.  FIFO clamping per
directed tree link and the per-node busy-until service model are replayed
arithmetically, and stochastic latency models draw from the same
``spawn_rng(seed, "network-latency")`` stream in the same order as
:class:`~repro.net.network.Network` would.
"""

from __future__ import annotations

import time as _wall
from heapq import heappop, heappush

from repro.core.queueing import CompletionRecord, RunResult
from repro.core.requests import NO_RID, ROOT_RID, RequestSchedule
from repro.errors import NetworkError, ProtocolError, SimulationError
from repro.graphs.graph import Graph
from repro.graphs.validation import require_spanning_subgraph
from repro.net.latency import LatencyModel, UnitLatency
from repro.sim.rng import spawn_rng
from repro.spanning.tree import SpanningTree

__all__ = ["FastArrowEngine", "arrow_runner", "run_arrow_fast"]


def arrow_runner(engine: str):
    """Resolve an engine name to its run function.

    The single validation point for the experiment layer's
    ``engine="fast" | "message" | "batch"`` knobs — unknown names raise
    instead of silently falling back to one of the engines.
    """
    if engine == "fast":
        return run_arrow_fast
    if engine == "message":
        from repro.core.runner import run_arrow

        return run_arrow
    if engine == "batch":
        from repro.core.batch import run_arrow_batch

        return run_arrow_batch
    raise ValueError(
        f"engine must be 'fast', 'message' or 'batch', got {engine!r}"
    )

def _raise_livelock(max_events: int | None) -> None:
    raise SimulationError(
        f"exceeded max_events={max_events}; possible livelock in protocol code"
    )


# Event type tags inside the general loop's heap tuples.
_ARRIVE = 1
_DISPATCH = 2


class FastArrowEngine:
    """Reusable fast executor for arrow runs on one ``(graph, tree)`` pair.

    Precomputes the tree adjacency (parent pointers), the per-link delays
    of deterministic latency models and the initial pointer configuration;
    :meth:`run` then replays a schedule with per-run mutable state only.

    Parameters mirror the :func:`~repro.core.runner.run_arrow` knobs it
    supports; features that are inherently message-level (``notify_origin``
    acknowledgement traffic, tracing) are not available here — use the
    message simulator for those.
    """

    def __init__(
        self,
        graph: Graph,
        tree: SpanningTree,
        *,
        latency: LatencyModel | None = None,
        seed: int = 0,
        service_time: float = 0.0,
    ) -> None:
        if service_time < 0:
            raise NetworkError(f"service_time must be >= 0, got {service_time}")
        require_spanning_subgraph(graph, [(u, v) for u, v, _ in tree.edges()])
        self.graph = graph
        self.tree = tree
        self.latency = latency if latency is not None else UnitLatency()
        self.seed = seed
        self.service_time = float(service_time)

        n = tree.num_nodes
        self._n = n
        self._root = tree.root
        self._parent = list(tree.parent)
        # Per-link weights as the Network sees them: graph weights on the
        # tree edges (tree.edge_weight may legitimately differ).
        self._weight = [0.0] * n
        for v in range(n):
            if v != self._root:
                self._weight[v] = graph.weight(v, self._parent[v])
        # Deterministic models ignore the rng but may legally depend on the
        # (src, dst) direction, so precompute one delay per *directed* link:
        # up[v] = v -> parent[v], down[v] = parent[v] -> v.
        self._det_up: list[float] | None = None
        self._det_down: list[float] | None = None
        if not self.latency.stochastic:
            rng = spawn_rng(seed, "network-latency")
            sample = self.latency.sample
            self._det_up = [
                sample(v, self._parent[v], self._weight[v], rng)
                if v != self._root
                else 0.0
                for v in range(n)
            ]
            self._det_down = [
                sample(self._parent[v], v, self._weight[v], rng)
                if v != self._root
                else 0.0
                for v in range(n)
            ]

    # ------------------------------------------------------------------
    def run(
        self,
        schedule: RequestSchedule,
        *,
        max_events: int | None = None,
        on_event=None,
    ) -> RunResult:
        """Execute one schedule; returns a ``run_arrow``-identical result.

        ``on_event``, when set, receives the protocol trace in the same
        order the message engine emits it (see :mod:`repro.monitors`);
        ``None`` (the default) keeps the hot loops emission-free.
        """
        schedule.validate_nodes(self._n)
        result = RunResult(schedule)

        n = self._n
        root = self._root

        # Protocol state (ArrowNode.init_pointers, flattened).
        link = self._parent[:]
        link[root] = root
        last_rid = [NO_RID] * n
        last_rid[root] = ROOT_RID

        # FIFO clamp per directed tree link: 2v = v -> parent[v],
        # 2v + 1 = parent[v] -> v (FifoChannel._last_delivery, flattened).
        last_delivery = [0.0] * (2 * n)

        # Initiation events stay out of the heap: the schedule is already
        # in canonical (time, rid) order, which is exactly the kernel's
        # (time, seq) order for them, and every in-flight message event
        # carries a larger sequence number than every initiation (the
        # runner schedules all initiations before the first send), so on
        # a time tie the initiation always fires first.
        init_times = schedule.times
        init_nodes = schedule.nodes

        # Raw completion rows (rid, pred, node, time, hops); the record
        # dataclasses are built once, after the hot loop.
        done: list[tuple[int, int, int, float, int]] = []

        t0 = _wall.perf_counter()
        if self.service_time == 0.0:
            now, fired, messages = self._drain(
                init_times, init_nodes, link, last_rid, last_delivery,
                done, max_events, on_event,
            )
        else:
            now, fired, messages = self._drain_with_service(
                init_times, init_nodes, link, last_rid, last_delivery,
                done, max_events, on_event,
            )
        wall = _wall.perf_counter() - t0

        completions = result.completions
        for row in done:
            completions[row[0]] = CompletionRecord(*row)
        if len(completions) != len(done):
            raise ProtocolError("a request completed twice")
        result.makespan = now if fired else 0.0
        result.wall_seconds = wall
        result.network_stats = {
            "messages_sent": messages,
            "link_messages": messages,
            "routed_messages": 0,
            "hops_total": messages,
        }
        if len(completions) != len(schedule):
            raise ProtocolError(
                f"arrow run completed {len(completions)} of "
                f"{len(schedule)} requests"
            )
        return result

    # ------------------------------------------------------------------
    def _drain(
        self,
        init_times: list[float],
        init_nodes: list[int],
        link: list[int],
        last_rid: list[int],
        last_delivery: list[float],
        done: list[tuple[int, int, int, float, int]],
        max_events: int | None,
        emit=None,
    ) -> tuple[float, int, int]:
        """Hot loop for ``service_time == 0`` (the §3.1 analysis model)."""
        parent = self._parent
        weight = self._weight
        det_up = self._det_up
        det_down = self._det_down
        sample = self.latency.sample
        rng = spawn_rng(self.seed, "network-latency") if det_up is None else None
        append = done.append
        push, pop = heappush, heappop

        # In-flight message events: (time, seq, dst, src, rid, hops).
        limit = float("inf") if max_events is None else max_events
        heap: list[tuple[float, int, int, int, int, int]] = []
        m = len(init_times)
        seq = m  # kernel parity: initiations consumed seqs 0..m-1
        i = 0
        fired = 0
        messages = 0
        now = 0.0

        while True:
            if i < m and (not heap or init_times[i] <= heap[0][0]):
                # Initiation of request i (ArrowNode.initiate).
                now = init_times[i]
                v = init_nodes[i]
                rid = i
                i += 1
                fired += 1
                if fired > limit:
                    _raise_livelock(max_events)
                if emit is not None:
                    emit("init", rid, v, now)
                x = link[v]
                if x == v:
                    # Local find: queued behind v's previous request.
                    if emit is not None:
                        emit("complete", rid, last_rid[v], v, now, 0)
                    append((rid, last_rid[v], v, now, 0))
                    last_rid[v] = rid
                    continue
                last_rid[v] = rid
                link[v] = v
                dst = x
                hops = 1
            elif heap:
                now, _, v, src, rid, hops = pop(heap)
                fired += 1
                if fired > limit:
                    _raise_livelock(max_events)
                # Path reversal (ArrowNode.on_message).
                if emit is not None:
                    emit("deliver", rid, v, src, now)
                x = link[v]
                link[v] = src
                if x == v:
                    if emit is not None:
                        emit("complete", rid, last_rid[v], v, now, hops)
                    append((rid, last_rid[v], v, now, hops))
                    continue
                dst = x
                hops += 1
            else:
                break

            # One link traversal v -> dst (send_link / forward + FifoChannel).
            if emit is not None:
                emit("send", rid, v, dst, now)
            down = parent[dst] == v
            if det_up is None:
                delay = sample(v, dst, weight[dst if down else v], rng)
            else:
                delay = det_down[dst] if down else det_up[v]
            chan = 2 * dst + 1 if down else 2 * v
            at = now + delay
            if at < last_delivery[chan]:
                at = last_delivery[chan]
            last_delivery[chan] = at
            push(heap, (at, seq, dst, v, rid, hops))
            seq += 1
            messages += 1
        return now, fired, messages

    # ------------------------------------------------------------------
    def _drain_with_service(
        self,
        init_times: list[float],
        init_nodes: list[int],
        link: list[int],
        last_rid: list[int],
        last_delivery: list[float],
        done: list[tuple[int, int, int, float, int]],
        max_events: int | None,
        emit=None,
    ) -> tuple[float, int, int]:
        """General loop with per-node sequential service (Fig. 10 model)."""
        parent = self._parent
        weight = self._weight
        det_up = self._det_up
        det_down = self._det_down
        sample = self.latency.sample
        service = self.service_time
        rng = spawn_rng(self.seed, "network-latency") if det_up is None else None
        busy_until = [0.0] * self._n  # Network._busy_until
        append = done.append

        # (time, seq, tag, node, src, rid, hops) with explicit event tags:
        # arrivals go through the service stage, dispatches do the work.
        limit = float("inf") if max_events is None else max_events
        heap: list[tuple[float, int, int, int, int, int, int]] = []
        m = len(init_times)
        seq = m
        i = 0
        fired = 0
        messages = 0
        now = 0.0

        while True:
            if i < m and (not heap or init_times[i] <= heap[0][0]):
                now = init_times[i]
                v = init_nodes[i]
                rid = i
                i += 1
                fired += 1
                if fired > limit:
                    _raise_livelock(max_events)
                if emit is not None:
                    emit("init", rid, v, now)
                x = link[v]
                if x == v:
                    if emit is not None:
                        emit("complete", rid, last_rid[v], v, now, 0)
                    append((rid, last_rid[v], v, now, 0))
                    last_rid[v] = rid
                    continue
                last_rid[v] = rid
                link[v] = v
                dst = x
                hops = 1
            elif heap:
                now, _, tag, v, src, rid, hops = heappop(heap)
                fired += 1
                if fired > limit:
                    _raise_livelock(max_events)
                if tag == _ARRIVE:
                    # Serialise handling at v (Network._arrive): the
                    # path-reversal step runs as its own dispatch event.
                    begin = busy_until[v]
                    if now > begin:
                        begin = now
                    finish = begin + service
                    busy_until[v] = finish
                    heappush(heap, (finish, seq, _DISPATCH, v, src, rid, hops))
                    seq += 1
                    continue
                if emit is not None:
                    emit("deliver", rid, v, src, now)
                x = link[v]
                link[v] = src
                if x == v:
                    if emit is not None:
                        emit("complete", rid, last_rid[v], v, now, hops)
                    append((rid, last_rid[v], v, now, hops))
                    continue
                dst = x
                hops += 1
            else:
                break

            if emit is not None:
                emit("send", rid, v, dst, now)
            down = parent[dst] == v
            if det_up is None:
                delay = sample(v, dst, weight[dst if down else v], rng)
            else:
                delay = det_down[dst] if down else det_up[v]
            chan = 2 * dst + 1 if down else 2 * v
            at = now + delay
            if at < last_delivery[chan]:
                at = last_delivery[chan]
            last_delivery[chan] = at
            heappush(heap, (at, seq, _ARRIVE, dst, v, rid, hops))
            seq += 1
            messages += 1
        return now, fired, messages


def run_arrow_fast(
    graph: Graph,
    tree: SpanningTree,
    schedule: RequestSchedule,
    *,
    latency: LatencyModel | None = None,
    seed: int = 0,
    service_time: float = 0.0,
    max_events: int | None = None,
    on_event=None,
) -> RunResult:
    """Drop-in fast replacement for the supported ``run_arrow`` subset.

    Accepts the same model knobs as :func:`repro.core.runner.run_arrow`
    except ``notify_origin`` and ``tracer`` (message-level features); the
    returned result is bit-identical to the message simulator's.
    """
    engine = FastArrowEngine(
        graph, tree, latency=latency, seed=seed, service_time=service_time
    )
    return engine.run(schedule, max_events=max_events, on_event=on_event)
