"""Run results and total-order verification for queuing protocols.

Every protocol runner in this library produces a :class:`RunResult`:
per-request completion records plus the reconstructed queuing order.  The
verification helpers check the defining property of distributed queuing —
the completions describe one total order containing every request exactly
once, starting at the virtual root request — and are used pervasively by
the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from repro.core.requests import ROOT_RID, RequestSchedule
from repro.errors import ProtocolError

__all__ = ["CompletionRecord", "RunResult", "verify_total_order"]


class CompletionRecord(NamedTuple):
    """Completion of one request (the paper's Definition 3.2 event).

    ``rid`` was queued behind ``predecessor``; ``informed_node`` (the
    issuer of the predecessor) learned this at ``completed_at``; the
    request's ``queue`` message traversed ``hops`` tree links.

    A named tuple rather than a dataclass: protocol runs mint one record
    per request on their hot path, and tuple construction is several
    times cheaper than a frozen dataclass ``__init__``.
    """

    rid: int
    predecessor: int
    informed_node: int
    completed_at: float
    hops: int


@dataclass(slots=True)
class RunResult:
    """Outcome of running a queuing protocol on a request schedule."""

    schedule: RequestSchedule
    completions: dict[int, CompletionRecord] = field(default_factory=dict)
    #: Simulation time when the last event fired.
    makespan: float = 0.0
    #: Aggregate network counters (messages, hops), protocol-specific.
    network_stats: dict[str, int] = field(default_factory=dict)
    #: Wall-clock seconds spent simulating (for throughput reporting).
    #: Excluded from equality: wall clock is measurement noise, and two
    #: bit-identical runs must compare equal however long they took.
    wall_seconds: float = field(default=0.0, compare=False)

    # ------------------------------------------------------------------
    def record(self, rec: CompletionRecord) -> None:
        """Store one completion; duplicates indicate a protocol bug."""
        if rec.rid in self.completions:
            raise ProtocolError(f"request {rec.rid} completed twice")
        self.completions[rec.rid] = rec

    @property
    def order(self) -> list[int]:
        """Queuing order as a list of rids (root request excluded).

        Reconstructed by following the successor chain from the virtual
        root request.  Raises :class:`ProtocolError` if the completions do
        not form a single chain over all requests.
        """
        succ: dict[int, int] = {}
        for rec in self.completions.values():
            if rec.predecessor in succ:
                raise ProtocolError(
                    f"requests {succ[rec.predecessor]} and {rec.rid} both "
                    f"claim predecessor {rec.predecessor}"
                )
            succ[rec.predecessor] = rec.rid
        chain: list[int] = []
        cur = ROOT_RID
        while cur in succ:
            cur = succ[cur]
            chain.append(cur)
        if len(chain) != len(self.completions):
            raise ProtocolError(
                f"successor chain covers {len(chain)} of "
                f"{len(self.completions)} completed requests"
            )
        return chain

    # ------------------------------------------------------------------
    def latency(self, rid: int) -> float:
        """Latency of one request (Definition 3.2)."""
        rec = self.completions[rid]
        return rec.completed_at - self.schedule.by_rid(rid).time

    @property
    def total_latency(self) -> float:
        """Total cost = sum of all latencies (Definition 3.3)."""
        return sum(self.latency(rid) for rid in self.completions)

    @property
    def total_hops(self) -> int:
        """Total queue-message link traversals across all requests."""
        return sum(rec.hops for rec in self.completions.values())

    @property
    def mean_hops(self) -> float:
        """Average hops per request (the Fig. 11 metric)."""
        if not self.completions:
            return 0.0
        return self.total_hops / len(self.completions)

    def local_find_fraction(self) -> float:
        """Fraction of requests completed with zero messages."""
        if not self.completions:
            return 0.0
        zero = sum(1 for rec in self.completions.values() if rec.hops == 0)
        return zero / len(self.completions)


def verify_total_order(result: RunResult) -> list[int]:
    """Check the run queued every request exactly once; return the order.

    Raises :class:`ProtocolError` on any violation:
    * some request never completed,
    * a request completed twice (caught at record time),
    * the successor relation is not a single chain from the root request.
    """
    missing = [
        r.rid for r in result.schedule if r.rid not in result.completions
    ]
    if missing:
        raise ProtocolError(f"requests never completed: {missing[:10]}")
    order = result.order  # raises on structural violations
    if sorted(order) != [r.rid for r in result.schedule]:
        raise ProtocolError("queuing order does not cover the schedule exactly")
    return order
