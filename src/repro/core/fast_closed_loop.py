"""Fast closed-loop engine: the §5 measurement loop without the message layer.

:func:`closed_loop_arrow_fast` and :func:`closed_loop_centralized_fast`
replay the full closed-loop dynamics of :mod:`repro.workloads.closed_loop`
— per-processor request budgets, ``think_time`` between operations,
per-node sequential ``service_time``, and the routed ``queue_reply``
acknowledgements over ``G`` — on a flat binary heap over ``(time, seq)``
tuples with plain array node state.  No :class:`~repro.net.message.Message`
objects, no per-event :class:`~repro.sim.events.Event` dataclasses, no
:class:`~repro.net.network.Network` dispatch.

The produced :class:`~repro.workloads.closed_loop.ClosedLoopResult` is
**bit-identical** to the message-level drivers' (same makespan, per-request
hops and latencies, issue/ack times, message totals, tie-breaking and RNG
draws), which ``tests/core/test_fast_closed_loop_parity.py`` enforces
instance by instance.

The event loops themselves live in :func:`_run_arrow_closed_loop` and
:func:`_run_centralized_closed_loop`, parameterised by their *delay
sources* (deterministic per-link tables, a per-send sampler, a router for
the acknowledgements).  The fast engine binds them to scalar
``LatencyModel.sample`` calls; the numpy batch engine
(:mod:`repro.core.batch`) binds the *same* loops to block-buffered
vectorized draws, which is what keeps all three engines bit-identical by
construction.

Why bit-identical is achievable
-------------------------------
The message-level kernel orders events by ``(time, priority, seq)`` with a
single global sequence counter, and every event of a closed-loop run uses
the default priority, so the total order reduces to ``(time, seq)``.  The
fast engine schedules the *same* events in the *same* order:

* the driver's n initial ``issue`` events at t = 0 (seqs 0..n-1), then one
  event per message delivery (plus one dispatch per delivery when
  ``service_time > 0``) and one event per think-time re-issue, each
  consuming the next sequence number at the moment the message simulator
  would have scheduled it;
* with ``think_time == 0`` the re-issue runs *inside* the acknowledgement
  dispatch (no event of its own), exactly like ``_Driver.on_ack``;
* FIFO clamping per directed tree link, the per-node busy-until service
  model, and the acknowledgements' shortest-path routing (same Dijkstra
  predecessor array as :meth:`Network._route`) are replayed
  arithmetically; stochastic latency models draw from the same
  ``spawn_rng(seed, "network-latency")`` stream in the same order —
  one draw per tree-link traversal, one draw per edge of a routed path.
"""

from __future__ import annotations

import time as _wall
from heapq import heappop, heappush

from repro.core.requests import NO_RID, ROOT_RID
from repro.errors import NetworkError, SimulationError
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import dijkstra
from repro.graphs.validation import require_spanning_subgraph
from repro.net.latency import LatencyModel, UnitLatency
from repro.sim.rng import spawn_rng
from repro.spanning.tree import SpanningTree
from repro.workloads.closed_loop import ClosedLoopResult, _check_complete

__all__ = [
    "closed_loop_arrow_fast",
    "closed_loop_centralized_fast",
    "closed_loop_runner",
]


def closed_loop_runner(protocol: str, engine: str):
    """Resolve ``(protocol, engine)`` to a closed-loop run function.

    The single validation point for the experiment layer's closed-loop
    ``engine="fast" | "message" | "batch"`` knobs — unknown names raise
    instead of silently falling back.
    """
    if protocol not in ("arrow", "centralized"):
        raise ValueError(
            f"protocol must be 'arrow' or 'centralized', got {protocol!r}"
        )
    if engine == "fast":
        return (
            closed_loop_arrow_fast
            if protocol == "arrow"
            else closed_loop_centralized_fast
        )
    if engine == "message":
        from repro.workloads.closed_loop import (
            closed_loop_arrow,
            closed_loop_centralized,
        )

        return closed_loop_arrow if protocol == "arrow" else closed_loop_centralized
    if engine == "batch":
        from repro.core.batch import (
            closed_loop_arrow_batch,
            closed_loop_centralized_batch,
        )

        return (
            closed_loop_arrow_batch
            if protocol == "arrow"
            else closed_loop_centralized_batch
        )
    raise ValueError(
        f"engine must be 'fast', 'message' or 'batch', got {engine!r}"
    )


def _raise_livelock(max_events: int | None) -> None:
    raise SimulationError(
        f"exceeded max_events={max_events}; possible livelock in protocol code"
    )


# Event type tags inside the heap tuples.  Every tuple is
# (time, seq, tag, node, src, rid, hops); seq is globally unique so the
# heap order never compares past it — exactly the kernel's tie-breaking.
_ISSUE = 0  # driver.issue at a processor
_QARRIVE = 1  # queue / creq message reaches a node (Network._arrive)
_QDISPATCH = 2  # its handler runs after the service delay
_RARRIVE = 3  # queue_reply acknowledgement reaches its origin
_RDISPATCH = 4  # its handler (driver.on_ack) runs after the service delay


def _driver_state(n: int, requests_per_proc: int):
    """Fresh per-run driver arrays + the seeded event heap.

    The kernel schedules the n initial issue events before anything else,
    so they own sequence numbers 0..n-1; ``remaining`` is the per-processor
    budget and the four trailing lists are the result's per-request fields
    (``ack_times`` is rid-indexed, hence preallocated).
    """
    heap: list[tuple[float, int, int, int, int, int, int]] = [
        (0.0, p, _ISSUE, p, -1, -1, 0) for p in range(n)
    ]
    remaining = [requests_per_proc] * n
    issue_times: list[float] = []
    owners: list[int] = []
    ack_times = [-1.0] * (n * requests_per_proc)
    hops_list: list[int] = []
    latencies: list[float] = []
    return heap, remaining, issue_times, owners, ack_times, hops_list, latencies


def _fill_result(
    result: ClosedLoopResult,
    *,
    makespan: float,
    completions: int,
    hops: list[int],
    local_finds: int,
    messages: int,
    issue_times: list[float],
    ack_times: list[float],
    owners: list[int],
    latencies: list[float],
    wall: float,
) -> ClosedLoopResult:
    """Assemble and sanity-check the result (shared run epilogue)."""
    result.makespan = makespan
    result.completions = completions
    result.hops = hops
    result.local_finds = local_finds
    result.messages_sent = messages
    result.issue_times = issue_times
    result.ack_times = ack_times
    result.owners = owners
    result.latencies = latencies
    result.wall_seconds = wall
    _check_complete(result)
    return result


def _tree_link_weights(graph: Graph, parent: list[int], root: int) -> list[float]:
    """Per-link weights as the Network sees them: graph weights on tree edges."""
    weight = [0.0] * len(parent)
    for v in range(len(parent)):
        if v != root:
            weight[v] = graph.weight(v, parent[v])
    return weight


def _det_link_delays(
    model: LatencyModel,
    parent: list[int],
    weight: list[float],
    root: int,
    rng,
) -> tuple[list[float] | None, list[float] | None]:
    """Per-directed-tree-link delays of a deterministic latency model.

    Deterministic models may legally depend on the (src, dst) direction,
    so one delay per directed link: up[v] = v -> parent[v], down[v] =
    parent[v] -> v.  ``(None, None)`` for stochastic models, which must
    draw per send.
    """
    if model.stochastic:
        return None, None
    sample = model.sample
    n = len(parent)
    det_up = [
        sample(v, parent[v], weight[v], rng) if v != root else 0.0
        for v in range(n)
    ]
    det_down = [
        sample(parent[v], v, weight[v], rng) if v != root else 0.0
        for v in range(n)
    ]
    return det_up, det_down


class _Router:
    """Shortest-path routing over ``G``, mirroring :meth:`Network._route`.

    Caches the Dijkstra predecessor array per source and the reconstructed
    path per ``(src, dst)`` pair.  For deterministic latency models the
    summed path delay is cached outright; stochastic models re-sample every
    edge per send, in path order, exactly as ``send_routed`` does.
    """

    __slots__ = ("graph", "latency", "rng", "_sssp", "_paths", "_det")

    def __init__(self, graph: Graph, latency: LatencyModel, rng) -> None:
        self.graph = graph
        self.latency = latency
        self.rng = rng
        self._sssp: dict[int, list[int]] = {}
        self._paths: dict[tuple[int, int], tuple[list[int], list[int], list[float]]] = {}
        self._det: dict[tuple[int, int], tuple[float, int]] = {}

    def _path_edges(
        self, src: int, dst: int
    ) -> tuple[list[int], list[int], list[float]]:
        key = (src, dst)
        cached = self._paths.get(key)
        if cached is not None:
            return cached
        pred = self._sssp.get(src)
        if pred is None:
            _, pred = dijkstra(self.graph, src)
            self._sssp[src] = pred
        path = [dst]
        while path[-1] != src:
            nxt = pred[path[-1]]
            if nxt < 0:
                raise NetworkError(f"node {dst} unreachable from {src}")
            path.append(nxt)
        path.reverse()
        srcs = path[:-1]
        dsts = path[1:]
        weights = [self.graph.weight(a, b) for a, b in zip(srcs, dsts)]
        edges = (srcs, dsts, weights)
        self._paths[key] = edges
        return edges

    def delay_hops(self, src: int, dst: int) -> tuple[float, int]:
        """Summed per-edge delay and hop count of one routed send."""
        if not self.latency.stochastic:
            cached = self._det.get((src, dst))
            if cached is not None:
                return cached
        srcs, dsts, weights = self._path_edges(src, dst)
        sample = self.latency.sample
        rng = self.rng
        delay = 0.0
        for a, b, w in zip(srcs, dsts, weights):
            delay += sample(a, b, w, rng)
        out = (delay, len(srcs))
        if not self.latency.stochastic:
            self._det[(src, dst)] = out
        return out


# ----------------------------------------------------------------------
# shared closed-loop cores (fast and batch engines both run these)
# ----------------------------------------------------------------------
def _run_arrow_closed_loop(
    result: ClosedLoopResult,
    parent: list[int],
    root: int,
    weight: list[float],
    *,
    requests_per_proc: int,
    service: float,
    think: float,
    max_events: int | None,
    det_up: list[float] | None,
    det_down: list[float] | None,
    sample_link,
    router,
    on_event=None,
) -> ClosedLoopResult:
    """The arrow closed-loop event loop, delay sources injected.

    ``det_up``/``det_down`` carry per-directed-link delays for
    deterministic latency models (``sample_link`` is then never called);
    for stochastic models they are ``None`` and ``sample_link(src, dst,
    weight)`` must return the next delay of the run's latency stream.
    ``router.delay_hops`` provides the routed acknowledgement delays.
    ``on_event``, when set, receives the queuing-layer protocol trace
    (see :mod:`repro.monitors`); acknowledgement traffic is application
    level and not part of it.
    """
    n = len(parent)

    # Protocol state (ArrowNode.init_pointers, flattened).
    link = parent[:]
    link[root] = root
    last_rid = [NO_RID] * n
    last_rid[root] = ROOT_RID

    # FIFO clamp per directed tree link: 2v = v -> parent[v],
    # 2v + 1 = parent[v] -> v (FifoChannel._last_delivery, flattened).
    last_delivery = [0.0] * (2 * n)
    busy_until = [0.0] * n  # Network._busy_until

    (
        heap,
        remaining,
        issue_times,
        owners,
        ack_times,
        hops_list,
        latencies,
    ) = _driver_state(n, requests_per_proc)
    seq = n
    next_rid = 0
    messages = 0
    completions = 0
    local_finds = 0
    makespan = 0.0
    fired = 0
    limit = float("inf") if max_events is None else max_events

    emit = on_event

    def send_queue(v: int, dst: int, rid: int, hops: int, now: float) -> None:
        # One tree-link traversal (send_link / forward + FifoChannel).
        nonlocal seq, messages
        if emit is not None:
            emit("send", rid, v, dst, now)
        down = parent[dst] == v
        if det_up is None:
            delay = sample_link(v, dst, weight[dst if down else v])
        else:
            delay = det_down[dst] if down else det_up[v]
        chan = 2 * dst + 1 if down else 2 * v
        at = now + delay
        if at < last_delivery[chan]:
            at = last_delivery[chan]
        last_delivery[chan] = at
        heappush(heap, (at, seq, _QARRIVE, dst, v, rid, hops))
        seq += 1
        messages += 1

    def send_reply(src: int, origin: int, rid: int, now: float) -> None:
        # Routed queue_reply over G (send_routed); a self-reply delivers
        # after zero delay as its own event, with no latency samples.
        nonlocal seq, messages
        messages += 1
        if src == origin:
            at = now
        else:
            delay, _ = router.delay_hops(src, origin)
            at = now + delay
        heappush(heap, (at, seq, _RARRIVE, origin, -1, rid, 0))
        seq += 1

    def issue(p: int, now: float) -> None:
        # _Driver.issue + ArrowNode.initiate, flattened.
        nonlocal next_rid, completions, local_finds
        if remaining[p] <= 0:
            return
        remaining[p] -= 1
        rid = next_rid
        next_rid += 1
        owners.append(p)
        issue_times.append(now)
        if emit is not None:
            emit("init", rid, p, now)
        x = link[p]
        if x == p:
            # Local find: queued behind p's previous request, zero messages.
            if emit is not None:
                emit("complete", rid, last_rid[p], p, now, 0)
            last_rid[p] = rid
            completions += 1
            local_finds += 1
            hops_list.append(0)
            latencies.append(0.0)
            send_reply(p, p, rid, now)
            return
        last_rid[p] = rid
        link[p] = p
        send_queue(p, x, rid, 1, now)

    t0 = _wall.perf_counter()
    while heap:
        now, _, tag, v, src, rid, hops = heappop(heap)
        fired += 1
        if fired > limit:
            _raise_livelock(max_events)
        if tag == _QARRIVE and service > 0.0:
            # Serialise handling at v (Network._arrive): the path-reversal
            # step runs as its own dispatch event after the service delay.
            begin = busy_until[v]
            if now > begin:
                begin = now
            finish = begin + service
            busy_until[v] = finish
            heappush(heap, (finish, seq, _QDISPATCH, v, src, rid, hops))
            seq += 1
        elif tag == _QARRIVE or tag == _QDISPATCH:
            # Path reversal (ArrowNode.on_message).
            if emit is not None:
                emit("deliver", rid, v, src, now)
            x = link[v]
            link[v] = src
            if x != v:
                send_queue(v, x, rid, hops + 1, now)
            else:
                # v is the sink: rid queued behind v's last request.
                if emit is not None:
                    emit("complete", rid, last_rid[v], v, now, hops)
                completions += 1
                hops_list.append(hops)
                latencies.append(now - issue_times[rid])
                send_reply(v, owners[rid], rid, now)
        elif tag == _RARRIVE and service > 0.0:
            begin = busy_until[v]
            if now > begin:
                begin = now
            finish = begin + service
            busy_until[v] = finish
            heappush(heap, (finish, seq, _RDISPATCH, v, -1, rid, 0))
            seq += 1
        elif tag == _RARRIVE or tag == _RDISPATCH:
            # _Driver.on_ack: record, then re-issue after the think time.
            ack_times[rid] = now
            makespan = now
            if remaining[v] > 0:
                if think > 0:
                    heappush(heap, (now + think, seq, _ISSUE, v, -1, -1, 0))
                    seq += 1
                else:
                    issue(v, now)
        else:  # _ISSUE
            issue(v, now)
    wall = _wall.perf_counter() - t0

    return _fill_result(
        result,
        makespan=makespan,
        completions=completions,
        hops=hops_list,
        local_finds=local_finds,
        messages=messages,
        issue_times=issue_times,
        ack_times=ack_times,
        owners=owners,
        latencies=latencies,
        wall=wall,
    )


def _run_centralized_closed_loop(
    result: ClosedLoopResult,
    n: int,
    center: int,
    *,
    requests_per_proc: int,
    service: float,
    think: float,
    max_events: int | None,
    router,
) -> ClosedLoopResult:
    """The centralized closed-loop event loop, routing injected.

    Every delay of this protocol is a routed path (creq to the centre,
    queue_reply back), so ``router.delay_hops`` is the only delay source.
    """
    busy_until = [0.0] * n
    (
        heap,
        remaining,
        issue_times,
        owners,
        ack_times,
        hops_list,
        latencies,
    ) = _driver_state(n, requests_per_proc)
    seq = n
    next_rid = 0
    messages = 0
    completions = 0
    local_finds = 0
    makespan = 0.0
    fired = 0
    limit = float("inf") if max_events is None else max_events

    def enqueue_at_center(rid: int, origin: int, hops: int, now: float) -> None:
        # The §5 two-message discipline (CentralizedNode._enqueue_at_center
        # in reply_mode): record the completion at the centre, then
        # acknowledge the requester with one routed queue_reply.
        nonlocal seq, messages, completions, local_finds
        completions += 1
        hops_list.append(hops)
        latencies.append(now - issue_times[rid])
        if hops == 0:
            local_finds += 1
        messages += 1
        if origin == center:
            at = now
        else:
            delay, _ = router.delay_hops(center, origin)
            at = now + delay
        heappush(heap, (at, seq, _RARRIVE, origin, -1, rid, 0))
        seq += 1

    def issue(p: int, now: float) -> None:
        nonlocal seq, next_rid, messages
        if remaining[p] <= 0:
            return
        remaining[p] -= 1
        rid = next_rid
        next_rid += 1
        owners.append(p)
        issue_times.append(now)
        if p == center:
            # The centre skips the first leg and enqueues locally.
            enqueue_at_center(rid, p, 0, now)
            return
        # One routed creq to the centre.
        messages += 1
        delay, hops = router.delay_hops(p, center)
        heappush(heap, (now + delay, seq, _QARRIVE, center, p, rid, hops))
        seq += 1

    t0 = _wall.perf_counter()
    while heap:
        now, _, tag, v, src, rid, hops = heappop(heap)
        fired += 1
        if fired > limit:
            _raise_livelock(max_events)
        if tag == _QARRIVE and service > 0.0:
            # creq arrivals serialise at the centre — the Fig. 10 bottleneck.
            begin = busy_until[v]
            if now > begin:
                begin = now
            finish = begin + service
            busy_until[v] = finish
            heappush(heap, (finish, seq, _QDISPATCH, v, src, rid, hops))
            seq += 1
        elif tag == _QARRIVE or tag == _QDISPATCH:
            enqueue_at_center(rid, src, hops, now)
        elif tag == _RARRIVE and service > 0.0:
            begin = busy_until[v]
            if now > begin:
                begin = now
            finish = begin + service
            busy_until[v] = finish
            heappush(heap, (finish, seq, _RDISPATCH, v, -1, rid, 0))
            seq += 1
        elif tag == _RARRIVE or tag == _RDISPATCH:
            ack_times[rid] = now
            makespan = now
            if remaining[v] > 0:
                if think > 0:
                    heappush(heap, (now + think, seq, _ISSUE, v, -1, -1, 0))
                    seq += 1
                else:
                    issue(v, now)
        else:  # _ISSUE
            issue(v, now)
    wall = _wall.perf_counter() - t0

    return _fill_result(
        result,
        makespan=makespan,
        completions=completions,
        hops=hops_list,
        local_finds=local_finds,
        messages=messages,
        issue_times=issue_times,
        ack_times=ack_times,
        owners=owners,
        latencies=latencies,
        wall=wall,
    )


# ----------------------------------------------------------------------
# the fast engine: scalar delay sources bound to the shared cores
# ----------------------------------------------------------------------
def closed_loop_arrow_fast(
    graph: Graph,
    tree: SpanningTree,
    *,
    requests_per_proc: int,
    latency: LatencyModel | None = None,
    seed: int = 0,
    service_time: float = 0.0,
    think_time: float = 0.0,
    max_events: int | None = None,
    on_event=None,
) -> ClosedLoopResult:
    """Closed-loop arrow run, bit-identical to ``closed_loop_arrow``."""
    if service_time < 0:
        raise NetworkError(f"service_time must be >= 0, got {service_time}")
    require_spanning_subgraph(graph, [(u, v) for u, v, _ in tree.edges()])
    n = graph.num_nodes
    result = ClosedLoopResult("arrow", n, requests_per_proc)
    model = latency if latency is not None else UnitLatency()
    rng = spawn_rng(seed, "network-latency")

    root = tree.root
    parent = list(tree.parent)
    weight = _tree_link_weights(graph, parent, root)
    det_up, det_down = _det_link_delays(model, parent, weight, root, rng)
    sample = model.sample

    return _run_arrow_closed_loop(
        result,
        parent,
        root,
        weight,
        requests_per_proc=requests_per_proc,
        service=float(service_time),
        think=float(think_time),
        max_events=max_events,
        det_up=det_up,
        det_down=det_down,
        sample_link=lambda v, dst, w: sample(v, dst, w, rng),
        router=_Router(graph, model, rng),
        on_event=on_event,
    )


def closed_loop_centralized_fast(
    graph: Graph,
    center: int,
    *,
    requests_per_proc: int,
    latency: LatencyModel | None = None,
    seed: int = 0,
    service_time: float = 0.0,
    think_time: float = 0.0,
    max_events: int | None = None,
) -> ClosedLoopResult:
    """Closed-loop centralized run, bit-identical to ``closed_loop_centralized``."""
    if service_time < 0:
        raise NetworkError(f"service_time must be >= 0, got {service_time}")
    n = graph.num_nodes
    if not 0 <= center < n:
        raise NetworkError(f"center {center} out of range for {n} nodes")
    result = ClosedLoopResult("centralized", n, requests_per_proc)
    model = latency if latency is not None else UnitLatency()
    rng = spawn_rng(seed, "network-latency")

    return _run_centralized_closed_loop(
        result,
        n,
        center,
        requests_per_proc=requests_per_proc,
        service=float(service_time),
        think=float(think_time),
        max_events=max_events,
        router=_Router(graph, model, rng),
    )
