"""Adaptive-pointer queuing baselines: NTA [17] and Ivy-style pointers [15].

The paper's related-work section (§1.1) contrasts arrow with two protocols
that also use path reversal but **do not** restrict pointers to a fixed
spanning tree; both assume a completely connected network:

* the Naimi–Trehel–Arnold protocol (NTA), whose expected message cost is
  ``O(log n)`` per operation under probabilistic assumptions;
* Li & Hudak's Ivy object manager, whose "path shorting" pointer discipline
  (every node visited by a find re-points directly at the requester) has
  amortised cost ``Θ(log n)`` per request [Ginat, Sleator, Tarjan].

Both share the same pointer discipline for the queuing abstraction studied
here: a request from ``v`` chases ``last`` pointers toward the probable
tail, and every visited node re-points its ``last`` at ``v`` (the incoming
tail).  :class:`AdaptivePointerNode` implements exactly that discipline;
the ablation benches compare its message counts against arrow's.

Correctness relies on atomic handling plus FIFO channels, as with arrow:
when the request reaches a node that is its own ``last`` (the current
tail), it has found its predecessor.
"""

from __future__ import annotations

import time as _wall
from typing import Callable

from repro.core.arrow import CompletionCallback
from repro.core.queueing import CompletionRecord, RunResult
from repro.core.requests import ROOT_RID, RequestSchedule
from repro.errors import GraphError, ProtocolError
from repro.graphs.graph import Graph
from repro.net.latency import LatencyModel, UnitLatency
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import ProtocolNode
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer

__all__ = ["AdaptivePointerNode", "run_adaptive"]


class AdaptivePointerNode(ProtocolNode):
    """NTA/Ivy-style queuing node on a completely connected network."""

    __slots__ = ("last", "last_rid", "_on_complete", "app_handler")

    def __init__(self, on_complete: CompletionCallback) -> None:
        super().__init__()
        self.last: int = -1
        self.last_rid: int = ROOT_RID  # overwritten for non-roots at init
        self._on_complete = on_complete
        self.app_handler: Callable[[Message], None] | None = None

    def init_pointers(self, root: int) -> None:
        """Point every node's ``last`` at the initial tail owner."""
        from repro.core.requests import NO_RID

        if self.node_id == root:
            self.last = self.node_id
            self.last_rid = ROOT_RID
        else:
            self.last = root
            self.last_rid = NO_RID

    # ------------------------------------------------------------------
    def initiate(self, rid: int) -> None:
        """Issue a request: chase ``last`` pointers toward the tail."""
        assert self.net is not None
        if self.last == self.node_id:
            pred = self.last_rid
            self.last_rid = rid
            self._on_complete(rid, pred, self.node_id, self.net.sim.now, 0)
            return
        target = self.last
        self.last = self.node_id
        self.last_rid = rid
        self.send_routed("nta_req", target, rid=rid, origin=self.node_id, fwd=0)

    def on_message(self, msg: Message) -> None:
        """Forward toward the probable tail, re-pointing at the requester."""
        assert self.net is not None
        if msg.kind != "nta_req":
            if self.app_handler is not None:
                self.app_handler(msg)
                return
            raise ProtocolError(f"unexpected message {msg.kind!r}")
        rid = msg.payload["rid"]
        origin = msg.payload["origin"]
        fwd = msg.payload["fwd"] + msg.hops
        old = self.last
        # Path shorting: every visited node points straight at the requester.
        self.last = origin
        if old == self.node_id:
            # This node holds the tail: the request found its predecessor.
            pred = self.last_rid
            self._on_complete(rid, pred, self.node_id, self.net.sim.now, fwd)
        else:
            self.send_routed("nta_req", old, rid=rid, origin=origin, fwd=fwd)


def run_adaptive(
    graph: Graph,
    root: int,
    schedule: RequestSchedule,
    *,
    latency: LatencyModel | None = None,
    seed: int = 0,
    service_time: float = 0.0,
    tracer: Tracer | None = None,
    max_events: int | None = None,
) -> RunResult:
    """Run the adaptive-pointer (NTA/Ivy) protocol on one schedule.

    The graph should be complete (the protocols' stated assumption); the
    runner only requires that routed messages can reach every node.
    """
    if not 0 <= root < graph.num_nodes:
        raise GraphError(
            f"root {root} outside the graph's nodes 0..{graph.num_nodes - 1}"
        )
    schedule.validate_nodes(graph.num_nodes)
    sim = Simulator(max_events=max_events)
    net = Network(
        graph,
        sim,
        latency if latency is not None else UnitLatency(),
        seed=seed,
        service_time=service_time,
        tracer=tracer,
    )
    result = RunResult(schedule)

    def on_complete(rid: int, pred: int, node: int, when: float, hops: int) -> None:
        result.record(CompletionRecord(rid, pred, node, when, hops))

    nodes = [AdaptivePointerNode(on_complete) for _ in range(graph.num_nodes)]
    net.register_all(nodes)
    for nd in nodes:
        nd.init_pointers(root)

    for req in schedule:
        sim.call_at(req.time, nodes[req.node].initiate, req.rid)

    t0 = _wall.perf_counter()
    result.makespan = sim.run()
    result.wall_seconds = _wall.perf_counter() - t0
    result.network_stats = net.stats.as_dict()

    if len(result.completions) != len(schedule):
        raise ProtocolError(
            f"adaptive run completed {len(result.completions)} of "
            f"{len(schedule)} requests"
        )
    return result
