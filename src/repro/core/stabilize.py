"""Self-stabilisation of arrow link states (extension, after [9]).

Herlihy & Tirthapura showed the arrow protocol can be made self-stabilising
with *local checking and correction*.  The key observation: in a quiescent
state (no messages in flight), a link configuration is legal — following
the pointers from any node reaches a unique sink — **iff every tree edge is
crossed by exactly one pointer**:

* an edge crossed by both endpoints' pointers is a 2-cycle (messages would
  bounce forever);
* an edge crossed by neither is abandoned (two separate "sink regions",
  i.e. multiple queue tails).

Both conditions are checkable by the edge's two endpoints alone, which is
what makes the protocol locally checkable.  This module implements the
checker and a one-pass top-down correction: processing nodes in BFS order
(parents before children), each non-root node repairs the edge to its
parent by adjusting only its own pointer.  Because a node's pointer is
finalised exactly when the node is processed and each edge is examined at
its child endpoint after its parent's pointer is final, a single pass
restores legality on every edge — the property-based tests corrupt
configurations arbitrarily and verify convergence.

Scope note: as in [9], correction applies to quiescent configurations;
in-flight message recovery requires the full protocol's message
re-stamping, which is outside this reproduction's scope (documented in
DESIGN.md).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.arrow import ArrowNode
from repro.spanning.tree import SpanningTree

__all__ = [
    "EdgeViolation",
    "find_violations",
    "is_legal_configuration",
    "count_sinks",
    "sink_reached_from",
    "stabilize",
]


@dataclass(frozen=True, slots=True)
class EdgeViolation:
    """A tree edge whose pointer crossing count is not exactly one.

    ``kind`` is ``"double"`` (both endpoints point at each other) or
    ``"none"`` (neither does).
    """

    child: int
    parent: int
    kind: str


def _crossings(nodes: list[ArrowNode], u: int, p: int) -> int:
    return int(nodes[u].link == p) + int(nodes[p].link == u)


def find_violations(nodes: list[ArrowNode], tree: SpanningTree) -> list[EdgeViolation]:
    """All illegal edges in the current (quiescent) configuration."""
    out: list[EdgeViolation] = []
    for v in range(tree.num_nodes):
        if v == tree.root:
            continue
        p = tree.parent[v]
        c = _crossings(nodes, v, p)
        if c == 2:
            out.append(EdgeViolation(v, p, "double"))
        elif c == 0:
            out.append(EdgeViolation(v, p, "none"))
    return out


def is_legal_configuration(nodes: list[ArrowNode], tree: SpanningTree) -> bool:
    """True iff every tree edge is crossed by exactly one pointer."""
    return not find_violations(nodes, tree)


def count_sinks(nodes: list[ArrowNode]) -> int:
    """Number of nodes whose pointer targets themselves."""
    return sum(1 for nd in nodes if nd.link == nd.node_id)


def sink_reached_from(nodes: list[ArrowNode], start: int, limit: int) -> int | None:
    """Follow pointers from ``start``; the sink reached, or None on a cycle.

    ``limit`` bounds the walk (use the node count: a legal walk never
    revisits a node).
    """
    cur = start
    for _ in range(limit + 1):
        nxt = nodes[cur].link
        if nxt == cur:
            return cur
        cur = nxt
    return None


def stabilize(nodes: list[ArrowNode], tree: SpanningTree) -> int:
    """Repair an arbitrary quiescent configuration in one BFS pass.

    Processing parents before children, each non-root node ``v`` looks at
    the edge to its parent ``p`` (whose pointer is already final):

    * crossed twice (``link(v) == p`` and ``link(p) == v``): ``v`` breaks
      the 2-cycle by becoming a sink (``link(v) <- v``); the edge keeps the
      parent's crossing;
    * crossed zero times: ``v`` re-points up (``link(v) <- p``);
    * crossed once: nothing to do.

    Returns the number of pointer corrections applied.  Afterwards the
    configuration is legal: exactly one sink, every pointer chain reaches
    it (asserted by the tests).
    """
    fixes = 0
    order: deque[int] = deque([tree.root])
    bfs: list[int] = []
    while order:
        u = order.popleft()
        bfs.append(u)
        order.extend(tree.children[u])
    for v in bfs:
        if v == tree.root:
            continue
        p = tree.parent[v]
        c = _crossings(nodes, v, p)
        if c == 2:
            nodes[v].link = v
            fixes += 1
        elif c == 0:
            nodes[v].link = p
            fixes += 1
    return fixes
