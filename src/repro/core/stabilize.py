"""Self-stabilisation of arrow link states (extension, after [9]).

Herlihy & Tirthapura showed the arrow protocol can be made self-stabilising
with *local checking and correction*.  The key observation: in a quiescent
state (no messages in flight), a link configuration is legal — following
the pointers from any node reaches a unique sink — **iff every tree edge is
crossed by exactly one pointer**:

* an edge crossed by both endpoints' pointers is a 2-cycle (messages would
  bounce forever);
* an edge crossed by neither is abandoned (two separate "sink regions",
  i.e. multiple queue tails).

Both conditions are checkable by the edge's two endpoints alone, which is
what makes the protocol locally checkable.  This module implements the
checker and a one-pass top-down correction: processing nodes in BFS order
(parents before children), each non-root node repairs the edge to its
parent by adjusting only its own pointer.  Because a node's pointer is
finalised exactly when the node is processed and each edge is examined at
its child endpoint after its parent's pointer is final, a single pass
restores legality on every edge — the property-based tests corrupt
configurations arbitrarily and verify convergence.

Scope note: correction applies to quiescent configurations, and since the
fault axis landed this module is the **live repair step** of every engine:
:mod:`repro.faults` runs :func:`find_violations` / :func:`stabilize` at
the first quiescent point after a crash or message loss (and once more at
the end of a run), restoring a unique sink before the next request is
issued.  The runtime monitors (:mod:`repro.monitors`) replay the same
pass on their mirror state to cross-check the engines' repairs.  The
node-based API operates on :class:`~repro.core.arrow.ArrowNode` lists;
the ``*_links`` variants operate on a plain ``link`` pointer array, which
is what the flat-heap engines and the monitors hold — both delegate to
the same edge arithmetic, so there is exactly one repair algorithm.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.arrow import ArrowNode
from repro.spanning.tree import SpanningTree

__all__ = [
    "EdgeViolation",
    "find_violations",
    "find_violations_links",
    "is_legal_configuration",
    "count_sinks",
    "sink_reached_from",
    "stabilize",
    "stabilize_links",
]


@dataclass(frozen=True, slots=True)
class EdgeViolation:
    """A tree edge whose pointer crossing count is not exactly one.

    ``kind`` is ``"double"`` (both endpoints point at each other) or
    ``"none"`` (neither does).
    """

    child: int
    parent: int
    kind: str


def _links_of(nodes: list[ArrowNode]) -> list[int]:
    return [nd.link for nd in nodes]


def _crossings(nodes: list[ArrowNode], u: int, p: int) -> int:
    return int(nodes[u].link == p) + int(nodes[p].link == u)


def find_violations_links(
    link: list[int], tree: SpanningTree
) -> list[EdgeViolation]:
    """All illegal edges of a quiescent pointer array (see module docs)."""
    out: list[EdgeViolation] = []
    parent = tree.parent
    for v in range(tree.num_nodes):
        if v == tree.root:
            continue
        p = parent[v]
        c = int(link[v] == p) + int(link[p] == v)
        if c == 2:
            out.append(EdgeViolation(v, p, "double"))
        elif c == 0:
            out.append(EdgeViolation(v, p, "none"))
    return out


def find_violations(nodes: list[ArrowNode], tree: SpanningTree) -> list[EdgeViolation]:
    """All illegal edges in the current (quiescent) configuration."""
    return find_violations_links(_links_of(nodes), tree)


def is_legal_configuration(nodes: list[ArrowNode], tree: SpanningTree) -> bool:
    """True iff every tree edge is crossed by exactly one pointer."""
    return not find_violations(nodes, tree)


def count_sinks(nodes: list[ArrowNode]) -> int:
    """Number of nodes whose pointer targets themselves."""
    return sum(1 for nd in nodes if nd.link == nd.node_id)


def sink_reached_from(nodes: list[ArrowNode], start: int, limit: int) -> int | None:
    """Follow pointers from ``start``; the sink reached, or None on a cycle.

    ``limit`` bounds the walk (use the node count: a legal walk never
    revisits a node).
    """
    cur = start
    for _ in range(limit + 1):
        nxt = nodes[cur].link
        if nxt == cur:
            return cur
        cur = nxt
    return None


def stabilize_links(link: list[int], tree: SpanningTree) -> int:
    """Repair an arbitrary quiescent pointer array in one BFS pass.

    The in-place array counterpart of :func:`stabilize`, used directly by
    the flat-heap engines' crash-repair path and by the monitors' mirror
    replay.  Returns the number of pointer corrections applied.
    """
    fixes = 0
    parent = tree.parent
    order: deque[int] = deque([tree.root])
    bfs: list[int] = []
    while order:
        u = order.popleft()
        bfs.append(u)
        order.extend(tree.children[u])
    for v in bfs:
        if v == tree.root:
            continue
        p = parent[v]
        c = int(link[v] == p) + int(link[p] == v)
        if c == 2:
            link[v] = v
            fixes += 1
        elif c == 0:
            link[v] = p
            fixes += 1
    return fixes


def stabilize(nodes: list[ArrowNode], tree: SpanningTree) -> int:
    """Repair an arbitrary quiescent configuration in one BFS pass.

    Processing parents before children, each non-root node ``v`` looks at
    the edge to its parent ``p`` (whose pointer is already final):

    * crossed twice (``link(v) == p`` and ``link(p) == v``): ``v`` breaks
      the 2-cycle by becoming a sink (``link(v) <- v``); the edge keeps the
      parent's crossing;
    * crossed zero times: ``v`` re-points up (``link(v) <- p``);
    * crossed once: nothing to do.

    Returns the number of pointer corrections applied.  Afterwards the
    configuration is legal: exactly one sink, every pointer chain reaches
    it (asserted by the tests).  This is the repair pass
    :mod:`repro.faults` runs after a crash on the message engine; the
    flat-heap engines run :func:`stabilize_links` on their pointer array.
    """
    link = _links_of(nodes)
    fixes = stabilize_links(link, tree)
    for nd, target in zip(nodes, link):
        nd.link = target
    return fixes
