"""The centralized queuing baseline of Section 5.

"A globally known central node always stored the current tail of the total
order.  Every queuing request was completed using only two messages, one to
the central node, and one back."

Concretely: a requester sends ``creq`` to the centre (routed over ``G``);
the centre swaps its tail record and informs the *previous* tail's issuer
of its successor (``cinform``), which is the completion event of
Definition 3.2.  With ``notify_origin`` the centre also acknowledges the
requester (``queue_reply``) so closed-loop drivers can issue the next
request — the "one back" message of the paper's measurement loop.

The centre handles every request in the system, so with a positive
per-node service time it saturates as the system grows — the linear
slowdown of Fig. 10.
"""

from __future__ import annotations

from typing import Callable

from repro.core.arrow import CompletionCallback
from repro.core.requests import ROOT_RID
from repro.errors import ProtocolError
from repro.net.message import Message
from repro.net.node import ProtocolNode

__all__ = ["CentralizedNode"]


class CentralizedNode(ProtocolNode):
    """Per-node state machine of the centralized protocol."""

    __slots__ = (
        "center",
        "_on_complete",
        "_notify_origin",
        "_reply_mode",
        "tail_rid",
        "tail_node",
        "is_center",
        "app_handler",
    )

    def __init__(
        self,
        center: int,
        on_complete: CompletionCallback,
        *,
        notify_origin: bool = False,
        reply_mode: bool = False,
    ) -> None:
        """Create a node of the centralized protocol.

        With ``reply_mode`` the protocol uses exactly the paper's two
        messages per request — ``creq`` to the centre and one reply back to
        the requester carrying the predecessor's identity — and the
        completion is recorded at the centre (which maintains the whole
        queue).  Without it, the centre informs the predecessor's issuer
        directly (``cinform``), matching Definition 3.2's completion event
        at the cost of one extra message when ``notify_origin`` is also on.
        """
        super().__init__()
        self.center = center
        self._on_complete = on_complete
        self._notify_origin = notify_origin
        self._reply_mode = reply_mode
        self.is_center = False
        # Tail record, meaningful at the centre only.
        self.tail_rid = ROOT_RID
        self.tail_node = center
        #: Optional hook for application messages (``queue_reply`` etc.).
        self.app_handler: Callable[[Message], None] | None = None

    def init_center(self) -> None:
        """Mark this node as the centre holding the initial (root) tail."""
        self.is_center = True
        self.tail_rid = ROOT_RID
        self.tail_node = self.node_id

    # ------------------------------------------------------------------
    def initiate(self, rid: int) -> None:
        """Issue a request: one routed message to the centre.

        The centre itself skips the first leg and enqueues locally.
        """
        assert self.net is not None
        if self.node_id == self.center:
            self._enqueue_at_center(rid, self.node_id, hops=0)
        else:
            self.send_routed("creq", self.center, rid=rid, origin=self.node_id)

    def on_message(self, msg: Message) -> None:
        """Centre: swap tail and inform predecessor. Others: completions."""
        assert self.net is not None
        if msg.kind == "creq":
            if not self.is_center:
                raise ProtocolError(
                    f"creq delivered to non-centre node {self.node_id}"
                )
            self._enqueue_at_center(
                msg.payload["rid"], msg.payload["origin"], hops=msg.hops
            )
        elif msg.kind == "cinform":
            # This node issued the predecessor; it now knows the successor.
            self._on_complete(
                msg.payload["rid"],
                msg.payload["predecessor"],
                self.node_id,
                self.net.sim.now,
                msg.payload["hops"] + msg.hops,
            )
            if self._notify_origin:
                self.send_routed(
                    "queue_reply",
                    msg.payload["origin"],
                    rid=msg.payload["rid"],
                    predecessor=msg.payload["predecessor"],
                )
        else:
            if self.app_handler is not None:
                self.app_handler(msg)
                return
            if msg.kind == "queue_reply":
                return  # acknowledgement with no consumer: drop silently
            raise ProtocolError(f"unexpected message {msg.kind!r}")

    # ------------------------------------------------------------------
    def _enqueue_at_center(self, rid: int, origin: int, hops: int) -> None:
        """Atomically extend the queue at the centre and notify."""
        assert self.net is not None
        pred_rid, pred_node = self.tail_rid, self.tail_node
        self.tail_rid, self.tail_node = rid, origin
        if self._reply_mode:
            # Two-message discipline (§5): record completion at the centre
            # and acknowledge the requester with its predecessor's identity.
            self._on_complete(rid, pred_rid, self.node_id, self.net.sim.now, hops)
            if self._notify_origin:
                self.send_routed(
                    "queue_reply", origin, rid=rid, predecessor=pred_rid
                )
            return
        # Inform the predecessor's issuer of its successor (completion).
        self.send_routed(
            "cinform",
            pred_node,
            rid=rid,
            predecessor=pred_rid,
            origin=origin,
            hops=hops,
        )
