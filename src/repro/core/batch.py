"""Numpy batch engine: vectorized arrow runs behind the bit-identity contract.

:class:`BatchArrowEngine` / :func:`run_arrow_batch` (open loop) and
:func:`closed_loop_arrow_batch` / :func:`closed_loop_centralized_batch`
(the §5 closed loops) produce results **bit-identical** to the fast
engines — and therefore to the message-level simulators — while moving
the per-event overheads that dominate large runs into numpy array
operations:

* **batched RNG draws** — stochastic latency models draw their raw
  samples in vectorized blocks from the same
  ``spawn_rng(seed, "network-latency")`` stream, replaying the scalar
  engines' draw order *exactly*: an array fill of numpy's ``Generator``
  consumes the underlying bitstream element-for-element like the same
  number of scalar calls, so handing out buffered raws in order is
  indistinguishable from sampling per message (a scalar
  ``Generator.uniform`` call costs ~1.5 µs; a buffered raw ~0.1 µs);
* **vectorized per-link delay tables** — deterministic models get their
  per-directed-tree-link delays built as numpy arrays in one shot
  instead of 2n scalar ``sample`` calls;
* **time-slab initiation draining** (open loop) — runs of schedule
  initiations that all fire before the next in-flight arrival are
  processed as one numpy slab: vectorized local-find detection and
  predecessor chaining, vectorized delay/FIFO-clamp arithmetic for the
  slab's sends, and a single ``heapify`` when the heap starts empty
  (the one-shot storm).  A slab is speculative — if a slab send's
  arrival lands *before* a later initiation in the slab, the slab is
  truncated at that initiation and the block stream is rewound so no
  RNG draw is consumed early.

Bit-identity holds because every vectorized step computes the *same*
IEEE-754 operations in the *same* order as the scalar engines: block
draws replay the stream, ``np.maximum``/elementwise multiplies match the
scalar expressions bit-for-bit, routed path delays keep the scalar
engines' left-fold summation, and slab truncation reproduces the
``init_time <= heap[0][0]`` gate event by event.  The three-way
differential suites (``tests/core/test_fast_arrow_differential.py``,
``tests/core/test_fast_closed_loop_parity.py``,
``tests/core/test_batch_engine.py``) enforce this instance by instance.

Latency models the module does not know (anything outside
:mod:`repro.net.latency`'s concrete classes, including subclasses that
override ``sample``) fall back to per-call ``sample`` in exact event
order — still bit-identical, just not batched.  The closed-loop
functions bind the *same* event-loop cores as the fast engine
(:mod:`repro.core.fast_closed_loop`), so their identity is by
construction; only the delay sources differ.
"""

from __future__ import annotations

import time as _wall
from heapq import heapify, heappop, heappush

import numpy as np

from repro.core.fast_arrow import _ARRIVE, _DISPATCH, _raise_livelock
from repro.core.fast_closed_loop import (
    _Router,
    _det_link_delays,
    _run_arrow_closed_loop,
    _run_centralized_closed_loop,
    _tree_link_weights,
)
from repro.core.queueing import CompletionRecord, RunResult
from repro.core.requests import NO_RID, ROOT_RID, RequestSchedule
from repro.errors import NetworkError, ProtocolError
from repro.graphs.graph import Graph
from repro.graphs.validation import require_spanning_subgraph
from repro.net.latency import (
    ExponentialCappedLatency,
    LatencyModel,
    ScaledWeightLatency,
    UniformLatency,
    UnitLatency,
    WeightLatency,
)
from repro.sim.rng import spawn_rng
from repro.spanning.tree import SpanningTree
from repro.workloads.closed_loop import ClosedLoopResult

__all__ = [
    "BatchArrowEngine",
    "run_arrow_batch",
    "closed_loop_arrow_batch",
    "closed_loop_centralized_batch",
]

#: Raw draws per block-stream refill.
_BLOCK = 4096

#: Minimum initiation-run length worth a vectorized slab (below this the
#: numpy fixed costs exceed the scalar loop's).
_SLAB_MIN = 64

#: Initial cap on a slab's candidate length.  Slabs are speculative, so an
#: unbounded candidate (e.g. the whole schedule while the heap is empty)
#: could vectorize arithmetic for thousands of initiations only to commit
#: a handful; capped slabs bound the waste, and the cap re-grows 4x per
#: fully-committed slab so genuine storms still batch by the tens of
#: thousands.
_SLAB_CAP0 = 1024


# ----------------------------------------------------------------------
# block-buffered RNG draws
# ----------------------------------------------------------------------
class _BlockStream:
    """Block-buffered raw draws replaying one Generator's scalar order.

    ``fill(rng, size)`` must advance the generator exactly like ``size``
    scalar draws of the same distribution (true for numpy's array fills);
    the buffer then hands raws out in order, so consumers see the exact
    sequence the scalar engines would have drawn.  ``mark``/``rewind``
    support speculative slabs: between a mark and its rewind the consumed
    prefix is kept, so un-consuming the draws of a truncated slab is a
    position reset, not a generator rollback.
    """

    __slots__ = ("_rng", "_fill", "_buf", "_lst", "_pos", "_hold")

    def __init__(self, rng, fill) -> None:
        self._rng = rng
        self._fill = fill
        self._buf = np.empty(0)
        self._lst: list[float] = []
        self._pos = 0
        self._hold = False

    def _ensure(self, k: int) -> None:
        avail = len(self._lst) - self._pos
        if avail >= k:
            return
        if self._pos and not self._hold:
            # Trim the consumed prefix (never while a mark is held — a
            # rewind position must stay valid across refills).
            self._buf = self._buf[self._pos :]
            del self._lst[: self._pos]
            self._pos = 0
        need = k - (len(self._lst) - self._pos)
        fresh = self._fill(self._rng, need if need > _BLOCK else _BLOCK)
        self._buf = np.concatenate((self._buf, fresh)) if self._buf.size else fresh
        self._lst.extend(fresh.tolist())

    def take(self, k: int) -> np.ndarray:
        """The next ``k`` raws as an array (advances the position)."""
        self._ensure(k)
        p = self._pos
        self._pos = p + k
        return self._buf[p : self._pos]

    def one(self) -> float:
        """The next raw as a Python float."""
        if self._pos >= len(self._lst):
            self._ensure(1)
        v = self._lst[self._pos]
        self._pos += 1
        return v

    def mark(self) -> int:
        """Pin the current position for a possible :meth:`rewind`."""
        self._hold = True
        return self._pos

    def rewind(self, pos: int) -> None:
        """Un-consume every draw taken after ``pos`` (releases the mark)."""
        self._pos = pos
        self._hold = False

    def release(self) -> None:
        """Commit the draws taken since :meth:`mark`."""
        self._hold = False


def _block_fill(model: LatencyModel):
    """Raw-block filler for a *known* stochastic model, else ``None``.

    Dispatch is on the exact type: a subclass may override ``sample``
    arbitrarily, so it must take the per-call fallback path.
    """
    t = type(model)
    if t is UniformLatency:
        lo, hi = model.lo, model.hi
        return lambda rng, size: rng.uniform(lo, hi, size)
    if t is ExponentialCappedLatency:
        mean = model.mean
        return lambda rng, size: rng.exponential(mean, size)
    return None


class _LatencySampler:
    """Exact-order delay sampler for one run's ``network-latency`` stream.

    Known stochastic models draw raw blocks through a rewindable
    :class:`_BlockStream` and apply the model's transform as vectorized
    (or scalar) arithmetic that matches ``sample``'s expression
    bit-for-bit.  Unknown models fall back to per-call ``sample`` with
    the real generator — exact by construction, but not batchable, so
    :attr:`rewindable` is False and the open-loop engine skips
    speculative slabs.
    """

    __slots__ = ("model", "rng", "stream", "_tf", "_tf_vec")

    def __init__(self, model: LatencyModel, rng) -> None:
        self.model = model
        self.rng = rng
        fill = _block_fill(model)
        self.stream = _BlockStream(rng, fill) if fill is not None else None
        t = type(model)
        if t is UniformLatency:
            # sample: weight * rng.uniform(lo, hi)
            self._tf = lambda w, r: w * r
            self._tf_vec = lambda ws, rs: ws * rs
        elif t is ExponentialCappedLatency:
            # sample: weight * min(max(raw, floor), cap)
            f, c = model.floor, model.cap
            self._tf = lambda w, r: w * (f if r < f else (c if r > c else r))
            self._tf_vec = lambda ws, rs: ws * np.clip(rs, f, c)
        else:
            self._tf = None
            self._tf_vec = None

    @property
    def rewindable(self) -> bool:
        return self.stream is not None

    def link_delay(self, src: int, dst: int, w: float) -> float:
        """Delay of one tree-link traversal (one raw draw)."""
        if self.stream is None:
            return self.model.sample(src, dst, w, self.rng)
        return self._tf(w, self.stream.one())

    def link_delays(self, ws: np.ndarray) -> np.ndarray:
        """Vectorized slab variant of :meth:`link_delay` (rewindable only)."""
        if not len(ws):
            return np.empty(0)
        return self._tf_vec(ws, self.stream.take(len(ws)))

    def path_delay(self, srcs, dsts, weights) -> float:
        """Summed delay of one routed path, matching ``_Router``'s fold."""
        if self.stream is None:
            sample = self.model.sample
            rng = self.rng
            delay = 0.0
            for a, b, w in zip(srcs, dsts, weights):
                delay += sample(a, b, w, rng)
            return delay
        raws = self.stream.take(len(weights))
        tf = self._tf
        delay = 0.0
        for w, r in zip(weights, raws.tolist()):
            delay += tf(w, r)
        return delay

    # Slab speculation protocol (rewindable samplers only).
    def mark(self) -> int:
        return self.stream.mark()

    def rewind(self, pos: int) -> None:
        self.stream.rewind(pos)

    def release(self) -> None:
        self.stream.release()


def _fused_link_delay(sampler: _LatencySampler):
    """One-call closure for the scalar hot path's per-send draw.

    Collapses the ``link_delay`` dispatch chain (method → transform →
    buffer) into a single lambda with pre-bound locals — the per-message
    savings compound over hundreds of thousands of events.
    """
    stream = sampler.stream
    if stream is None:
        model_sample = sampler.model.sample
        rng = sampler.rng
        return lambda v, dst, w: model_sample(v, dst, w, rng)
    tf = sampler._tf
    one = stream.one
    return lambda v, dst, w: tf(w, one())


def _det_link_tables(
    model: LatencyModel,
    parent: list[int],
    weight_np: np.ndarray,
    root: int,
    rng,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Vectorized build of the per-directed-tree-link delay tables.

    The values are bit-identical to ``_det_link_delays``'s scalar builds:
    the known models' tables are elementwise IEEE-754 expressions over
    the same weights, and unknown deterministic models fall through to
    the scalar loop itself.  ``None`` for stochastic models.
    """
    if model.stochastic:
        return None
    n = len(parent)
    t = type(model)
    if t is UnitLatency:
        up = np.ones(n)
        down = np.ones(n)
    elif t is WeightLatency:
        up = weight_np.copy()
        down = weight_np.copy()
    elif t is ScaledWeightLatency:
        up = model.factor * weight_np
        down = up.copy()
    else:
        det_up, det_down = _det_link_delays(
            model, parent, weight_np.tolist(), root, rng
        )
        return np.asarray(det_up), np.asarray(det_down)
    up[root] = 0.0
    down[root] = 0.0
    return up, down


class _BlockRouter(_Router):
    """A ``_Router`` whose stochastic path draws come from the block stream.

    Path reconstruction and caching are inherited; only the per-edge
    sampling changes, and :meth:`_LatencySampler.path_delay` keeps the
    parent's left-fold summation, so delays are bit-identical.
    """

    __slots__ = ("_sampler",)

    def __init__(self, graph: Graph, sampler: _LatencySampler) -> None:
        super().__init__(graph, sampler.model, sampler.rng)
        self._sampler = sampler

    def delay_hops(self, src: int, dst: int) -> tuple[float, int]:
        srcs, dsts, weights = self._path_edges(src, dst)
        return self._sampler.path_delay(srcs, dsts, weights), len(srcs)


def _closed_loop_router(graph: Graph, model: LatencyModel, rng):
    """Router + optional sampler for one closed-loop batch run."""
    if model.stochastic:
        sampler = _LatencySampler(model, rng)
        if sampler.rewindable:
            return _BlockRouter(graph, sampler), sampler
        return _Router(graph, model, rng), sampler
    return _Router(graph, model, rng), None


# ----------------------------------------------------------------------
# the open-loop engine
# ----------------------------------------------------------------------
class BatchArrowEngine:
    """Reusable vectorized executor for arrow runs on one ``(graph, tree)``.

    Mirrors :class:`~repro.core.fast_arrow.FastArrowEngine`'s constructor
    and :meth:`run` contract — same knobs, same unsupported message-level
    features (``notify_origin``, tracing), same bit-identical
    :class:`~repro.core.queueing.RunResult` — with the module docstring's
    vectorizations applied.
    """

    def __init__(
        self,
        graph: Graph,
        tree: SpanningTree,
        *,
        latency: LatencyModel | None = None,
        seed: int = 0,
        service_time: float = 0.0,
    ) -> None:
        if service_time < 0:
            raise NetworkError(f"service_time must be >= 0, got {service_time}")
        require_spanning_subgraph(graph, [(u, v) for u, v, _ in tree.edges()])
        self.graph = graph
        self.tree = tree
        self.latency = latency if latency is not None else UnitLatency()
        self.seed = seed
        self.service_time = float(service_time)

        n = tree.num_nodes
        self._n = n
        self._root = tree.root
        self._parent = list(tree.parent)
        self._parent_np = np.asarray(self._parent, dtype=np.int64)
        self._weight = _tree_link_weights(graph, self._parent, self._root)
        self._weight_np = np.asarray(self._weight)

        tables = _det_link_tables(
            self.latency,
            self._parent,
            self._weight_np,
            self._root,
            spawn_rng(seed, "network-latency"),
        )
        if tables is None:
            self._det_up_np = self._det_down_np = None
            self._det_up = self._det_down = None
        else:
            self._det_up_np, self._det_down_np = tables
            # List mirrors for the scalar event loop (list indexing beats
            # numpy scalar indexing there); values are the same floats.
            self._det_up = self._det_up_np.tolist()
            self._det_down = self._det_down_np.tolist()

    # ------------------------------------------------------------------
    def run(
        self,
        schedule: RequestSchedule,
        *,
        max_events: int | None = None,
        on_event=None,
    ) -> RunResult:
        """Execute one schedule; returns a ``run_arrow``-identical result.

        ``on_event``, when set, receives the protocol trace in the same
        order the message engine emits it (see :mod:`repro.monitors`).
        Speculative initiation slabs are disabled while a hook is
        attached — slabs commit events out of emission order — which
        changes nothing observable in the result, only the speed.
        """
        schedule.validate_nodes(self._n)
        result = RunResult(schedule)

        n = self._n
        root = self._root

        # Protocol state (ArrowNode.init_pointers, flattened).
        link = self._parent[:]
        link[root] = root
        last_rid = [NO_RID] * n
        last_rid[root] = ROOT_RID
        # FIFO clamp per directed tree link: 2v = v -> parent[v],
        # 2v + 1 = parent[v] -> v (FifoChannel._last_delivery, flattened).
        last_delivery = [0.0] * (2 * n)

        sampler = (
            _LatencySampler(self.latency, spawn_rng(self.seed, "network-latency"))
            if self._det_up is None
            else None
        )

        done: list[tuple[int, int, int, float, int]] = []
        t0 = _wall.perf_counter()
        if self.service_time == 0.0:
            now, fired, messages = self._drain(
                schedule, link, last_rid, last_delivery, done, max_events,
                sampler, on_event,
            )
        else:
            now, fired, messages = self._drain_with_service(
                schedule, link, last_rid, last_delivery, done, max_events,
                sampler, on_event,
            )
        wall = _wall.perf_counter() - t0

        completions = result.completions
        for row in done:
            completions[row[0]] = CompletionRecord(*row)
        if len(completions) != len(done):
            raise ProtocolError("a request completed twice")
        result.makespan = now if fired else 0.0
        result.wall_seconds = wall
        result.network_stats = {
            "messages_sent": messages,
            "link_messages": messages,
            "routed_messages": 0,
            "hops_total": messages,
        }
        if len(completions) != len(schedule):
            raise ProtocolError(
                f"arrow run completed {len(completions)} of "
                f"{len(schedule)} requests"
            )
        return result

    # ------------------------------------------------------------------
    def _drain(
        self,
        schedule: RequestSchedule,
        link: list[int],
        last_rid: list[int],
        last_delivery: list[float],
        done: list[tuple[int, int, int, float, int]],
        max_events: int | None,
        sampler: _LatencySampler | None,
        emit=None,
    ) -> tuple[float, int, int]:
        """Hot loop for ``service_time == 0`` (the §3.1 analysis model).

        Scalar events mirror ``FastArrowEngine._drain`` tuple-for-tuple
        (in-flight messages are ``(time, seq, dst, src, rid, hops)``);
        eligible initiation runs divert into :meth:`_slab`.
        """
        parent = self._parent
        weight = self._weight
        det_up = self._det_up
        det_down = self._det_down
        append = done.append
        push, pop = heappush, heappop

        init_times = schedule.times
        init_nodes = schedule.nodes
        # Array views of the schedule, built lazily on the first slab —
        # workloads that never form one skip the conversion cost.
        times_np = nodes_np = None

        # Slabs need delays computable ahead of commitment: deterministic
        # tables, or a block stream that can rewind speculative draws —
        # and an emission-free run (slabs commit out of event order).
        slab_ok = (
            det_up is not None or (sampler is not None and sampler.rewindable)
        ) and emit is None
        link_delay = _fused_link_delay(sampler) if sampler is not None else None

        limit = float("inf") if max_events is None else max_events
        heap: list[tuple[float, int, int, int, int, int]] = []
        m = len(init_times)
        seq = m  # kernel parity: initiations consumed seqs 0..m-1
        i = 0
        fired = 0
        messages = 0
        now = 0.0
        # Slab precheck constants, hoisted off the hot path; the adaptive
        # cap keeps a mostly-ineligible schedule from being speculated on
        # wholesale (grows 4x per fully-committed slab, resets on a
        # truncation).
        slab_last = _SLAB_MIN - 1
        slab_stop = (m - _SLAB_MIN) if slab_ok else -1
        cap = _SLAB_CAP0
        retry_at = 0

        while True:
            if i < m and (not heap or init_times[i] <= heap[0][0]):
                # O(1) slab precheck (plain list compares) before any
                # numpy call: are _SLAB_MIN initiations due right now?
                # A failed precheck backs off for half a slab of scalar
                # initiations — its cost must stay negligible on
                # workloads where slabs never form.
                if retry_at <= i <= slab_stop:
                    top = heap[0][0] if heap else float("inf")
                    if init_times[i + slab_last] <= top:
                        if times_np is None:
                            times_np = np.asarray(init_times, dtype=np.float64)
                            nodes_np = np.asarray(init_nodes, dtype=np.int64)
                        j = min(
                            int(np.searchsorted(times_np, top, side="right")),
                            i + cap,
                        )
                        i, seq, messages, fired, now = self._slab(
                            i, j, top, seq, messages, fired, limit, max_events,
                            nodes_np, times_np, link, last_rid, last_delivery,
                            heap, done, sampler, None,
                        )
                        cap = (cap * 4) if i == j else _SLAB_CAP0
                        continue
                    retry_at = i + _SLAB_MIN // 2
                # Scalar initiation of request i (ArrowNode.initiate).
                now = init_times[i]
                v = init_nodes[i]
                rid = i
                i += 1
                fired += 1
                if fired > limit:
                    _raise_livelock(max_events)
                if emit is not None:
                    emit("init", rid, v, now)
                x = link[v]
                if x == v:
                    # Local find: queued behind v's previous request.
                    if emit is not None:
                        emit("complete", rid, last_rid[v], v, now, 0)
                    append((rid, last_rid[v], v, now, 0))
                    last_rid[v] = rid
                    continue
                last_rid[v] = rid
                link[v] = v
                dst = x
                hops = 1
            elif heap:
                now, _, v, src, rid, hops = pop(heap)
                fired += 1
                if fired > limit:
                    _raise_livelock(max_events)
                # Path reversal (ArrowNode.on_message).
                if emit is not None:
                    emit("deliver", rid, v, src, now)
                x = link[v]
                link[v] = src
                if x == v:
                    if emit is not None:
                        emit("complete", rid, last_rid[v], v, now, hops)
                    append((rid, last_rid[v], v, now, hops))
                    continue
                dst = x
                hops += 1
            else:
                break

            # One link traversal v -> dst (send_link / forward + FifoChannel).
            if emit is not None:
                emit("send", rid, v, dst, now)
            down = parent[dst] == v
            if det_up is None:
                delay = link_delay(v, dst, weight[dst] if down else weight[v])
            else:
                delay = det_down[dst] if down else det_up[v]
            chan = 2 * dst + 1 if down else 2 * v
            at = now + delay
            if at < last_delivery[chan]:
                at = last_delivery[chan]
            last_delivery[chan] = at
            push(heap, (at, seq, dst, v, rid, hops))
            seq += 1
            messages += 1
        return now, fired, messages

    # ------------------------------------------------------------------
    def _drain_with_service(
        self,
        schedule: RequestSchedule,
        link: list[int],
        last_rid: list[int],
        last_delivery: list[float],
        done: list[tuple[int, int, int, float, int]],
        max_events: int | None,
        sampler: _LatencySampler | None,
        emit=None,
    ) -> tuple[float, int, int]:
        """General loop with per-node sequential service (Fig. 10 model).

        Heap tuples carry an explicit event tag —
        ``(time, seq, tag, node, src, rid, hops)`` — mirroring
        ``FastArrowEngine._drain_with_service``; initiation slabs emit
        tagged arrivals.
        """
        parent = self._parent
        weight = self._weight
        det_up = self._det_up
        det_down = self._det_down
        service = self.service_time
        busy_until = [0.0] * self._n  # Network._busy_until
        append = done.append

        init_times = schedule.times
        init_nodes = schedule.nodes
        # Array views of the schedule, built lazily on the first slab —
        # workloads that never form one skip the conversion cost.
        times_np = nodes_np = None

        slab_ok = (
            det_up is not None or (sampler is not None and sampler.rewindable)
        ) and emit is None
        link_delay = _fused_link_delay(sampler) if sampler is not None else None

        limit = float("inf") if max_events is None else max_events
        heap: list[tuple[float, int, int, int, int, int, int]] = []
        m = len(init_times)
        seq = m
        i = 0
        fired = 0
        messages = 0
        now = 0.0
        slab_last = _SLAB_MIN - 1
        slab_stop = (m - _SLAB_MIN) if slab_ok else -1
        cap = _SLAB_CAP0
        retry_at = 0

        while True:
            if i < m and (not heap or init_times[i] <= heap[0][0]):
                if retry_at <= i <= slab_stop:
                    top = heap[0][0] if heap else float("inf")
                    if init_times[i + slab_last] <= top:
                        if times_np is None:
                            times_np = np.asarray(init_times, dtype=np.float64)
                            nodes_np = np.asarray(init_nodes, dtype=np.int64)
                        j = min(
                            int(np.searchsorted(times_np, top, side="right")),
                            i + cap,
                        )
                        i, seq, messages, fired, now = self._slab(
                            i, j, top, seq, messages, fired, limit, max_events,
                            nodes_np, times_np, link, last_rid, last_delivery,
                            heap, done, sampler, _ARRIVE,
                        )
                        cap = (cap * 4) if i == j else _SLAB_CAP0
                        continue
                    retry_at = i + _SLAB_MIN // 2
                now = init_times[i]
                v = init_nodes[i]
                rid = i
                i += 1
                fired += 1
                if fired > limit:
                    _raise_livelock(max_events)
                if emit is not None:
                    emit("init", rid, v, now)
                x = link[v]
                if x == v:
                    if emit is not None:
                        emit("complete", rid, last_rid[v], v, now, 0)
                    append((rid, last_rid[v], v, now, 0))
                    last_rid[v] = rid
                    continue
                last_rid[v] = rid
                link[v] = v
                dst = x
                hops = 1
            elif heap:
                now, _, tag, v, src, rid, hops = heappop(heap)
                fired += 1
                if fired > limit:
                    _raise_livelock(max_events)
                if tag == _ARRIVE:
                    # Serialise handling at v (Network._arrive): the
                    # path-reversal step runs as its own dispatch event.
                    begin = busy_until[v]
                    if now > begin:
                        begin = now
                    finish = begin + service
                    busy_until[v] = finish
                    heappush(heap, (finish, seq, _DISPATCH, v, src, rid, hops))
                    seq += 1
                    continue
                if emit is not None:
                    emit("deliver", rid, v, src, now)
                x = link[v]
                link[v] = src
                if x == v:
                    if emit is not None:
                        emit("complete", rid, last_rid[v], v, now, hops)
                    append((rid, last_rid[v], v, now, hops))
                    continue
                dst = x
                hops += 1
            else:
                break

            if emit is not None:
                emit("send", rid, v, dst, now)
            down = parent[dst] == v
            if det_up is None:
                delay = link_delay(v, dst, weight[dst] if down else weight[v])
            else:
                delay = det_down[dst] if down else det_up[v]
            chan = 2 * dst + 1 if down else 2 * v
            at = now + delay
            if at < last_delivery[chan]:
                at = last_delivery[chan]
            last_delivery[chan] = at
            heappush(heap, (at, seq, _ARRIVE, dst, v, rid, hops))
            seq += 1
            messages += 1
        return now, fired, messages

    # ------------------------------------------------------------------
    def _slab(
        self,
        i: int,
        j: int,
        top: float,
        seq: int,
        messages: int,
        fired: int,
        limit: float,
        max_events: int | None,
        nodes_np: np.ndarray,
        times_np: np.ndarray,
        link: list[int],
        last_rid: list[int],
        last_delivery: list[float],
        heap: list,
        done: list,
        sampler: _LatencySampler | None,
        arrive_tag: int | None,
    ) -> tuple[int, int, int, int, float]:
        """Vectorized draining of the initiation run ``[i, j)``.

        Scalar semantics being replayed, per initiation in order: a node
        whose link points to itself completes locally (queued behind the
        node's previous request, no event, no seq); any other node sends
        one message to its link target and turns its own pointer to
        itself — so every occurrence of a node after its first within
        the slab is a local find chained behind the previous one.  Sends
        consume sequence numbers in initiation order, and the FIFO clamps
        of distinct slab sends touch distinct directed channels (each
        sender occurs once; each down-channel's parent is unique).

        The slab is speculative: an initiation only fires while
        ``init_time <= heap[0][0]``, and slab sends *feed* the heap, so
        the slab truncates at the first initiation that a slab send's
        arrival (or the pre-slab heap top) precedes.  Draws made for
        truncated sends are rewound; nothing observable happens for them.
        """
        m_slab = j - i
        nodes = nodes_np[i:j]
        times = times_np[i:j]
        nodes_l = nodes.tolist()

        # First slab occurrence of each node (later occurrences: local).
        first_idx = np.unique(nodes, return_index=True)[1]
        is_first = np.zeros(m_slab, dtype=bool)
        is_first[first_idx] = True
        cur = np.fromiter((link[v] for v in nodes_l), dtype=np.int64, count=m_slab)
        send_mask = is_first & (cur != nodes)
        send_pos = np.nonzero(send_mask)[0]
        n_send = len(send_pos)

        # Candidate sends: delays and FIFO-clamped arrival times.
        sv = nodes[send_pos]
        sdst = cur[send_pos]
        down = self._parent_np[sdst] == sv
        if self._det_up is not None:
            delay = np.where(down, self._det_down_np[sdst], self._det_up_np[sv])
            mark = None
        else:
            mark = sampler.mark()
            delay = sampler.link_delays(self._weight_np[np.where(down, sdst, sv)])
        chan = np.where(down, 2 * sdst + 1, 2 * sv)
        ld = np.fromiter(
            (last_delivery[c] for c in chan.tolist()), dtype=np.float64, count=n_send
        )
        at = np.maximum(times[send_pos] + delay, ld)

        # Initiation q fires only while no earlier slab send has arrived
        # and the pre-slab heap top is not due: bound_q = min(top,
        # min arrival among sends before q), replayed as a running min.
        aux = np.full(m_slab + 1, np.inf)
        aux[0] = top
        aux[send_pos + 1] = at
        fire = times <= np.minimum.accumulate(aux)[:m_slab]
        commit = m_slab if bool(fire.all()) else int(np.argmax(~fire))

        if fired + commit > limit:
            _raise_livelock(max_events)
        fired += commit

        if commit < m_slab:
            keep = int(np.count_nonzero(send_pos < commit))
            if mark is not None:
                sampler.rewind(mark + keep)
            nodes_l = nodes_l[:commit]
            times = times[:commit]
            send_mask = send_mask[:commit]
            send_pos = send_pos[:keep]
            sv = sv[:keep]
            sdst = sdst[:keep]
            at = at[:keep]
            chan = chan[:keep]
            n_send = keep
            nodes = nodes[:commit]
        elif mark is not None:
            sampler.release()

        # Local-find completions, in rid order.  The predecessor is the
        # node's previous slab occurrence, or its pre-slab last_rid.
        order = np.argsort(nodes, kind="stable")
        prev = np.full(commit, -1, dtype=np.int64)
        same = nodes[order][1:] == nodes[order][:-1]
        prev[order[1:][same]] = order[:-1][same]
        base = np.fromiter(
            (last_rid[v] for v in nodes_l), dtype=np.int64, count=commit
        )
        pred = np.where(prev >= 0, i + prev, base).tolist()
        times_l = times.tolist()
        append = done.append
        for q in np.nonzero(~send_mask)[0].tolist():
            append((i + q, pred[q], nodes_l[q], times_l[q], 0))

        # State updates: every initiation moves its node's last_rid; every
        # sender turns its pointer to itself (locals already point there).
        for q, v in enumerate(nodes_l):
            last_rid[v] = i + q
        sv_l = sv.tolist()
        for v in sv_l:
            link[v] = v

        # Sends: FIFO-clamp bookkeeping and heap insertion, seqs in
        # initiation order.  A storm into an empty heap is one heapify.
        at_l = at.tolist()
        chan_l = chan.tolist()
        for k in range(n_send):
            last_delivery[chan_l[k]] = at_l[k]
        sdst_l = sdst.tolist()
        srid = (i + send_pos).tolist()
        if arrive_tag is None:
            # service_time == 0 loop: untagged message tuples.
            events = [
                (at_l[k], seq + k, sdst_l[k], sv_l[k], srid[k], 1)
                for k in range(n_send)
            ]
        else:
            events = [
                (at_l[k], seq + k, arrive_tag, sdst_l[k], sv_l[k], srid[k], 1)
                for k in range(n_send)
            ]
        if heap:
            for ev in events:
                heappush(heap, ev)
        else:
            heap.extend(events)
            heapify(heap)
        seq += n_send
        messages += n_send

        return i + commit, seq, messages, fired, times_l[-1]


def run_arrow_batch(
    graph: Graph,
    tree: SpanningTree,
    schedule: RequestSchedule,
    *,
    latency: LatencyModel | None = None,
    seed: int = 0,
    service_time: float = 0.0,
    max_events: int | None = None,
    on_event=None,
) -> RunResult:
    """Drop-in vectorized replacement for the supported ``run_arrow`` subset.

    Accepts the same model knobs as :func:`repro.core.runner.run_arrow`
    except ``notify_origin`` and ``tracer`` (message-level features); the
    returned result is bit-identical to the message simulator's and the
    fast engine's.
    """
    engine = BatchArrowEngine(
        graph, tree, latency=latency, seed=seed, service_time=service_time
    )
    return engine.run(schedule, max_events=max_events, on_event=on_event)


# ----------------------------------------------------------------------
# the closed loops: block delay sources bound to the fast engine's cores
# ----------------------------------------------------------------------
def closed_loop_arrow_batch(
    graph: Graph,
    tree: SpanningTree,
    *,
    requests_per_proc: int,
    latency: LatencyModel | None = None,
    seed: int = 0,
    service_time: float = 0.0,
    think_time: float = 0.0,
    max_events: int | None = None,
    on_event=None,
) -> ClosedLoopResult:
    """Closed-loop arrow run, bit-identical to both §5 arrow drivers."""
    if service_time < 0:
        raise NetworkError(f"service_time must be >= 0, got {service_time}")
    require_spanning_subgraph(graph, [(u, v) for u, v, _ in tree.edges()])
    n = graph.num_nodes
    result = ClosedLoopResult("arrow", n, requests_per_proc)
    model = latency if latency is not None else UnitLatency()
    rng = spawn_rng(seed, "network-latency")

    root = tree.root
    parent = list(tree.parent)
    weight = _tree_link_weights(graph, parent, root)
    weight_np = np.asarray(weight)
    tables = _det_link_tables(model, parent, weight_np, root, rng)
    if tables is None:
        det_up = det_down = None
    else:
        det_up, det_down = (tables[0].tolist(), tables[1].tolist())
    router, sampler = _closed_loop_router(graph, model, rng)

    return _run_arrow_closed_loop(
        result,
        parent,
        root,
        weight,
        requests_per_proc=requests_per_proc,
        service=float(service_time),
        think=float(think_time),
        max_events=max_events,
        det_up=det_up,
        det_down=det_down,
        sample_link=_fused_link_delay(sampler) if sampler is not None else None,
        router=router,
        on_event=on_event,
    )


def closed_loop_centralized_batch(
    graph: Graph,
    center: int,
    *,
    requests_per_proc: int,
    latency: LatencyModel | None = None,
    seed: int = 0,
    service_time: float = 0.0,
    think_time: float = 0.0,
    max_events: int | None = None,
) -> ClosedLoopResult:
    """Closed-loop centralized run, bit-identical to both §5 drivers."""
    if service_time < 0:
        raise NetworkError(f"service_time must be >= 0, got {service_time}")
    n = graph.num_nodes
    if not 0 <= center < n:
        raise NetworkError(f"center {center} out of range for {n} nodes")
    result = ClosedLoopResult("centralized", n, requests_per_proc)
    model = latency if latency is not None else UnitLatency()
    rng = spawn_rng(seed, "network-latency")
    router, _ = _closed_loop_router(graph, model, rng)

    return _run_centralized_closed_loop(
        result,
        n,
        center,
        requests_per_proc=requests_per_proc,
        service=float(service_time),
        think=float(think_time),
        max_events=max_events,
        router=router,
    )
