"""Queuing requests and request schedules.

Following §3.1 of the paper, a queuing request is an ordered pair
``(v, t)``: the node where it is issued and the issue time.  The requests of
a schedule are canonically indexed in non-decreasing time order (ties broken
arbitrarily but deterministically — the index is "just a convenient way for
indexing", never used by the algorithm).

The **virtual root request** ``r_0 = (root, 0)`` represents the initial
queue tail held by the root; it carries the reserved id
:data:`ROOT_RID` and is the start of every queuing order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import ScheduleError

__all__ = ["ROOT_RID", "NO_RID", "Request", "RequestSchedule"]

#: Reserved id of the virtual root request (start of the queue).
ROOT_RID = -1
#: Reserved id meaning "no request" (the paper's ⊥ for ``id(v)``).
NO_RID = -2


@dataclass(frozen=True, slots=True)
class Request:
    """One queuing request ``(v, t)`` with its canonical id.

    ``rid`` is the request's index in its schedule's canonical order
    (0-based); the virtual root request uses :data:`ROOT_RID` instead.
    """

    node: int
    time: float
    rid: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ScheduleError(f"request time must be >= 0, got {self.time}")


class RequestSchedule:
    """An immutable, canonically ordered set of queuing requests."""

    __slots__ = ("_requests", "_by_rid")

    def __init__(self, pairs: Iterable[tuple[int, float]]) -> None:
        """Build from ``(node, time)`` pairs.

        Requests are sorted by ``(time, insertion order)`` — the paper's
        non-decreasing-time canonical indexing — and assigned ids
        ``0..len-1`` in that order.
        """
        indexed = [(float(t), i, int(v)) for i, (v, t) in enumerate(pairs)]
        indexed.sort(key=lambda x: (x[0], x[1]))
        self._requests: tuple[Request, ...] = tuple(
            Request(node=v, time=t, rid=rid) for rid, (t, _, v) in enumerate(indexed)
        )
        self._by_rid = {r.rid: r for r in self._requests}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    def __getitem__(self, rid: int) -> Request:
        return self._requests[rid]

    def by_rid(self, rid: int) -> Request:
        """Request with the given canonical id."""
        try:
            return self._by_rid[rid]
        except KeyError:
            raise ScheduleError(f"no request with rid {rid}") from None

    @property
    def nodes(self) -> list[int]:
        """Issuing node per request, in canonical order."""
        return [r.node for r in self._requests]

    @property
    def times(self) -> list[float]:
        """Issue time per request, in canonical order."""
        return [r.time for r in self._requests]

    def max_time(self) -> float:
        """Largest issue time ``t_|R|`` (0 for an empty schedule)."""
        return self._requests[-1].time if self._requests else 0.0

    def validate_nodes(self, num_nodes: int) -> None:
        """Raise :class:`ScheduleError` if any request names a bad node."""
        for r in self._requests:
            if not 0 <= r.node < num_nodes:
                raise ScheduleError(
                    f"request {r.rid} at node {r.node} outside [0, {num_nodes})"
                )

    def shifted(self, rids: Sequence[int], delta: float) -> "RequestSchedule":
        """New schedule with the given requests' times shifted by ``delta``.

        Used by the Lemma 3.11 transformation.  Shifting must keep all
        times non-negative.
        """
        rid_set = set(rids)
        pairs = [
            (r.node, r.time + delta if r.rid in rid_set else r.time)
            for r in self._requests
        ]
        return RequestSchedule(pairs)

    def restricted_to_times(self, lo: float, hi: float) -> list[Request]:
        """Requests with issue time in ``[lo, hi]`` (canonical order)."""
        return [r for r in self._requests if lo <= r.time <= hi]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RequestSchedule(len={len(self)}, span=[0, {self.max_time()}])"
