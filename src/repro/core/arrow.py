"""The arrow distributed queuing protocol (Section 2 of the paper).

Every node ``v`` keeps

* ``link(v)`` — a pointer to a spanning-tree neighbour or to ``v`` itself
  (a node with ``link(v) == v`` is a *sink*);
* ``id(v)`` — the id of the last queuing request issued by ``v``
  (⊥ before the first one; the initial root holds the virtual root
  request's id instead, since it owns the initial queue tail).

**Initiation** (atomic): to issue request ``a``, node ``v`` sets
``id(v) <- a``, sends ``queue(a)`` to ``u1 = link(v)`` and sets
``link(v) <- v``.  If ``v`` was already a sink, the new request is queued
behind ``v``'s previous request immediately and locally — zero messages,
zero latency.  (This local-find case is why Fig. 11 measures *less than
one* hop per operation on average.)

**Path reversal** (atomic): when ``u`` receives ``queue(a)`` from ``w``,
it reads ``x = link(u)``, flips ``link(u) <- w`` and either forwards the
message to ``x`` (if ``x != u``) or declares ``a`` queued behind ``id(u)``
— ``u`` has just been informed of its request's successor, which is the
completion event whose delay defines the latency of ``a`` (Definition 3.2).
"""

from __future__ import annotations

from typing import Callable

from repro.core.requests import NO_RID, ROOT_RID
from repro.errors import ProtocolError
from repro.net.message import Message
from repro.net.node import ProtocolNode
from repro.spanning.tree import SpanningTree

__all__ = ["ArrowNode", "CompletionCallback", "make_arrow_nodes"]

#: Signature of the completion hook: (successor_rid, predecessor_rid,
#: informed_node, completion_time, hops_taken).
CompletionCallback = Callable[[int, int, int, float, int], None]


class ArrowNode(ProtocolNode):
    """Per-node state machine of the arrow protocol."""

    __slots__ = (
        "link",
        "last_rid",
        "_on_complete",
        "_notify_origin",
        "app_handler",
        "on_event",
    )

    def __init__(
        self,
        on_complete: CompletionCallback,
        *,
        notify_origin: bool = False,
    ) -> None:
        """Create a node.

        Parameters
        ----------
        on_complete:
            Invoked at the instant a request's predecessor-issuer learns the
            successor identity (the paper's completion event).
        notify_origin:
            When True, the sink additionally sends a routed
            ``queue_reply`` message back to the request's origin — the
            application-level acknowledgement the paper's experiments wait
            for in the closed loop (§5), *not* part of the queuing cost.
        """
        super().__init__()
        self.link: int = -1
        self.last_rid: int = NO_RID
        self._on_complete = on_complete
        self._notify_origin = notify_origin
        #: Optional hook receiving every non-``queue`` message (application
        #: traffic: ``queue_reply`` acknowledgements, object hand-offs...).
        self.app_handler: Callable[[Message], None] | None = None
        #: Optional trace hook (see :mod:`repro.monitors` for the event
        #: vocabulary).  ``None`` keeps the protocol path emission-free.
        self.on_event: Callable[..., None] | None = None

    # ------------------------------------------------------------------
    def init_pointers(self, tree: SpanningTree) -> None:
        """Point the arrow toward the root (initial configuration, Fig. 1)."""
        if self.node_id == tree.root:
            self.link = self.node_id
            self.last_rid = ROOT_RID
        else:
            self.link = tree.next_hop_towards(self.node_id, tree.root)

    @property
    def is_sink(self) -> bool:
        """True iff this node currently holds the queue tail pointer."""
        return self.link == self.node_id

    # ------------------------------------------------------------------
    def initiate(self, rid: int) -> None:
        """Issue request ``rid`` from this node (atomic initiation step).

        The request's issue time is the current simulation time; the
        schedule (or closed-loop driver) is the single source of origin
        times, so the protocol layer does not take one as an argument.
        """
        assert self.net is not None
        emit = self.on_event
        if emit is not None:
            emit("init", rid, self.node_id, self.net.sim.now)
        if self.link == self.node_id:
            # Local find: this node is the sink, so the new request is
            # queued directly behind this node's previous request.
            pred = self.last_rid
            self.last_rid = rid
            self._complete(rid, pred, hops=0)
            return
        u1 = self.link
        self.last_rid = rid
        self.link = self.node_id
        if emit is not None:
            emit("send", rid, self.node_id, u1, self.net.sim.now)
        self.send("queue", u1, rid=rid, origin=self.node_id)

    def on_message(self, msg: Message) -> None:
        """Path-reversal step for arriving ``queue`` messages."""
        if msg.kind != "queue":
            if self.app_handler is not None:
                self.app_handler(msg)
                return
            if msg.kind == "queue_reply":
                return  # acknowledgement with no consumer: drop silently
            raise ProtocolError(f"arrow node got unexpected message {msg.kind!r}")
        assert self.net is not None
        emit = self.on_event
        if emit is not None:
            emit("deliver", msg.payload["rid"], self.node_id, msg.src, self.net.sim.now)
        x = self.link
        self.link = msg.src
        if x != self.node_id:
            if emit is not None:
                emit("send", msg.payload["rid"], self.node_id, x, self.net.sim.now)
            self.net.forward(msg, x)
            return
        # This node is the sink: the request is queued behind our last
        # request, and we have just been informed of its successor.
        rid = msg.payload["rid"]
        pred = self.last_rid
        self._complete(rid, pred, hops=msg.hops, origin=msg.payload["origin"])

    # ------------------------------------------------------------------
    def _complete(
        self, rid: int, pred: int, *, hops: int, origin: int | None = None
    ) -> None:
        assert self.net is not None
        if self.on_event is not None:
            self.on_event("complete", rid, pred, self.node_id, self.net.sim.now, hops)
        self._on_complete(rid, pred, self.node_id, self.net.sim.now, hops)
        if self._notify_origin:
            target = self.node_id if origin is None else origin
            self.send_routed("queue_reply", target, rid=rid, predecessor=pred)


def make_arrow_nodes(
    tree: SpanningTree,
    on_complete: CompletionCallback,
    *,
    notify_origin: bool = False,
) -> list[ArrowNode]:
    """One :class:`ArrowNode` per tree node, pointers initialised to root."""
    nodes = [
        ArrowNode(on_complete, notify_origin=notify_origin)
        for _ in range(tree.num_nodes)
    ]
    return nodes
