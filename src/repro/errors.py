"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "NetworkError",
    "GraphError",
    "TreeError",
    "ProtocolError",
    "ScheduleError",
    "SweepError",
    "FaultPlanError",
    "MonitorViolation",
    "MergeError",
    "OrchestratorError",
    "ShardFailedError",
    "AnalysisError",
    "ResultsError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class NetworkError(ReproError):
    """Raised for invalid network configurations or message routing."""


class GraphError(ReproError):
    """Raised for malformed graphs (unknown nodes, disconnected inputs...)."""


class TreeError(GraphError):
    """Raised for structures that are not valid (spanning) trees."""


class ProtocolError(ReproError):
    """Raised when a queuing protocol reaches an inconsistent state."""


class ScheduleError(ReproError):
    """Raised for invalid request schedules (negative times, bad nodes...)."""


class SweepError(ScheduleError):
    """Raised by the sweep layer (bad specs, grids, shards, cell families).

    Historically the sweep layer reused :class:`ScheduleError` for every
    spec problem — graph families, tree strategies, engines — so callers
    wrapped sweep construction in ``except ScheduleError``.  ``SweepError``
    subclasses it to keep those callers working while giving sweep
    problems their own catchable, accurately named type.
    """


class FaultPlanError(SweepError):
    """Raised for malformed fault-plan specifications (bad syntax/values)."""


class MonitorViolation(SweepError):
    """A runtime protocol monitor observed a spec violation in a trace.

    Raised by :mod:`repro.monitors` when an engine's event stream breaks
    one of the arrow protocol's invariants.  ``monitor`` names the
    violated invariant (``"one-pointer-per-edge"``, ``"unique-sink"``,
    ``"token-conservation"``, ``"total-order"`` or
    ``"completion-accounting"``) and ``at`` is the simulation time of the
    offending event (``None`` for finalisation-time violations).

    Lives under :class:`SweepError` so sweep drivers that already trap
    sweep-layer failures surface monitor findings through the same path.
    """

    def __init__(self, message: str, *, monitor: str, at: float | None = None):
        super().__init__(message)
        self.monitor = monitor
        self.at = at


class MergeError(SweepError):
    """Raised when merging or verifying sweep result files finds problems.

    Carries the individual verification failures (one human-readable
    string per problem, each naming the offending file and reason) in
    ``problems`` so callers — the CLI, the orchestrator — can report
    every rejection rather than just the first.
    """

    def __init__(self, message: str, problems: tuple[str, ...] | list[str] = ()):
        super().__init__(message)
        self.problems: list[str] = list(problems)


class OrchestratorError(SweepError):
    """Raised by the multi-shard sweep orchestrator.

    Covers driver misuse (bad shard/worker/retry arguments) and
    supervision failures; the retry-budget case gets the more specific
    :class:`ShardFailedError`.
    """


class ShardFailedError(OrchestratorError):
    """A supervised shard exhausted its retry budget.

    ``failures`` maps each failed shard's index to its per-attempt
    failure log (exit codes / signals, in attempt order), mirroring the
    on-disk ``<shard>.failures.log`` sidecar the orchestrator writes.
    """

    def __init__(self, message: str, failures: dict[int, list[str]] | None = None):
        super().__init__(message)
        self.failures: dict[int, list[str]] = dict(failures or {})


class AnalysisError(ReproError):
    """Raised by the analysis machinery (cost measures, TSP solvers...)."""


class ResultsError(ReproError):
    """Raised by the content-addressed results store (:mod:`repro.results`).

    Covers ingest problems (rows that do not belong to the spec being
    ingested, index/cell-id mismatches), lookups that resolve to no — or
    more than one — stored run, and malformed store directories."""
