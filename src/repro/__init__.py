"""repro — a reproduction of the arrow distributed queuing protocol paper.

Herlihy, Kuhn, Tirthapura, Wattenhofer: *Dynamic Analysis of the Arrow
Distributed Protocol* (SPAA 2004; Theory of Computing Systems 39, 2006).

Public API tour
---------------
* build a network:      :mod:`repro.graphs` (topologies) and
  :mod:`repro.spanning` (spanning trees, stretch/diameter metrics);
* run protocols:        :func:`repro.core.run_arrow`,
  :func:`repro.core.run_centralized`, :func:`repro.core.run_adaptive`,
  and the closed-loop drivers in :mod:`repro.workloads`;
* analyse (Section 3):  :mod:`repro.analysis` — cost measures, the
  nearest-neighbour characterisation, optimal-offline brackets,
  competitive-ratio reports;
* adversarial inputs:   :mod:`repro.lowerbound` (Section 4 constructions);
* paper figures:        :mod:`repro.experiments` and the ``repro-arrow``
  command-line interface.
"""

from repro._version import __version__
from repro.analysis import (
    CompetitiveReport,
    measure_competitive_ratio,
    predict_arrow_run,
)
from repro.core import (
    RequestSchedule,
    RunResult,
    run_adaptive,
    run_arrow,
    run_centralized,
    verify_total_order,
)
from repro.errors import ReproError
from repro.graphs import Graph
from repro.net import Network, UniformLatency, UnitLatency
from repro.sim import Simulator
from repro.spanning import (
    SpanningTree,
    balanced_binary_overlay,
    bfs_tree,
    mst_kruskal,
    mst_prim,
    tree_diameter,
    tree_stretch,
)
from repro.workloads import closed_loop_arrow, closed_loop_centralized

__all__ = [
    "__version__",
    "CompetitiveReport",
    "measure_competitive_ratio",
    "predict_arrow_run",
    "RequestSchedule",
    "RunResult",
    "run_adaptive",
    "run_arrow",
    "run_centralized",
    "verify_total_order",
    "ReproError",
    "Graph",
    "Network",
    "UniformLatency",
    "UnitLatency",
    "Simulator",
    "SpanningTree",
    "balanced_binary_overlay",
    "bfs_tree",
    "mst_kruskal",
    "mst_prim",
    "tree_diameter",
    "tree_stretch",
    "closed_loop_arrow",
    "closed_loop_centralized",
]
