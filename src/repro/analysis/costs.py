"""Cost measures over request sets (Section 3 of the paper).

All measures are materialised as dense ``(m x m)`` numpy matrices over the
*augmented* request list: index 0 is the virtual root request
``r_0 = (root, 0)`` and index ``i >= 1`` is the request with canonical id
``i - 1``.  Entry ``[i, j]`` is the cost of placing request ``j``
immediately after request ``i`` in a queuing order.

Implemented measures (``times`` is the issue-time vector, ``D`` a distance
matrix between the requests' nodes — tree distances ``d_T`` or graph
distances ``d_G`` depending on the caller):

* ``c_A`` (eq. 1):   ``D[i, j]`` — arrow's latency for consecutive requests;
* ``c_T`` (Def. 3.5): ``t_j - t_i + D`` if non-negative, else
  ``t_i - t_j + D`` — the asymmetric cost whose nearest-neighbour path is
  exactly arrow's queuing order (Lemma 3.8);
* ``c_M`` (Def. 3.14): ``D + |t_i - t_j|`` — the Manhattan metric;
* ``c_O`` / ``c_Opt`` (eq. 3): ``max(D, t_i - t_j)`` with tree / graph
  distances respectively — the per-link lower bound on any offline
  algorithm's latency.

The matrices satisfy (and the property tests verify): ``0 <= c_T <= c_M``,
``c_M`` is a metric, ``c_O <= c_M``, and ``c_O`` with tree distances is at
most ``s`` times ``c_Opt`` with graph distances.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.core.requests import RequestSchedule
from repro.errors import AnalysisError
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import dijkstra
from repro.spanning.tree import SpanningTree

__all__ = [
    "augmented_nodes_times",
    "tree_node_distances",
    "graph_node_distances",
    "request_distance_matrix",
    "c_a_matrix",
    "c_t_matrix",
    "c_m_matrix",
    "c_o_matrix",
    "path_cost",
    "order_to_indices",
    "indices_to_order",
]


def augmented_nodes_times(
    schedule: RequestSchedule, root: int
) -> tuple[np.ndarray, np.ndarray]:
    """Node and time vectors with the virtual root request at index 0."""
    nodes = np.empty(len(schedule) + 1, dtype=np.int64)
    times = np.empty(len(schedule) + 1, dtype=np.float64)
    nodes[0] = root
    times[0] = 0.0
    for r in schedule:
        nodes[r.rid + 1] = r.node
        times[r.rid + 1] = r.time
    return nodes, times


def tree_node_distances(tree: SpanningTree, needed: np.ndarray) -> dict[int, np.ndarray]:
    """Weighted tree distances from each distinct node in ``needed``.

    One O(n) traversal per distinct source — cheaper than pairwise LCA
    queries when requests repeat nodes, which they do in every workload.
    """
    out: dict[int, np.ndarray] = {}
    n = tree.num_nodes
    for src in {int(x) for x in needed}:
        dist = np.full(n, np.inf)
        dist[src] = 0.0
        dq: deque[int] = deque([src])
        while dq:
            u = dq.popleft()
            du = dist[u]
            for v in tree.neighbors(u):
                if math.isinf(dist[v]):
                    w = (
                        tree.edge_weight[v]
                        if tree.parent[v] == u
                        else tree.edge_weight[u]
                    )
                    dist[v] = du + w
                    dq.append(v)
        out[src] = dist
    return out


def graph_node_distances(graph: Graph, needed: np.ndarray) -> dict[int, np.ndarray]:
    """Shortest-path ``d_G`` distances from each distinct node in ``needed``."""
    out: dict[int, np.ndarray] = {}
    for src in {int(x) for x in needed}:
        out[src] = np.asarray(dijkstra(graph, src)[0], dtype=np.float64)
    return out


def request_distance_matrix(
    metric: SpanningTree | Graph, nodes: np.ndarray
) -> np.ndarray:
    """Dense distance matrix between the requests' issuing nodes.

    ``metric`` selects the tree metric ``d_T`` (pass a
    :class:`SpanningTree`) or the graph metric ``d_G`` (pass a
    :class:`Graph`).
    """
    if isinstance(metric, SpanningTree):
        per_src = tree_node_distances(metric, nodes)
    elif isinstance(metric, Graph):
        per_src = graph_node_distances(metric, nodes)
    else:  # pragma: no cover - defensive
        raise AnalysisError(f"unsupported metric object {type(metric)!r}")
    m = len(nodes)
    out = np.empty((m, m), dtype=np.float64)
    for i in range(m):
        out[i, :] = per_src[int(nodes[i])][nodes]
    if not np.all(np.isfinite(out)):
        raise AnalysisError("distance matrix has unreachable pairs")
    return out


# ----------------------------------------------------------------------
# cost matrices
# ----------------------------------------------------------------------
def c_a_matrix(D: np.ndarray) -> np.ndarray:
    """Arrow's per-link latency cost ``c_A`` (eq. 1): just the distances."""
    return D.copy()


def c_t_matrix(D: np.ndarray, times: np.ndarray) -> np.ndarray:
    """The asymmetric arrow-order cost ``c_T`` (Definition 3.5).

    ``c_T[i, j] = t_j - t_i + D`` when that is non-negative, otherwise
    ``t_i - t_j + D``.  Always non-negative (Fact 3.6).
    """
    dt = times[None, :] - times[:, None]  # t_j - t_i
    d = dt + D
    return np.where(d >= 0.0, d, -dt + D)


def c_m_matrix(D: np.ndarray, times: np.ndarray) -> np.ndarray:
    """The Manhattan metric ``c_M`` (Definition 3.14)."""
    return D + np.abs(times[None, :] - times[:, None])


def c_o_matrix(D: np.ndarray, times: np.ndarray) -> np.ndarray:
    """The offline lower-bound cost (eq. 3): ``max(D, t_i - t_j)``.

    Entry ``[i, j]`` bounds the latency of request ``j`` when queued
    immediately after request ``i``: the successor cannot be announced
    before the predecessor exists (``t_i - t_j``) nor faster than
    information travels (``D[i, j]``).  Pass tree distances for ``c_O``,
    graph distances for ``c_Opt``.
    """
    dt = times[:, None] - times[None, :]  # t_i - t_j
    return np.maximum(D, dt)


# ----------------------------------------------------------------------
# order evaluation
# ----------------------------------------------------------------------
def order_to_indices(order_rids: list[int]) -> list[int]:
    """Queuing order (rids) -> augmented matrix indices, prepending root."""
    return [0] + [rid + 1 for rid in order_rids]


def indices_to_order(indices: list[int]) -> list[int]:
    """Augmented matrix indices -> queuing order (rids), dropping root."""
    if not indices or indices[0] != 0:
        raise AnalysisError("augmented index path must start at the root (0)")
    return [i - 1 for i in indices[1:]]


def path_cost(indices: list[int], C: np.ndarray) -> float:
    """Sum of ``C`` over consecutive pairs of an augmented index path."""
    if len(indices) < 2:
        return 0.0
    idx = np.asarray(indices)
    return float(C[idx[:-1], idx[1:]].sum())
