"""The nearest-neighbour characterisation of arrow's queuing order.

Lemma 3.8 (and 3.20 for the asynchronous case) is the paper's key
structural insight: the order in which the arrow protocol queues requests
is a nearest-neighbour TSP path over the requests under the asymmetric
cost ``c_T``, starting from the virtual root request.

:func:`nn_order` computes such a path for any cost matrix; ties are broken
toward the lowest canonical index, and flagged, because with ties arrow's
actual order is *some* NN path but not necessarily this one — the
integration tests therefore compare orders only on tie-free instances and
otherwise just check the NN property of the simulated order.

:func:`predict_arrow_run` is the **fast executor**: it reproduces arrow's
order and cost (Lemma 3.10) in ``O(|R|^2)`` numpy work without message-
level simulation, which makes the large lower-bound sweeps tractable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.costs import (
    augmented_nodes_times,
    c_t_matrix,
    path_cost,
    request_distance_matrix,
)
from repro.core.requests import RequestSchedule
from repro.errors import AnalysisError
from repro.spanning.tree import SpanningTree

__all__ = ["NNResult", "nn_order", "PredictedRun", "predict_arrow_run"]


@dataclass(frozen=True, slots=True)
class NNResult:
    """A nearest-neighbour path and tie diagnostics."""

    indices: list[int]
    total_cost: float
    had_ties: bool
    #: Largest and smallest non-zero edge cost along the path (used by the
    #: Theorem 3.18 bound: the class count is log2(D_NN / d_NN)).
    max_edge: float
    min_nonzero_edge: float


def nn_order(C: np.ndarray, start: int = 0, tie_break: str = "min") -> NNResult:
    """Greedy nearest-neighbour path under cost matrix ``C``.

    Starts at ``start`` and repeatedly moves to a cheapest unvisited index.
    ``tie_break`` selects among cost-tied candidates: ``"min"`` (lowest
    canonical index = earliest issue time) or ``"max"`` (highest index).
    Lemma 3.8 leaves tie resolution to the message scheduler, so *every*
    tie-break policy corresponds to a legal arrow execution; the
    lower-bound experiments use ``"max"`` as an adversarial scheduler.
    """
    m = C.shape[0]
    if C.shape != (m, m):
        raise AnalysisError("cost matrix must be square")
    if not 0 <= start < m:
        raise AnalysisError(f"start index {start} out of range")
    if tie_break not in ("min", "max"):
        raise AnalysisError(f"unknown tie_break {tie_break!r}")
    visited = np.zeros(m, dtype=bool)
    visited[start] = True
    indices = [start]
    total = 0.0
    had_ties = False
    max_edge = 0.0
    min_nonzero = np.inf
    cur = start
    big = np.inf
    for _ in range(m - 1):
        row = np.where(visited, big, C[cur])
        nxt = int(np.argmin(row))
        best = row[nxt]
        # Tie diagnostics: more than one unvisited index achieving the min.
        ties = np.nonzero(row == best)[0]
        if len(ties) > 1:
            had_ties = True
            if tie_break == "max":
                nxt = int(ties[-1])
        visited[nxt] = True
        indices.append(nxt)
        total += float(best)
        if best > max_edge:
            max_edge = float(best)
        if 0.0 < best < min_nonzero:
            min_nonzero = float(best)
        cur = nxt
    if not np.isfinite(min_nonzero):
        min_nonzero = 0.0
    return NNResult(indices, total, had_ties, max_edge, min_nonzero)


@dataclass(frozen=True, slots=True)
class PredictedRun:
    """Fast-executor prediction of an arrow execution (synchronous model)."""

    #: Queuing order as canonical rids (root request excluded).
    order: list[int]
    #: Arrow's total latency cost (eq. 2): sum of tree distances between
    #: consecutive requests in the order.
    arrow_cost: float
    #: Total c_T along the NN path (C_T of Lemma 3.10).
    ct_total: float
    #: Issue time of the last request in arrow's order.
    t_last: float
    #: Whether any NN step had ties (order then matches *a* valid arrow
    #: execution, not necessarily a specific simulated one).
    had_ties: bool
    max_ct_edge: float


def predict_arrow_run(
    tree: SpanningTree, schedule: RequestSchedule, tie_break: str = "min"
) -> PredictedRun:
    """Predict arrow's order and cost via the NN characterisation.

    Returns the order (Lemma 3.8), arrow's total latency (eq. 2) and the
    ``C_T`` path total; the identity ``arrow_cost = C_T - t_last``
    (Lemma 3.10, as derived in its proof) is verified by the tests against
    both this executor and the message-level simulation.  ``tie_break``
    selects the simulated message scheduler among the legal ones (see
    :func:`nn_order`).
    """
    nodes, times = augmented_nodes_times(schedule, tree.root)
    D = request_distance_matrix(tree, nodes)
    CT = c_t_matrix(D, times)
    nn = nn_order(CT, start=0, tie_break=tie_break)
    order = [i - 1 for i in nn.indices[1:]]
    arrow_cost = path_cost(nn.indices, D)
    t_last = float(times[nn.indices[-1]]) if len(nn.indices) > 1 else 0.0
    return PredictedRun(
        order=order,
        arrow_cost=arrow_cost,
        ct_total=nn.total_cost,
        t_last=t_last,
        had_ties=nn.had_ties,
        max_ct_edge=nn.max_edge,
    )
