"""The optimal offline queuing algorithm: exact solvers and bounds.

The paper's competitor (§3.3) is an omniscient offline algorithm that
knows every request in advance, orders them to minimise total latency, and
communicates over the full graph ``G``.  Its cost for placing request
``r_j`` right after ``r_i`` is at least ``c_Opt(r_i, r_j) = max(d_G(v_i,
v_j), t_i - t_j)`` (Fact 3.4) — and exactly that value is achievable by an
algorithm that knows the order up front, so

    cost_Opt = min over permutations π of  Σ c_Opt(r_π(i-1), r_π(i)).

This module provides:

* :func:`held_karp_path` — exact minimum-cost Hamiltonian path under any
  asymmetric cost matrix (bitmask DP, exponential: use for ≤ ~14 requests);
* :func:`best_heuristic_path` — NN + or-opt improvement, a certified
  *upper* bound on ``cost_Opt`` for larger instances;
* :func:`manhattan_mst_weight` — MST weight under the Manhattan metric,
  powering the paper's *lower*-bound chain (Lemmas 3.15–3.17):

      cost_Opt  >=  C_O(π_O) / s  >=  C_M(π_O) / (12 s)  >=  MST_M / (12 s);

* :func:`opt_bounds` / :class:`OptBounds` — both sides bundled, used by the
  competitive-ratio experiments to bracket the true ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.costs import (
    augmented_nodes_times,
    c_m_matrix,
    c_o_matrix,
    path_cost,
    request_distance_matrix,
)
from repro.analysis.nearest_neighbor import nn_order
from repro.core.requests import RequestSchedule
from repro.errors import AnalysisError
from repro.graphs.graph import Graph
from repro.spanning.tree import SpanningTree

__all__ = [
    "held_karp_path",
    "or_opt_improve",
    "best_heuristic_path",
    "manhattan_mst_weight",
    "OptBounds",
    "opt_bounds",
    "HELD_KARP_LIMIT",
]

#: Largest number of requests (excluding the root) for which the exact
#: Held–Karp solver is attempted by default (2^m states).
HELD_KARP_LIMIT = 14


def held_karp_path(C: np.ndarray) -> tuple[float, list[int]]:
    """Exact min-cost Hamiltonian path from index 0 under asymmetric ``C``.

    Bitmask dynamic program over the non-root indices; ``O(2^k k^2)`` time
    and ``O(2^k k)`` memory for ``k = m - 1``.  Returns the optimal cost
    and the realising augmented index path (starting with 0).
    """
    m = C.shape[0]
    k = m - 1
    if k <= 0:
        return 0.0, [0]
    if k > 20:  # hard safety: 2^20 states of k floats is already ~170 MB
        raise AnalysisError(f"held_karp_path: {k} requests is too large")
    # dp[mask, j] = min cost of a path 0 -> ... -> (j+1) visiting exactly
    # the request set `mask` (bit j <-> augmented index j+1).  Pull form:
    # dp[mask, j] = min_i dp[mask ^ (1<<j), i] + C[i+1, j+1].
    size = 1 << k
    dp = np.full((size, k), np.inf)
    parent = np.full((size, k), -1, dtype=np.int32)
    Csub = C[1:, 1:]  # request-to-request block
    for j in range(k):
        dp[1 << j, j] = C[0, j + 1]
    for mask in range(1, size):
        if mask & (mask - 1) == 0:
            continue  # singleton: initialised above
        bits = mask
        while bits:
            j = (bits & -bits).bit_length() - 1
            bits &= bits - 1
            prev = mask ^ (1 << j)
            vals = dp[prev] + Csub[:, j]
            i = int(np.argmin(vals))
            dp[mask, j] = vals[i]
            parent[mask, j] = i
    full = size - 1
    end = int(np.argmin(dp[full]))
    best = float(dp[full, end])
    # Reconstruct the optimal path backwards through the parent table.
    path = [end + 1]
    mask, j = full, end
    while parent[mask, j] >= 0:
        pj = int(parent[mask, j])
        mask ^= 1 << j
        j = pj
        path.append(j + 1)
    path.append(0)
    path.reverse()
    return best, path


def or_opt_improve(
    indices: list[int], C: np.ndarray, max_rounds: int = 8
) -> tuple[float, list[int]]:
    """Or-opt local search: relocate single elements (asymmetric-safe).

    2-opt segment reversal is invalid under asymmetric costs (reversing a
    segment changes its internal cost), so we use single-element
    relocation, which only touches three splice points.  The root (index
    position 0) never moves.
    """
    path = list(indices)
    m = len(path)
    if m <= 2:
        return path_cost(path, C), path

    def splice_gain(i: int, j: int) -> float:
        # Remove path[i] and re-insert between path[j] and path[j+1]
        # (positions refer to the path *after* removal when j >= i).
        a, b, c = path[i - 1], path[i], path[i + 1] if i + 1 < m else None
        if c is None:
            removed = C[a, b]
            broken = 0.0
        else:
            removed = C[a, b] + C[b, c]
            broken = C[a, c]
        u = path[j]
        v = path[j + 1] if j + 1 < m else None
        if v is None:
            added = C[u, b]
            old = 0.0
        else:
            added = C[u, b] + C[b, v]
            old = C[u, v]
        return (removed - broken) - (added - old)

    improved = True
    rounds = 0
    while improved and rounds < max_rounds:
        improved = False
        rounds += 1
        for i in range(1, m):
            best_gain = 1e-12
            best_j = -1
            for j in range(0, m):
                if j in (i - 1, i):
                    continue
                g = splice_gain(i, j)
                if g > best_gain:
                    best_gain = g
                    best_j = j
            if best_j >= 0:
                b = path.pop(i)
                jj = best_j if best_j < i else best_j - 1
                path.insert(jj + 1, b)
                improved = True
    return path_cost(path, C), path


def best_heuristic_path(C: np.ndarray) -> tuple[float, list[int]]:
    """Best of {canonical order, NN, NN + or-opt}: an Opt upper bound."""
    m = C.shape[0]
    ident = list(range(m))
    cand: list[tuple[float, list[int]]] = [(path_cost(ident, C), ident)]
    nn = nn_order(C, start=0)
    cand.append((nn.total_cost, nn.indices))
    cand.append(or_opt_improve(nn.indices, C))
    cand.sort(key=lambda x: x[0])
    return cand[0]


def manhattan_mst_weight(CM: np.ndarray) -> float:
    """MST weight of the complete request graph under the Manhattan metric.

    Dense Prim in O(m^2) with numpy rows.  Any queuing order is a
    Hamiltonian path, i.e. a spanning tree of this complete graph, so the
    MST weight lower-bounds ``C_M(π)`` for *every* order π.
    """
    m = CM.shape[0]
    if m <= 1:
        return 0.0
    in_tree = np.zeros(m, dtype=bool)
    in_tree[0] = True
    best = CM[0].astype(np.float64).copy()
    best[0] = np.inf
    total = 0.0
    for _ in range(m - 1):
        masked = np.where(in_tree, np.inf, best)
        j = int(np.argmin(masked))
        total += float(masked[j])
        in_tree[j] = True
        best = np.minimum(best, CM[j])
    return total


@dataclass(frozen=True, slots=True)
class OptBounds:
    """Bracketing of the optimal offline cost for one instance."""

    #: Certified lower bound on cost_Opt (max of the bound family).
    lower: float
    #: Certified upper bound (cost of a concrete achievable order).
    upper: float
    #: True when `upper` comes from the exact Held–Karp solver, in which
    #: case lower == upper == cost_Opt.
    exact: bool
    #: Individual lower bounds, keyed by name (for diagnostics).
    parts: dict[str, float]

    def ratio_bracket(self, protocol_cost: float) -> tuple[float, float]:
        """(lowest, highest) possible competitive ratio for a given cost."""
        hi = protocol_cost / self.lower if self.lower > 0 else float("inf")
        lo = protocol_cost / self.upper if self.upper > 0 else float("inf")
        return lo, hi


def opt_bounds(
    graph: Graph,
    tree: SpanningTree,
    schedule: RequestSchedule,
    stretch: float,
    *,
    exact_limit: int = HELD_KARP_LIMIT,
) -> OptBounds:
    """Bracket the optimal offline cost of a schedule (see module docs).

    ``stretch`` is the tree's stretch w.r.t. the graph (Definition 3.1);
    it enters the Manhattan-MST lower bound via Lemma 3.17's chain.
    """
    if len(schedule) == 0:
        return OptBounds(0.0, 0.0, True, {})
    nodes, times = augmented_nodes_times(schedule, tree.root)
    DG = request_distance_matrix(graph, nodes)
    DT = request_distance_matrix(tree, nodes)
    C_opt = c_o_matrix(DG, times)
    CM_tree = c_m_matrix(DT, times)

    parts: dict[str, float] = {}
    # Lemma 3.15/3.16/3.17 chain with tree distances, divided by stretch.
    parts["mst_manhattan"] = manhattan_mst_weight(CM_tree) / (12.0 * stretch)
    # Elementary bounds: the furthest request from the root must be reached,
    # and each request's own best-case latency is its cheapest c_Opt entry.
    m = DG.shape[0]
    col_min = np.empty(m - 1)
    for j in range(1, m):
        col = np.delete(C_opt[:, j], j)
        col_min[j - 1] = col.min()
    parts["per_request_min"] = float(col_min.sum())
    parts["root_reach"] = float(DG[0].max())

    if len(schedule) <= exact_limit:
        exact_cost, _ = held_karp_path(C_opt)
        parts["exact"] = exact_cost
        return OptBounds(exact_cost, exact_cost, True, parts)

    upper, _ = best_heuristic_path(C_opt)
    lower = max(parts.values())
    lower = min(lower, upper)  # numeric safety: keep the bracket ordered
    return OptBounds(lower, upper, False, parts)
