"""Competitive-ratio measurement: arrow vs the optimal offline bracket.

Combines the pieces of Section 3 into one call: run arrow (message-level
or fast executor), bracket the optimal offline cost, and report the ratio
together with the theorem's bound ``O(s log D)`` evaluated with the
explicit constants the proof yields:

    cost_arrow <= (3 * ceil(log2(3D)) * 2 + 1) * C_M(π_O)   (Thm 3.19 chain)
    C_M(π_O)  <= 12 * C_O(π_O) <= 12 * s * cost_Opt

so ``ratio <= (6 ceil(log2(3D)) + 1) * 12 * s``.  The experiments check
measured ratios against this explicit ceiling (they are far below it on
random workloads, as expected from a worst-case bound).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.nearest_neighbor import predict_arrow_run
from repro.analysis.optimal import OptBounds, opt_bounds
from repro.core.fast_arrow import arrow_runner
from repro.core.requests import RequestSchedule
from repro.errors import AnalysisError
from repro.graphs.graph import Graph
from repro.net.latency import LatencyModel
from repro.spanning.metrics import tree_diameter, tree_stretch
from repro.spanning.tree import SpanningTree

__all__ = ["CompetitiveReport", "theorem_319_ceiling", "measure_competitive_ratio"]


def theorem_319_ceiling(stretch: float, diameter: float) -> float:
    """Explicit worst-case ratio ceiling from the Theorem 3.19 proof chain."""
    log_term = max(1.0, math.ceil(math.log2(max(2.0, 3.0 * diameter))))
    return (6.0 * log_term + 1.0) * 12.0 * stretch


@dataclass(frozen=True, slots=True)
class CompetitiveReport:
    """Everything measured for one (graph, tree, schedule) instance."""

    arrow_cost: float
    opt: OptBounds
    ratio_lower: float
    ratio_upper: float
    stretch: float
    diameter: float
    ceiling: float
    simulated: bool

    @property
    def within_ceiling(self) -> bool:
        """True when even the pessimistic ratio stays under the bound."""
        return self.ratio_upper <= self.ceiling + 1e-9


def measure_competitive_ratio(
    graph: Graph,
    tree: SpanningTree,
    schedule: RequestSchedule,
    *,
    simulate: bool = True,
    latency: LatencyModel | None = None,
    seed: int = 0,
    exact_limit: int = 12,
    engine: str = "message",
    arrow_cost: float | None = None,
) -> CompetitiveReport:
    """Measure arrow's competitive ratio bracket on one instance.

    With ``simulate`` the arrow cost comes from a simulator run — the
    message-level ground truth or, with ``engine="fast"``, the
    bit-identical :class:`~repro.core.fast_arrow.FastArrowEngine`
    (required for asynchronous latency models either way); otherwise
    from the fast NN executor (synchronous model only — a
    :class:`AnalysisError` is raised if a latency model is supplied).
    A caller that already *simulated* the instance can pass its
    ``arrow_cost`` to skip the redundant rerun; the report then counts as
    simulated regardless of the ``simulate`` flag.
    """
    if len(schedule) == 0:
        raise AnalysisError("cannot measure a ratio on an empty schedule")
    if not simulate and latency is not None:
        raise AnalysisError("fast executor models synchronous latency only")
    if arrow_cost is None:
        if simulate:
            runner = arrow_runner(engine)
            result = runner(graph, tree, schedule, latency=latency, seed=seed)
            arrow_cost = result.total_latency
        else:
            arrow_cost = predict_arrow_run(tree, schedule).arrow_cost
        simulated = simulate
    else:
        simulated = True

    stretch = tree_stretch(graph, tree).stretch
    diameter = tree_diameter(tree)
    bounds = opt_bounds(graph, tree, schedule, stretch, exact_limit=exact_limit)
    lo, hi = bounds.ratio_bracket(arrow_cost)
    return CompetitiveReport(
        arrow_cost=arrow_cost,
        opt=bounds,
        ratio_lower=lo,
        ratio_upper=hi,
        stretch=stretch,
        diameter=diameter,
        ceiling=theorem_319_ceiling(stretch, diameter),
        simulated=simulated,
    )
