"""Theorem 3.18: the generalised nearest-neighbour TSP bound.

Rosenkrantz et al. bound the NN heuristic by ``O(log N)`` times the optimal
tour when the cost is a metric.  The paper needs more: arrow's NN path uses
the *non-metric* cost ``c_T``, which is merely dominated by the Manhattan
metric ``c_M``.  Theorem 3.18 handles exactly this setting:

    Let ``d_n`` and ``d_o`` be distance functions with ``d_o`` a metric,
    ``0 <= d_n <= d_o`` and ``d_o(u, u) = 0``.  Let ``C_N`` be the length of
    a NN tour under ``d_n`` and ``C_O`` the optimal tour length under
    ``d_o``.  Then  ``C_N <= (3/2) * ceil(log2(D_NN / d_NN)) * C_O``,
    where ``D_NN``/``d_NN`` are the longest/shortest non-zero NN-tour edge.

This module builds NN tours, exact/heuristic optimal tours, and checks the
bound — both on synthetic ``(d_n, d_o)`` pairs and on the actual
``(c_T, c_M)`` pairs produced by arrow executions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.nearest_neighbor import nn_order
from repro.analysis.optimal import best_heuristic_path, held_karp_path
from repro.errors import AnalysisError

__all__ = [
    "tour_cost",
    "nn_tour",
    "optimal_tour_cost",
    "Theorem318Report",
    "check_theorem_318",
    "validate_dominated_pair",
]


def tour_cost(indices: list[int], C: np.ndarray) -> float:
    """Cost of the closed tour visiting ``indices`` and returning to start."""
    total = 0.0
    m = len(indices)
    for i in range(m):
        total += float(C[indices[i], indices[(i + 1) % m]])
    return total


def nn_tour(C: np.ndarray, start: int = 0) -> tuple[float, list[int], float, float]:
    """NN tour from ``start``: greedy path plus the closing edge.

    Returns ``(cost, indices, max_edge, min_nonzero_edge)`` where the edge
    statistics include the closing edge (they parameterise the bound).
    """
    nn = nn_order(C, start=start)
    closing = float(C[nn.indices[-1], start])
    cost = nn.total_cost + closing
    max_edge = max(nn.max_edge, closing)
    min_nonzero = nn.min_nonzero_edge
    if 0.0 < closing < (min_nonzero or math.inf):
        min_nonzero = closing
    return cost, nn.indices, max_edge, min_nonzero


def optimal_tour_cost(C: np.ndarray, exact_limit: int = 12) -> float:
    """Optimal (or best-found) tour cost under ``C``.

    Exact via Held–Karp + closing edge minimisation when small; otherwise
    the or-opt heuristic path closed into a tour (an upper bound on the
    optimum, which makes the Theorem 3.18 check *conservative*: if the NN
    cost stays below the bound times this value, it is below the bound
    times the true optimum ... only when exact).  Callers that need a
    certified check must stay within ``exact_limit``.
    """
    m = C.shape[0]
    if m <= 2:
        return tour_cost(list(range(m)), C)
    if m - 1 <= exact_limit:
        # Exact tour: fix start 0; DP over paths, then close each endpoint.
        best = math.inf
        cost, path = held_karp_path(C)
        # held_karp_path minimises the open path; for the exact *tour* we
        # re-run the DP implicitly by trying all ends: enumerate ends via
        # DP table is not exposed, so take the exact tour as min over
        # permutations of path endings using the path DP on rotated costs.
        # Simpler exact approach for small m: brute force over permutations
        # when very small, else path DP + closing edge (exact for the path,
        # near-exact for the tour).
        if m <= 9:
            import itertools

            idx = list(range(1, m))
            for perm in itertools.permutations(idx):
                seq = [0, *perm]
                c = tour_cost(seq, C)
                if c < best:
                    best = c
            return best
        return cost + float(C[path[-1], 0])
    cost, path = best_heuristic_path(C)
    return cost + float(C[path[-1], 0])


@dataclass(frozen=True, slots=True)
class Theorem318Report:
    """Outcome of one Theorem 3.18 check."""

    nn_cost: float
    opt_cost: float
    bound_factor: float
    bound_value: float
    ratio: float
    holds: bool
    max_edge: float
    min_nonzero_edge: float


def validate_dominated_pair(Dn: np.ndarray, Do: np.ndarray, tol: float = 1e-9) -> None:
    """Check the theorem's hypotheses on ``(d_n, d_o)``.

    ``d_o`` symmetric, triangle inequality, zero diagonal;
    ``0 <= d_n <= d_o``.  Raises :class:`AnalysisError` on violation.
    """
    if Dn.shape != Do.shape or Dn.shape[0] != Dn.shape[1]:
        raise AnalysisError("distance matrices must be square and same shape")
    if not np.allclose(Do, Do.T, atol=tol):
        raise AnalysisError("d_o must be symmetric")
    if not np.all(np.abs(np.diag(Do)) <= tol):
        raise AnalysisError("d_o must have zero diagonal")
    if np.any(Dn < -tol):
        raise AnalysisError("d_n must be non-negative")
    if np.any(Dn > Do + tol):
        raise AnalysisError("d_n must be dominated by d_o")
    # Triangle inequality: d_o(u,w) <= d_o(u,v) + d_o(v,w) for all v.
    m = Do.shape[0]
    for v in range(m):
        via = Do[:, v][:, None] + Do[v, :][None, :]
        if np.any(Do > via + tol):
            raise AnalysisError("d_o violates the triangle inequality")


def check_theorem_318(
    Dn: np.ndarray,
    Do: np.ndarray,
    *,
    start: int = 0,
    exact_limit: int = 12,
    validate: bool = True,
) -> Theorem318Report:
    """Verify ``C_N <= (3/2) ceil(log2(D_NN/d_NN)) C_O`` on one instance."""
    if validate:
        validate_dominated_pair(Dn, Do)
    nn_cost, _, max_edge, min_nonzero = nn_tour(Dn, start=start)
    opt_cost = optimal_tour_cost(Do, exact_limit=exact_limit)
    if max_edge <= 0.0:
        factor = 1.0  # all-zero NN tour: bound trivially holds
    else:
        if min_nonzero <= 0.0:
            min_nonzero = max_edge
        # Number of length classes [2^{i-1} d, 2^i d) needed to cover all
        # non-zero NN edges; each class costs at most (3/2) C_O.
        classes = math.floor(math.log2(max_edge / min_nonzero) + 1e-12) + 1
        factor = 1.5 * max(1, classes)
    bound_value = factor * opt_cost
    ratio = nn_cost / opt_cost if opt_cost > 0 else (0.0 if nn_cost == 0 else math.inf)
    holds = nn_cost <= bound_value + 1e-9 or nn_cost == 0.0
    return Theorem318Report(
        nn_cost=nn_cost,
        opt_cost=opt_cost,
        bound_factor=factor,
        bound_value=bound_value,
        ratio=ratio,
        holds=holds,
        max_edge=max_edge,
        min_nonzero_edge=min_nonzero,
    )
