"""The idle-time compression transformation (Lemmas 3.11 and 3.12).

Lemma 3.11: if between two consecutive requests (by issue time) the
quantity ``δ = min over (r_a before, r_b after) of (t_b - t_a - d_T(v_a,
v_b))`` is positive, every later request can be shifted earlier by ``δ``
without changing arrow's cost and without increasing the optimal offline
cost.  Repeating until no positive ``δ`` remains yields a canonical
schedule in which (Lemma 3.12) every gap has witnesses ``r_a, r_b`` with
``t_b - t_a <= d_T(v_a, v_b)`` — the precondition for the longest-edge
bound ``c_T <= 3D`` on arrow's path (Lemma 3.13).

The tests verify both invariances (arrow cost via the fast executor, Opt
via the exact solver on small instances) and the post-condition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.costs import augmented_nodes_times, request_distance_matrix
from repro.core.requests import RequestSchedule
from repro.spanning.tree import SpanningTree

__all__ = ["TransformReport", "compress_idle_time", "max_gap_slack"]


@dataclass(frozen=True, slots=True)
class TransformReport:
    """Result of compressing a schedule's idle time."""

    schedule: RequestSchedule
    shifts_applied: int
    total_shift: float


def _slacks(times: np.ndarray, D: np.ndarray) -> np.ndarray:
    """For each boundary between distinct consecutive issue times, the δ.

    ``δ_g = min_{a: t_a <= boundary} min_{b: t_b > boundary}
    (t_b - t_a - d_T(v_a, v_b))`` where boundaries sit between distinct
    consecutive time values.  Vectorised via the full pairwise matrix.
    """
    # Pairwise t_b - t_a - D for a as row, b as column.
    gap = times[None, :] - times[:, None] - D
    uniq = np.unique(times)
    out = np.full(len(uniq) - 1, np.inf)
    for g in range(len(uniq) - 1):
        boundary = uniq[g]
        a_mask = times <= boundary
        b_mask = times > boundary
        if a_mask.any() and b_mask.any():
            out[g] = gap[np.ix_(a_mask, b_mask)].min()
    return out


def max_gap_slack(tree: SpanningTree, schedule: RequestSchedule) -> float:
    """Largest remaining δ across all time gaps (<= 0 when canonical)."""
    if len(schedule) == 0:
        return 0.0
    nodes, times = augmented_nodes_times(schedule, tree.root)
    D = request_distance_matrix(tree, nodes)
    slacks = _slacks(times, D)
    return float(slacks.max()) if len(slacks) else 0.0


def compress_idle_time(
    tree: SpanningTree, schedule: RequestSchedule, *, max_iters: int = 10_000
) -> TransformReport:
    """Apply Lemma 3.11 shifts until no gap has positive slack.

    Each iteration closes the earliest positive gap; the number of distinct
    time values never grows and each iteration removes at least one unit of
    slack, so the loop terminates.  The virtual root request (time 0) is a
    member of the "before" set for every gap, which keeps times >= 0.
    """
    current = schedule
    shifts = 0
    total = 0.0
    for _ in range(max_iters):
        if len(current) == 0:
            break
        nodes, times = augmented_nodes_times(current, tree.root)
        D = request_distance_matrix(tree, nodes)
        slacks = _slacks(times, D)
        pos = np.nonzero(slacks > 1e-12)[0]
        if len(pos) == 0:
            break
        g = int(pos[0])
        boundary = np.unique(times)[g]
        delta = float(slacks[g])
        late_rids = [r.rid for r in current if r.time > boundary]
        current = current.shifted(late_rids, -delta)
        shifts += 1
        total += delta
    return TransformReport(current, shifts, total)
