"""Checkers for the paper's structural lemmas on actual executions.

These functions take simulated (or fast-executor) runs and verify the
claims of Section 3 hold on them; the integration and property-based test
suites call them across many random instances.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.costs import (
    augmented_nodes_times,
    c_t_matrix,
    order_to_indices,
    path_cost,
    request_distance_matrix,
)
from repro.core.queueing import RunResult
from repro.core.requests import RequestSchedule
from repro.spanning.tree import SpanningTree

__all__ = [
    "is_nn_path",
    "check_lemma_3_8",
    "check_lemma_3_9",
    "check_fact_3_6",
    "lemma_3_10_identity_gap",
    "max_ct_edge_on_order",
    "check_direct_path_property",
    "arrow_cost_of_order",
]


def is_nn_path(indices: list[int], C: np.ndarray, tol: float = 1e-9) -> bool:
    """True iff each step of the path goes to *a* nearest unvisited node.

    This is the correct check in the presence of ties: the path need not
    match a specific greedy run, it must just never skip a strictly closer
    candidate (eq. 6/7 of the paper).
    """
    m = C.shape[0]
    if sorted(indices) != list(range(m)):
        return False
    remaining = np.ones(m, dtype=bool)
    remaining[indices[0]] = False
    for pos in range(len(indices) - 1):
        cur, nxt = indices[pos], indices[pos + 1]
        row = C[cur]
        best = row[remaining].min()
        if row[nxt] > best + tol:
            return False
        remaining[nxt] = False
    return True


def check_lemma_3_8(
    tree: SpanningTree, schedule: RequestSchedule, order: list[int]
) -> bool:
    """The simulated queuing order is an NN path under ``c_T`` (Lemma 3.8)."""
    nodes, times = augmented_nodes_times(schedule, tree.root)
    D = request_distance_matrix(tree, nodes)
    CT = c_t_matrix(D, times)
    return is_nn_path(order_to_indices(order), CT)


def check_lemma_3_9(
    tree: SpanningTree, schedule: RequestSchedule, order: list[int]
) -> bool:
    """Time-separated requests are ordered by time (Lemma 3.9).

    For every pair with ``t_j - t_i > d_T(v_i, v_j)``, request ``i``
    precedes request ``j`` in the queuing order.
    """
    pos = {rid: k for k, rid in enumerate(order)}
    reqs = list(schedule)
    for a in range(len(reqs)):
        for b in range(len(reqs)):
            ri, rj = reqs[a], reqs[b]
            if rj.time - ri.time > tree.distance(ri.node, rj.node):
                if pos[ri.rid] > pos[rj.rid]:
                    return False
    return True


def check_fact_3_6(tree: SpanningTree, schedule: RequestSchedule) -> bool:
    """``c_T >= 0`` everywhere (Fact 3.6)."""
    nodes, times = augmented_nodes_times(schedule, tree.root)
    D = request_distance_matrix(tree, nodes)
    CT = c_t_matrix(D, times)
    return bool(np.all(CT >= -1e-12))


def arrow_cost_of_order(
    tree: SpanningTree, schedule: RequestSchedule, order: list[int]
) -> float:
    """Arrow's total latency for a given order (eq. 2): Σ consecutive d_T."""
    nodes, _ = augmented_nodes_times(schedule, tree.root)
    D = request_distance_matrix(tree, nodes)
    return path_cost(order_to_indices(order), D)


def lemma_3_10_identity_gap(
    tree: SpanningTree, schedule: RequestSchedule, order: list[int]
) -> float:
    """|cost_arrow - (C_T - t_last)| for the given order.

    Lemma 3.10 (as derived in its proof; see the DESIGN.md transcription
    note): the ``c_T`` path total telescopes to
    ``t_last + Σ d_T = t_last + cost_arrow``.  Returns the numeric gap,
    which should be ~0.
    """
    nodes, times = augmented_nodes_times(schedule, tree.root)
    D = request_distance_matrix(tree, nodes)
    CT = c_t_matrix(D, times)
    idx = order_to_indices(order)
    ct_total = path_cost(idx, CT)
    cost_arrow = path_cost(idx, D)
    t_last = float(times[idx[-1]])
    return abs(cost_arrow - (ct_total - t_last))


def max_ct_edge_on_order(
    tree: SpanningTree, schedule: RequestSchedule, order: list[int]
) -> float:
    """Largest single ``c_T`` edge along the order (Lemma 3.13's quantity)."""
    nodes, times = augmented_nodes_times(schedule, tree.root)
    D = request_distance_matrix(tree, nodes)
    CT = c_t_matrix(D, times)
    idx = order_to_indices(order)
    if len(idx) < 2:
        return 0.0
    arr = np.asarray(idx)
    return float(CT[arr[:-1], arr[1:]].max())


def check_direct_path_property(
    tree: SpanningTree, result: RunResult, *, tol: float = 1e-9
) -> bool:
    """Synchronous direct-path theorem ([4], eq. 1).

    In the synchronous model each request's latency equals the tree
    distance between its issuing node and its predecessor's issuer, and
    the hop count equals the hop distance.  Requires a unit-latency,
    zero-service-time run.
    """
    for rid, rec in result.completions.items():
        req = result.schedule.by_rid(rid)
        want_lat = tree.distance(req.node, rec.informed_node)
        want_hops = tree.hop_distance(req.node, rec.informed_node)
        latency = rec.completed_at - req.time
        if abs(latency - want_lat) > tol or rec.hops != want_hops:
            return False
    return True
