"""Deterministic latency-distribution summaries for sweep rows.

Sweep rows persist JSON scalars and lists only, and the byte-identity
contract (same grid + seed -> same JSONL regardless of worker count)
extends to these columns: every value below is a pure function of the
multiset of latencies, computed so accumulation order can never leak
into the output.

Percentiles use the nearest-rank definition (the smallest value with at
least ``p`` percent of the mass at or below it) — exact list indexing,
no interpolation, no float-method ambiguity across numpy versions.

The histogram uses ``bins`` equal-width buckets spanning
``[0, {prefix}max]``; the top edge is inclusive.  Only the bin *counts*
are persisted — the edges are fully determined by ``{prefix}max`` and
the bin count, and persisting derived values would only duplicate
information that must never disagree.

Internally every summary is computed from a :class:`QuantileSketch` — a
mergeable, t-digest-style centroid sketch.  Per-row sketches run in
**exact mode** (``compression=None``): the sketch is then just the
value multiset, and the derived columns are byte-identical to summaries
computed directly over the sorted latency list (a differential test
enforces this).  Cross-row aggregation — grid-level percentiles over
millions of requests — builds one sketch per row from its persisted
histogram (:meth:`QuantileSketch.from_histogram`) and merges them in a
single streaming pass; compressed sketches bound their memory at
``O(compression)`` centroids with a documented rank-error guarantee
(see :class:`QuantileSketch`).
"""

from __future__ import annotations

import math
from typing import Any, Iterable

__all__ = [
    "DEFAULT_BINS",
    "DEFAULT_COMPRESSION",
    "QuantileSketch",
    "latency_columns",
    "percentile_nearest_rank",
    "sketch_columns",
]

#: Default number of equal-width histogram buckets in sweep rows.
DEFAULT_BINS = 16

#: Default centroid budget for compressed (cross-row) sketches.  The
#: rank-error bound is ``ceil(2 n / compression)``, so 400 centroids
#: resolve grid-level percentiles to half a percentile of rank error.
DEFAULT_COMPRESSION = 400


def percentile_nearest_rank(sorted_values: list[float], p: float) -> float:
    """Nearest-rank percentile of an already-sorted, non-empty list."""
    if not sorted_values:
        raise ValueError("percentile of an empty list")
    if not 0 < p <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {p}")
    rank = math.ceil(p / 100.0 * len(sorted_values))
    return sorted_values[rank - 1]


class QuantileSketch:
    """Mergeable quantile sketch over a multiset of non-negative floats.

    A t-digest-style centroid sketch, pure Python and deterministic:

    * With ``compression=None`` (**exact mode**, the per-row default)
      the sketch stores the exact ``value -> count`` multiset, so every
      query — nearest-rank percentiles, mean, max, histogram — replays
      the same arithmetic as a direct computation over the sorted value
      list, bit for bit, and the state is independent of insertion
      order.
    * With an integer ``compression`` (``delta``), whenever the sketch
      holds more than ``2 * delta`` distinct centroids they are merged —
      sorted by value, then grouped greedily left to right with a
      per-group weight cap of ``ceil(2 n / delta)`` — into at most
      ``delta + 1`` weighted centroids at the group's weighted mean.

    **Accuracy guarantee (documented rank tolerance).**  Every centroid
    group's weight is at most ``ceil(2 n / compression)`` (equal values
    always share one centroid and are exempt — they carry no value
    error).  A :meth:`quantile` query answers nearest-rank over the
    centroids, so the returned value's true rank differs from the
    requested rank by at most ``ceil(2 n / compression)``; at the
    default compression of 400 that is half a percent of rank error.

    **Merge.**  ``a.merge(b)`` concatenates the centroid multisets and
    re-compresses; the combination is a pure function of the centroid
    *multiset*, so ``a.merge(b)`` equals ``b.merge(a)`` exactly.  The
    true ``max``/``min`` are carried exactly through any number of
    compressions and merges (they anchor the histogram's bucket edges).

    Values are assumed non-negative (latencies); the histogram spans
    ``[0, max]`` like the persisted sweep columns.
    """

    __slots__ = ("compression", "_weights", "_count", "_min", "_max", "_lossy")

    def __init__(self, compression: int | None = None):
        if compression is not None and compression < 8:
            raise ValueError(f"compression must be >= 8, got {compression}")
        self.compression = compression
        self._weights: dict[float, int] = {}
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        #: True once any centroid is a lossy merge of distinct values.
        self._lossy = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_values(
        cls, values: Iterable[float], *, compression: int | None = None
    ) -> "QuantileSketch":
        """Sketch of a value iterable (exact unless ``compression`` set)."""
        sk = cls(compression)
        for v in values:
            sk.add(float(v))
        return sk

    @classmethod
    def from_histogram(
        cls,
        counts: list[int],
        hi: float,
        *,
        compression: int | None = None,
    ) -> "QuantileSketch":
        """Rebuild an approximate sketch from persisted histogram columns.

        Sweep rows persist only ``{prefix}hist`` (equal-width bucket
        counts on ``[0, hi]``) and ``{prefix}max`` (= ``hi``), so this is
        the bridge from stored rows back into mergeable sketches: each
        non-empty bucket becomes one centroid at the bucket midpoint.
        Ranks are exact to bucket resolution; values are within half a
        bucket width (the true ``max`` is carried exactly).  A
        degenerate ``hi <= 0`` histogram (every request a local find)
        becomes a single centroid at 0.
        """
        sk = cls(compression)
        n = sum(counts)
        if n == 0:
            return sk
        if hi <= 0.0:
            sk._record(0.0, n)
            sk._min = min(sk._min, 0.0)
            sk._max = max(sk._max, hi if n else 0.0)
            sk._lossy = True
            return sk
        width = hi / len(counts)
        for i, c in enumerate(counts):
            if c:
                sk._record((i + 0.5) * width, c)
                sk._min = min(sk._min, i * width)
        sk._max = max(sk._max, hi)
        sk._lossy = True
        sk._maybe_shrink()
        return sk

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------
    def _record(self, value: float, weight: int) -> None:
        self._weights[value] = self._weights.get(value, 0) + weight
        self._count += weight

    def add(self, value: float, weight: int = 1) -> None:
        """Add ``weight`` occurrences of ``value``."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        value = float(value)
        self._record(value, weight)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._maybe_shrink()

    def update(self, values: Iterable[float]) -> None:
        """Add every value of an iterable."""
        for v in values:
            self.add(float(v))

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Return a new sketch summarising both inputs (commutative).

        The result's compression is the tighter (smaller) of the two
        inputs' budgets; merging an exact sketch into a compressed one
        therefore yields a compressed sketch, never an unbounded one.
        """
        if self.compression is None:
            compression = other.compression
        elif other.compression is None:
            compression = self.compression
        else:
            compression = min(self.compression, other.compression)
        out = QuantileSketch(compression)
        for sk in (self, other):
            for v, w in sk._weights.items():
                out._record(v, w)
        out._count = self._count + other._count
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        out._lossy = self._lossy or other._lossy
        out._maybe_shrink()
        return out

    def _maybe_shrink(self) -> None:
        if self.compression is not None and len(self._weights) > 2 * self.compression:
            self._shrink()

    def _shrink(self) -> None:
        """Greedy capped-weight centroid merge (pure function of the state).

        Centroids are sorted by value and grouped left to right; a group
        closes before exceeding ``ceil(2 n / compression)`` total weight
        (a single over-weight centroid — one heavily duplicated value —
        stays alone, exactly).  Each group collapses to its weighted
        mean, so at most ``compression + 1`` centroids survive.
        """
        assert self.compression is not None
        cap = max(1, math.ceil(2 * self._count / self.compression))
        items = sorted(self._weights.items())
        merged: dict[float, int] = {}
        group: list[tuple[float, int]] = []
        group_w = 0

        def flush() -> None:
            nonlocal group, group_w
            if not group:
                return
            if len(group) == 1:
                v, w = group[0]
            else:
                w = group_w
                v = math.fsum(gv * gw for gv, gw in group) / w
                self._lossy = True
            merged[v] = merged.get(v, 0) + w
            group = []
            group_w = 0

        for v, w in items:
            if group and group_w + w > cap:
                flush()
            group.append((v, w))
            group_w += w
        flush()
        self._weights = merged

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Total weight (number of values summarised)."""
        return self._count

    @property
    def is_exact(self) -> bool:
        """True while no lossy centroid merge has happened."""
        return not self._lossy

    @property
    def num_centroids(self) -> int:
        return len(self._weights)

    def min_value(self) -> float:
        if self._count == 0:
            raise ValueError("min of an empty sketch")
        return self._min

    def max_value(self) -> float:
        if self._count == 0:
            raise ValueError("max of an empty sketch")
        return self._max

    def mean(self) -> float:
        """Mean of the summarised values.

        Exact sketches replay the identical left-to-right float
        accumulation as ``sum(sorted(values)) / n``, so per-row columns
        stay byte-identical; lossy sketches use the weighted centroid
        mean.
        """
        if self._count == 0:
            raise ValueError("mean of an empty sketch")
        if self._lossy:
            return math.fsum(v * w for v, w in sorted(self._weights.items())) / (
                self._count
            )
        total = 0.0
        for v, w in sorted(self._weights.items()):
            for _ in range(w):
                total += v
        return total / self._count

    def quantile(self, p: float) -> float:
        """Nearest-rank percentile over the centroids.

        Exact sketches return exactly
        ``percentile_nearest_rank(sorted(values), p)``; compressed
        sketches return a centroid mean whose true rank is within
        ``ceil(2 n / compression)`` of the requested rank.
        """
        if self._count == 0:
            raise ValueError("percentile of an empty sketch")
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        rank = math.ceil(p / 100.0 * self._count)
        cum = 0
        for v, w in sorted(self._weights.items()):
            cum += w
            if cum >= rank:
                return v
        return self._max  # pragma: no cover - unreachable (cum == count)

    def histogram(self, bins: int, *, hi: float | None = None) -> list[int]:
        """Equal-width bucket counts on ``[0, hi]`` (top edge inclusive).

        ``hi`` defaults to the sketch's exact max.  Exact sketches
        reproduce the persisted ``{prefix}hist`` columns bit for bit; a
        degenerate ``hi <= 0`` puts the whole mass in the first,
        zero-width bucket (the all-local-find shape).
        """
        if bins <= 0:
            raise ValueError(f"bins must be positive, got {bins}")
        counts = [0] * bins
        if self._count == 0:
            return counts
        if hi is None:
            hi = self._max
        if hi <= 0.0:
            counts[0] = self._count
            return counts
        scale = bins / hi
        for v, w in self._weights.items():
            idx = int(v * scale)
            if idx >= bins:  # v == hi (or float rounding at the top edge)
                idx = bins - 1
            counts[idx] += w
        return counts

    # ------------------------------------------------------------------
    # serialisation (store-level caching of merged sketches)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-able snapshot (canonical: centroids sorted by value)."""
        return {
            "compression": self.compression,
            "count": self._count,
            "min": None if self._count == 0 else self._min,
            "max": None if self._count == 0 else self._max,
            "lossy": self._lossy,
            "centroids": [[v, w] for v, w in sorted(self._weights.items())],
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "QuantileSketch":
        """Inverse of :meth:`to_dict`."""
        sk = cls(doc.get("compression"))
        for v, w in doc["centroids"]:
            sk._weights[float(v)] = int(w)
        sk._count = int(doc["count"])
        if sk._count:
            sk._min = float(doc["min"])
            sk._max = float(doc["max"])
        sk._lossy = bool(doc.get("lossy", bool(sk._weights)))
        return sk


def sketch_columns(
    sketch: QuantileSketch, *, bins: int = DEFAULT_BINS, prefix: str = "latency_"
) -> dict[str, Any]:
    """Summary + histogram columns derived from a sketch.

    For an exact sketch this emits byte-identical values to a direct
    computation over the sorted value list (the historical
    :func:`latency_columns` algorithm); for compressed or
    histogram-rebuilt sketches the same schema carries the documented
    approximations.  An empty sketch produces all-zero columns, so rows
    stay schema-stable for zero-request cells.
    """
    if bins <= 0:
        raise ValueError(f"bins must be positive, got {bins}")
    if sketch.count == 0:
        return {
            f"{prefix}mean": 0.0,
            f"{prefix}p50": 0.0,
            f"{prefix}p90": 0.0,
            f"{prefix}p99": 0.0,
            f"{prefix}max": 0.0,
            f"{prefix}hist": [0] * bins,
        }
    return {
        f"{prefix}mean": sketch.mean(),
        f"{prefix}p50": sketch.quantile(50),
        f"{prefix}p90": sketch.quantile(90),
        f"{prefix}p99": sketch.quantile(99),
        f"{prefix}max": sketch.max_value(),
        f"{prefix}hist": sketch.histogram(bins),
    }


def latency_columns(
    latencies: Iterable[float], *, bins: int = DEFAULT_BINS, prefix: str = "latency_"
) -> dict[str, Any]:
    """Summary + histogram columns for one run's per-request latencies.

    Returns ``{prefix}mean/p50/p90/p99/max`` scalars plus
    ``{prefix}hist``: a list of ``bins`` counts over equal-width buckets
    on ``[0, {prefix}max]`` (top edge inclusive).  Computed through an
    exact-mode :class:`QuantileSketch`, which preserves the historical
    byte-identical output for every persisted row.
    """
    if bins <= 0:
        raise ValueError(f"bins must be positive, got {bins}")
    return sketch_columns(
        QuantileSketch.from_values(latencies), bins=bins, prefix=prefix
    )
