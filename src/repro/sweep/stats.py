"""Deterministic latency-distribution summaries for sweep rows.

Sweep rows persist JSON scalars and lists only, and the byte-identity
contract (same grid + seed -> same JSONL regardless of worker count)
extends to these columns: every value below is a pure function of the
multiset of latencies, computed over a *sorted* copy so accumulation
order can never leak into the output.

Percentiles use the nearest-rank definition (the smallest value with at
least ``p`` percent of the mass at or below it) — exact list indexing,
no interpolation, no float-method ambiguity across numpy versions.

The histogram uses ``bins`` equal-width buckets spanning
``[0, {prefix}max]``; the top edge is inclusive.  Only the bin *counts*
are persisted — the edges are fully determined by ``{prefix}max`` and
the bin count, and persisting derived values would only duplicate
information that must never disagree.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

__all__ = ["DEFAULT_BINS", "latency_columns", "percentile_nearest_rank"]

#: Default number of equal-width histogram buckets in sweep rows.
DEFAULT_BINS = 16


def percentile_nearest_rank(sorted_values: list[float], p: float) -> float:
    """Nearest-rank percentile of an already-sorted, non-empty list."""
    if not sorted_values:
        raise ValueError("percentile of an empty list")
    if not 0 < p <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {p}")
    rank = math.ceil(p / 100.0 * len(sorted_values))
    return sorted_values[rank - 1]


def latency_columns(
    latencies: Iterable[float], *, bins: int = DEFAULT_BINS, prefix: str = "latency_"
) -> dict[str, Any]:
    """Summary + histogram columns for one run's per-request latencies.

    Returns ``{prefix}mean/p50/p90/p99/max`` scalars plus
    ``{prefix}hist``: a list of ``bins`` counts over equal-width buckets
    on ``[0, {prefix}max]`` (top edge inclusive).  An empty input
    produces all-zero columns, so rows stay schema-stable for
    zero-request cells.
    """
    if bins <= 0:
        raise ValueError(f"bins must be positive, got {bins}")
    vals = sorted(float(x) for x in latencies)
    n = len(vals)
    counts = [0] * bins
    if n == 0:
        return {
            f"{prefix}mean": 0.0,
            f"{prefix}p50": 0.0,
            f"{prefix}p90": 0.0,
            f"{prefix}p99": 0.0,
            f"{prefix}max": 0.0,
            f"{prefix}hist": counts,
        }
    hi = vals[-1]
    if hi <= 0.0:
        # Degenerate distribution (every request was a local find): one
        # spike in the first, zero-width bucket.
        counts[0] = n
    else:
        scale = bins / hi
        for v in vals:
            idx = int(v * scale)
            if idx >= bins:  # v == hi (or float rounding at the top edge)
                idx = bins - 1
            counts[idx] += 1
    return {
        f"{prefix}mean": sum(vals) / n,
        f"{prefix}p50": percentile_nearest_rank(vals, 50),
        f"{prefix}p90": percentile_nearest_rank(vals, 90),
        f"{prefix}p99": percentile_nearest_rank(vals, 99),
        f"{prefix}max": hi,
        f"{prefix}hist": counts,
    }
