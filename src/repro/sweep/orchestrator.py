"""One-command multi-shard sweeps: supervised workers, retry, streaming merge.

PR 4 made grids shardable, but running a sharded grid still meant
hand-launching ``sweep --shard i/m`` once per shard and merging by hand.
:func:`orchestrate_sweep` closes that gap locally: it partitions the
grid round-robin into ``shards`` per-shard JSONL files, runs them in a
supervised pool of at most ``workers`` concurrent shard processes,
streams per-shard progress (cells done / total, rows per second),
retries shards that exit non-zero or are killed — each retry resumes
from the shard's own resumable JSONL, exactly like re-running
``sweep --shard i/m`` by hand — and, once every shard completes, invokes
the streaming :func:`repro.sweep.persist.merge_shards` so ``out_path``
ends up byte-identical to an unsharded run of the same grid.

Supervision model
-----------------
Each shard runs :func:`repro.sweep.executor.run_sweep` in its own child
process (one writer per shard file, so the executor's ``flock`` guard
and resume semantics apply unchanged).  The supervisor polls child
liveness and shard-file growth; a child that exits non-zero or dies to a
signal has the failure appended to the shard's in-memory failure log
*and* to an on-disk ``<shard>.failures.log`` sidecar, then is relaunched
while its retry budget (``max_retries`` per shard) lasts.  A shard that
exhausts the budget raises :class:`repro.errors.ShardFailedError` once
the surviving shards finish — partial work stays on disk and a rerun
resumes it.

Fault injection (testing only)
------------------------------
The CI smoke that proves supervision works needs a shard to die
mid-run deterministically.  Setting ``REPRO_ORCH_FAULT="I:R"`` makes
shard ``I``'s worker append a torn half-row and ``SIGKILL`` itself after
writing ``R`` rows — but only when the shard file held fewer than ``R``
rows at start, so the retry that resumes past the threshold survives.
``REPRO_ORCH_FAULT="I:always"`` kills shard ``I`` at the start of every
attempt (retry-budget exhaustion tests).  POSIX only; never set this
outside tests.
"""

from __future__ import annotations

import os
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import (
    MergeError,
    OrchestratorError,
    ShardFailedError,
    SweepError,
)
from repro.sweep import persist
from repro.sweep.executor import _pool_context, run_sweep, shard_path
from repro.sweep.spec import SweepSpec

__all__ = ["ShardState", "orchestrate_sweep", "FAULT_ENV"]

#: Environment variable enabling the kill-a-shard-mid-run fault hook.
FAULT_ENV = "REPRO_ORCH_FAULT"

#: Progress-event callback: receives small dicts with an ``event`` key
#: (``launch`` / ``progress`` / ``shard-done`` / ``retry`` / ``failed``).
ProgressFn = Callable[[dict[str, Any]], None]


@dataclass
class ShardState:
    """Supervision record for one shard of an orchestrated sweep."""

    index: int
    path: str
    total: int
    status: str = "pending"  # pending | running | done | failed
    attempts: int = 0
    done: int = 0
    rate: float = 0.0
    failures: list[str] = field(default_factory=list)
    # Incremental row-count cursor (byte offset already scanned) and the
    # row count / start time of the current attempt, for the rate.
    _offset: int = 0
    _attempt_base: int = 0
    _attempt_start: float = 0.0

    def snapshot(self) -> dict[str, Any]:
        """Public view of this shard for progress events and summaries."""
        return {
            "shard": self.index,
            "path": self.path,
            "status": self.status,
            "attempts": self.attempts,
            "done": self.done,
            "total": self.total,
            "rate": round(self.rate, 3),
            "failures": list(self.failures),
        }


def _count_rows(state: ShardState) -> None:
    """Refresh ``state.done`` by scanning only bytes appended since last poll.

    Complete rows end in a newline, so counting ``\\n`` bytes counts
    rows; a torn trailing line is invisible until (if ever) completed.
    Resume-time compaction atomically replaces the file, which can only
    shrink it — a size below the cursor restarts the scan from zero.
    """
    try:
        size = os.path.getsize(state.path)
    except OSError:
        state._offset = 0
        state.done = 0
        return
    if size < state._offset:
        state._offset = 0
        state.done = 0
    if size == state._offset:
        return
    with open(state.path, "rb") as fh:
        fh.seek(state._offset)
        while chunk := fh.read(1 << 16):
            state.done += chunk.count(b"\n")
            state._offset += len(chunk)


def _parse_fault(shard_index: int) -> tuple[bool, int | None]:
    """Decode ``REPRO_ORCH_FAULT`` for this shard: (kill_now, kill_after).

    The whole value is validated before the shard match, so the
    supervisor can fail fast on a malformed variable (by parsing for a
    shard index that can never match) instead of burning the retry
    budget on children that die to the same parse error.
    """
    raw = os.environ.get(FAULT_ENV)
    if not raw:
        return False, None
    try:
        target_text, trigger = raw.split(":")
        target = int(target_text)
        kill_after = None if trigger == "always" else int(trigger)
    except ValueError:
        raise OrchestratorError(
            f"{FAULT_ENV} must be 'I:R' or 'I:always', got {raw!r}"
        ) from None
    if target != shard_index:
        return False, None
    return kill_after is None, kill_after


def _sigkill_self() -> None:  # pragma: no cover - dies by design
    import signal

    os.kill(os.getpid(), signal.SIGKILL)


def _shard_worker(
    spec: SweepSpec, path: str, index: int, count: int
) -> None:
    """Child-process entry point: run one shard, honouring the fault hook."""
    kill_now, kill_after = _parse_fault(index)
    if kill_now:
        _sigkill_self()
    on_row = None
    if kill_after is not None:
        rows_at_start = len(persist.completed_ids(path))
        if rows_at_start < kill_after:
            threshold = kill_after - rows_at_start

            def on_row(written: int) -> None:
                if written >= threshold:  # pragma: no cover - child dies
                    with open(path, "a", encoding="utf-8") as fh:
                        fh.write('{"torn":')  # a killed run's half-row
                    _sigkill_self()

    try:
        run_sweep(
            spec, path, workers=1, resume=True, shard=(index, count),
            on_row=on_row,
        )
    except SweepError as exc:
        print(f"shard {index}/{count}: {exc}", file=sys.stderr)
        raise SystemExit(1) from None


def _launch(
    ctx, spec: SweepSpec, state: ShardState, shards: int
):
    """Start (or restart) one shard's worker process."""
    state.attempts += 1
    state.status = "running"
    _count_rows(state)
    state._attempt_base = state.done
    state._attempt_start = time.monotonic()
    proc = ctx.Process(
        target=_shard_worker,
        args=(spec, state.path, state.index, shards),
    )
    proc.start()
    return proc


def _log_failure(state: ShardState, entry: str) -> None:
    """Record one failed attempt in memory and in the on-disk sidecar."""
    state.failures.append(entry)
    try:
        with open(state.path + ".failures.log", "a", encoding="utf-8") as fh:
            fh.write(entry + "\n")
    except OSError:  # pragma: no cover - the log is best-effort
        pass


def orchestrate_sweep(
    spec: SweepSpec,
    out_path: str,
    *,
    shards: int,
    workers: int = 1,
    max_retries: int = 2,
    resume: bool = True,
    merge: bool = True,
    poll_interval: float = 0.2,
    progress: ProgressFn | None = None,
) -> dict[str, Any]:
    """Run ``spec`` as ``shards`` supervised local shard runs, then merge.

    At most ``workers`` shard processes run concurrently; each failed or
    killed shard is relaunched up to ``max_retries`` times, resuming
    from its per-shard JSONL.  ``progress`` (optional) receives event
    dicts — per-shard ``launch`` / ``shard-done`` / ``retry`` /
    ``failed`` transitions plus periodic ``progress`` snapshots carrying
    cells done / total and rows-per-second, per shard and overall.

    Returns a summary dict (spec name, per-shard snapshots, retry count,
    merged row count).  Raises :class:`ShardFailedError` when any shard
    exhausts its retry budget (after the other shards finish, so their
    completed work is on disk for a rerun to resume), and
    :class:`MergeError` when the final merge's verification rejects the
    shard files.  With ``resume=False`` existing shard files are deleted
    up front; retries within the run still resume — that is the point of
    supervised retry.
    """
    if shards < 1:
        raise OrchestratorError(f"shards must be >= 1, got {shards}")
    if workers < 1:
        raise OrchestratorError(f"workers must be >= 1, got {workers}")
    if max_retries < 0:
        raise OrchestratorError(f"max_retries must be >= 0, got {max_retries}")
    _parse_fault(-1)  # fail fast on a malformed fault hook (never matches)
    emit: ProgressFn = progress if progress is not None else lambda event: None
    total_cells = spec.num_cells()
    states = [
        ShardState(
            index=i,
            path=shard_path(out_path, i, shards),
            total=len(range(i, total_cells, shards)),
        )
        for i in range(shards)
    ]
    if not resume:
        for state in states:
            # A fresh start discards prior shard data AND its failure
            # sidecar — the log must mirror this run's attempts only.
            for stale in (state.path, state.path + ".failures.log"):
                if os.path.exists(stale):
                    os.remove(stale)

    ctx = _pool_context()
    start = time.monotonic()
    pending = deque(states)
    running: dict[int, Any] = {}
    retries_used = 0
    failed: list[ShardState] = []

    def poll_progress() -> None:
        now = time.monotonic()
        for state in states:
            if state.status == "running":
                _count_rows(state)
                elapsed = max(now - state._attempt_start, 1e-9)
                state.rate = (state.done - state._attempt_base) / elapsed
        done_cells = sum(s.done for s in states)
        emit(
            {
                "event": "progress",
                "done": done_cells,
                "total": total_cells,
                "rate": round(done_cells / max(now - start, 1e-9), 3),
                "shards": [s.snapshot() for s in states],
            }
        )

    while pending or running:
        while pending and len(running) < workers:
            state = pending.popleft()
            running[state.index] = _launch(ctx, spec, state, shards)
            emit(
                {
                    "event": "launch",
                    "shard": state.index,
                    "attempt": state.attempts,
                    "total": state.total,
                }
            )
        time.sleep(poll_interval)
        for index in list(running):
            proc = running[index]
            if proc.is_alive():
                continue
            proc.join()
            code = proc.exitcode
            proc.close()
            del running[index]
            state = states[index]
            # Full recount from byte 0: the incremental cursor can
            # undercount when a retry's resume-compaction shrank the
            # file and appends regrew it past the old offset between
            # polls — exit-time counts must be exact.
            state._offset = 0
            state.done = 0
            _count_rows(state)
            if code == 0:
                state.status = "done"
                state.rate = 0.0
                emit(
                    {
                        "event": "shard-done",
                        "shard": index,
                        "done": state.done,
                        "total": state.total,
                        "attempts": state.attempts,
                    }
                )
                continue
            reason = (
                f"killed by signal {-code}" if code and code < 0
                else f"exit code {code}"
            )
            entry = f"attempt {state.attempts}: {reason}"
            _log_failure(state, entry)
            if state.attempts <= max_retries:
                retries_used += 1
                state.status = "pending"
                pending.append(state)
                emit(
                    {
                        "event": "retry",
                        "shard": index,
                        "reason": reason,
                        "retries_used": state.attempts,
                        "max_retries": max_retries,
                    }
                )
            else:
                state.status = "failed"
                failed.append(state)
                emit(
                    {
                        "event": "failed",
                        "shard": index,
                        "reason": reason,
                        "failures": list(state.failures),
                    }
                )
        poll_progress()

    if failed:
        detail = "; ".join(
            f"shard {s.index} ({s.path}): {s.failures[-1]}" for s in failed
        )
        raise ShardFailedError(
            f"{len(failed)} shard(s) exhausted their retry budget "
            f"({max_retries} retries): {detail}",
            failures={s.index: list(s.failures) for s in failed},
        )

    merged_rows = None
    if merge:
        rows, problems = persist.merge_shards(
            [s.path for s in states], out_path, expect_cells=total_cells
        )
        if problems:
            raise MergeError(
                f"merge of {shards} shard(s) into {out_path} failed "
                f"verification with {len(problems)} problem(s)",
                problems=problems,
            )
        merged_rows = rows
    return {
        "spec": spec.name,
        "path": out_path,
        "shards": shards,
        "workers": workers,
        "cells": total_cells,
        "rows": merged_rows,
        "retries_used": retries_used,
        "merged": merge,
        "elapsed": round(time.monotonic() - start, 3),
        "shard_states": [s.snapshot() for s in states],
    }
