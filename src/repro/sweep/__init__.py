"""Declarative parameter sweeps over the arrow simulators.

The sweep subsystem turns the experiment layer's hand-rolled parameter
loops into data: a :class:`~repro.sweep.spec.SweepSpec` declares a grid
(graph family × tree strategy × schedule family × seeds), the executor
expands it into cells with deterministic per-cell seeds, runs them —
optionally across worker processes, optionally as one shard of a
partitioned grid — and persists one JSONL row per cell with
resume-from-partial support.

What each schedule-axis name *means* is pluggable: the cell-family
registry (:mod:`repro.sweep.registry`) maps names to a validator,
builder and runner-to-row, with the open-loop arrow replays, the §5
closed loops (``closed_arrow``/``closed_centralized``), the §5.1
directory designs (``directory_arrow``/``directory_home``) and the §1.1
adaptive-pointer baseline registered out of the box
(:mod:`repro.sweep.families`).  Rows from the arrow families carry
per-request latency percentile and histogram columns
(:mod:`repro.sweep.stats`); directory rows persist the mutual-exclusion
invariant as ``exclusion_ok``.  Sharded runs are reassembled — with
completeness and row-shape verification, streaming one row at a time —
by :func:`~repro.sweep.persist.merge_shards`, and
:func:`~repro.sweep.orchestrator.orchestrate_sweep` drives a whole
sharded grid in one call: a supervised local worker pool with per-shard
progress, bounded retry of killed shards, and the automatic merge
(``repro-arrow sweep --shards m --workers k``).
"""

from repro.sweep.executor import (
    execute_cell,
    iter_sweep,
    map_jobs,
    run_sweep,
    shard_path,
)
from repro.sweep.orchestrator import ShardState, orchestrate_sweep
from repro.sweep.persist import (
    completed_ids,
    diff_rows,
    dumps_row,
    iter_rows,
    merge_shards,
)
from repro.sweep.registry import (
    CellFamily,
    family_names,
    get_family,
    register_family,
)
from repro.sweep.spec import (
    CLOSED_LOOP_FAMILIES,
    GRAPH_BUILDERS,
    OPEN_LOOP_SCHEDULES,
    SCHEDULE_BUILDERS,
    TREE_BUILDERS,
    GraphSpec,
    ScheduleSpec,
    SweepCell,
    SweepSpec,
    build_graph,
    build_schedule,
    build_tree,
    cell_seed,
    directory_grid,
    fig10_grid,
    fig11_grid,
    mixed_grid,
    smoke_grid,
)
from repro.sweep.stats import (
    DEFAULT_BINS,
    DEFAULT_COMPRESSION,
    QuantileSketch,
    latency_columns,
    percentile_nearest_rank,
    sketch_columns,
)

__all__ = [
    "GraphSpec",
    "ScheduleSpec",
    "SweepCell",
    "SweepSpec",
    "CellFamily",
    "register_family",
    "get_family",
    "family_names",
    "CLOSED_LOOP_FAMILIES",
    "GRAPH_BUILDERS",
    "OPEN_LOOP_SCHEDULES",
    "TREE_BUILDERS",
    "SCHEDULE_BUILDERS",
    "build_graph",
    "build_tree",
    "build_schedule",
    "cell_seed",
    "directory_grid",
    "fig10_grid",
    "fig11_grid",
    "mixed_grid",
    "smoke_grid",
    "execute_cell",
    "iter_sweep",
    "map_jobs",
    "run_sweep",
    "shard_path",
    "ShardState",
    "orchestrate_sweep",
    "completed_ids",
    "diff_rows",
    "dumps_row",
    "iter_rows",
    "merge_shards",
    "DEFAULT_BINS",
    "DEFAULT_COMPRESSION",
    "QuantileSketch",
    "latency_columns",
    "percentile_nearest_rank",
    "sketch_columns",
]
