"""Declarative parameter sweeps over the arrow simulators.

The sweep subsystem turns the experiment layer's hand-rolled parameter
loops into data: a :class:`~repro.sweep.spec.SweepSpec` declares a grid
(graph family × tree strategy × schedule family × seeds), the executor
expands it into cells with deterministic per-cell seeds, runs them —
optionally across worker processes — through the fast or the
message-level engines, and persists one JSONL row per cell with
resume-from-partial support.  The schedule axis accepts both open-loop
request schedules and the §5 closed-loop workloads (``closed_arrow``,
``closed_centralized``); every row carries per-request latency
percentile and histogram columns (:mod:`repro.sweep.stats`).
"""

from repro.sweep.executor import execute_cell, map_jobs, run_sweep
from repro.sweep.persist import completed_ids, diff_rows, dumps_row, iter_rows
from repro.sweep.spec import (
    CLOSED_LOOP_FAMILIES,
    GRAPH_BUILDERS,
    SCHEDULE_BUILDERS,
    TREE_BUILDERS,
    GraphSpec,
    ScheduleSpec,
    SweepCell,
    SweepSpec,
    build_graph,
    build_schedule,
    build_tree,
    cell_seed,
    fig10_grid,
    fig11_grid,
    mixed_grid,
    smoke_grid,
)
from repro.sweep.stats import DEFAULT_BINS, latency_columns, percentile_nearest_rank

__all__ = [
    "GraphSpec",
    "ScheduleSpec",
    "SweepCell",
    "SweepSpec",
    "CLOSED_LOOP_FAMILIES",
    "GRAPH_BUILDERS",
    "TREE_BUILDERS",
    "SCHEDULE_BUILDERS",
    "build_graph",
    "build_tree",
    "build_schedule",
    "cell_seed",
    "fig10_grid",
    "fig11_grid",
    "mixed_grid",
    "smoke_grid",
    "execute_cell",
    "map_jobs",
    "run_sweep",
    "completed_ids",
    "diff_rows",
    "dumps_row",
    "iter_rows",
    "DEFAULT_BINS",
    "latency_columns",
    "percentile_nearest_rank",
]
