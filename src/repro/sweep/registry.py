"""Pluggable cell-family registry: what a sweep cell *is* and how it runs.

A **cell family** is the behaviour behind one name on the schedule axis:
the parameters it accepts (checked at spec-build time so typos fail
loudly), a builder that instantiates the cell's simulation inputs from
its axes and derived seed, and a runner-to-row function that executes
the workload and returns the row's metric columns.  The executor is a
thin shell over this table — it derives the cell seed, asks the family
for its row, and prepends the axis identity columns.

Built-in registrations live in :mod:`repro.sweep.families` (the six
open-loop schedule families, the §5 closed loops, the §5.1 directory
designs and the §1.1 adaptive-pointer baseline) and are loaded lazily on
first lookup, so importing :mod:`repro.sweep.spec` alone is enough to
validate any builtin family name.  Third-party code extends the sweep by
calling :func:`register_family` with its own :class:`CellFamily`; with
multiprocess sweeps the registration must happen at import time of a
module the workers also import (``fork`` workers inherit it either way).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.errors import SweepError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sweep.spec import SweepCell

__all__ = ["CellFamily", "register_family", "get_family", "family_names"]

#: Extra parameter validation beyond the accepted-name check; raises
#: :class:`SweepError` on bad values (e.g. ``count=0``).
Validator = Callable[[Mapping[str, object]], None]
#: (cell, derived_seed) -> simulation inputs for the runner-to-row step.
Builder = Callable[["SweepCell", int], Mapping[str, Any]]
#: (cell, derived_seed, built) -> metric columns of the cell's row.
RowFn = Callable[["SweepCell", int, Mapping[str, Any]], dict[str, Any]]


@dataclass(frozen=True, slots=True)
class CellFamily:
    """One pluggable behaviour on the sweep's schedule axis.

    ``accepted`` names the parameters :meth:`validate_params` allows (the
    validator hook can reject bad *values* on top); ``build`` turns a
    cell into runnable inputs; ``to_row`` executes them and returns the
    metric columns.  ``uses_engine`` documents whether the family honours
    the spec's ``engine`` axis — message-level-only families (the
    directory designs, the adaptive baseline) ignore it, and their rows
    carry a ``protocol`` column naming what actually ran.
    ``supports_faults`` marks families whose ``to_row`` honours a
    non-empty ``cell.faults`` plan (the open-loop arrow families); specs
    reject fault plans on any other family at build time.
    """

    name: str
    accepted: frozenset[str]
    build: Builder
    to_row: RowFn
    validate: Validator | None = field(default=None)
    uses_engine: bool = True
    supports_faults: bool = False

    def validate_params(self, params: Mapping[str, object]) -> None:
        """Reject unknown parameter names, then bad values (hook)."""
        unknown = set(params) - self.accepted
        if unknown:
            raise SweepError(
                f"cell family {self.name!r} does not accept {sorted(unknown)}; "
                f"known parameters: {sorted(self.accepted)}"
            )
        if self.validate is not None:
            self.validate(params)

    def execute(self, cell: "SweepCell", derived: int) -> dict[str, Any]:
        """Build and run one cell; return its metric columns."""
        return self.to_row(cell, derived, self.build(cell, derived))


_REGISTRY: dict[str, CellFamily] = {}
_BOOTSTRAPPED = False


def _bootstrap() -> None:
    """Load the builtin registrations exactly once (import side effect).

    The flag is set only after the import succeeds: a failed first import
    must surface its real exception again on the next lookup, not latch
    into misleading ``unknown cell family ... know []`` errors.
    """
    global _BOOTSTRAPPED
    if not _BOOTSTRAPPED:
        import repro.sweep.families  # noqa: F401  (registers builtins)

        _BOOTSTRAPPED = True


def register_family(family: CellFamily, *, replace: bool = False) -> CellFamily:
    """Register ``family`` under its name; returns it for chaining.

    Re-registering a name raises unless ``replace=True`` — overwriting a
    builtin silently would change what existing specs mean.
    """
    if not replace and family.name in _REGISTRY:
        raise SweepError(
            f"cell family {family.name!r} is already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[family.name] = family
    return family


def get_family(name: str) -> CellFamily:
    """Look up a cell family by schedule-axis name."""
    _bootstrap()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SweepError(
            f"unknown cell family {name!r}; know {family_names()}"
        ) from None


def family_names() -> list[str]:
    """Sorted names of every registered family (builtins included)."""
    _bootstrap()
    return sorted(_REGISTRY)
