"""JSONL persistence for sweep results.

One JSON object per line, serialised canonically (sorted keys, compact
separators) so a sweep with a fixed seed produces byte-identical files
regardless of worker count.  Files are append-only during a run; resume
reads the valid prefix back and skips completed cells.  A truncated
trailing line — the signature of a killed run — is dropped on load.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterator

from repro.errors import ReproError

__all__ = ["dumps_row", "iter_rows", "completed_ids", "compact", "diff_rows"]


def dumps_row(row: dict[str, Any]) -> str:
    """Canonical one-line serialisation of a result row (no newline)."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def iter_rows(path: str) -> Iterator[dict[str, Any]]:
    """Yield the valid rows of a JSONL file.

    A corrupt *final* line is tolerated (partial write of an interrupted
    run); a corrupt line followed by more data indicates real damage and
    raises :class:`ReproError`.
    """
    with open(path, "r", encoding="utf-8") as fh:
        pending_error: str | None = None
        for lineno, line in enumerate(fh, 1):
            stripped = line.strip()
            if not stripped:
                continue
            if pending_error is not None:
                raise ReproError(pending_error)
            try:
                yield json.loads(stripped)
            except json.JSONDecodeError:
                # Defer: only an error if any non-empty line follows.
                pending_error = f"{path}:{lineno}: corrupt JSONL row mid-file"


def _row_shape_problems(row: dict[str, Any], label: str) -> list[str]:
    """Structural invariants every executor row must satisfy.

    The latency histogram's bin counts must cover exactly the cell's
    requests (the executor always emits ``DEFAULT_BINS`` buckets), so a
    violated invariant means a truncated or hand-edited file — worth
    failing a verification over even when both inputs agree.
    """
    from repro.sweep.stats import DEFAULT_BINS

    problems = []
    hist = row.get("latency_hist")
    if hist is not None:
        if len(hist) != DEFAULT_BINS:
            problems.append(
                f"{label}: latency_hist has {len(hist)} bins, "
                f"expected {DEFAULT_BINS}"
            )
        elif "requests" in row and sum(hist) != row["requests"]:
            problems.append(
                f"{label}: latency_hist counts {sum(hist)} requests, "
                f"row says {row['requests']}"
            )
    return problems


def _strict_rows(path: str, problems: list[str]) -> list[dict[str, Any]]:
    """Load every row of ``path``, reporting ANY corrupt line as a problem.

    Unlike :func:`iter_rows` — whose resume-oriented leniency drops a
    torn trailing line — a *verification* read must flag it: a torn tail
    is exactly the damage ``diff_rows`` exists to catch.
    """
    rows: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                rows.append(json.loads(stripped))
            except json.JSONDecodeError:
                problems.append(f"{path}:{lineno}: corrupt JSONL row")
    return rows


def diff_rows(
    path_a: str,
    path_b: str,
    *,
    ignore: tuple[str, ...] = ("engine",),
    expect_cells: int | None = None,
) -> tuple[int, list[str]]:
    """Compare two sweep JSONL files row by row; return (rows, problems).

    The engines' bit-identity contract means two sweeps of one grid must
    serialise to equal rows modulo the ``ignore`` columns (by default just
    the ``engine`` label itself).  Beyond equality, every row is checked
    against the executor's structural invariants
    (:func:`_row_shape_problems`), corrupt lines — including the torn
    trailing line a killed run leaves, which resume-mode reads tolerate —
    are problems, and, when ``expect_cells`` is given, the files must
    carry exactly that many rows.  An empty problem list means the files
    verify.
    """
    problems: list[str] = []
    rows_a = _strict_rows(path_a, problems)
    rows_b = _strict_rows(path_b, problems)
    if expect_cells is not None and len(rows_a) != expect_cells:
        problems.append(
            f"{path_a}: expected {expect_cells} rows, found {len(rows_a)}"
        )
    if len(rows_a) != len(rows_b):
        problems.append(
            f"row count differs: {path_a} has {len(rows_a)}, "
            f"{path_b} has {len(rows_b)}"
        )
    for k, (ra, rb) in enumerate(zip(rows_a, rows_b)):
        fa = {key: v for key, v in ra.items() if key not in ignore}
        fb = {key: v for key, v in rb.items() if key not in ignore}
        if fa != fb:
            cell = ra.get("cell_id", f"row {k}")
            bad = sorted(
                key
                for key in fa.keys() | fb.keys()
                if fa.get(key) != fb.get(key)
            )
            problems.append(f"row {k} ({cell}): columns differ: {', '.join(bad)}")
    for path, rows in ((path_a, rows_a), (path_b, rows_b)):
        for k, row in enumerate(rows):
            problems.extend(
                _row_shape_problems(row, f"{path} row {k}")
            )
    return len(rows_a), problems


def completed_ids(path: str) -> set[str]:
    """Cell ids already recorded in a (possibly partial) result file."""
    if not os.path.exists(path):
        return set()
    return {row["cell_id"] for row in iter_rows(path) if "cell_id" in row}


def compact(path: str) -> set[str]:
    """Drop a truncated trailing line in place; return the completed ids.

    Rewrites the file only when needed (atomic replace), so resuming
    after a kill leaves a clean append point.
    """
    if not os.path.exists(path):
        return set()
    rows = list(iter_rows(path))
    text = "".join(dumps_row(r) + "\n" for r in rows)
    with open(path, "r", encoding="utf-8") as fh:
        current = fh.read()
    if current != text:
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    return {row["cell_id"] for row in rows if "cell_id" in row}
