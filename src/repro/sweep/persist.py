"""JSONL persistence for sweep results.

One JSON object per line, serialised canonically (sorted keys, compact
separators) so a sweep with a fixed seed produces byte-identical files
regardless of worker count.  Files are append-only during a run; resume
reads the valid prefix back and skips completed cells.  A truncated
trailing line — the signature of a killed run — is dropped on load.
"""

from __future__ import annotations

import heapq
import json
import os
from typing import Any, Iterable, Iterator

from repro.errors import ReproError

__all__ = [
    "dumps_row",
    "iter_rows",
    "completed_ids",
    "compact",
    "diff_rows",
    "merge_shards",
]


def dumps_row(row: dict[str, Any]) -> str:
    """Canonical one-line serialisation of a result row (no newline)."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def _lenient_rows(
    lines: Iterable[str],
    path: str,
    *,
    skipped: list[str] | None = None,
) -> Iterator[dict[str, Any]]:
    """Resume-oriented row parse shared by :func:`iter_rows`/:func:`compact`.

    A corrupt *final* line is tolerated (partial write of an interrupted
    run); a corrupt line followed by more data indicates real damage and
    raises :class:`ReproError`.  A dropped line is never silent: pass a
    ``skipped`` list to receive one ``"path:lineno: ..."`` entry per
    damaged line that was tolerated, so resume/ingest callers can report
    "N damaged line(s) skipped" instead of quietly shrinking the file.
    """
    pending_error: str | None = None
    for lineno, line in enumerate(lines, 1):
        stripped = line.strip()
        if not stripped:
            continue
        if pending_error is not None:
            raise ReproError(pending_error)
        try:
            yield json.loads(stripped)
        except json.JSONDecodeError:
            # Defer: only an error if any non-empty line follows.
            pending_error = f"{path}:{lineno}: corrupt JSONL row mid-file"
    if pending_error is not None and skipped is not None:
        skipped.append(
            pending_error.replace(
                "corrupt JSONL row mid-file",
                "torn trailing line dropped (interrupted run)",
            )
        )


def iter_rows(
    path: str, *, skipped: list[str] | None = None
) -> Iterator[dict[str, Any]]:
    """Yield the valid rows of a JSONL file (lenient about a torn tail).

    ``skipped`` (if given) collects a description of every damaged line
    the lenient parse dropped — see :func:`_lenient_rows`.
    """
    with open(path, "r", encoding="utf-8") as fh:
        yield from _lenient_rows(fh, path, skipped=skipped)


def _row_shape_problems(row: dict[str, Any], label: str) -> list[str]:
    """Structural invariants every executor row must satisfy.

    The latency histogram's bin counts must cover exactly the cell's
    *completed* requests — every issued request minus the ones a fault
    plan lost (``requests_lost``, absent on fault-free rows) — and the
    executor always emits ``DEFAULT_BINS`` buckets, so a violated
    invariant means a truncated or hand-edited file — worth failing a
    verification over even when both inputs agree.
    """
    from repro.sweep.stats import DEFAULT_BINS

    problems = []
    hist = row.get("latency_hist")
    if hist is not None:
        if len(hist) != DEFAULT_BINS:
            problems.append(
                f"{label}: latency_hist has {len(hist)} bins, "
                f"expected {DEFAULT_BINS}"
            )
        elif "requests" in row:
            completed = row["requests"] - row.get("requests_lost", 0)
            if sum(hist) != completed:
                problems.append(
                    f"{label}: latency_hist counts {sum(hist)} completed "
                    f"requests, row says {completed}"
                )
    return problems


def _strict_parse_line(
    stripped: str, path: str, lineno: int, problems: list[str]
) -> dict[str, Any] | None:
    """Verification-grade parse of one non-blank JSONL line.

    Returns the row dict, or ``None`` after recording *why* the line is
    not a sweep row.  Shared by the buffering (:func:`_strict_rows`) and
    streaming (:class:`_ShardReader`) verification readers so the
    line-level rejection rules — and their messages — cannot diverge.
    """
    try:
        row = json.loads(stripped)
    except json.JSONDecodeError:
        problems.append(f"{path}:{lineno}: corrupt JSONL row")
        return None
    if not isinstance(row, dict):
        problems.append(f"{path}:{lineno}: not a JSON object; not a sweep row")
        return None
    return row


def _strict_rows(path: str, problems: list[str]) -> list[dict[str, Any]]:
    """Load every row of ``path``, reporting ANY corrupt line as a problem.

    Unlike :func:`iter_rows` — whose resume-oriented leniency drops a
    torn trailing line — a *verification* read must flag it: a torn tail
    is exactly the damage ``diff_rows`` exists to catch.
    """
    rows: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            stripped = line.strip()
            if not stripped:
                continue
            row = _strict_parse_line(stripped, path, lineno, problems)
            if row is not None:
                rows.append(row)
    return rows


def diff_rows(
    path_a: str,
    path_b: str,
    *,
    ignore: tuple[str, ...] = ("engine",),
    expect_cells: int | None = None,
) -> tuple[int, list[str]]:
    """Compare two sweep JSONL files row by row; return (rows, problems).

    The engines' bit-identity contract means two sweeps of one grid must
    serialise to equal rows modulo the ``ignore`` columns (by default just
    the ``engine`` label itself).  Beyond equality, every row is checked
    against the executor's structural invariants
    (:func:`_row_shape_problems`), corrupt lines — including the torn
    trailing line a killed run leaves, which resume-mode reads tolerate —
    are problems, and, when ``expect_cells`` is given, the files must
    carry exactly that many rows.  An empty problem list means the files
    verify.
    """
    problems: list[str] = []
    rows_a = _strict_rows(path_a, problems)
    rows_b = _strict_rows(path_b, problems)
    if expect_cells is not None and len(rows_a) != expect_cells:
        problems.append(
            f"{path_a}: expected {expect_cells} rows, found {len(rows_a)}"
        )
    if len(rows_a) != len(rows_b):
        problems.append(
            f"row count differs: {path_a} has {len(rows_a)}, "
            f"{path_b} has {len(rows_b)}"
        )
    for k, (ra, rb) in enumerate(zip(rows_a, rows_b)):
        fa = {key: v for key, v in ra.items() if key not in ignore}
        fb = {key: v for key, v in rb.items() if key not in ignore}
        if fa != fb:
            cell = ra.get("cell_id", f"row {k}")
            bad = sorted(
                key
                for key in fa.keys() | fb.keys()
                if fa.get(key) != fb.get(key)
            )
            problems.append(f"row {k} ({cell}): columns differ: {', '.join(bad)}")
    for path, rows in ((path_a, rows_a), (path_b, rows_b)):
        for k, row in enumerate(rows):
            problems.extend(
                _row_shape_problems(row, f"{path} row {k}")
            )
    return len(rows_a), problems


def completed_ids(path: str) -> set[str]:
    """Cell ids already recorded in a (possibly partial) result file."""
    if not os.path.exists(path):
        return set()
    return {row["cell_id"] for row in iter_rows(path) if "cell_id" in row}


def compact(path: str, *, skipped: list[str] | None = None) -> set[str]:
    """Drop a truncated trailing line in place; return the completed ids.

    ``skipped`` (if given) records the dropped line, as in
    :func:`iter_rows`.

    The file is read **once** and the parsed rows are compared against
    that same snapshot, then rewritten only when needed (atomic replace),
    so resuming after a kill leaves a clean append point.  The
    read-compare-rewrite is still not atomic with respect to a concurrent
    appender — a row appended between the read and the replace would be
    lost — so a result file must have exactly one writer at a time;
    :func:`repro.sweep.executor.run_sweep` enforces that with a per-file
    lock held across both this compaction and its own appends (the rule
    matters doubly for sharded sweeps, where each shard file belongs to
    exactly one shard index).
    """
    if not os.path.exists(path):
        return set()
    with open(path, "r", encoding="utf-8") as fh:
        current = fh.read()
    rows = list(_lenient_rows(current.splitlines(), path, skipped=skipped))
    text = "".join(dumps_row(r) + "\n" for r in rows)
    if current != text:
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    return {row["cell_id"] for row in rows if "cell_id" in row}


#: Per-shard-file cap on recorded problem strings: keeps a wholly
#: damaged shard of a million-cell grid from buffering millions of
#: messages — the constant-memory contract must hold on the reject path
#: too.  The suppression notice still says how much was elided.
_PROBLEMS_PER_FILE_CAP = 50


class _ShardReader:
    """Sequential one-row cursor over a shard JSONL file.

    The streaming merge holds exactly one of these per shard: one open
    file handle, one parsed row at a time, plus O(shard-count) residue
    bookkeeping — never a shard's full row list.  Damaged lines (corrupt
    JSON, non-objects, rows without an integer ``index``) are recorded
    as problems (capped per file, with a count of what was elided) and
    skipped so the cursor keeps advancing and the file's damage gets
    characterised without buffering it.
    """

    def __init__(self, path: str, shard_count: int, problems: list[str]):
        self.path = path
        self._shard_count = shard_count
        self._problems = problems
        self._recorded = 0
        self._suppressed = 0
        self._fh = open(path, "r", encoding="utf-8")
        self._lineno = 0
        self._rowno = 0
        self.last_index: int | None = None
        self.residues: set[int] = set()

    def _problem(self, message: str) -> None:
        if self._recorded < _PROBLEMS_PER_FILE_CAP:
            self._problems.append(message)
            self._recorded += 1
        else:
            self._suppressed += 1

    def next_row(self) -> dict[str, Any] | None:
        """Advance to the next merge-eligible row (``None`` = exhausted)."""
        while True:
            line = self._fh.readline()
            if not line:
                return None
            self._lineno += 1
            stripped = line.strip()
            if not stripped:
                continue
            scratch: list[str] = []
            row = _strict_parse_line(stripped, self.path, self._lineno, scratch)
            if row is None:
                for message in scratch:
                    self._problem(message)
                continue
            label = f"{self.path} row {self._rowno}"
            self._rowno += 1
            for message in _row_shape_problems(row, label):
                self._problem(message)
            index = row.get("index")
            if not isinstance(index, int):
                self._problem(
                    f"{label}: no integer 'index' column; "
                    "not a sweep shard row"
                )
                continue
            self.residues.add(index % self._shard_count)
            if self.last_index is not None and index <= self.last_index:
                self._problem(
                    f"{label}: index {index} out of order after "
                    f"{self.last_index}; shard files are append-only in "
                    "grid order (re-run the shard)"
                )
            self.last_index = index
            return row

    def close(self) -> None:
        if self._suppressed:
            self._problems.append(
                f"{self.path}: {self._suppressed} further problem(s) "
                f"suppressed (first {_PROBLEMS_PER_FILE_CAP} shown)"
            )
            self._suppressed = 0
        self._fh.close()


def _format_capped(values: list[int], dropped: int) -> str:
    """Render a capped problem-index list, noting how many were elided."""
    return f"{values}" + (f" (+{dropped} more)" if dropped else "")


#: How many offending cell indices a merge problem names before eliding —
#: keeps error messages (and the memory behind them) bounded even when a
#: whole shard of a million-cell grid is missing or duplicated.
_PROBLEM_INDEX_CAP = 10


def merge_shards(
    shard_paths: Iterable[str],
    out_path: str,
    *,
    expect_cells: int | None = None,
) -> tuple[int, list[str]]:
    """Merge sharded sweep files back into grid order; return (rows, problems).

    The shards of one grid partition its cells round-robin by index, so
    their union must be exactly the contiguous index range ``0..N-1``
    with no duplicates, and each file's indices must share one residue
    modulo the shard count (mixing files from different shardings fails
    here); every row must satisfy the executor's structural invariants
    (:func:`_row_shape_problems`), and corrupt lines — including the torn
    tail a killed shard leaves — are problems.

    The merge **streams**: shard files are k-way merged through one read
    cursor each (rows verified and written one at a time), so peak
    memory is independent of grid size — a million-cell merge holds one
    row per shard, never a shard's full row list.  Because ``run_sweep``
    appends rows in grid order, each shard file must be internally
    ordered by index; a file that is not (only possible by hand-editing
    holes into it) is rejected.

    One gap is undetectable from row content alone: a shard that lost
    only *trailing* cells, when no surviving row carries a higher index,
    looks like a complete merge of a smaller grid.  Pass ``expect_cells``
    (= ``SweepSpec.num_cells()``; the CLI's ``--expect-cells``) to close
    it — without that the merge certifies internal consistency, not grid
    completeness.

    Only a clean merge is kept (written atomically) at ``out_path``;
    rows stream into a ``.tmp`` sidecar that is discarded when any
    problem surfaces.  Because rows are serialised canonically and
    emitted in index order, the merged file is byte-identical to an
    unsharded run of the same grid.
    """
    shard_paths = list(shard_paths)
    shard_count = len(shard_paths)
    problems: list[str] = []
    readers: list[_ShardReader | None] = []
    total_rows = 0
    expected = 0
    dup_shown: list[int] = []
    dup_dropped = 0
    missing_shown: list[int] = []
    missing_dropped = 0
    tmp = out_path + ".tmp"
    try:
        for path in shard_paths:
            if not os.path.exists(path):
                problems.append(f"{path}: missing shard file")
                readers.append(None)
                continue
            readers.append(_ShardReader(path, shard_count, problems))
        # Prime the k-way merge with each shard's head row; ties on
        # equal indices (duplicates) break by reader position so the
        # heap never compares row dicts.
        heap: list[tuple[int, int, dict[str, Any]]] = []
        for pos, reader in enumerate(readers):
            if reader is None:
                continue
            row = reader.next_row()
            if row is not None:
                heapq.heappush(heap, (row["index"], pos, row))
        with open(tmp, "w", encoding="utf-8") as out:
            while heap:
                index, pos, row = heapq.heappop(heap)
                if index == expected:
                    expected = index + 1
                elif index < expected:
                    if dup_shown and dup_shown[-1] == index:
                        pass  # already recorded this duplicated index
                    elif len(dup_shown) < _PROBLEM_INDEX_CAP:
                        dup_shown.append(index)
                    else:
                        dup_dropped += 1
                else:
                    gap = range(expected, index)
                    take = max(0, _PROBLEM_INDEX_CAP - len(missing_shown))
                    missing_shown.extend(gap[:take])
                    missing_dropped += len(gap) - min(take, len(gap))
                    expected = index + 1
                out.write(dumps_row(row) + "\n")
                total_rows += 1
                reader = readers[pos]
                assert reader is not None
                nxt = reader.next_row()
                if nxt is not None:
                    heapq.heappush(heap, (nxt["index"], pos, nxt))
    except BaseException:
        # A reader or the output failed mid-stream (ENOSPC, I/O error):
        # don't leave a partial .tmp sidecar behind the exception.
        if os.path.exists(tmp):
            os.remove(tmp)
        raise
    finally:
        for reader in readers:
            if reader is not None:
                reader.close()

    # Round-robin partition: every file's indices share one residue
    # modulo the shard count, and non-empty files cover distinct
    # residues.  Catches files from a different sharding mixed in even
    # when the union happens to be contiguous.
    seen_residues: dict[int, str] = {}
    for reader in readers:
        if reader is None:
            continue
        if len(reader.residues) > 1:
            problems.append(
                f"{reader.path}: cell indices span residues "
                f"{sorted(reader.residues)} modulo {shard_count} shards; "
                "not one shard of this grid"
            )
        for residue in sorted(reader.residues):
            if residue in seen_residues:
                problems.append(
                    f"{reader.path}: same shard residue {residue} as "
                    f"{seen_residues[residue]} (shard passed twice?)"
                )
            else:
                seen_residues[residue] = reader.path
    if expect_cells is not None and total_rows != expect_cells:
        problems.append(
            f"merge: expected {expect_cells} rows across shards, "
            f"found {total_rows}"
        )
    if dup_shown or dup_dropped:
        problems.append(
            "merge: duplicate cell indices across shards: "
            f"{_format_capped(dup_shown, dup_dropped)} "
            "(same shard run twice into different files?)"
        )
    if missing_shown or missing_dropped:
        problems.append(
            "merge: missing cell indices "
            f"{_format_capped(missing_shown, missing_dropped)} "
            "(a shard is absent or incomplete)"
        )
    if problems:
        if os.path.exists(tmp):
            os.remove(tmp)
        return total_rows, problems
    os.replace(tmp, out_path)
    return total_rows, problems
