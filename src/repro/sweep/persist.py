"""JSONL persistence for sweep results.

One JSON object per line, serialised canonically (sorted keys, compact
separators) so a sweep with a fixed seed produces byte-identical files
regardless of worker count.  Files are append-only during a run; resume
reads the valid prefix back and skips completed cells.  A truncated
trailing line — the signature of a killed run — is dropped on load.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Any, Iterable, Iterator

from repro.errors import ReproError

__all__ = [
    "dumps_row",
    "iter_rows",
    "completed_ids",
    "compact",
    "diff_rows",
    "merge_shards",
]


def dumps_row(row: dict[str, Any]) -> str:
    """Canonical one-line serialisation of a result row (no newline)."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def _lenient_rows(lines: Iterable[str], path: str) -> Iterator[dict[str, Any]]:
    """Resume-oriented row parse shared by :func:`iter_rows`/:func:`compact`.

    A corrupt *final* line is tolerated (partial write of an interrupted
    run); a corrupt line followed by more data indicates real damage and
    raises :class:`ReproError`.
    """
    pending_error: str | None = None
    for lineno, line in enumerate(lines, 1):
        stripped = line.strip()
        if not stripped:
            continue
        if pending_error is not None:
            raise ReproError(pending_error)
        try:
            yield json.loads(stripped)
        except json.JSONDecodeError:
            # Defer: only an error if any non-empty line follows.
            pending_error = f"{path}:{lineno}: corrupt JSONL row mid-file"


def iter_rows(path: str) -> Iterator[dict[str, Any]]:
    """Yield the valid rows of a JSONL file (lenient about a torn tail)."""
    with open(path, "r", encoding="utf-8") as fh:
        yield from _lenient_rows(fh, path)


def _row_shape_problems(row: dict[str, Any], label: str) -> list[str]:
    """Structural invariants every executor row must satisfy.

    The latency histogram's bin counts must cover exactly the cell's
    requests (the executor always emits ``DEFAULT_BINS`` buckets), so a
    violated invariant means a truncated or hand-edited file — worth
    failing a verification over even when both inputs agree.
    """
    from repro.sweep.stats import DEFAULT_BINS

    problems = []
    hist = row.get("latency_hist")
    if hist is not None:
        if len(hist) != DEFAULT_BINS:
            problems.append(
                f"{label}: latency_hist has {len(hist)} bins, "
                f"expected {DEFAULT_BINS}"
            )
        elif "requests" in row and sum(hist) != row["requests"]:
            problems.append(
                f"{label}: latency_hist counts {sum(hist)} requests, "
                f"row says {row['requests']}"
            )
    return problems


def _strict_rows(path: str, problems: list[str]) -> list[dict[str, Any]]:
    """Load every row of ``path``, reporting ANY corrupt line as a problem.

    Unlike :func:`iter_rows` — whose resume-oriented leniency drops a
    torn trailing line — a *verification* read must flag it: a torn tail
    is exactly the damage ``diff_rows`` exists to catch.
    """
    rows: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                rows.append(json.loads(stripped))
            except json.JSONDecodeError:
                problems.append(f"{path}:{lineno}: corrupt JSONL row")
    return rows


def diff_rows(
    path_a: str,
    path_b: str,
    *,
    ignore: tuple[str, ...] = ("engine",),
    expect_cells: int | None = None,
) -> tuple[int, list[str]]:
    """Compare two sweep JSONL files row by row; return (rows, problems).

    The engines' bit-identity contract means two sweeps of one grid must
    serialise to equal rows modulo the ``ignore`` columns (by default just
    the ``engine`` label itself).  Beyond equality, every row is checked
    against the executor's structural invariants
    (:func:`_row_shape_problems`), corrupt lines — including the torn
    trailing line a killed run leaves, which resume-mode reads tolerate —
    are problems, and, when ``expect_cells`` is given, the files must
    carry exactly that many rows.  An empty problem list means the files
    verify.
    """
    problems: list[str] = []
    rows_a = _strict_rows(path_a, problems)
    rows_b = _strict_rows(path_b, problems)
    if expect_cells is not None and len(rows_a) != expect_cells:
        problems.append(
            f"{path_a}: expected {expect_cells} rows, found {len(rows_a)}"
        )
    if len(rows_a) != len(rows_b):
        problems.append(
            f"row count differs: {path_a} has {len(rows_a)}, "
            f"{path_b} has {len(rows_b)}"
        )
    for k, (ra, rb) in enumerate(zip(rows_a, rows_b)):
        fa = {key: v for key, v in ra.items() if key not in ignore}
        fb = {key: v for key, v in rb.items() if key not in ignore}
        if fa != fb:
            cell = ra.get("cell_id", f"row {k}")
            bad = sorted(
                key
                for key in fa.keys() | fb.keys()
                if fa.get(key) != fb.get(key)
            )
            problems.append(f"row {k} ({cell}): columns differ: {', '.join(bad)}")
    for path, rows in ((path_a, rows_a), (path_b, rows_b)):
        for k, row in enumerate(rows):
            problems.extend(
                _row_shape_problems(row, f"{path} row {k}")
            )
    return len(rows_a), problems


def completed_ids(path: str) -> set[str]:
    """Cell ids already recorded in a (possibly partial) result file."""
    if not os.path.exists(path):
        return set()
    return {row["cell_id"] for row in iter_rows(path) if "cell_id" in row}


def compact(path: str) -> set[str]:
    """Drop a truncated trailing line in place; return the completed ids.

    The file is read **once** and the parsed rows are compared against
    that same snapshot, then rewritten only when needed (atomic replace),
    so resuming after a kill leaves a clean append point.  The
    read-compare-rewrite is still not atomic with respect to a concurrent
    appender — a row appended between the read and the replace would be
    lost — so a result file must have exactly one writer at a time;
    :func:`repro.sweep.executor.run_sweep` enforces that with a per-file
    lock held across both this compaction and its own appends (the rule
    matters doubly for sharded sweeps, where each shard file belongs to
    exactly one shard index).
    """
    if not os.path.exists(path):
        return set()
    with open(path, "r", encoding="utf-8") as fh:
        current = fh.read()
    rows = list(_lenient_rows(current.splitlines(), path))
    text = "".join(dumps_row(r) + "\n" for r in rows)
    if current != text:
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    return {row["cell_id"] for row in rows if "cell_id" in row}


def merge_shards(
    shard_paths: Iterable[str],
    out_path: str,
    *,
    expect_cells: int | None = None,
) -> tuple[int, list[str]]:
    """Merge sharded sweep files back into grid order; return (rows, problems).

    The shards of one grid partition its cells round-robin by index, so
    their union must be exactly the contiguous index range ``0..N-1``
    with no duplicates, and each file's indices must share one residue
    modulo the shard count (mixing files from different shardings fails
    here); every row must satisfy the executor's structural invariants
    (:func:`_row_shape_problems`), and corrupt lines — including the torn
    tail a killed shard leaves — are problems.

    One gap is undetectable from row content alone: a shard that lost
    only *trailing* cells, when no surviving row carries a higher index,
    looks like a complete merge of a smaller grid.  Pass ``expect_cells``
    (= ``SweepSpec.num_cells()``; the CLI's ``--expect-cells``) to close
    it — without that the merge certifies internal consistency, not grid
    completeness.

    Only a clean merge is written (atomically) to ``out_path``; because
    rows are serialised canonically and reordered by index, the merged
    file is byte-identical to an unsharded run of the same grid.
    """
    shard_paths = list(shard_paths)
    problems: list[str] = []
    rows: list[dict[str, Any]] = []
    residues: list[tuple[str, set[int]]] = []
    for path in shard_paths:
        if not os.path.exists(path):
            problems.append(f"{path}: missing shard file")
            continue
        shard_rows = _strict_rows(path, problems)
        for k, row in enumerate(shard_rows):
            if not isinstance(row.get("index"), int):
                problems.append(
                    f"{path} row {k}: no integer 'index' column; "
                    "not a sweep shard row"
                )
            problems.extend(_row_shape_problems(row, f"{path} row {k}"))
        rows.extend(shard_rows)
        residues.append(
            (
                path,
                {
                    row["index"] % len(shard_paths)
                    for row in shard_rows
                    if isinstance(row.get("index"), int)
                },
            )
        )
    # Round-robin partition: every file's indices share one residue
    # modulo the shard count, and non-empty files cover distinct
    # residues.  Catches files from a different sharding mixed in even
    # when the union happens to be contiguous.
    seen_residues: dict[int, str] = {}
    for path, found in residues:
        if len(found) > 1:
            problems.append(
                f"{path}: cell indices span residues {sorted(found)} modulo "
                f"{len(shard_paths)} shards; not one shard of this grid"
            )
        for residue in found:
            if residue in seen_residues:
                problems.append(
                    f"{path}: same shard residue {residue} as "
                    f"{seen_residues[residue]} (shard passed twice?)"
                )
            seen_residues[residue] = path
    rows = [r for r in rows if isinstance(r.get("index"), int)]
    rows.sort(key=lambda r: r["index"])
    indices = [r["index"] for r in rows]
    if expect_cells is not None and len(rows) != expect_cells:
        problems.append(
            f"merge: expected {expect_cells} rows across shards, "
            f"found {len(rows)}"
        )
    if indices != list(range(len(rows))):
        counts = Counter(indices)
        dupes = sorted(i for i, c in counts.items() if c > 1)
        missing = sorted(set(range(len(indices))) - set(indices))
        if dupes:
            problems.append(
                f"merge: duplicate cell indices across shards: {dupes} "
                "(same shard run twice into different files?)"
            )
        if missing:
            problems.append(
                f"merge: missing cell indices {missing} "
                "(a shard is absent or incomplete)"
            )
    if problems:
        return len(rows), problems
    tmp = out_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        for row in rows:
            fh.write(dumps_row(row) + "\n")
    os.replace(tmp, out_path)
    return len(rows), problems
