"""JSONL persistence for sweep results.

One JSON object per line, serialised canonically (sorted keys, compact
separators) so a sweep with a fixed seed produces byte-identical files
regardless of worker count.  Files are append-only during a run; resume
reads the valid prefix back and skips completed cells.  A truncated
trailing line — the signature of a killed run — is dropped on load.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterator

from repro.errors import ReproError

__all__ = ["dumps_row", "iter_rows", "completed_ids", "compact"]


def dumps_row(row: dict[str, Any]) -> str:
    """Canonical one-line serialisation of a result row (no newline)."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def iter_rows(path: str) -> Iterator[dict[str, Any]]:
    """Yield the valid rows of a JSONL file.

    A corrupt *final* line is tolerated (partial write of an interrupted
    run); a corrupt line followed by more data indicates real damage and
    raises :class:`ReproError`.
    """
    with open(path, "r", encoding="utf-8") as fh:
        pending_error: str | None = None
        for lineno, line in enumerate(fh, 1):
            stripped = line.strip()
            if not stripped:
                continue
            if pending_error is not None:
                raise ReproError(pending_error)
            try:
                yield json.loads(stripped)
            except json.JSONDecodeError:
                # Defer: only an error if any non-empty line follows.
                pending_error = f"{path}:{lineno}: corrupt JSONL row mid-file"


def completed_ids(path: str) -> set[str]:
    """Cell ids already recorded in a (possibly partial) result file."""
    if not os.path.exists(path):
        return set()
    return {row["cell_id"] for row in iter_rows(path) if "cell_id" in row}


def compact(path: str) -> set[str]:
    """Drop a truncated trailing line in place; return the completed ids.

    Rewrites the file only when needed (atomic replace), so resuming
    after a kill leaves a clean append point.
    """
    if not os.path.exists(path):
        return set()
    rows = list(iter_rows(path))
    text = "".join(dumps_row(r) + "\n" for r in rows)
    with open(path, "r", encoding="utf-8") as fh:
        current = fh.read()
    if current != text:
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    return {row["cell_id"] for row in rows if "cell_id" in row}
