"""Sweep execution: cells → result rows, optionally across processes.

The executor is deliberately deterministic: cells are dispatched with an
*ordered* ``imap``, so rows land in the file in grid order no matter how
many workers raced to compute them, and every row's content depends only
on the cell's axes and master seed (wall-clock timings never enter the
persisted rows).  Running the same spec with 1 or 16 workers therefore
produces byte-identical JSONL.

What a cell *does* is not the executor's business: each schedule-axis
name resolves to a :class:`~repro.sweep.registry.CellFamily` (builder +
runner-to-row), so the open-loop arrow replays, the §5 closed loops, the
§5.1 directory designs and the §1.1 adaptive baseline — plus any family
registered by third-party code — all execute through the same three
lines of :func:`execute_cell`.

``map_jobs`` is the generic ordered parallel map the experiment layer
routes its own parameter loops through (see
:mod:`repro.experiments.fig10` et al.); ``run_sweep`` adds persistence,
resume and sharding on top of it for declarative grids.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
from typing import Any, Callable, Iterable, Iterator, Sequence, TypeVar

from repro.errors import SweepError
from repro.sweep import persist
from repro.sweep.registry import get_family
from repro.sweep.spec import SweepCell, SweepSpec, cell_seed

__all__ = [
    "execute_cell",
    "map_jobs",
    "iter_sweep",
    "run_sweep",
    "shard_path",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, Linux default); fall back to spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def map_jobs(
    fn: Callable[[_T], _R], jobs: Sequence[_T], *, workers: int = 1
) -> list[_R]:
    """Ordered parallel map: results in job order regardless of workers.

    ``workers <= 1`` runs inline (no processes — the default for tests
    and small grids); otherwise a process pool computes jobs concurrently
    while ``imap`` preserves submission order.  ``fn`` and the jobs must
    be picklable (module-level function, plain-data arguments).
    """
    return list(_imap_jobs(fn, jobs, workers=workers))


def _imap_jobs(
    fn: Callable[[_T], _R], jobs: Sequence[_T], *, workers: int = 1
) -> Iterator[_R]:
    """Streaming variant of :func:`map_jobs` (same ordering guarantee)."""
    if workers <= 1 or len(jobs) <= 1:
        for j in jobs:
            yield fn(j)
        return
    ctx = _pool_context()
    with ctx.Pool(processes=min(workers, len(jobs))) as pool:
        yield from pool.imap(fn, jobs)


# ----------------------------------------------------------------------
# cell execution
# ----------------------------------------------------------------------
def _axis_columns(cell: SweepCell, derived: int) -> dict[str, Any]:
    """The identity columns every row carries, whatever its family."""
    return {
        "cell_id": cell.cell_id,
        "index": cell.index,
        "graph": cell.graph.label(),
        "tree": cell.tree,
        "schedule": cell.schedule.label(),
        "seed": cell.seed,
        "cell_seed": derived,
        "engine": cell.engine,
        "service_time": cell.service_time,
    }


def execute_cell(cell: SweepCell) -> dict[str, Any]:
    """Instantiate and run one cell; return its persistable result row.

    The cell's schedule-axis family resolves to its registered
    :class:`~repro.sweep.registry.CellFamily`, whose builder and
    runner-to-row produce the metric columns; the executor prepends the
    axis identity columns.  Everything is a deterministic function of the
    cell, so rows are reproducible — and, for the arrow engines,
    engine-independent (fast, message and batch are bit-identical;
    message-level-only families like the §5.1 directories ignore the
    engine axis entirely).
    """
    family = get_family(cell.schedule.family)
    derived = cell_seed(cell)
    return {**_axis_columns(cell, derived), **family.execute(cell, derived)}


# ----------------------------------------------------------------------
# sharding
# ----------------------------------------------------------------------
def shard_path(path: str, shard_index: int, shard_count: int) -> str:
    """Canonical per-shard output path derived from the merged path.

    ``sweep.jsonl`` with shard 0/2 becomes ``sweep.shard0-2.jsonl`` —
    the naming ``sweep-merge`` documentation assumes.
    """
    base, ext = os.path.splitext(path)
    return f"{base}.shard{shard_index}-{shard_count}{ext}"


def _check_shard(shard: tuple[int, int] | None) -> None:
    if shard is None:
        return
    index, count = shard
    if count < 1 or not 0 <= index < count:
        raise SweepError(
            f"shard must be i/m with 0 <= i < m, got {index}/{count}"
        )


@contextlib.contextmanager
def _exclusive_writer(path: str) -> Iterator[None]:
    """Fail loudly if another live process is sweeping into ``path``.

    Resume works because exactly one process owns a result file: two
    appenders interleave torn lines, and compaction races a concurrent
    append.  An ``flock`` on a ``<path>.lock`` sidecar (held for the whole
    run, including compaction) turns that misuse — e.g. two hosts given
    the same ``--shard`` index onto shared storage — into an immediate
    :class:`SweepError` instead of silent corruption.  On platforms
    without ``fcntl`` the guard is a no-op and single-writer discipline
    is the caller's contract.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX
        yield
        return
    fd = os.open(path + ".lock", os.O_CREAT | os.O_RDWR, 0o644)
    try:
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            raise SweepError(
                f"{path} is being written by another sweep process "
                "(shard files must have exactly one writer; give each "
                "shard its own --shard index and output path)"
            ) from None
        yield
    finally:
        os.close(fd)


def iter_sweep(
    spec: SweepSpec,
    *,
    workers: int = 1,
    skip: Iterable[str] = (),
    shard: tuple[int, int] | None = None,
) -> Iterator[dict[str, Any]]:
    """Execute a spec's cells in grid order, yielding rows as they finish.

    ``shard=(i, m)`` keeps only cells with ``index % m == i`` — the
    round-robin partition ``sweep-merge`` reassembles into grid order.
    """
    _check_shard(shard)
    skip_set = set(skip)
    todo = [c for c in spec.cells() if c.cell_id not in skip_set]
    if shard is not None:
        index, count = shard
        todo = [c for c in todo if c.index % count == index]
    yield from _imap_jobs(execute_cell, todo, workers=workers)


def run_sweep(
    spec: SweepSpec,
    out_path: str,
    *,
    workers: int = 1,
    resume: bool = True,
    shard: tuple[int, int] | None = None,
    on_row: Callable[[int], None] | None = None,
) -> dict[str, Any]:
    """Run a sweep to a JSONL file; returns a small summary dict.

    With ``resume`` (the default) cells whose rows already exist in
    ``out_path`` are skipped and new rows are appended — a partially
    written trailing line from a killed run is dropped first.  Without
    it the file is truncated and the whole grid re-runs.

    With ``shard=(i, m)`` only the cells of shard ``i`` run; each shard
    must write to its own file (see :func:`shard_path`), which a
    ``sweep-merge`` stitches back into the grid-order equivalent of an
    unsharded run.  A per-file lock enforces the one-writer-per-shard
    contract on POSIX systems.

    ``on_row`` (if given) is called after each row is flushed, with the
    count of rows written *by this run* — the orchestrator's in-process
    hook for progress and fault injection.
    """
    _check_shard(shard)
    with _exclusive_writer(out_path):
        if resume:
            done = persist.compact(out_path)
        else:
            done = set()
            if os.path.exists(out_path):
                os.remove(out_path)
        written = 0
        with open(out_path, "a", encoding="utf-8") as fh:
            for row in iter_sweep(spec, workers=workers, skip=done, shard=shard):
                fh.write(persist.dumps_row(row) + "\n")
                fh.flush()
                written += 1
                if on_row is not None:
                    on_row(written)
    total = spec.num_cells()
    if shard is not None:
        index, count = shard
        total = len(range(index, total, count))
    return {
        "spec": spec.name,
        "path": out_path,
        "cells": total,
        "written": written,
        "skipped": total - written,
        "shard": None if shard is None else f"{shard[0]}/{shard[1]}",
    }
