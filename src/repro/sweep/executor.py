"""Sweep execution: cells → result rows, optionally across processes.

The executor is deliberately deterministic: cells are dispatched with an
*ordered* ``imap``, so rows land in the file in grid order no matter how
many workers raced to compute them, and every row's content depends only
on the cell's axes and master seed (wall-clock timings never enter the
persisted rows).  Running the same spec with 1 or 16 workers therefore
produces byte-identical JSONL.

``map_jobs`` is the generic ordered parallel map the experiment layer
routes its own parameter loops through (see
:mod:`repro.experiments.fig10` et al.); ``run_sweep`` adds persistence
and resume on top of it for declarative grids.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Iterable, Iterator, Sequence, TypeVar

from repro.core.fast_arrow import arrow_runner
from repro.core.fast_closed_loop import closed_loop_runner
from repro.sweep import persist
from repro.sweep.spec import (
    CLOSED_LOOP_FAMILIES,
    SweepCell,
    SweepSpec,
    build_graph,
    build_schedule,
    build_tree,
    cell_seed,
)
from repro.sweep.stats import latency_columns

__all__ = ["execute_cell", "map_jobs", "iter_sweep", "run_sweep"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, Linux default); fall back to spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def map_jobs(
    fn: Callable[[_T], _R], jobs: Sequence[_T], *, workers: int = 1
) -> list[_R]:
    """Ordered parallel map: results in job order regardless of workers.

    ``workers <= 1`` runs inline (no processes — the default for tests
    and small grids); otherwise a process pool computes jobs concurrently
    while ``imap`` preserves submission order.  ``fn`` and the jobs must
    be picklable (module-level function, plain-data arguments).
    """
    return list(_imap_jobs(fn, jobs, workers=workers))


def _imap_jobs(
    fn: Callable[[_T], _R], jobs: Sequence[_T], *, workers: int = 1
) -> Iterator[_R]:
    """Streaming variant of :func:`map_jobs` (same ordering guarantee)."""
    if workers <= 1 or len(jobs) <= 1:
        for j in jobs:
            yield fn(j)
        return
    ctx = _pool_context()
    with ctx.Pool(processes=min(workers, len(jobs))) as pool:
        yield from pool.imap(fn, jobs)


# ----------------------------------------------------------------------
# cell execution
# ----------------------------------------------------------------------
def _axis_columns(cell: SweepCell, derived: int) -> dict[str, Any]:
    """The identity columns every row carries, open- or closed-loop."""
    return {
        "cell_id": cell.cell_id,
        "index": cell.index,
        "graph": cell.graph.label(),
        "tree": cell.tree,
        "schedule": cell.schedule.label(),
        "seed": cell.seed,
        "cell_seed": derived,
        "engine": cell.engine,
        "service_time": cell.service_time,
    }


def execute_cell(cell: SweepCell) -> dict[str, Any]:
    """Instantiate and run one cell; return its persistable result row.

    The row carries the cell's axes, scale-free metrics, and the
    per-request latency distribution (percentiles + histogram bins from
    :func:`repro.sweep.stats.latency_columns`); everything is a
    deterministic function of the cell, so rows are reproducible and
    engine-independent (the fast, message and batch engines are
    bit-identical).
    Closed-loop cells (``closed_arrow`` / ``closed_centralized`` on the
    schedule axis) run the §5 measurement loop instead of replaying a
    request schedule.
    """
    if cell.schedule.family in CLOSED_LOOP_FAMILIES:
        return _execute_closed_loop_cell(cell)
    derived = cell_seed(cell)
    graph = build_graph(cell.graph, derived)
    tree = build_tree(cell.tree, graph, derived)
    schedule = build_schedule(cell.schedule, graph.num_nodes, derived)
    runner = arrow_runner(cell.engine)
    result = runner(
        graph, tree, schedule, seed=derived, service_time=cell.service_time
    )
    latencies = [result.latency(rid) for rid in result.completions]
    return {
        **_axis_columns(cell, derived),
        "n": graph.num_nodes,
        "requests": len(schedule),
        "makespan": result.makespan,
        "total_latency": result.total_latency,
        "mean_hops": result.mean_hops,
        "local_find_fraction": result.local_find_fraction(),
        "messages_sent": result.network_stats["messages_sent"],
        "hops_total": result.network_stats["hops_total"],
        **latency_columns(latencies),
    }


def _execute_closed_loop_cell(cell: SweepCell) -> dict[str, Any]:
    """Run one closed-loop cell (arrow or centralized) through either engine."""
    derived = cell_seed(cell)
    graph = build_graph(cell.graph, derived)
    params = cell.schedule.kwargs()
    requests_per_proc = int(params.get("requests_per_proc", 100))
    think_time = float(params.get("think_time", 0.0))
    if cell.schedule.family == "closed_arrow":
        runner = closed_loop_runner("arrow", cell.engine)
        tree = build_tree(cell.tree, graph, derived)
        result = runner(
            graph,
            tree,
            requests_per_proc=requests_per_proc,
            seed=derived,
            service_time=cell.service_time,
            think_time=think_time,
        )
    else:
        runner = closed_loop_runner("centralized", cell.engine)
        center = int(params.get("center", 0))
        result = runner(
            graph,
            center,
            requests_per_proc=requests_per_proc,
            seed=derived,
            service_time=cell.service_time,
            think_time=think_time,
        )
    return {
        **_axis_columns(cell, derived),
        "n": graph.num_nodes,
        "requests": result.total_requests,
        "makespan": result.makespan,
        "total_latency": sum(result.latencies),
        "mean_hops": result.mean_hops,
        "local_find_fraction": result.local_find_fraction,
        "messages_sent": result.messages_sent,
        "hops_total": sum(result.hops),
        **latency_columns(result.latencies),
    }


def iter_sweep(
    spec: SweepSpec, *, workers: int = 1, skip: Iterable[str] = ()
) -> Iterator[dict[str, Any]]:
    """Execute a spec's cells in grid order, yielding rows as they finish."""
    skip_set = set(skip)
    todo = [c for c in spec.cells() if c.cell_id not in skip_set]
    yield from _imap_jobs(execute_cell, todo, workers=workers)


def run_sweep(
    spec: SweepSpec,
    out_path: str,
    *,
    workers: int = 1,
    resume: bool = True,
) -> dict[str, Any]:
    """Run a sweep to a JSONL file; returns a small summary dict.

    With ``resume`` (the default) cells whose rows already exist in
    ``out_path`` are skipped and new rows are appended — a partially
    written trailing line from a killed run is dropped first.  Without
    it the file is truncated and the whole grid re-runs.
    """
    if resume:
        done = persist.compact(out_path)
    else:
        done = set()
        if os.path.exists(out_path):
            os.remove(out_path)
    written = 0
    with open(out_path, "a", encoding="utf-8") as fh:
        for row in iter_sweep(spec, workers=workers, skip=done):
            fh.write(persist.dumps_row(row) + "\n")
            fh.flush()
            written += 1
    total = spec.num_cells()
    return {
        "spec": spec.name,
        "path": out_path,
        "cells": total,
        "written": written,
        "skipped": total - written,
    }
