"""Sweep specifications: declarative grids and their expansion into cells.

A :class:`SweepSpec` is pure data — strings, numbers and tuples — so it
pickles cheaply across worker processes and round-trips through JSON.
Expansion order is part of the contract: cells are enumerated in the
nested-loop order ``graphs → trees → schedules → seeds`` with a stable
``cell_id`` per cell, so a sweep's JSONL output is byte-for-byte
reproducible regardless of how many workers execute it.

Per-cell randomness derives from :func:`repro.sim.rng.spawn_rng` keyed by
the cell's axes (not its position), so inserting a new axis value never
perturbs the draws of existing cells.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

from repro.errors import ScheduleError
from repro.graphs.generators import (
    balanced_binary_tree_graph,
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    gnp_connected_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    random_geometric_graph,
    star_graph,
    torus_graph,
)
from repro.graphs.graph import Graph
from repro.sim.rng import spawn_rng
from repro.spanning.construct import (
    balanced_binary_overlay,
    bfs_tree,
    mst_kruskal,
    mst_prim,
    random_spanning_tree,
    star_overlay,
)
from repro.spanning.tree import SpanningTree
from repro.workloads import schedules as _schedules

__all__ = [
    "GraphSpec",
    "ScheduleSpec",
    "SweepCell",
    "SweepSpec",
    "GRAPH_BUILDERS",
    "TREE_BUILDERS",
    "SCHEDULE_BUILDERS",
    "build_graph",
    "build_tree",
    "build_schedule",
    "cell_seed",
    "fig11_grid",
    "mixed_grid",
    "smoke_grid",
]

#: Graph family name -> generator (all from :mod:`repro.graphs.generators`).
GRAPH_BUILDERS = {
    "complete": complete_graph,
    "path": path_graph,
    "cycle": cycle_graph,
    "star": star_graph,
    "binary_tree": balanced_binary_tree_graph,
    "grid": grid_graph,
    "torus": torus_graph,
    "hypercube": hypercube_graph,
    "geometric": random_geometric_graph,
    "gnp": gnp_connected_graph,
    "caterpillar": caterpillar_graph,
    "lollipop": lollipop_graph,
}
#: Families whose generator takes a ``seed`` argument.
_SEEDED_GRAPHS = frozenset({"geometric", "gnp"})

#: Tree strategy name -> constructor from :mod:`repro.spanning.construct`.
TREE_BUILDERS = {
    "bfs": bfs_tree,
    "mst": mst_prim,
    "kruskal": mst_kruskal,
    "binary": balanced_binary_overlay,
    "star": star_overlay,
    "random": random_spanning_tree,
}

#: Schedule family names handled by :func:`build_schedule`, with the
#: parameters each accepts (validated at spec-build time so a typo'd key
#: fails loudly instead of silently running defaults under a label that
#: claims otherwise).
SCHEDULE_BUILDERS = {
    "one_shot": frozenset(),
    "sequential": frozenset({"gap"}),
    "poisson": frozenset({"count", "rate", "per_node", "rate_per_node"}),
    "bursty": frozenset(
        {"count", "per_node", "bursts", "burst_size", "burst_span", "idle_gap"}
    ),
    "hotspot": frozenset(
        {"count", "rate", "per_node", "rate_per_node", "hot_nodes", "hot_fraction"}
    ),
    "random": frozenset({"count", "per_node", "horizon"}),
}


def _param_key(params: tuple[tuple[str, object], ...]) -> str:
    return ",".join(f"{k}={v}" for k, v in params)


@dataclass(frozen=True, slots=True)
class GraphSpec:
    """One point on the graph-family axis: family name + generator kwargs."""

    family: str
    params: tuple[tuple[str, object], ...] = ()

    @classmethod
    def of(cls, family: str, **params: object) -> "GraphSpec":
        """Build a spec from keyword generator arguments.

        Parameter names are checked against the generator's signature
        here, so a typo fails at spec-build time with a named error
        rather than as a raw ``TypeError`` inside a worker mid-sweep.
        """
        if family not in GRAPH_BUILDERS:
            raise ScheduleError(
                f"unknown graph family {family!r}; know {sorted(GRAPH_BUILDERS)}"
            )
        accepted = set(inspect.signature(GRAPH_BUILDERS[family]).parameters)
        unknown = set(params) - accepted
        if unknown:
            raise ScheduleError(
                f"graph family {family!r} does not accept {sorted(unknown)}; "
                f"known parameters: {sorted(accepted)}"
            )
        return cls(family, tuple(sorted(params.items())))

    def kwargs(self) -> dict[str, object]:
        """Generator keyword arguments as a dict."""
        return dict(self.params)

    def label(self) -> str:
        """Stable human-readable id component, e.g. ``complete(n=16)``."""
        return f"{self.family}({_param_key(self.params)})"


@dataclass(frozen=True, slots=True)
class ScheduleSpec:
    """One point on the schedule-family axis: family name + parameters.

    The ``poisson``, ``hotspot`` and ``random`` families accept relative
    sizes — ``per_node`` (requests per node) and ``rate_per_node`` — so
    one spec scales across the graph axis; absolute ``count``/``rate``
    are honoured when given.
    """

    family: str
    params: tuple[tuple[str, object], ...] = ()

    @classmethod
    def of(cls, family: str, **params: object) -> "ScheduleSpec":
        """Build a spec from keyword schedule parameters."""
        if family not in SCHEDULE_BUILDERS:
            raise ScheduleError(
                f"unknown schedule family {family!r}; know {sorted(SCHEDULE_BUILDERS)}"
            )
        unknown = set(params) - SCHEDULE_BUILDERS[family]
        if unknown:
            raise ScheduleError(
                f"schedule family {family!r} does not accept {sorted(unknown)}; "
                f"known parameters: {sorted(SCHEDULE_BUILDERS[family])}"
            )
        return cls(family, tuple(sorted(params.items())))

    def kwargs(self) -> dict[str, object]:
        """Schedule parameters as a dict."""
        return dict(self.params)

    def label(self) -> str:
        """Stable human-readable id component."""
        return f"{self.family}({_param_key(self.params)})"


@dataclass(frozen=True, slots=True)
class SweepCell:
    """One fully instantiated grid cell (still declarative — no objects)."""

    index: int
    cell_id: str
    graph: GraphSpec
    tree: str
    schedule: ScheduleSpec
    seed: int
    engine: str
    service_time: float


@dataclass(frozen=True, slots=True)
class SweepSpec:
    """A declarative sweep grid.

    ``cells()`` expands the four axes in nested-loop order; the engine
    and service time apply to every cell.
    """

    name: str
    graphs: tuple[GraphSpec, ...]
    trees: tuple[str, ...]
    schedules: tuple[ScheduleSpec, ...]
    seeds: tuple[int, ...]
    engine: str = "fast"
    service_time: float = 0.0

    def __post_init__(self) -> None:
        if self.engine not in ("fast", "message"):
            raise ScheduleError(f"engine must be 'fast' or 'message', got {self.engine!r}")
        for t in self.trees:
            if t not in TREE_BUILDERS:
                raise ScheduleError(
                    f"unknown tree strategy {t!r}; know {sorted(TREE_BUILDERS)}"
                )

    def cells(self) -> list[SweepCell]:
        """Expand the grid: graphs → trees → schedules → seeds order.

        The cell id carries every axis that can change the metrics —
        including a non-default service time, so resuming a re-parametrised
        sweep into an old file recomputes rather than silently keeping
        stale rows.  The engine is deliberately *not* part of the identity:
        the two engines are bit-identical, so rows are interchangeable.
        """
        st = f"/st{self.service_time}" if self.service_time else ""
        out: list[SweepCell] = []
        i = 0
        for g in self.graphs:
            for t in self.trees:
                for s in self.schedules:
                    for seed in self.seeds:
                        cid = f"{g.label()}/{t}/{s.label()}/s{seed}{st}"
                        out.append(
                            SweepCell(
                                index=i,
                                cell_id=cid,
                                graph=g,
                                tree=t,
                                schedule=s,
                                seed=seed,
                                engine=self.engine,
                                service_time=self.service_time,
                            )
                        )
                        i += 1
        return out

    def num_cells(self) -> int:
        """Grid size without expanding."""
        return (
            len(self.graphs) * len(self.trees) * len(self.schedules) * len(self.seeds)
        )


# ----------------------------------------------------------------------
# cell instantiation
# ----------------------------------------------------------------------
def cell_seed(cell: SweepCell) -> int:
    """Deterministic per-cell seed, independent of execution order.

    Spawned from the cell's master seed and its axis labels via
    :func:`repro.sim.rng.spawn_rng`, so every worker process derives the
    identical value and distinct cells get independent streams.
    """
    name = f"sweep/{cell.graph.label()}/{cell.tree}/{cell.schedule.label()}"
    return int(spawn_rng(cell.seed, name).integers(0, 2**31 - 1))


def build_graph(spec: GraphSpec, seed: int) -> Graph:
    """Instantiate the graph of one cell (seeded families get ``seed``)."""
    kwargs = spec.kwargs()
    if spec.family in _SEEDED_GRAPHS:
        kwargs.setdefault("seed", seed)
    return GRAPH_BUILDERS[spec.family](**kwargs)


def build_tree(strategy: str, graph: Graph, seed: int, root: int = 0) -> SpanningTree:
    """Instantiate the spanning tree of one cell."""
    if strategy == "random":
        return random_spanning_tree(graph, root, seed=seed)
    return TREE_BUILDERS[strategy](graph, root)


def build_schedule(spec: ScheduleSpec, num_nodes: int, seed: int):
    """Instantiate the request schedule of one cell.

    Relative parameters (``per_node``, ``rate_per_node``) are resolved
    against ``num_nodes`` here, which is what lets one
    :class:`ScheduleSpec` scale across the whole graph axis.
    """
    p = spec.kwargs()
    count = int(p.pop("count", 0)) or int(p.pop("per_node", 4)) * num_nodes
    p.pop("per_node", None)
    rate = float(p.pop("rate", 0.0)) or float(p.pop("rate_per_node", 0.5)) * num_nodes
    p.pop("rate_per_node", None)
    if spec.family == "one_shot":
        return _schedules.one_shot(list(range(num_nodes)))
    if spec.family == "sequential":
        return _schedules.sequential(
            list(range(num_nodes)), gap=float(p.get("gap", 4.0 * num_nodes))
        )
    if spec.family == "poisson":
        return _schedules.poisson(num_nodes, count, rate, seed=seed)
    if spec.family == "bursty":
        return _schedules.bursty(
            num_nodes,
            bursts=int(p.get("bursts", 4)),
            burst_size=int(p.get("burst_size", max(1, count // 4))),
            burst_span=float(p.get("burst_span", 2.0)),
            idle_gap=float(p.get("idle_gap", 3.0 * num_nodes)),
            seed=seed,
        )
    if spec.family == "hotspot":
        hot = list(p.get("hot_nodes", (0,)))
        return _schedules.hotspot(
            num_nodes,
            count,
            rate,
            hot_nodes=hot,
            hot_fraction=float(p.get("hot_fraction", 0.8)),
            seed=seed,
        )
    if spec.family == "random":
        return _schedules.random_times(
            num_nodes,
            count,
            horizon=float(p.get("horizon", 2.0 * num_nodes)),
            seed=seed,
        )
    raise ScheduleError(f"unknown schedule family {spec.family!r}")


# ----------------------------------------------------------------------
# named grids (CLI presets)
# ----------------------------------------------------------------------
def fig11_grid(
    sizes: tuple[int, ...] = (8, 16, 32, 64),
    *,
    per_node: int = 100,
    seeds: tuple[int, ...] = (0, 1, 2),
    engine: str = "fast",
    service_time: float = 0.1,
) -> SweepSpec:
    """Fig. 11-style grid: hops/op on complete graphs + binary overlays.

    Open-loop Poisson traffic at one request per node per time unit —
    the steady-state analogue of the paper's closed loop.  The default
    ``service_time`` matches ``run_fig11``'s SP2 model (0.1) so grid rows
    are directly comparable to ``repro-arrow fig11 --engine fast``.
    """
    return SweepSpec(
        name="fig11",
        graphs=tuple(GraphSpec.of("complete", n=n) for n in sizes),
        trees=("binary",),
        schedules=(ScheduleSpec.of("poisson", per_node=per_node, rate_per_node=1.0),),
        seeds=tuple(seeds),
        engine=engine,
        service_time=service_time,
    )


def mixed_grid(
    *,
    seeds: tuple[int, ...] = (0, 1),
    engine: str = "fast",
) -> SweepSpec:
    """A cross-family grid exercising diverse shapes, trees and traffic."""
    return SweepSpec(
        name="mixed",
        graphs=(
            GraphSpec.of("complete", n=24),
            GraphSpec.of("grid", rows=5, cols=5),
            GraphSpec.of("hypercube", dim=5),
            GraphSpec.of("gnp", n=24, p=0.3),
        ),
        trees=("bfs", "mst", "random"),
        schedules=(
            ScheduleSpec.of("one_shot"),
            ScheduleSpec.of("poisson", per_node=20, rate_per_node=0.5),
            ScheduleSpec.of("hotspot", per_node=20, rate_per_node=0.5),
        ),
        seeds=tuple(seeds),
        engine=engine,
    )


def smoke_grid(
    *, seeds: tuple[int, ...] = (0, 1), engine: str = "fast"
) -> SweepSpec:
    """Tiny grid for CI smoke runs (4 cells at defaults, sub-second)."""
    return SweepSpec(
        name="smoke",
        graphs=(GraphSpec.of("complete", n=8), GraphSpec.of("path", n=9)),
        trees=("bfs",),
        schedules=(ScheduleSpec.of("poisson", per_node=5, rate_per_node=0.5),),
        seeds=tuple(seeds),
        engine=engine,
    )
