"""Command-line interface: regenerate any paper figure from the terminal.

Examples::

    repro-arrow fig10 --procs 2,4,8,16,32 --requests-per-proc 200
    repro-arrow fig11
    repro-arrow fig9 --variant layered -D 64 -k 4
    repro-arrow thm319 --diameters 8,16,32,64
    repro-arrow thm41
    repro-arrow ablations
    repro-arrow all --json results.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments import (
    format_kv,
    run_directory_comparison,
    run_one_shot_analysis,
    format_table,
    plot,
    run_async_comparison,
    run_competitive_sweep,
    run_fig9,
    run_fig10,
    run_fig11,
    run_protocol_ablation,
    run_sequential_experiment,
    run_service_time_ablation,
    run_theorem41_sweep,
    run_theorem42_sweep,
    run_tree_ablation,
)

__all__ = ["main"]


def _int_list(text: str) -> list[int]:
    return [int(x) for x in text.split(",") if x]


def _shard(text: str) -> tuple[int, int]:
    """Parse and range-check ``I/M`` (shard index/count) for ``--shard``."""
    try:
        index, count = (int(part) for part in text.split("/"))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected I/M (e.g. 0/4), got {text!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise argparse.ArgumentTypeError(
            f"shard index must satisfy 0 <= I < M, got {text!r}"
        )
    return index, count


def _orchestrator_progress():
    """Build a stderr progress printer for orchestrated sweeps.

    Shard lifecycle transitions (launch / retry / failure / completion)
    always print; per-shard row-count progress is throttled to one line
    per shard per second so long runs stream useful status without
    flooding terminals or CI logs.
    """
    last_line: dict[int, tuple[float, int]] = {}

    def emit(event: dict) -> None:
        kind = event["event"]
        if kind == "launch":
            print(
                f"[shard {event['shard']}] attempt {event['attempt']} "
                f"started ({event['total']} cells)",
                file=sys.stderr,
            )
        elif kind == "retry":
            print(
                f"[shard {event['shard']}] {event['reason']}; retry "
                f"{event['retries_used']}/{event['max_retries']} "
                "(resuming from its shard file)",
                file=sys.stderr,
            )
        elif kind == "failed":
            print(
                f"[shard {event['shard']}] FAILED, retry budget exhausted: "
                f"{event['reason']}",
                file=sys.stderr,
            )
        elif kind == "shard-done":
            print(
                f"[shard {event['shard']}] done: "
                f"{event['done']}/{event['total']} cells "
                f"in {event['attempts']} attempt(s)",
                file=sys.stderr,
            )
        elif kind == "progress":
            now = time.monotonic()
            for s in event["shards"]:
                if s["status"] != "running":
                    continue
                then, done = last_line.get(s["shard"], (0.0, -1))
                if s["done"] != done and now - then >= 1.0:
                    print(
                        f"[shard {s['shard']}] {s['done']}/{s['total']} "
                        f"cells ({s['rate']:.1f} rows/s)",
                        file=sys.stderr,
                    )
                    last_line[s["shard"]] = (now, s["done"])

    return emit


def _emit(results, args) -> None:
    docs = []
    for r in results:
        print(format_table(r))
        print()
        print(plot(r))
        print()
        docs.append(json.loads(r.to_json()))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(docs, fh, indent=2)
        print(f"wrote {args.json}")
    if getattr(args, "store", None):
        from repro.results import ResultsStore

        store = ResultsStore(args.store)
        for r in results:
            path = store.put_experiment(r)
            print(f"archived {r.experiment_id} -> {path}")


def _add_grid_arguments(parser) -> None:
    """Grid-identity flags shared by ``sweep`` and ``results ingest``.

    Everything here feeds :func:`_build_grid_spec`, so the two commands
    cannot drift apart: the spec an ingest hashes is built by the same
    code path as the spec the sweep ran.
    """
    parser.add_argument(
        "--grid",
        choices=["fig10", "fig11", "mixed", "smoke", "directory"],
        default="smoke",
        help="named grid preset (fig10 = closed-loop arrow vs centralized, "
             "directory = §5.1 arrow vs home-based directory)",
    )
    parser.add_argument("--sizes", type=_int_list, default=None,
                        help="system sizes (fig10/fig11/directory grids only)")
    parser.add_argument("--per-node", type=int, default=None,
                        help="requests per node (fig11 grid only)")
    parser.add_argument("--requests-per-proc", type=int, default=None,
                        help="closed-loop requests per processor "
                             "(fig10 grid only)")
    parser.add_argument("--think-time", type=float, default=None,
                        help="closed-loop think time (fig10 grid only)")
    parser.add_argument("--acquisitions-per-proc", type=int, default=None,
                        help="directory acquisitions per processor "
                             "(directory grid only)")
    parser.add_argument("--seeds", type=_int_list, default=None)
    parser.add_argument("--faults", action="append", default=None,
                        metavar="PLAN",
                        help="fault plan applied to every cell: "
                             "comma-separated crash@T:NODE, link@U-V:T0-T1, "
                             "loss:RATE terms (open-loop grids only; repeat "
                             "the flag to sweep a fault axis of several "
                             "plans)")
    parser.add_argument("--engine", choices=["fast", "message", "batch"],
                        default="fast")


def _build_grid_spec(args, error):
    """Expand the preset + overrides into a SweepSpec (or ``error`` out)."""
    from repro.sweep import (
        directory_grid,
        fig10_grid,
        fig11_grid,
        mixed_grid,
        smoke_grid,
    )

    if args.grid not in ("fig10", "fig11", "directory") and args.sizes:
        error("--sizes only applies to --grid fig10/fig11/directory")
    if args.grid != "fig11" and args.per_node is not None:
        error("--per-node only applies to --grid fig11")
    if args.grid != "fig10" and (
        args.requests_per_proc is not None or args.think_time is not None
    ):
        error("--requests-per-proc/--think-time only apply to --grid fig10")
    if args.grid != "directory" and args.acquisitions_per_proc is not None:
        error("--acquisitions-per-proc only applies to --grid directory")
    # Omitted flags fall through to the preset's own defaults.
    kwargs: dict = {"engine": args.engine}
    if args.seeds:
        kwargs["seeds"] = tuple(args.seeds)
    if args.sizes:
        kwargs["sizes"] = tuple(args.sizes)
    if args.grid == "fig10":
        if args.requests_per_proc is not None:
            kwargs["requests_per_proc"] = args.requests_per_proc
        if args.think_time is not None:
            kwargs["think_time"] = args.think_time
        spec = fig10_grid(**kwargs)
    elif args.grid == "fig11":
        if args.per_node is not None:
            kwargs["per_node"] = args.per_node
        spec = fig11_grid(**kwargs)
    elif args.grid == "directory":
        if args.acquisitions_per_proc is not None:
            kwargs["acquisitions_per_proc"] = args.acquisitions_per_proc
        spec = directory_grid(**kwargs)
    elif args.grid == "mixed":
        spec = mixed_grid(**kwargs)
    else:
        spec = smoke_grid(**kwargs)
    if args.faults or getattr(args, "monitors", False):
        import dataclasses

        from repro.errors import SweepError

        try:
            spec = dataclasses.replace(
                spec,
                **({"faults": tuple(args.faults)} if args.faults else {}),
                **(
                    {"monitors": True}
                    if getattr(args, "monitors", False)
                    else {}
                ),
            )
        except SweepError as exc:
            error(str(exc))
    return spec


def _compare_side(store, key_or_path: str):
    """A compare operand is a JSONL path when it names a file, else a key."""
    import os

    from repro.sweep import persist

    if os.path.isfile(key_or_path):
        return persist.iter_rows(key_or_path)
    return store.rows(key_or_path)


def _results_command(args, ingest_error, compare_error) -> int:
    """Dispatch the ``results`` subcommand group; returns an exit code."""
    from repro.errors import ReproError
    from repro.results import ResultsStore, compare_rows, figure_from_rows
    from repro.results.compare import bench_doc, compare_bench

    store = ResultsStore(args.store)
    try:
        if args.results_cmd == "ingest":
            spec = _build_grid_spec(args, ingest_error)
            for path in args.jsonl:
                print(store.ingest(spec, path).summary())
        elif args.results_cmd == "list":
            runs = store.list_runs()
            for m in runs:
                state = (
                    "complete"
                    if m.get("complete")
                    else f"partial {m.get('ingested')}/{m.get('cells')}"
                )
                print(f"run         {m['spec_hash'][:12]}  "
                      f"{m.get('name', '?'):<12}{state}")
            for eid in store.list_experiments():
                print(f"experiment  {eid}")
            if not runs and not store.list_experiments():
                print(f"(empty store: {store.root})")
        elif args.results_cmd in ("table", "plot"):
            manifest = store.manifest(args.run)
            result = figure_from_rows(
                manifest["name"], store.rows(args.run), metric=args.metric
            )
            if args.results_cmd == "plot":
                print(plot(result))
            else:
                print(format_table(result))
                if args.percentiles:
                    sketch = store.grid_sketch(args.run)
                    print()
                    if sketch.count:
                        print(
                            format_kv(
                                {
                                    "requests": sketch.count,
                                    "p50": round(sketch.quantile(50), 6),
                                    "p90": round(sketch.quantile(90), 6),
                                    "p99": round(sketch.quantile(99), 6),
                                    "max": round(sketch.max_value(), 6),
                                },
                                title="grid latency percentiles "
                                      "(merged sketch, histogram-backed)",
                            )
                        )
                    else:
                        print("(no latency histograms stored for this run)")
        elif args.results_cmd == "compare":
            bench_mode = args.baseline is not None or args.fresh is not None
            row_mode = args.a is not None or args.b is not None
            if bench_mode and row_mode:
                compare_error("--baseline/--fresh (bench mode) and --a/--b "
                              "(row mode) are mutually exclusive")
            if bench_mode:
                if args.baseline is None or args.fresh is None:
                    compare_error("bench mode needs both --baseline and "
                                  "--fresh")
                with open(args.baseline, "r", encoding="utf-8") as fh:
                    baseline = json.load(fh)
                with open(args.fresh, "r", encoding="utf-8") as fh:
                    fresh = json.load(fh)
                report, regressions = compare_bench(
                    baseline, fresh, args.tolerance
                )
                for line in report:
                    print(line)
                if args.out:
                    doc = bench_doc(
                        baseline, fresh, args.tolerance, report, regressions
                    )
                    with open(args.out, "w", encoding="utf-8") as fh:
                        json.dump(doc, fh, indent=2, sort_keys=True)
                        fh.write("\n")
                    print(f"wrote {args.out}")
                if regressions:
                    for line in regressions:
                        print(line, file=sys.stderr)
                    print(
                        f"results compare FAILED: {len(regressions)} "
                        f"regression(s) beyond tolerance {args.tolerance}",
                        file=sys.stderr,
                    )
                    return 1
                print(f"results compare OK: {len(report)} scenario line(s), "
                      "no regressions")
            else:
                if args.a is None or args.b is None:
                    compare_error("row mode needs both --a and --b (store "
                                  "run keys or sweep JSONL paths)")
                cmp = compare_rows(
                    _compare_side(store, args.a),
                    _compare_side(store, args.b),
                    max_delta_pct=args.max_delta_pct,
                )
                for line in cmp.report_lines():
                    print(line)
                if args.out:
                    with open(args.out, "w", encoding="utf-8") as fh:
                        json.dump(cmp.to_doc(), fh, indent=2, sort_keys=True)
                        fh.write("\n")
                    print(f"wrote {args.out}")
                if not cmp.ok:
                    for line in cmp.problems + cmp.exceeding:
                        print(line, file=sys.stderr)
                    print(
                        f"results compare FAILED: {len(cmp.problems)} "
                        f"problem(s), {len(cmp.exceeding)} delta(s) beyond "
                        "tolerance",
                        file=sys.stderr,
                    )
                    return 1
                print("results compare OK")
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"results {args.results_cmd} FAILED: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-arrow`` console script."""
    top = argparse.ArgumentParser(
        prog="repro-arrow",
        description="Reproduce the arrow-protocol paper's figures and theorems",
    )
    top.add_argument("--json", help="also write results to this JSON file")
    top.add_argument("--store", default=None, metavar="DIR",
                     help="also archive each experiment's canonical record "
                          "into this results store (see 'results' commands)")
    sub = top.add_subparsers(dest="cmd", required=True)

    p10 = sub.add_parser("fig10", help="arrow vs centralized closed-loop latency")
    p10.add_argument("--procs", type=_int_list, default=None)
    p10.add_argument("--requests-per-proc", type=int, default=300)
    p10.add_argument("--service-time", type=float, default=0.1)
    p10.add_argument("--think-time", type=float, default=0.1)
    p10.add_argument("--seed", type=int, default=0)
    p10.add_argument("--engine", choices=["fast", "message", "batch"],
                     default="fast",
                     help="closed-loop engine (bit-identical; fast is ~5x "
                          "over message, batch adds vectorized RNG draws)")
    p10.add_argument("--workers", type=int, default=1)

    p11 = sub.add_parser("fig11", help="arrow hops per operation")
    p11.add_argument("--procs", type=_int_list, default=None)
    p11.add_argument("--requests-per-proc", type=int, default=300)
    p11.add_argument("--seed", type=int, default=0)
    p11.add_argument("--engine", choices=["fast", "message", "batch", "open"],
                     default="fast",
                     help="closed-loop engine (fast/message/batch, "
                          "bit-identical) or the open-loop steady-state "
                          "analogue")
    p11.add_argument("--workers", type=int, default=1)

    p9 = sub.add_parser("fig9", help="lower-bound instance picture + costs")
    p9.add_argument("-D", type=int, default=64)
    p9.add_argument("-k", type=int, default=4)
    p9.add_argument("--variant", choices=["literal", "layered"], default="layered")
    p9.add_argument("--engine", choices=["fast", "message", "batch"], default=None,
                    help="also simulate the instance on this arrow engine")

    p319 = sub.add_parser("thm319", help="competitive ratio sweep (sync)")
    p319.add_argument("--diameters", type=_int_list, default=None)
    p319.add_argument("--requests", type=int, default=60)
    p319.add_argument("--engine", choices=["message", "fast", "batch"],
                      default="message")
    p319.add_argument("--workers", type=int, default=1)

    p321 = sub.add_parser("thm321", help="asynchronous comparison")
    p321.add_argument("--diameters", type=_int_list, default=None)
    p321.add_argument("--requests", type=int, default=60)
    p321.add_argument("--engine", choices=["message", "fast", "batch"],
                      default="message")
    p321.add_argument("--workers", type=int, default=1)

    p41 = sub.add_parser("thm41", help="lower-bound ratio growth sweep")
    p41.add_argument("--engine", choices=["fast", "message", "batch"], default=None,
                     help="also report the simulated execution's ratio")
    p41.add_argument("--workers", type=int, default=1)
    p42 = sub.add_parser("thm42", help="lower bound vs stretch")
    p42.add_argument("--stretches", type=_int_list, default=None)
    p42.add_argument("--engine", choices=["fast", "message", "batch"], default=None)
    p42.add_argument("--workers", type=int, default=1)

    pdir = sub.add_parser("directory", help="arrow vs home-based directory (5.1)")
    pdir.add_argument("--procs", type=_int_list, default=None)
    pdir.add_argument("--acquisitions-per-proc", type=int, default=50)
    pdir.add_argument("--workers", type=int, default=1)

    sub.add_parser("oneshot", help="one-shot concurrent case ([10])")
    sub.add_parser("sequential", help="sequential-regime baseline checks")
    sub.add_parser("ablations", help="tree/protocol/service-time ablations")
    sub.add_parser("all", help="run every experiment at default scale")

    psw = sub.add_parser(
        "sweep", help="declarative parameter sweep over graphs/trees/schedules"
    )
    _add_grid_arguments(psw)
    psw.add_argument("--monitors", action="store_true",
                     help="attach runtime protocol monitors to every cell; "
                          "rows are unchanged, an invariant violation "
                          "aborts the sweep")
    psw.add_argument("--workers", type=int, default=1)
    psw.add_argument("--out", default="sweep.jsonl", help="JSONL output path")
    psw.add_argument("--no-resume", action="store_true",
                     help="discard existing rows instead of resuming")
    psw.add_argument("--shard", type=_shard, default=None, metavar="I/M",
                     help="run only shard I of M (cells with index %% M == I) "
                          "into a per-shard file derived from --out; "
                          "reassemble with sweep-merge")
    psw.add_argument("--shards", type=int, default=None, metavar="M",
                     help="orchestrate the whole grid locally: partition into "
                          "M round-robin shards, run them in a supervised "
                          "pool of --workers concurrent shard processes, "
                          "retry killed/failed shards from their resumable "
                          "files, then merge into --out (exit 3: a shard "
                          "exhausted its retries; exit 4: merge verification "
                          "failed — distinct from argparse's usage-error "
                          "exit 2, so rerun-on-shard-failure wrappers can't "
                          "loop on a typo)")
    psw.add_argument("--max-retries", type=int, default=2,
                     help="per-shard retry budget for --shards runs "
                          "(default: 2)")

    psv = sub.add_parser(
        "sweep-verify",
        help="assert two sweep JSONL files carry identical rows "
             "(the engines' bit-identity contract, as a CI primitive)",
    )
    psv.add_argument("--a", required=True, help="first JSONL file")
    psv.add_argument("--b", required=True, help="second JSONL file")
    psv.add_argument("--ignore", default="engine",
                     help="comma-separated row columns excluded from the "
                          "comparison (default: engine)")
    psv.add_argument("--expect-cells", type=int, default=None,
                     help="also require exactly this many rows per file")

    psm = sub.add_parser(
        "sweep-merge",
        help="merge sharded sweep JSONL files back into grid order, "
             "verifying completeness and row-shape invariants",
    )
    psm.add_argument("shards", nargs="+", help="per-shard JSONL files")
    psm.add_argument("--out", required=True, help="merged JSONL output path")
    psm.add_argument("--expect-cells", type=int, default=None,
                     help="require exactly this many rows across all shards")

    pres = sub.add_parser(
        "results",
        help="content-addressed results store: ingest sweep JSONL, "
             "regenerate canonical tables/plots, compare runs",
    )
    rsub = pres.add_subparsers(dest="results_cmd", required=True)

    pri = rsub.add_parser(
        "ingest",
        help="ingest merged sweep JSONL into the store under the grid's "
             "spec hash (idempotent; partial grids fill in on re-ingest)",
    )
    pri.add_argument("jsonl", nargs="+", help="sweep JSONL file(s) to ingest")
    pri.add_argument("--store", default="results", metavar="DIR",
                     help="store root directory (default: results)")
    _add_grid_arguments(pri)

    prl = rsub.add_parser("list", help="list stored runs and experiments")
    prl.add_argument("--store", default="results", metavar="DIR")

    prt = rsub.add_parser(
        "table",
        help="render the canonical table for a stored run (no simulation)",
    )
    prt.add_argument("run", help="spec hash, unique hash prefix, or grid name")
    prt.add_argument("--store", default="results", metavar="DIR")
    prt.add_argument("--metric", default=None,
                     help="row column to tabulate (default: per-figure)")
    prt.add_argument("--percentiles", action="store_true",
                     help="append grid-level latency percentiles from the "
                          "merged quantile sketch")

    prp = rsub.add_parser(
        "plot",
        help="render the canonical ASCII plot for a stored run",
    )
    prp.add_argument("run", help="spec hash, unique hash prefix, or grid name")
    prp.add_argument("--store", default="results", metavar="DIR")
    prp.add_argument("--metric", default=None,
                     help="row column to plot (default: per-figure)")

    prc = rsub.add_parser(
        "compare",
        help="diff two runs per cell (row mode) or gate a benchmark "
             "trajectory (bench mode, subsuming check_regression)",
    )
    prc.add_argument("--store", default="results", metavar="DIR")
    prc.add_argument("--a", default=None,
                     help="row mode: baseline run key or JSONL path")
    prc.add_argument("--b", default=None,
                     help="row mode: fresh run key or JSONL path")
    prc.add_argument("--max-delta-pct", type=float, default=None,
                     help="row mode: fail when any per-cell numeric delta "
                          "exceeds this percentage")
    prc.add_argument("--baseline", default=None,
                     help="bench mode: baseline BENCH json (scenario -> "
                          "{'speedup': ...})")
    prc.add_argument("--fresh", default=None,
                     help="bench mode: fresh BENCH json")
    prc.add_argument("--tolerance", type=float, default=0.25,
                     help="bench mode: allowed fractional speedup drop "
                          "(default: 0.25)")
    prc.add_argument("--out", default=None, metavar="PATH",
                     help="also write the canonical BENCH_results.json "
                          "trajectory document here")

    args = top.parse_args(argv)

    if args.cmd == "fig10":
        _emit(
            [
                run_fig10(
                    args.procs,
                    requests_per_proc=args.requests_per_proc,
                    service_time=args.service_time,
                    think_time=args.think_time,
                    seed=args.seed,
                    engine=args.engine,
                    workers=args.workers,
                )
            ],
            args,
        )
    elif args.cmd == "fig11":
        _emit(
            [
                run_fig11(
                    args.procs,
                    requests_per_proc=args.requests_per_proc,
                    seed=args.seed,
                    engine=args.engine,
                    workers=args.workers,
                )
            ],
            args,
        )
    elif args.cmd == "fig9":
        rep = run_fig9(args.D, args.k, variant=args.variant, engine=args.engine)
        print(rep.picture)
        print()
        print(
            format_kv(
                {
                    "variant": rep.variant,
                    "D": rep.D,
                    "k": rep.k,
                    "requests": rep.num_requests,
                    "arrow cost": rep.arrow_cost,
                    "sweep target (k sweeps)": rep.sweep_target,
                    "opt upper bound": rep.opt_upper,
                    "opt lower bound": rep.opt_lower,
                    "comb Manhattan weight": rep.comb_weight,
                    "measured ratio": round(rep.ratio, 3),
                    **(
                        {f"simulated cost ({args.engine})": rep.sim_cost}
                        if rep.sim_cost is not None
                        else {}
                    ),
                },
                title="fig9",
            )
        )
        if args.store:
            from repro.results import ResultsStore, fig9_result

            path = ResultsStore(args.store).put_experiment(fig9_result(rep))
            print(f"archived fig9 -> {path}")
    elif args.cmd == "thm319":
        _emit(
            [
                run_competitive_sweep(
                    args.diameters,
                    requests=args.requests,
                    engine=args.engine,
                    workers=args.workers,
                )
            ],
            args,
        )
    elif args.cmd == "thm321":
        _emit(
            [
                run_async_comparison(
                    args.diameters,
                    requests=args.requests,
                    engine=args.engine,
                    workers=args.workers,
                )
            ],
            args,
        )
    elif args.cmd == "thm41":
        _emit([run_theorem41_sweep(engine=args.engine, workers=args.workers)], args)
    elif args.cmd == "thm42":
        _emit(
            [run_theorem42_sweep(args.stretches, engine=args.engine, workers=args.workers)],
            args,
        )
    elif args.cmd == "directory":
        _emit(
            [
                run_directory_comparison(
                    args.procs,
                    acquisitions_per_proc=args.acquisitions_per_proc,
                    workers=args.workers,
                )
            ],
            args,
        )
    elif args.cmd == "oneshot":
        _emit([run_one_shot_analysis()], args)
    elif args.cmd == "sequential":
        _emit([run_sequential_experiment()], args)
    elif args.cmd == "ablations":
        _emit(
            [run_tree_ablation(), run_protocol_ablation(), run_service_time_ablation()],
            args,
        )
    elif args.cmd == "sweep":
        from repro.sweep import run_sweep, shard_path

        spec = _build_grid_spec(args, psw.error)
        if args.shards is not None:
            if args.shard is not None:
                psw.error("--shard and --shards are mutually exclusive "
                          "(--shard runs one shard by hand, --shards "
                          "orchestrates all of them)")
            if args.shards < 1:
                psw.error("--shards must be >= 1")
            if args.workers < 1:
                psw.error("--workers must be >= 1")
            if args.max_retries < 0:
                psw.error("--max-retries must be >= 0")
            from repro.errors import (
                MergeError,
                OrchestratorError,
                ShardFailedError,
            )
            from repro.sweep.orchestrator import orchestrate_sweep

            try:
                summary = orchestrate_sweep(
                    spec,
                    args.out,
                    shards=args.shards,
                    workers=args.workers,
                    max_retries=args.max_retries,
                    resume=not args.no_resume,
                    progress=_orchestrator_progress(),
                )
            except ShardFailedError as exc:
                for index, log in sorted(exc.failures.items()):
                    for entry in log:
                        print(f"shard {index}: {entry}", file=sys.stderr)
                print(f"sweep --shards FAILED: {exc}", file=sys.stderr)
                return 3
            except MergeError as exc:
                for p in exc.problems:
                    print(p, file=sys.stderr)
                print(f"sweep --shards merge FAILED: {exc}", file=sys.stderr)
                return 4
            except OrchestratorError as exc:
                # Driver misuse (e.g. a malformed REPRO_ORCH_FAULT):
                # reason on stderr, never an unhandled traceback.
                print(f"sweep --shards FAILED: {exc}", file=sys.stderr)
                return 1
            print(
                f"sweep {summary['spec']}: {summary['rows']} rows merged "
                f"from {summary['shards']} shard(s), "
                f"{summary['retries_used']} retr"
                f"{'y' if summary['retries_used'] == 1 else 'ies'} used "
                f"-> {summary['path']}"
            )
            return 0
        out = args.out
        if args.shard is not None:
            out = shard_path(args.out, *args.shard)
        summary = run_sweep(
            spec, out, workers=args.workers, resume=not args.no_resume,
            shard=args.shard,
        )
        shard_note = (
            f" (shard {summary['shard']})" if summary["shard"] is not None else ""
        )
        print(
            f"sweep {summary['spec']}{shard_note}: {summary['written']} written, "
            f"{summary['skipped']} skipped of {summary['cells']} cells "
            f"-> {summary['path']}"
        )
    elif args.cmd == "sweep-verify":
        from repro.errors import ReproError
        from repro.sweep.persist import diff_rows

        try:
            rows, problems = diff_rows(
                args.a,
                args.b,
                ignore=tuple(x.strip() for x in args.ignore.split(",") if x.strip()),
                expect_cells=args.expect_cells,
            )
        except (ReproError, OSError) as exc:
            print(f"sweep-verify FAILED: {exc}", file=sys.stderr)
            return 1
        if problems:
            for p in problems:
                print(p, file=sys.stderr)
            print(
                f"sweep-verify FAILED: {len(problems)} problem(s) between "
                f"{args.a} and {args.b}",
                file=sys.stderr,
            )
            return 1
        print(f"sweep-verify OK: {rows} rows identical across {args.a} and {args.b}")
    elif args.cmd == "sweep-merge":
        from repro.errors import ReproError
        from repro.sweep.persist import merge_shards

        if args.expect_cells is None:
            print(
                "sweep-merge: warning: without --expect-cells a shard that "
                "lost only trailing cells is undetectable; pass the grid's "
                "cell count to certify completeness",
                file=sys.stderr,
            )
        try:
            rows, problems = merge_shards(
                args.shards, args.out, expect_cells=args.expect_cells
            )
        except (ReproError, OSError) as exc:
            # Unreadable shards / unwritable output must fail with the
            # offending path and reason, never an unhandled traceback.
            print(f"sweep-merge FAILED: {exc}", file=sys.stderr)
            return 1
        if problems:
            for p in problems:
                print(p, file=sys.stderr)
            print(
                f"sweep-merge FAILED: {len(problems)} problem(s) across "
                f"{len(args.shards)} shard(s); {args.out} not written",
                file=sys.stderr,
            )
            return 1
        print(
            f"sweep-merge OK: {rows} rows from {len(args.shards)} shard(s) "
            f"-> {args.out}"
        )
    elif args.cmd == "results":
        return _results_command(args, pri.error, prc.error)
    elif args.cmd == "all":
        _emit(
            [
                run_fig10(),
                run_fig11(),
                run_directory_comparison(),
                run_one_shot_analysis(),
                run_competitive_sweep(),
                run_async_comparison(),
                run_theorem41_sweep(),
                run_theorem42_sweep(),
                run_sequential_experiment(),
                run_tree_ablation(),
                run_protocol_ablation(),
                run_service_time_ablation(),
            ],
            args,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
