"""FIFO channels over directed links.

The paper models links as point-to-point FIFO: messages from ``u`` to ``v``
are delivered in the order sent, even when the latency model draws a
smaller delay for a later message.  :class:`FifoChannel` enforces this by
clamping each delivery time to be no earlier than the previous delivery on
the same directed link; simultaneous deliveries then fire in send order
because the event queue is totally ordered by scheduling sequence.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.net.latency import LatencyModel
from repro.net.message import Message
from repro.sim.kernel import Simulator

__all__ = ["FifoChannel"]


class FifoChannel:
    """One directed FIFO link ``src -> dst``."""

    __slots__ = ("src", "dst", "weight", "_last_delivery")

    def __init__(self, src: int, dst: int, weight: float) -> None:
        self.src = src
        self.dst = dst
        self.weight = weight
        self._last_delivery = 0.0

    def transmit(
        self,
        sim: Simulator,
        model: LatencyModel,
        rng: np.random.Generator,
        msg: Message,
        deliver: Callable[[Message], None],
    ) -> float:
        """Schedule delivery of ``msg``; returns the delivery time.

        The delivery callback runs as its own atomic event at the computed
        time.  FIFO: the delivery time never precedes that of any message
        previously sent on this channel.
        """
        delay = model.sample(self.src, self.dst, self.weight, rng)
        at = max(sim.now + delay, self._last_delivery)
        self._last_delivery = at
        sim.call_at(at, deliver, msg)
        return at
