"""Message representation for the network substrate."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message"]

_msg_counter = itertools.count()


@dataclass(slots=True)
class Message:
    """A point-to-point message.

    ``kind`` tags the protocol message type (e.g. ``"queue"`` for arrow's
    find messages); ``payload`` carries protocol state.  ``hops`` counts the
    network links traversed so far by the *logical* operation this message
    belongs to — arrow forwards a queue message hop by hop, and the
    experiment in Fig. 11 reports exactly this count per operation.
    """

    kind: str
    src: int
    dst: int
    payload: dict[str, Any] = field(default_factory=dict)
    sent_at: float = 0.0
    hops: int = 0
    uid: int = field(default_factory=lambda: next(_msg_counter))
