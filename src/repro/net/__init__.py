"""Message-passing network substrate: FIFO links, latency models, nodes."""

from repro.net.channel import FifoChannel
from repro.net.latency import (
    ExponentialCappedLatency,
    LatencyModel,
    ScaledWeightLatency,
    UniformLatency,
    UnitLatency,
    WeightLatency,
)
from repro.net.message import Message
from repro.net.network import Network, NetworkStats
from repro.net.node import ProtocolNode

__all__ = [
    "FifoChannel",
    "ExponentialCappedLatency",
    "LatencyModel",
    "ScaledWeightLatency",
    "UniformLatency",
    "UnitLatency",
    "WeightLatency",
    "Message",
    "Network",
    "NetworkStats",
    "ProtocolNode",
]
