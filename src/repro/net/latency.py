"""Latency models for network links.

The paper analyses two communication models:

* **synchronous** (§3.1): every edge has unit latency and messages are
  processed immediately on arrival — :class:`UnitLatency`;
* **asynchronous** (§3.8): message delays are arbitrary but, for the
  analysis, scaled so the slowest message between adjacent nodes takes one
  time unit — :class:`UniformLatency` and :class:`ExponentialCappedLatency`
  produce such executions.

A latency model maps ``(src, dst, edge_weight, rng)`` to a delay sample.
Deterministic models ignore the RNG.  FIFO ordering per directed link is
enforced by the channel layer, not here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import NetworkError

__all__ = [
    "LatencyModel",
    "UnitLatency",
    "WeightLatency",
    "ScaledWeightLatency",
    "UniformLatency",
    "ExponentialCappedLatency",
]


class LatencyModel(ABC):
    """Strategy object producing per-message link delays."""

    #: True when the model can produce different delays for identical sends
    #: (used by tests to decide which invariants apply).
    stochastic: bool = False

    @abstractmethod
    def sample(
        self, src: int, dst: int, weight: float, rng: np.random.Generator
    ) -> float:
        """Delay for one message crossing link ``src -> dst``."""

    def max_delay(self, weight: float) -> float:
        """Upper bound on any sample for a link of the given weight.

        The asynchronous analysis (§3.8) normalises delays so this bound is
        the "one time unit"; tests use it to check executions respect it.
        """
        return weight


class UnitLatency(LatencyModel):
    """Synchronous model: every link takes exactly one time unit."""

    def sample(self, src, dst, weight, rng) -> float:  # noqa: D102
        return 1.0

    def max_delay(self, weight: float) -> float:  # noqa: D102
        return 1.0


class WeightLatency(LatencyModel):
    """Deterministic model: delay equals the link's weight."""

    def sample(self, src, dst, weight, rng) -> float:  # noqa: D102
        return weight


class ScaledWeightLatency(LatencyModel):
    """Deterministic model: delay is ``factor * weight``."""

    def __init__(self, factor: float) -> None:
        if factor <= 0:
            raise NetworkError(f"latency factor must be positive, got {factor}")
        self.factor = float(factor)

    def sample(self, src, dst, weight, rng) -> float:  # noqa: D102
        return self.factor * weight

    def max_delay(self, weight: float) -> float:  # noqa: D102
        return self.factor * weight


class UniformLatency(LatencyModel):
    """Asynchronous model: delay uniform in ``[lo, hi] * weight``.

    With ``hi = 1`` this realises the paper's normalised asynchronous
    executions: every message arrives within one (weighted) time unit.
    """

    stochastic = True

    def __init__(self, lo: float = 0.1, hi: float = 1.0) -> None:
        if not 0 < lo <= hi:
            raise NetworkError(f"need 0 < lo <= hi, got lo={lo}, hi={hi}")
        self.lo = float(lo)
        self.hi = float(hi)

    def sample(self, src, dst, weight, rng) -> float:  # noqa: D102
        return weight * rng.uniform(self.lo, self.hi)

    def max_delay(self, weight: float) -> float:  # noqa: D102
        return self.hi * weight


class ExponentialCappedLatency(LatencyModel):
    """Asynchronous model: exponential delays truncated to ``[floor, cap]``.

    Mimics heavy-ish tails (slow stragglers) while keeping the normalised
    "delay <= cap * weight" guarantee the asynchronous analysis assumes.
    """

    stochastic = True

    def __init__(self, mean: float = 0.3, cap: float = 1.0, floor: float = 0.01) -> None:
        if not 0 < floor <= cap:
            raise NetworkError(f"need 0 < floor <= cap, got {floor}, {cap}")
        if mean <= 0:
            raise NetworkError(f"mean must be positive, got {mean}")
        self.mean = float(mean)
        self.cap = float(cap)
        self.floor = float(floor)

    def sample(self, src, dst, weight, rng) -> float:  # noqa: D102
        raw = rng.exponential(self.mean)
        return weight * min(max(raw, self.floor), self.cap)

    def max_delay(self, weight: float) -> float:  # noqa: D102
        return self.cap * weight
