"""Protocol-node base class.

A protocol (arrow, centralized, Ivy, NTA) is written as a subclass of
:class:`ProtocolNode` with an ``on_message`` handler.  Handlers run
atomically inside the simulation kernel — this realises the paper's atomic
initiation and path-reversal step sequences without explicit locking.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.network import Network

__all__ = ["ProtocolNode"]


class ProtocolNode:
    """Base class for per-node protocol state machines."""

    __slots__ = ("net", "node_id")

    def __init__(self) -> None:
        self.net: "Network | None" = None
        self.node_id: int = -1

    def attach(self, net: "Network", node_id: int) -> None:
        """Bind this state machine to a network endpoint.

        Called by :meth:`Network.register`; subclasses may override to run
        initialisation that needs the node id (call ``super().attach`` first).
        """
        self.net = net
        self.node_id = node_id

    # -- to be overridden ------------------------------------------------
    def on_message(self, msg: Message) -> None:
        """Handle one delivered message (atomic)."""
        raise NotImplementedError

    # -- conveniences ----------------------------------------------------
    def send(self, kind: str, dst: int, **payload) -> Message:
        """Send a single-hop message over the link to a neighbour."""
        assert self.net is not None, "node not attached to a network"
        return self.net.send_link(self.node_id, dst, kind, payload)

    def send_routed(self, kind: str, dst: int, **payload) -> Message:
        """Send a message routed along a shortest path in ``G``."""
        assert self.net is not None, "node not attached to a network"
        return self.net.send_routed(self.node_id, dst, kind, payload)
