"""The network: graph + simulator + channels + protocol nodes.

:class:`Network` wires everything together:

* **single-hop sends** (:meth:`send_link`) traverse one FIFO channel — the
  only kind of send the arrow protocol itself performs (its messages hop
  between spanning-tree neighbours, which are physical links);
* **routed sends** (:meth:`send_routed`) deliver along a shortest path of
  ``G`` with the summed per-edge delays — used by the centralized baseline
  and by application-level replies (object hand-off, completion notices),
  which the paper routes over the network rather than the tree;
* an optional **per-node service time** serialises message handling at each
  node, modelling CPU occupancy.  The synchronous analysis model (§3.1)
  corresponds to ``service_time == 0`` ("a node can process up to deg(v)
  messages in a time step"); the Fig. 10 experiment's centralized bottleneck
  appears when the service time is positive.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import NetworkError
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import dijkstra
from repro.net.channel import FifoChannel
from repro.net.latency import LatencyModel, UnitLatency
from repro.net.message import Message
from repro.net.node import ProtocolNode
from repro.sim.kernel import Simulator
from repro.sim.rng import spawn_rng
from repro.sim.trace import Tracer

__all__ = ["Network", "NetworkStats"]


class NetworkStats:
    """Aggregate message counters for one run."""

    __slots__ = ("messages_sent", "link_messages", "routed_messages", "hops_total", "per_node_received")

    def __init__(self, n: int) -> None:
        self.messages_sent = 0
        self.link_messages = 0
        self.routed_messages = 0
        self.hops_total = 0
        self.per_node_received = [0] * n

    def as_dict(self) -> dict[str, Any]:
        """Counters as a plain dict (for experiment records)."""
        return {
            "messages_sent": self.messages_sent,
            "link_messages": self.link_messages,
            "routed_messages": self.routed_messages,
            "hops_total": self.hops_total,
        }


class Network:
    """Message-passing network over a graph, driven by a simulator."""

    def __init__(
        self,
        graph: Graph,
        sim: Simulator | None = None,
        latency: LatencyModel | None = None,
        *,
        seed: int = 0,
        service_time: float = 0.0,
        tracer: Tracer | None = None,
    ) -> None:
        if service_time < 0:
            raise NetworkError(f"service_time must be >= 0, got {service_time}")
        self.graph = graph
        self.sim = sim if sim is not None else Simulator()
        self.latency = latency if latency is not None else UnitLatency()
        self.rng: np.random.Generator = spawn_rng(seed, "network-latency")
        self.service_time = float(service_time)
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.stats = NetworkStats(graph.num_nodes)

        self._nodes: list[ProtocolNode | None] = [None] * graph.num_nodes
        self._channels: dict[tuple[int, int], FifoChannel] = {}
        # Sequential-service state: when the next message may begin service.
        self._busy_until: list[float] = [0.0] * graph.num_nodes
        # Routed-path cache: source -> (dist, pred) from Dijkstra.
        self._route_cache: dict[int, tuple[list[float], list[int]]] = {}

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def register(self, node_id: int, node: ProtocolNode) -> None:
        """Install the protocol state machine for one node."""
        if not 0 <= node_id < self.graph.num_nodes:
            raise NetworkError(f"node {node_id} out of range")
        self._nodes[node_id] = node
        node.attach(self, node_id)

    def register_all(self, nodes: list[ProtocolNode]) -> None:
        """Install one state machine per node, by index."""
        if len(nodes) != self.graph.num_nodes:
            raise NetworkError(
                f"need {self.graph.num_nodes} nodes, got {len(nodes)}"
            )
        for i, nd in enumerate(nodes):
            self.register(i, nd)

    def node(self, node_id: int) -> ProtocolNode:
        """The registered state machine at ``node_id``."""
        nd = self._nodes[node_id]
        if nd is None:
            raise NetworkError(f"no protocol node registered at {node_id}")
        return nd

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send_link(
        self, src: int, dst: int, kind: str, payload: dict[str, Any] | None = None
    ) -> Message:
        """Send one message over the physical link ``src -> dst`` (FIFO)."""
        if not self.graph.has_edge(src, dst):
            raise NetworkError(f"no link between {src} and {dst}")
        msg = Message(kind, src, dst, payload or {}, sent_at=self.sim.now)
        msg.hops = 1  # this link traversal
        ch = self._channel(src, dst)
        self.stats.messages_sent += 1
        self.stats.link_messages += 1
        self.stats.hops_total += 1
        self.tracer.emit(self.sim.now, "send", msg_kind=kind, src=src, dst=dst, uid=msg.uid)
        ch.transmit(self.sim, self.latency, self.rng, msg, self._arrive)
        return msg

    def send_routed(
        self, src: int, dst: int, kind: str, payload: dict[str, Any] | None = None
    ) -> Message:
        """Send a message along a shortest ``G``-path from ``src`` to ``dst``.

        Delivery happens once, after the summed per-edge delays; the hop
        count records the path length.  A message to self delivers after
        zero delay (still as its own atomic event).
        """
        msg = Message(kind, src, dst, payload or {}, sent_at=self.sim.now)
        self.stats.messages_sent += 1
        self.stats.routed_messages += 1
        self.tracer.emit(
            self.sim.now, "send_routed", msg_kind=kind, src=src, dst=dst, uid=msg.uid
        )
        if src == dst:
            self.sim.call_in(0.0, self._arrive, msg)
            return msg
        path = self._route(src, dst)
        delay = 0.0
        for a, b in zip(path, path[1:]):
            delay += self.latency.sample(a, b, self.graph.weight(a, b), self.rng)
        msg.hops = len(path) - 1
        self.stats.hops_total += msg.hops
        self.sim.call_in(delay, self._arrive, msg)
        return msg

    def forward(self, msg: Message, new_dst: int) -> Message:
        """Forward an in-flight logical operation one more link hop.

        Creates a fresh message that inherits the payload and accumulated
        hop count; arrow uses this as queue messages chase the sink.
        """
        nxt = Message(
            msg.kind,
            msg.dst,
            new_dst,
            msg.payload,
            sent_at=self.sim.now,
            hops=msg.hops,
        )
        if not self.graph.has_edge(nxt.src, nxt.dst):
            raise NetworkError(f"no link between {nxt.src} and {nxt.dst}")
        ch = self._channel(nxt.src, nxt.dst)
        self.stats.messages_sent += 1
        self.stats.link_messages += 1
        self.stats.hops_total += 1
        nxt.hops += 1
        self.tracer.emit(
            self.sim.now, "send", msg_kind=nxt.kind, src=nxt.src, dst=nxt.dst, uid=nxt.uid
        )
        ch.transmit(self.sim, self.latency, self.rng, nxt, self._arrive)
        return nxt

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def _arrive(self, msg: Message) -> None:
        """Message reached its destination; apply the service-time model."""
        if self.service_time == 0.0:
            self._dispatch(msg)
            return
        begin = max(self.sim.now, self._busy_until[msg.dst])
        finish = begin + self.service_time
        self._busy_until[msg.dst] = finish
        self.sim.call_at(finish, self._dispatch, msg)

    def _dispatch(self, msg: Message) -> None:
        node = self._nodes[msg.dst]
        if node is None:
            raise NetworkError(f"message {msg.kind} delivered to empty node {msg.dst}")
        self.stats.per_node_received[msg.dst] += 1
        self.tracer.emit(
            self.sim.now, "deliver", msg_kind=msg.kind, src=msg.src, dst=msg.dst, uid=msg.uid
        )
        node.on_message(msg)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _channel(self, src: int, dst: int) -> FifoChannel:
        key = (src, dst)
        ch = self._channels.get(key)
        if ch is None:
            ch = FifoChannel(src, dst, self.graph.weight(src, dst))
            self._channels[key] = ch
        return ch

    def _route(self, src: int, dst: int) -> list[int]:
        cached = self._route_cache.get(src)
        if cached is None:
            cached = dijkstra(self.graph, src)
            self._route_cache[src] = cached
        dist, pred = cached
        if dist[dst] == float("inf"):
            raise NetworkError(f"node {dst} unreachable from {src}")
        path = [dst]
        while path[-1] != src:
            path.append(pred[path[-1]])
        path.reverse()
        return path
