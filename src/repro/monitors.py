"""Declarative runtime monitors for arrow protocol traces.

The three arrow engines (message, fast, batch — open and closed loop)
accept an ``on_event`` hook and, when it is set, emit one call per
protocol transition.  :class:`ArrowMonitor` consumes that stream and
checks the Kuhn–Wattenhofer invariants *while the run executes*, by
maintaining an independent mirror of the spec's state machine
(``link`` pointers, ``last_rid`` tails, the set of in-flight ``queue``
messages) and validating every event against it:

``one-pointer-per-edge``
    every spanning-tree edge is crossed by exactly one arrow — a pointer
    crossing or an in-flight message traversing it;
``unique-sink``
    the number of sinks always equals the number of in-flight messages
    plus one (exactly one queue tail per quiescent region);
``token-conservation``
    no request is lost or duplicated: each issued rid completes at most
    once, every in-flight message is delivered (or explicitly dropped by
    an injected fault) exactly once;
``total-order``
    completions form a single successor chain — every predecessor has at
    most one successor, and the chain starts at the virtual root request
    (or, after a repair, at a repair epoch);
``completion-accounting``
    at the end of the run every issued request either completed or is
    accounted lost to an injected fault.

The protocol's transitions are atomic, so a *correct* engine preserves
the edge/sink invariants at every event boundary; the per-event checks
therefore validate each transition against the mirror (send target must
equal the mirrored pointer, delivery must match an in-flight message,
a completion's predecessor must match the mirrored tail), which is both
exact and O(1) per event.  ``deep=True`` additionally rescans the whole
configuration after every atomic transition — O(n) per event, meant for
the property-based fuzz harness's small instances.

Fault events (:mod:`repro.faults`) put the monitor in a *degraded* mode
in which the configuration invariants are suspended — a crash or a lost
message legitimately breaks them — until the engine's ``repair`` event,
at which point the monitor replays the same
:func:`repro.core.stabilize.stabilize_links` pass on its mirror,
cross-checks the engine's correction count and epoch bookkeeping, and
re-arms the invariants.

Violations raise :class:`repro.errors.MonitorViolation` (under
``SweepError``).  Monitors never touch the run's results: a monitored
fault-free sweep writes byte-identical JSONL to an unmonitored one.
"""

from __future__ import annotations

from repro.core.requests import ROOT_RID
from repro.core.stabilize import find_violations_links, stabilize_links
from repro.errors import MonitorViolation
from repro.spanning.tree import SpanningTree

__all__ = ["ArrowMonitor", "MONITOR_NAMES"]

#: The invariant checkers an :class:`ArrowMonitor` enforces, by the name
#: each reports in :class:`~repro.errors.MonitorViolation.monitor`.
MONITOR_NAMES = (
    "one-pointer-per-edge",
    "unique-sink",
    "token-conservation",
    "total-order",
    "completion-accounting",
)


class ArrowMonitor:
    """Streaming invariant checker for one arrow run.

    Attach by passing the instance as the engine's ``on_event``; call
    :meth:`finalize` after the run returns.  The event vocabulary (all
    times are simulation times):

    ``("init", rid, node, t)``
        request ``rid`` issued at ``node`` (atomic initiation);
    ``("send", rid, src, dst, t)``
        the request's ``queue`` message traverses tree link src→dst;
    ``("deliver", rid, node, src, t)``
        the message from ``src`` is handled at ``node`` (path reversal);
    ``("complete", rid, pred, node, t, hops)``
        ``rid`` queued behind ``pred``; ``node`` was the sink;
    ``("drop", rid, src, dst, t)``
        fault injection lost the message (``src == -1``: a request whose
        initiation fired on a crashed node);
    ``("crash", node, t)``
        ``node`` crashed: pointer reset to itself, arrivals dropped;
    ``("repair", corrections, epoch_rid, sink, t)``
        the engine ran the stabilisation pass at a quiescent point.
    """

    __slots__ = (
        "tree",
        "deep",
        "_n",
        "_parent",
        "_link",
        "_last_rid",
        "_sinks",
        "_in_flight",
        "_edge_msgs",
        "_expect_send",
        "_expect_complete",
        "_issued",
        "_completed",
        "_succ",
        "_lost",
        "_down",
        "_degraded",
        "_epochs",
        "_events",
        "violation_count",
    )

    def __init__(self, tree: SpanningTree, *, deep: bool = False) -> None:
        self.tree = tree
        self.deep = deep
        n = tree.num_nodes
        self._n = n
        self._parent = list(tree.parent)
        # Mirror of the initial configuration (ArrowNode.init_pointers).
        self._link = self._parent[:]
        self._link[tree.root] = tree.root
        self._last_rid = [None] * n
        self._last_rid[tree.root] = ROOT_RID
        self._sinks = 1
        #: rid -> (src, dst) of its in-flight queue message.
        self._in_flight: dict[int, tuple[int, int]] = {}
        #: child node -> in-flight messages crossing the edge to its parent.
        self._edge_msgs = [0] * n
        #: rid -> (src, dst) send the mirrored transition mandates next.
        self._expect_send: dict[int, tuple[int, int]] = {}
        #: rid -> (pred, node) completion the mirrored transition mandates.
        self._expect_complete: dict[int, tuple[int, int]] = {}
        self._issued: set[int] = set()
        self._completed: set[int] = set()
        self._succ: dict[int, int] = {}
        self._lost: set[int] = set()
        self._down: set[int] = set()
        self._degraded = False
        #: Epoch rids minted by repairs — legal chain heads besides ROOT_RID.
        self._epochs: set[int] = set()
        self._events = 0
        self.violation_count = 0

    # ------------------------------------------------------------------
    def _fail(self, monitor: str, at: float | None, msg: str) -> None:
        self.violation_count += 1
        raise MonitorViolation(
            f"[{monitor}] {msg}", monitor=monitor, at=at
        )

    def _edge_child(self, u: int, v: int, at: float) -> int:
        """The child endpoint of tree edge {u, v} (the edge's index)."""
        if self._parent[u] == v:
            return u
        if self._parent[v] == u:
            return v
        self._fail(
            "one-pointer-per-edge", at,
            f"message traverses non-tree edge ({u}, {v})",
        )
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    def __call__(self, kind: str, *args) -> None:
        self._events += 1
        if kind == "send":
            self._on_send(*args)
        elif kind == "deliver":
            self._on_deliver(*args)
        elif kind == "init":
            self._on_init(*args)
        elif kind == "complete":
            self._on_complete(*args)
        elif kind == "drop":
            self._on_drop(*args)
        elif kind == "crash":
            self._on_crash(*args)
        elif kind == "repair":
            self._on_repair(*args)
        else:
            self._fail("token-conservation", None, f"unknown event {kind!r}")
        if self.deep and not self._expect_send and not self._expect_complete:
            self._check_config(args[-1] if args else None)

    # ------------------------------------------------------------------
    def _on_init(self, rid: int, node: int, t: float) -> None:
        if rid in self._issued:
            self._fail(
                "token-conservation", t, f"request {rid} issued twice"
            )
        self._issued.add(rid)
        if node in self._down:
            self._fail(
                "token-conservation", t,
                f"request {rid} issued on crashed node {node}",
            )
        x = self._link[node]
        if x == node:
            # Local find: the mirror mandates an immediate completion
            # behind the node's previous request.
            self._expect_complete[rid] = (self._last_rid[node], node)
            self._last_rid[node] = rid
            return
        self._last_rid[node] = rid
        self._link[node] = node
        self._sinks += 1
        self._expect_send[rid] = (node, x)

    def _on_send(self, rid: int, src: int, dst: int, t: float) -> None:
        want = self._expect_send.pop(rid, None)
        if want is None:
            self._fail(
                "token-conservation", t,
                f"request {rid}: send {src}->{dst} without a pending "
                "initiation or forward",
            )
        if want != (src, dst):
            self._fail(
                "one-pointer-per-edge", t,
                f"request {rid}: sent {src}->{dst} but the mirrored "
                f"pointer mandates {want[0]}->{want[1]}",
            )
        self._in_flight[rid] = (src, dst)
        self._edge_msgs[self._edge_child(src, dst, t)] += 1

    def _on_deliver(self, rid: int, node: int, src: int, t: float) -> None:
        flight = self._in_flight.pop(rid, None)
        if flight is None:
            self._fail(
                "token-conservation", t,
                f"request {rid} delivered at {node} but not in flight",
            )
        if flight != (src, node):
            self._fail(
                "token-conservation", t,
                f"request {rid} delivered at {node} from {src} but was "
                f"in flight {flight[0]}->{flight[1]}",
            )
        if node in self._down:
            self._fail(
                "token-conservation", t,
                f"request {rid} delivered at crashed node {node}",
            )
        self._edge_msgs[self._edge_child(src, node, t)] -= 1
        # Path reversal on the mirror.
        x = self._link[node]
        self._link[node] = src
        if x == node:
            self._sinks -= 1
            self._expect_complete[rid] = (self._last_rid[node], node)
        else:
            self._expect_send[rid] = (node, x)

    def _on_complete(
        self, rid: int, pred: int, node: int, t: float, hops: int
    ) -> None:
        want = self._expect_complete.pop(rid, None)
        if want is None:
            self._fail(
                "token-conservation", t,
                f"request {rid} completed at {node} without reaching a sink",
            )
        if rid in self._completed:
            self._fail(
                "token-conservation", t, f"request {rid} completed twice"
            )
        want_pred, want_node = want
        if node != want_node:
            self._fail(
                "unique-sink", t,
                f"request {rid} completed at {node}, but the mirrored sink "
                f"is {want_node}",
            )
        if want_pred is None or pred != want_pred:
            self._fail(
                "total-order", t,
                f"request {rid} queued behind {pred}, but the sink's "
                f"mirrored tail is {want_pred}",
            )
        if pred in self._succ:
            self._fail(
                "total-order", t,
                f"requests {self._succ[pred]} and {rid} both queued "
                f"behind {pred}",
            )
        self._succ[pred] = rid
        self._completed.add(rid)

    # ------------------------------------------------------------------
    # fault events
    # ------------------------------------------------------------------
    def _on_drop(self, rid: int, src: int, dst: int, t: float) -> None:
        self._degraded = True
        if src < 0:
            # A request whose initiation fired on a crashed node: it was
            # never issued into the protocol, only accounted lost.
            if rid in self._issued:
                self._fail(
                    "token-conservation", t,
                    f"request {rid} dropped at initiation but already issued",
                )
            self._lost.add(rid)
            return
        flight = self._in_flight.pop(rid, None)
        if flight != (src, dst):
            self._fail(
                "token-conservation", t,
                f"request {rid}: drop of {src}->{dst} does not match the "
                f"in-flight message {flight}",
            )
        self._edge_msgs[self._edge_child(src, dst, t)] -= 1
        self._lost.add(rid)

    def _on_crash(self, node: int, t: float) -> None:
        self._degraded = True
        self._down.add(node)
        if self._link[node] != node:
            self._sinks += 1
        self._link[node] = node

    def _on_repair(
        self, corrections: int, epoch_rid: int, sink: int, t: float
    ) -> None:
        if self._in_flight:
            self._fail(
                "unique-sink", t,
                f"repair ran with {len(self._in_flight)} messages in flight "
                "(not a quiescent point)",
            )
        # Replay the one-pass stabilisation on the mirror and cross-check
        # the engine's bookkeeping against it.
        fixes = stabilize_links(self._link, self.tree)
        if fixes != corrections:
            self._fail(
                "one-pointer-per-edge", t,
                f"engine repair applied {corrections} corrections, the "
                f"mirror's stabilisation pass applied {fixes}",
            )
        bad = find_violations_links(self._link, self.tree)
        if bad:
            self._fail(
                "one-pointer-per-edge", t,
                f"configuration still illegal after repair: {bad[:3]}",
            )
        sinks = sum(1 for v in range(self._n) if self._link[v] == v)
        if sinks != 1 or self._link[sink] != sink:
            self._fail(
                "unique-sink", t,
                f"repair reported sink {sink}, mirror has {sinks} sink(s)",
            )
        self._sinks = 1
        self._last_rid[sink] = epoch_rid
        self._epochs.add(epoch_rid)
        self._down.clear()
        self._degraded = False

    # ------------------------------------------------------------------
    def _check_config(self, at: float | None) -> None:
        """Full O(n) rescan of the edge and sink invariants."""
        if self._degraded:
            return
        link = self._link
        parent = self._parent
        root = self.tree.root
        for v in range(self._n):
            if v == root:
                continue
            p = parent[v]
            c = int(link[v] == p) + int(link[p] == v) + self._edge_msgs[v]
            if c != 1:
                self._fail(
                    "one-pointer-per-edge", at,
                    f"edge ({v}, {p}) crossed by {c} arrows "
                    "(pointers + in-flight messages); exactly 1 required",
                )
        sinks = sum(1 for v in range(self._n) if link[v] == v)
        if sinks != self._sinks:
            self._fail(
                "unique-sink", at,
                f"sink bookkeeping drifted: counted {sinks}, "
                f"tracked {self._sinks}",
            )
        if sinks != len(self._in_flight) + 1:
            self._fail(
                "unique-sink", at,
                f"{sinks} sinks with {len(self._in_flight)} in-flight "
                "messages; sinks must equal in-flight + 1",
            )

    # ------------------------------------------------------------------
    def finalize(self, expected: int | None = None) -> None:
        """End-of-run checks; call after the engine returns.

        ``expected`` is the total number of requests the workload issued
        (schedule length / closed-loop budget); when given, every one of
        them must have completed or be accounted lost.
        """
        if self._expect_send or self._expect_complete:
            self._fail(
                "token-conservation", None,
                "run ended mid-transition: "
                f"{len(self._expect_send)} pending sends, "
                f"{len(self._expect_complete)} pending completions",
            )
        if self._in_flight:
            self._fail(
                "token-conservation", None,
                f"run ended with {len(self._in_flight)} messages in flight: "
                f"{sorted(self._in_flight)[:5]}",
            )
        overlap = self._completed & self._lost
        if overlap:
            self._fail(
                "completion-accounting", None,
                f"requests both completed and lost: {sorted(overlap)[:5]}",
            )
        if expected is not None:
            accounted = len(self._completed) + len(self._lost)
            if accounted != expected:
                self._fail(
                    "completion-accounting", None,
                    f"{expected} requests issued, {len(self._completed)} "
                    f"completed + {len(self._lost)} lost = {accounted}",
                )
        # Total order: chain heads must be the virtual root, a repair
        # epoch, or a lost request (whose successor legitimately dangles).
        heads = set(self._succ) - set(self._succ.values())
        allowed = {ROOT_RID} | self._epochs | self._lost
        bad_heads = heads - allowed
        if bad_heads:
            self._fail(
                "total-order", None,
                f"successor chains start at {sorted(bad_heads)[:5]}, which "
                "are neither the root request, a repair epoch, nor lost",
            )
        if not self._epochs and not self._lost and self._succ:
            # Fault-free: one chain from ROOT_RID covering every completion.
            chain = 0
            cur = ROOT_RID
            while cur in self._succ:
                cur = self._succ[cur]
                chain += 1
            if chain != len(self._completed):
                self._fail(
                    "total-order", None,
                    f"root chain covers {chain} of "
                    f"{len(self._completed)} completions",
                )
        if not self._degraded:
            self._check_config(None)

    # ------------------------------------------------------------------
    @property
    def events_seen(self) -> int:
        """Number of events consumed (diagnostics)."""
        return self._events

    @property
    def completed(self) -> frozenset[int]:
        """Rids whose completion the monitor observed."""
        return frozenset(self._completed)

    @property
    def lost(self) -> frozenset[int]:
        """Rids accounted lost to injected faults."""
        return frozenset(self._lost)
