"""Figure 9: the D=64, k=6 lower-bound instance.

Regenerates the instance picture and costs for both the literal
construction and the bitonic layered reconstruction; asserts the comb
bound keeps the optimal cost O(D) while arrow pays a growing factor more
(see the reproduction note in repro.lowerbound.layered).
"""

from repro.experiments.fig9 import run_fig9


def test_fig9_instance(benchmark):
    reports = benchmark.pedantic(
        lambda: (run_fig9(64, 6, variant="literal"), run_fig9(64, 3, variant="layered")),
        rounds=1,
        iterations=1,
    )
    literal, layered = reports
    print()
    for rep in reports:
        print(f"[{rep.variant}] D={rep.D} k={rep.k} |R|={rep.num_requests} "
              f"arrow={rep.arrow_cost:.0f} sweep-target={rep.sweep_target:.0f} "
              f"opt<={rep.opt_upper:.0f} ratio>={rep.ratio:.2f}")
    print()
    print(layered.picture)
    benchmark.extra_info["literal_ratio"] = literal.ratio
    benchmark.extra_info["layered_ratio"] = layered.ratio

    # Opt stays linear in D on both variants (comb bound / heuristic).
    assert literal.opt_upper <= 3 * 64
    assert layered.opt_upper <= 3 * 64
    # The comb spanning structure is O(D) as the proof requires.
    assert literal.comb_weight <= 6 * 64
    # Arrow pays a real factor more than opt on both.
    assert literal.ratio >= 1.3
    assert layered.ratio >= 2.0
