"""Theorem 4.1: lower-bound ratio growth with the diameter.

Regenerates the adversarial-instance sweep.  Shape targets: the bitonic
layered reconstruction's ratio grows with D and tracks the paper's
log D / log log D curve at simulable scales; the literal transcription
stays at its flat factor (documented reproduction note).
"""

from benchmarks.conftest import attach
from repro.experiments.lowerbound_sweep import run_theorem41_sweep

DIAMETERS = [16, 64, 256, 1024]


def test_theorem_41_growth(benchmark):
    result = benchmark.pedantic(
        lambda: run_theorem41_sweep(DIAMETERS), rounds=1, iterations=1
    )
    attach(benchmark, result)
    lit = result.series_by_name("literal construction").ys
    lay = result.series_by_name("bitonic layered").ys
    target = result.series_by_name("log D / log log D target").ys
    # The layered instances separate arrow from opt by a growing factor.
    assert lay[-1] > lay[0]
    assert lay[-1] >= 2.8
    # ... tracking the paper's k(D) target within a constant at these scales.
    assert all(l >= 0.7 * t for l, t in zip(lay, target))
    # Literal transcription: flat factor ~2 (the documented note).
    assert all(1.5 <= l <= 2.2 for l in lit)
