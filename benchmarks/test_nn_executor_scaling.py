"""Fast-executor performance: the O(|R|^2) NN path at experiment scales."""

from repro.analysis.nearest_neighbor import predict_arrow_run
from repro.lowerbound.layered import layered_instance
from repro.spanning import SpanningTree
from repro.workloads.schedules import random_times


def test_nn_executor_on_large_schedule(benchmark):
    tree = SpanningTree([max(0, i - 1) for i in range(256)], root=0)
    sched = random_times(256, 1500, horizon=500.0, seed=0)

    pred = benchmark(lambda: predict_arrow_run(tree, sched))
    assert len(pred.order) == 1500


def test_nn_executor_on_lowerbound_instance(benchmark):
    inst = layered_instance(1024, 5)

    pred = benchmark(lambda: predict_arrow_run(inst.tree, inst.schedule))
    assert len(pred.order) == len(inst.schedule)
