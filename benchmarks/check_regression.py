"""Benchmark regression gate: fresh speedups vs the committed baseline.

CI reruns ``benchmarks/test_batch_vs_fast_engine.py`` on every push,
which rewrites ``BENCH_batch.json`` with freshly measured batch-vs-fast
speedup ratios.  This script compares those fresh ratios against the
committed baseline copy: any scenario whose speedup fell below
``baseline * (1 - tolerance)`` — or that vanished from the fresh
results — fails the gate with a named report, so a perf regression in
the batch engine (or its dispatch path) turns the job red instead of
silently eroding the archived trajectory.  Improvements beyond the
tolerance are reported but never fail: the gate is one-sided, guarding
the floor.

The comparison itself lives in :func:`repro.results.compare.compare_bench`
(shared with ``repro-arrow results compare --baseline/--fresh``); this
script is the thin CI entry point with the historical flags and exit
codes.

Usage::

    python benchmarks/check_regression.py \
        --baseline bench_baseline.json --fresh BENCH_batch.json \
        --tolerance 0.25
"""

from __future__ import annotations

import argparse
import json
import os
import sys

try:
    from repro.results.compare import compare_bench
except ImportError:  # CI runs this script without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )
    from repro.results.compare import compare_bench


def compare(
    baseline: dict, fresh: dict, tolerance: float
) -> tuple[list[str], list[str]]:
    """Compare per-scenario speedups; return (report_lines, regressions)."""
    return compare_bench(baseline, fresh, tolerance)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a fresh benchmark speedup regresses past "
        "the tolerance below its committed baseline."
    )
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH JSON (the reference ratios)")
    parser.add_argument("--fresh", required=True,
                        help="freshly measured BENCH JSON from this run")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop below baseline "
                             "(default 0.25 = -25%%)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"--tolerance must be in [0, 1), got {args.tolerance}")
    try:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
        with open(args.fresh, encoding="utf-8") as fh:
            fresh = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench-gate FAILED: {exc}", file=sys.stderr)
        return 1
    report, regressions = compare(baseline, fresh, args.tolerance)
    for line in report:
        print(line)
    if regressions:
        for line in regressions:
            print(line, file=sys.stderr)
        print(
            f"bench-gate FAILED: {len(regressions)} scenario(s) regressed "
            f"more than {args.tolerance:.0%} below baseline",
            file=sys.stderr,
        )
        return 1
    print(f"bench-gate OK: {len(report)} scenario(s) within tolerance")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
