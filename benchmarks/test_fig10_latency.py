"""Figure 10: arrow vs centralized closed-loop total time.

Paper's claim: the centralized protocol slows down linearly with the
processor count; arrow is sub-linear and nearly flat at scale, winning
beyond a small crossover.
"""

from benchmarks.conftest import attach
from repro.experiments.fig10 import run_fig10

PROCS = [2, 4, 8, 16, 32, 48, 64, 76]


def test_fig10_shape(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig10(PROCS, requests_per_proc=200), rounds=1, iterations=1
    )
    attach(benchmark, result)
    arrow = result.series_by_name("arrow").ys
    central = result.series_by_name("centralized").ys
    # Centralized: super-linear overall growth 2 -> 76 processors.
    assert central[-1] > 2.5 * central[0]
    # Arrow: nearly flat (well under 2x across a 38x size increase).
    assert arrow[-1] < 2.0 * arrow[0]
    # Arrow wins at scale.
    assert arrow[-1] < 0.6 * central[-1]
    # At the smallest sizes the two are comparable (the paper's curves
    # start together): within 25% of each other.
    assert abs(arrow[0] - central[0]) < 0.25 * central[0]
