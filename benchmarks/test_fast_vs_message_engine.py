"""Fast engine vs message simulator: the ≥5× wall-clock contract.

Times both engines on the ``test_sim_throughput``-style workload scaled
to 10 000 requests (unit latency, complete graph, balanced binary
overlay), verifies the outputs are bit-identical, and records the
speedup ratio in ``benchmark.extra_info`` so the trajectory lands in the
archived BENCH_*.json alongside the paper-figure benchmarks.
"""

import os
import time

from repro.core.fast_arrow import run_arrow_fast
from repro.core.runner import run_arrow
from repro.graphs import complete_graph
from repro.spanning import balanced_binary_overlay
from repro.workloads.schedules import poisson

REQUESTS = 10_000


def _workload():
    g = complete_graph(64)
    tree = balanced_binary_overlay(g, 0)
    sched = poisson(64, REQUESTS, rate=50.0, seed=1)
    return g, tree, sched


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_fast_engine_speedup_on_10k_requests(benchmark):
    g, tree, sched = _workload()

    slow = run_arrow(g, tree, sched)
    fast = benchmark(lambda: run_arrow_fast(g, tree, sched))
    # Equivalence first: speed means nothing if the answers drift.
    assert fast.completions == slow.completions
    assert fast.makespan == slow.makespan
    assert fast.network_stats == slow.network_stats

    message_s = _best_of(lambda: run_arrow(g, tree, sched))
    fast_s = _best_of(lambda: run_arrow_fast(g, tree, sched))
    speedup = message_s / fast_s
    benchmark.extra_info["requests"] = REQUESTS
    benchmark.extra_info["message_engine_seconds"] = message_s
    benchmark.extra_info["fast_engine_seconds"] = fast_s
    benchmark.extra_info["speedup_vs_message"] = speedup
    print(
        f"\nmessage {message_s * 1e3:.1f} ms, fast {fast_s * 1e3:.1f} ms, "
        f"speedup {speedup:.1f}x over {REQUESTS} requests"
    )
    # Local runs clear 5x with ~2x headroom (typically ~10x); shared CI
    # runners get a relaxed floor so timing noise cannot fail the build
    # (the measured ratio is still archived in extra_info either way).
    floor = 2.0 if os.environ.get("REPRO_BENCH_RELAXED") else 5.0
    assert speedup >= floor, f"fast engine only {speedup:.1f}x faster"


def test_fast_engine_throughput_hop_heavy(benchmark):
    """Hop-heavy variant (path graph): per-message savings dominate."""
    from repro.graphs import path_graph
    from repro.spanning import bfs_tree

    n = 128
    g = path_graph(n)
    tree = bfs_tree(g, 0)
    sched = poisson(n, 4_000, rate=4.0, seed=2)
    res = benchmark(lambda: run_arrow_fast(g, tree, sched))
    assert len(res.completions) == 4_000
    benchmark.extra_info["mean_hops"] = res.mean_hops
