"""Ablation: spanning-tree choice (MST / BFS / random) vs arrow cost."""

from benchmarks.conftest import attach
from repro.experiments.ablations import run_tree_ablation


def test_tree_choice_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: run_tree_ablation(num_nodes=48, requests=150, seed=0),
        rounds=1,
        iterations=1,
    )
    attach(benchmark, result)
    stretch = result.series_by_name("stretch").ys
    cost = result.series_by_name("arrow total latency").ys
    assert all(s >= 1.0 for s in stretch)
    assert all(c > 0 for c in cost)
    # The minimum-stretch candidate is within 30% of the best cost: the
    # analysis' guidance (lower stretch => lower cost) holds empirically.
    best_cost = min(cost)
    low_stretch_cost = cost[stretch.index(min(stretch))]
    assert low_stretch_cost <= 1.3 * best_cost
