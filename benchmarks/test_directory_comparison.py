"""§5.1 related experiment: arrow vs home-based distributed directory.

Paper's claim (Herlihy & Warres): the arrow directory outperforms the
home-based directory over the whole 2-16 processing-element range.
"""

from benchmarks.conftest import attach
from repro.experiments.directory_comparison import run_directory_comparison

PROCS = [2, 4, 8, 12, 16]


def test_directory_comparison(benchmark):
    result = benchmark.pedantic(
        lambda: run_directory_comparison(PROCS, acquisitions_per_proc=50),
        rounds=1,
        iterations=1,
    )
    attach(benchmark, result)
    arrow = result.series_by_name("arrow directory").ys
    home = result.series_by_name("home-based directory").ys
    # Arrow wins at every size in the §5.1 range.
    assert all(a < h for a, h in zip(arrow, home))
    # ... and by a widening absolute margin as the system grows.
    margins = [h - a for a, h in zip(arrow, home)]
    assert margins[-1] > margins[0]
    # Message economics: direct hand-off beats home indirection.
    amsg = result.series_by_name("arrow msgs/acq").ys
    hmsg = result.series_by_name("home msgs/acq").ys
    assert all(a < h for a, h in zip(amsg, hmsg))
