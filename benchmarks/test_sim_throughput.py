"""Simulator performance: events/second and protocol ops/second.

Not a paper figure — the engineering benchmark that keeps the substrate
fast enough for the experiment sweeps (profile before optimising; see the
HPC guide notes in DESIGN.md).
"""

from repro.core.runner import run_arrow
from repro.graphs import complete_graph
from repro.sim.kernel import Simulator
from repro.spanning import balanced_binary_overlay
from repro.workloads.closed_loop import closed_loop_arrow
from repro.workloads.schedules import poisson


def test_kernel_event_throughput(benchmark):
    def run_events():
        sim = Simulator()
        count = 20_000

        def tick(i):
            if i < count:
                sim.call_in(1.0, tick, i + 1)

        sim.call_at(0.0, tick, 0)
        sim.run()
        return sim.events_fired

    fired = benchmark(run_events)
    assert fired == 20_001


def test_arrow_open_loop_throughput(benchmark):
    g = complete_graph(32)
    tree = balanced_binary_overlay(g, 0)
    sched = poisson(32, 1000, rate=20.0, seed=0)

    res = benchmark(lambda: run_arrow(g, tree, sched))
    assert len(res.completions) == 1000


def test_arrow_closed_loop_throughput(benchmark):
    g = complete_graph(32)
    tree = balanced_binary_overlay(g, 0)

    res = benchmark(
        lambda: closed_loop_arrow(
            g, tree, requests_per_proc=50, service_time=0.1, think_time=0.1
        )
    )
    assert res.completions == 1600
