"""Theorem 3.18: the generalised NN-TSP bound on random dominated pairs.

Generates random metric / dominated-cost pairs plus the actual (c_T, c_M)
pairs from simulated schedules; the bound must hold on every instance and
the measured factors should sit well below it.
"""

import numpy as np

from repro.analysis.costs import (
    augmented_nodes_times,
    c_m_matrix,
    c_t_matrix,
    request_distance_matrix,
)
from repro.analysis.nn_tsp import check_theorem_318
from repro.sim.rng import spawn_rng
from repro.spanning import SpanningTree
from repro.workloads.schedules import random_times


def random_metric(m, seed):
    rng = spawn_rng(seed, "bench-metric")
    C = rng.random((m, m)) * 10
    C = (C + C.T) / 2
    np.fill_diagonal(C, 0.0)
    for k in range(m):
        C = np.minimum(C, C[:, k][:, None] + C[k, :][None, :])
    return C, rng


def run_checks():
    reports = []
    # 20 synthetic dominated pairs.
    for seed in range(20):
        Do, rng = random_metric(10, seed)
        Dn = Do * rng.uniform(0.05, 1.0, size=Do.shape)
        np.fill_diagonal(Dn, 0.0)
        reports.append(check_theorem_318(Dn, Do, exact_limit=9))
    # 10 arrow (c_T, c_M) pairs from random schedules on a chain.
    tree = SpanningTree([max(0, i - 1) for i in range(12)], root=0)
    for seed in range(10):
        sched = random_times(12, 9, horizon=15.0, seed=seed)
        nodes, times = augmented_nodes_times(sched, tree.root)
        D = request_distance_matrix(tree, nodes)
        reports.append(
            check_theorem_318(c_t_matrix(D, times), c_m_matrix(D, times), exact_limit=9)
        )
    return reports


def test_theorem_318(benchmark):
    reports = benchmark.pedantic(run_checks, rounds=1, iterations=1)
    assert all(r.holds for r in reports)
    factors = [r.ratio / r.bound_factor for r in reports if r.bound_factor > 0]
    print(f"\nchecked {len(reports)} instances; "
          f"max measured/bound = {max(factors):.3f}")
    benchmark.extra_info["instances"] = len(reports)
    benchmark.extra_info["max_measured_over_bound"] = max(factors)
    # Measured NN/opt never exhausts the bound on random instances.
    assert max(factors) < 1.0
