"""Batch engine vs fast engine: the measured-speedup contract + artifact.

Times the numpy batch engine against the pure-Python fast engine on
≥10k-request workloads in the regimes the batch engine targets —
stochastic latency models (block-buffered RNG draws) open- and
closed-loop, plus the one-shot initiation storm (vectorized slabs) —
verifies bit-identity first, and archives every measured ratio to
``BENCH_batch.json`` so CI tracks the perf trajectory per push.

Floors: locally the stochastic scenarios must clear a real speedup
(the batch engine's reason to exist); ``REPRO_BENCH_RELAXED`` drops the
floors for shared/parallel CI runners, where wall-clock ratios are
noise — the measured numbers are still archived either way.  The
deterministic storm scenario has no floor: the batch engine's contract
there is "no worse", which parity plus the archived ratio makes
auditable.
"""

import json
import os
import time

from repro.core.batch import closed_loop_arrow_batch, run_arrow_batch
from repro.core.fast_arrow import run_arrow_fast
from repro.core.fast_closed_loop import closed_loop_arrow_fast
from repro.graphs import complete_graph
from repro.graphs.generators import balanced_binary_tree_graph
from repro.net.latency import UniformLatency
from repro.spanning import balanced_binary_overlay, bfs_tree
from repro.workloads.schedules import one_shot, poisson

OPEN_REQUESTS = 12_000
CLOSED_REQUESTS_PER_PROC = 200  # x 64 procs = 12_800 requests
STORM_REQUESTS = 20_000

BENCH_PATH = "BENCH_batch.json"


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _assert_runs_identical(a, b):
    assert a.completions == b.completions
    assert list(a.completions) == list(b.completions)
    assert a.makespan == b.makespan
    assert a.network_stats == b.network_stats


def test_batch_engine_speedup_archive(benchmark):
    """Measure all three scenarios, enforce floors, write BENCH_batch.json."""
    relaxed = bool(os.environ.get("REPRO_BENCH_RELAXED"))
    archive = {}

    # --- open loop, stochastic latency (the block-RNG regime) ---------
    g = complete_graph(64)
    tree = balanced_binary_overlay(g, 0)
    sched = poisson(64, OPEN_REQUESTS, rate=50.0, seed=1)
    lat = UniformLatency(0.2, 1.0)
    fast = run_arrow_fast(g, tree, sched, latency=lat, seed=1)
    bat = benchmark(lambda: run_arrow_batch(g, tree, sched, latency=lat, seed=1))
    # Equivalence first: speed means nothing if the answers drift.
    _assert_runs_identical(fast, bat)
    fast_s = _best_of(lambda: run_arrow_fast(g, tree, sched, latency=lat, seed=1))
    batch_s = _best_of(lambda: run_arrow_batch(g, tree, sched, latency=lat, seed=1))
    archive["open_loop_uniform"] = {
        "requests": OPEN_REQUESTS,
        "fast_seconds": fast_s,
        "batch_seconds": batch_s,
        "speedup": fast_s / batch_s,
    }

    # --- closed loop, stochastic latency ------------------------------
    kw = dict(
        requests_per_proc=CLOSED_REQUESTS_PER_PROC,
        think_time=0.1,
        service_time=0.1,
        latency=UniformLatency(0.2, 1.0),
        seed=3,
    )
    cf = closed_loop_arrow_fast(g, tree, **kw)
    cb = closed_loop_arrow_batch(g, tree, **kw)
    assert cf == cb  # ClosedLoopResult eq excludes wall clock
    fast_s = _best_of(lambda: closed_loop_arrow_fast(g, tree, **kw), repeats=2)
    batch_s = _best_of(lambda: closed_loop_arrow_batch(g, tree, **kw), repeats=2)
    archive["closed_loop_uniform"] = {
        "requests": 64 * CLOSED_REQUESTS_PER_PROC,
        "fast_seconds": fast_s,
        "batch_seconds": batch_s,
        "speedup": fast_s / batch_s,
    }

    # --- one-shot storm, deterministic (the slab/heapify regime) ------
    gs = balanced_binary_tree_graph(STORM_REQUESTS)
    ts = bfs_tree(gs, 0)
    ss = one_shot(list(range(STORM_REQUESTS)))
    sf = run_arrow_fast(gs, ts, ss)
    sb = run_arrow_batch(gs, ts, ss)
    _assert_runs_identical(sf, sb)
    fast_s = _best_of(lambda: run_arrow_fast(gs, ts, ss), repeats=2)
    batch_s = _best_of(lambda: run_arrow_batch(gs, ts, ss), repeats=2)
    archive["one_shot_storm"] = {
        "requests": STORM_REQUESTS,
        "fast_seconds": fast_s,
        "batch_seconds": batch_s,
        "speedup": fast_s / batch_s,
    }

    with open(BENCH_PATH, "w", encoding="utf-8") as fh:
        json.dump(archive, fh, indent=2, sort_keys=True)
    for name, row in archive.items():
        benchmark.extra_info[name] = row["speedup"]
        print(
            f"\n{name}: fast {row['fast_seconds'] * 1e3:.1f} ms, "
            f"batch {row['batch_seconds'] * 1e3:.1f} ms, "
            f"speedup {row['speedup']:.2f}x over {row['requests']} requests"
        )

    # Floors: the stochastic regimes are the batch engine's raison
    # d'être and must show a real win locally; CI runners (shared,
    # parallelized) get the ratios archived without a floor.
    if not relaxed:
        assert archive["open_loop_uniform"]["speedup"] >= 1.2, archive
        assert archive["closed_loop_uniform"]["speedup"] >= 1.05, archive


def test_batch_engine_throughput_storm(benchmark):
    """Slab-heavy storm throughput on the batch engine alone."""
    n = 10_000
    g = balanced_binary_tree_graph(n)
    tree = bfs_tree(g, 0)
    sched = one_shot(list(range(n)))
    res = benchmark(lambda: run_arrow_batch(g, tree, sched))
    assert len(res.completions) == n
    benchmark.extra_info["mean_hops"] = res.mean_hops
