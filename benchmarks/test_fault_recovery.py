"""Fault-injection benchmark: recovery metrics + the zero-cost contracts.

Regenerates ``BENCH_faults.json`` from real runs (gitignored like every
``BENCH_*.json``; CI uploads it as a per-push artifact):

* ``crash_recovery`` — a 3200-request open-loop run through two node
  crashes: the recovery metrics (corrections, lost requests,
  time-to-recovery) the sweep's fault axis persists per row;
* ``loss_1pct`` — the same workload under 1% i.i.d. message loss;
* ``empty_plan_overhead`` — :func:`repro.faults.run_arrow_faulted` with
  the empty plan vs :func:`repro.core.fast_arrow.run_arrow_fast`: the
  fault layer must be (near) free when no faults are injected;
* ``monitor_overhead`` — the Fig. 10-style closed loop with the
  ``on_event`` hook left at ``None`` vs a full deep-checking
  :class:`~repro.monitors.ArrowMonitor` attached: what the runtime
  monitors cost when you turn them on (disabled hooks are a pre-bound
  ``None`` test per event site, which is what keeps the fault-free
  engines at parity).

Floors: the empty-plan ratio must stay under 1.05 locally;
``REPRO_BENCH_RELAXED`` (shared CI runners) drops the wall-clock floors
but still archives every measured ratio.  The recovery *metrics* are
exact deterministic values either way — they are also pinned at small
scale by ``tests/core/test_faults.py``.
"""

import json
import os
import time

from repro.core.fast_arrow import run_arrow_fast
from repro.core.fast_closed_loop import closed_loop_arrow_fast
from repro.faults import run_arrow_faulted
from repro.graphs import complete_graph
from repro.monitors import ArrowMonitor
from repro.spanning import balanced_binary_overlay
from repro.workloads.schedules import poisson

BENCH_PATH = "BENCH_faults.json"

N = 32
REQUESTS = 3200
CRASH_PLAN = "crash@40.0:5,crash@200.0:11"
LOSS_PLAN = "loss:0.01"


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_fault_recovery_archive(benchmark):
    relaxed = bool(os.environ.get("REPRO_BENCH_RELAXED"))
    graph = complete_graph(N)
    tree = balanced_binary_overlay(graph, 0)
    schedule = poisson(N, REQUESTS, rate=8.0, seed=1)
    archive = {}

    # --- crash recovery ----------------------------------------------
    result, report = benchmark(
        lambda: run_arrow_faulted(
            graph, tree, schedule, CRASH_PLAN, seed=1, service_time=0.1
        )
    )
    assert report.repairs_run >= 1
    assert report.final_violations == 0
    assert len(result.completions) + report.requests_lost == REQUESTS
    archive["crash_recovery"] = {
        "requests": REQUESTS,
        **report.as_columns(),
    }

    # --- 1% message loss ---------------------------------------------
    result, report = run_arrow_faulted(
        graph, tree, schedule, LOSS_PLAN, seed=1, service_time=0.1
    )
    assert report.messages_dropped > 0
    assert report.final_violations == 0
    assert len(result.completions) + report.requests_lost == REQUESTS
    archive["loss_1pct"] = {
        "requests": REQUESTS,
        **report.as_columns(),
    }

    # --- empty-plan overhead (fault layer must be near-free) ---------
    plain = run_arrow_fast(graph, tree, schedule, seed=1, service_time=0.1)
    faulted, _ = run_arrow_faulted(
        graph, tree, schedule, "", seed=1, service_time=0.1
    )
    assert faulted.completions == plain.completions  # bit-identity first
    assert faulted.makespan == plain.makespan
    plain_s = _best_of(
        lambda: run_arrow_fast(graph, tree, schedule, seed=1, service_time=0.1),
        repeats=7,
    )
    faulted_s = _best_of(
        lambda: run_arrow_faulted(
            graph, tree, schedule, "", seed=1, service_time=0.1
        ),
        repeats=7,
    )
    ratio = faulted_s / plain_s
    archive["empty_plan_overhead"] = {
        "requests": REQUESTS,
        "plain_seconds": plain_s,
        "faulted_seconds": faulted_s,
        "overhead_ratio": ratio,
    }
    if not relaxed:
        assert ratio < 1.05, f"empty fault plan costs {ratio:.3f}x"

    # --- monitor overhead on the Fig. 10 closed loop -----------------
    kw = dict(requests_per_proc=100, think_time=0.1, service_time=0.1, seed=3)
    bare = closed_loop_arrow_fast(graph, tree, **kw)
    monitor = ArrowMonitor(tree)
    watched = closed_loop_arrow_fast(graph, tree, on_event=monitor, **kw)
    monitor.finalize(expected=watched.total_requests)
    assert watched == bare  # ClosedLoopResult eq excludes wall clock
    off_s = _best_of(lambda: closed_loop_arrow_fast(graph, tree, **kw))

    def monitored():
        m = ArrowMonitor(tree)
        closed_loop_arrow_fast(graph, tree, on_event=m, **kw)

    on_s = _best_of(monitored)
    archive["monitor_overhead"] = {
        "requests": N * 100,
        "monitors_off_seconds": off_s,
        "monitors_on_seconds": on_s,
        "overhead_ratio": on_s / off_s,
    }

    with open(BENCH_PATH, "w", encoding="utf-8") as fh:
        json.dump(archive, fh, indent=2, sort_keys=True)
    benchmark.extra_info.update(archive)
