"""Theorem 3.19: the O(s log D) competitive upper bound, synchronous.

Measured ratios on random dynamic workloads must stay under the explicit
proof-chain ceiling at every diameter, and grow at most logarithmically.
"""

import math

from benchmarks.conftest import attach
from repro.experiments.competitive import run_competitive_sweep

DIAMETERS = [8, 16, 32, 64, 128, 256]


def test_theorem_319_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_competitive_sweep(DIAMETERS, requests=60, seed=0),
        rounds=1,
        iterations=1,
    )
    attach(benchmark, result)
    hi = result.series_by_name("ratio (vs opt lower bd)").ys
    ceil = result.series_by_name("O(s log D) ceiling").ys
    # The bound holds everywhere.
    assert all(h <= c for h, c in zip(hi, ceil))
    # Growth is at most logarithmic: ratio(D) / log2(D) does not blow up.
    normalised = [h / math.log2(d) for h, d in zip(hi, DIAMETERS)]
    assert max(normalised) <= 3.0 * normalised[0] + 1.0
    # Random workloads sit far below the worst case.
    assert max(h / c for h, c in zip(hi, ceil)) < 0.1
