"""Theorem 3.21: the same O(s log D) bound under asynchronous delays."""

from benchmarks.conftest import attach
from repro.experiments.competitive import run_async_comparison

DIAMETERS = [8, 16, 32, 64, 128]


def test_theorem_321_async(benchmark):
    result = benchmark.pedantic(
        lambda: run_async_comparison(DIAMETERS, requests=60, seed=0),
        rounds=1,
        iterations=1,
    )
    attach(benchmark, result)
    sync = result.series_by_name("sync total latency").ys
    asyn = result.series_by_name("async total latency").ys
    ratio = result.series_by_name("async ratio (vs opt lower bd)").ys
    # Async per-message delays are <= the synchronous unit, so the total
    # stays within a reordering-slack factor of the sync run.
    assert all(a <= 2.0 * s for a, s in zip(asyn, sync))
    # The Theorem 3.21 ceiling is the 3.19 one; measured ratios are small.
    import math

    for r, d in zip(ratio, DIAMETERS):
        ceiling = (6 * math.ceil(math.log2(3 * d)) + 1) * 12
        assert r <= ceiling
