"""The sequential regime baseline ([4], §1.1): per-op <= D, ratio <= s."""

from benchmarks.conftest import attach
from repro.experiments.sequential import run_sequential_experiment


def test_sequential_regime(benchmark):
    result = benchmark.pedantic(
        lambda: run_sequential_experiment(num_requests=40, seed=0),
        rounds=1,
        iterations=1,
    )
    attach(benchmark, result)
    max_cost = result.series_by_name("max per-op latency").ys
    diam = result.series_by_name("tree diameter D").ys
    ratio = result.series_by_name("total ratio (vs seq opt)").ys
    stretch = result.series_by_name("tree stretch s").ys
    for c, d in zip(max_cost, diam):
        assert c <= d + 1e-9
    for r, s in zip(ratio, stretch):
        assert r <= s + 1e-9
