"""Fast closed-loop engine vs message simulator: the wall-clock contract.

Times both engines on a Fig. 10-sized closed loop (complete graph,
balanced binary overlay, per-node service time, think time), verifies the
outputs are bit-identical, and records the speedup ratio in
``benchmark.extra_info`` so the trajectory lands in the archived
BENCH_*.json alongside the open-loop engine benchmark.

The strict speedup floor is gated to non-CI runs by default: on a ``CI``
runner the whole module is skipped (shared runners are far too noisy for
wall-clock floors, and the tier-1 suite already covers the parity
contract); ``REPRO_BENCH_RELAXED`` additionally lowers the local floor
for constrained machines.
"""

import os
import time

import pytest

from repro.core.fast_closed_loop import (
    closed_loop_arrow_fast,
    closed_loop_centralized_fast,
)
from repro.graphs import complete_graph
from repro.spanning import balanced_binary_overlay
from repro.workloads.closed_loop import closed_loop_arrow, closed_loop_centralized

pytestmark = pytest.mark.skipif(
    bool(os.environ.get("CI")),
    reason="wall-clock speedup floors are gated to non-CI runs",
)

PROCS = 64
REQUESTS_PER_PROC = 150  # 9600 closed-loop requests end to end
KW = dict(requests_per_proc=REQUESTS_PER_PROC, service_time=0.1, think_time=0.1)


def _workload():
    g = complete_graph(PROCS)
    tree = balanced_binary_overlay(g, 0)
    return g, tree


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_fast_closed_loop_speedup(benchmark):
    g, tree = _workload()

    slow = closed_loop_arrow(g, tree, **KW)
    fast = benchmark(lambda: closed_loop_arrow_fast(g, tree, **KW))
    # Equivalence first: speed means nothing if the answers drift.
    assert fast == slow
    central_slow = closed_loop_centralized(g, 0, **KW)
    central_fast = closed_loop_centralized_fast(g, 0, **KW)
    assert central_fast == central_slow

    message_s = _best_of(lambda: closed_loop_arrow(g, tree, **KW))
    fast_s = _best_of(lambda: closed_loop_arrow_fast(g, tree, **KW))
    central_message_s = _best_of(lambda: closed_loop_centralized(g, 0, **KW))
    central_fast_s = _best_of(lambda: closed_loop_centralized_fast(g, 0, **KW))
    speedup = message_s / fast_s
    benchmark.extra_info["requests"] = PROCS * REQUESTS_PER_PROC
    benchmark.extra_info["message_engine_seconds"] = message_s
    benchmark.extra_info["fast_engine_seconds"] = fast_s
    benchmark.extra_info["speedup_vs_message"] = speedup
    benchmark.extra_info["centralized_speedup_vs_message"] = (
        central_message_s / central_fast_s
    )
    print(
        f"\narrow closed loop: message {message_s * 1e3:.1f} ms, "
        f"fast {fast_s * 1e3:.1f} ms, speedup {speedup:.1f}x; "
        f"centralized speedup {central_message_s / central_fast_s:.1f}x "
        f"over {PROCS * REQUESTS_PER_PROC} requests"
    )
    # Local runs clear 3x with headroom (typically ~5x); constrained
    # machines get a relaxed floor via REPRO_BENCH_RELAXED (the measured
    # ratio is archived in extra_info either way).
    floor = 1.5 if os.environ.get("REPRO_BENCH_RELAXED") else 3.0
    assert speedup >= floor, f"fast closed loop only {speedup:.1f}x faster"
