"""The one-shot concurrent case ([10]): ratio vs |R| under s log|R|."""

from benchmarks.conftest import attach
from repro.experiments.one_shot_analysis import run_one_shot_analysis


def test_one_shot_bound(benchmark):
    result = benchmark.pedantic(
        lambda: run_one_shot_analysis([4, 8, 16, 32, 64], seed=0),
        rounds=1,
        iterations=1,
    )
    attach(benchmark, result)
    hi = result.series_by_name("ratio (vs opt lower bd)").ys
    ceil = result.series_by_name("s log|R| ceiling").ys
    assert all(h <= c for h, c in zip(hi, ceil))
    # Measured one-shot ratios are modest and grow at most ~log |R|.
    assert hi[-1] <= 4.0 * hi[0] + 4.0
