"""Theorem 4.2: lower bound scaling with the spanning tree's stretch."""

from benchmarks.conftest import attach
from repro.experiments.lowerbound_sweep import run_theorem42_sweep

STRETCHES = [1, 2, 4, 8]


def test_theorem_42_stretch_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: run_theorem42_sweep(STRETCHES, D_over_s=64), rounds=1, iterations=1
    )
    attach(benchmark, result)
    ratios = result.series_by_name("measured ratio").ys
    stretch = result.series_by_name("measured tree stretch").ys
    # The constructions realise their prescribed stretch exactly.
    assert stretch == [float(s) for s in STRETCHES]
    # Ratio grows linearly with s once the stretch term dominates the
    # (constant-at-this-scale) log term: each doubling of s doubles it.
    assert ratios[2] >= 2.0 * ratios[1] - 1e-9
    assert ratios[3] >= 2.0 * ratios[2] - 1e-9
    assert all(r >= s for r, s in zip(ratios, stretch))
