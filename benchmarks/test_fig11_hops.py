"""Figure 11: average interprocessor messages per arrow queuing op.

Paper's claim: below one hop per operation on average — a large fraction
of requests find their predecessor locally.
"""

from benchmarks.conftest import attach
from repro.experiments.fig11 import run_fig11

PROCS = [2, 4, 8, 16, 32, 48, 64, 76]


def test_fig11_shape(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig11(PROCS, requests_per_proc=200), rounds=1, iterations=1
    )
    attach(benchmark, result)
    hops = result.series_by_name("mean hops/op").ys
    local = result.series_by_name("local-find fraction").ys
    # Mean hops per op stays around or below 1 across all system sizes
    # (paper: strictly below 1; we allow a small margin on the 2-proc
    # ping-pong case where every find crosses the single link).
    assert all(h <= 1.1 for h in hops)
    assert all(h < 1.0 for h in hops[1:])
    # Local finds are the reason: a large fraction of requests need zero
    # messages once contention sets in.
    assert all(f >= 0.4 for f in local[1:])
    # No growth trend with system size (the curve is flat-ish, not rising
    # with the diameter log n).
    assert hops[-1] < hops[1] * 1.6
