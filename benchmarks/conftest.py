"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures (see the
per-experiment index in DESIGN.md), asserts its qualitative shape, prints
the regenerated table, and stores the series in ``benchmark.extra_info``
so the JSON output of ``pytest-benchmark`` archives the numbers.
"""

from __future__ import annotations

from repro.experiments.records import ExperimentResult
from repro.experiments.tables import format_table


def attach(benchmark, result: ExperimentResult) -> None:
    """Print a result table and stash its series in the benchmark record."""
    print()
    print(format_table(result))
    benchmark.extra_info["experiment_id"] = result.experiment_id
    for s in result.series:
        benchmark.extra_info[s.name] = list(zip(s.xs, s.ys))
