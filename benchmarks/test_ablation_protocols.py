"""Ablation: arrow vs NTA/Ivy adaptive pointers vs centralized (§1.1).

Message counts per operation on a complete network under a contended
Poisson workload, plus the service-time sensitivity of the Fig. 10 gap.
"""

import math

from benchmarks.conftest import attach
from repro.experiments.ablations import run_protocol_ablation, run_service_time_ablation


def test_protocol_comparison(benchmark):
    result = benchmark.pedantic(
        lambda: run_protocol_ablation(num_nodes=48, requests=300, seed=0),
        rounds=1,
        iterations=1,
    )
    attach(benchmark, result)
    msgs = result.series_by_name("messages/op").ys
    arrow_bin, arrow_star, nta, central = msgs
    # Centralized: exactly <= 2 messages per op.
    assert central <= 2.0 + 1e-9
    # NTA/Ivy pointers: around O(log n) forwards per op.
    assert nta <= 2.0 * math.log2(48)
    # Arrow on the binary tree: bounded by tree-distance ~ 2 log n.
    assert arrow_bin <= 2.0 * math.log2(48) + 2
    # Star tree keeps arrow within 2 hops/op + reply.
    assert arrow_star <= 4.0


def test_service_time_sensitivity(benchmark):
    result = benchmark.pedantic(
        lambda: run_service_time_ablation(
            num_procs=48, requests_per_proc=100, service_times=[0.0, 0.1, 0.2, 0.4]
        ),
        rounds=1,
        iterations=1,
    )
    arrow = result.series_by_name("arrow").ys
    central = result.series_by_name("centralized").ys
    gaps = [c - a for a, c in zip(arrow, central)]
    # The centralized disadvantage grows monotonically with CPU cost.
    assert all(g2 >= g1 - 1e-9 for g1, g2 in zip(gaps, gaps[1:]))
