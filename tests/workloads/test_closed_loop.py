"""Unit tests for the closed-loop driver (§5 measurement loop)."""

import pytest

from repro.graphs import complete_graph
from repro.spanning import balanced_binary_overlay
from repro.workloads.closed_loop import closed_loop_arrow, closed_loop_centralized


@pytest.fixture
def k8():
    g = complete_graph(8)
    return g, balanced_binary_overlay(g, root=0)


def test_all_requests_complete(k8):
    g, tree = k8
    res = closed_loop_arrow(g, tree, requests_per_proc=20)
    assert res.completions == 8 * 20
    assert len(res.hops) == 160
    assert res.total_requests == 160


def test_makespan_positive_and_bounded(k8):
    g, tree = k8
    res = closed_loop_arrow(g, tree, requests_per_proc=10, think_time=0.1)
    assert 0 < res.makespan
    # Each op takes at most diameter + reply + think: crude sanity ceiling.
    assert res.makespan < 10 * (6 + 1 + 0.1) * 8


def test_centralized_two_messages_per_remote_op(k8):
    g, _ = k8
    res = closed_loop_centralized(g, 0, requests_per_proc=10)
    remote_ops = 7 * 10  # processors other than the centre
    local_ops = 10
    assert res.completions == 80
    assert res.messages_sent == 2 * remote_ops + local_ops


def test_arrow_mean_hops_below_tree_diameter(k8):
    g, tree = k8
    res = closed_loop_arrow(g, tree, requests_per_proc=40, think_time=0.1)
    assert res.mean_hops < 4.0  # diameter of the 8-node binary overlay
    assert 0.0 <= res.local_find_fraction <= 1.0


def test_think_time_slows_the_loop(k8):
    g, tree = k8
    fast = closed_loop_arrow(g, tree, requests_per_proc=15, think_time=0.0)
    slow = closed_loop_arrow(g, tree, requests_per_proc=15, think_time=2.0)
    assert slow.makespan > fast.makespan


def test_deterministic_given_seed(k8):
    g, tree = k8
    a = closed_loop_arrow(g, tree, requests_per_proc=12, seed=5)
    b = closed_loop_arrow(g, tree, requests_per_proc=12, seed=5)
    assert a.makespan == b.makespan
    assert a.hops == b.hops


def test_single_processor_degenerate_case():
    g = complete_graph(2)
    tree = balanced_binary_overlay(g, 0)
    res = closed_loop_arrow(g, tree, requests_per_proc=5)
    assert res.completions == 10


def test_centralized_saturates_with_service_time():
    """The centre's utilisation drives the §5 linear slowdown."""
    small = complete_graph(8)
    big = complete_graph(32)
    r_small = closed_loop_centralized(
        small, 0, requests_per_proc=30, service_time=0.2, think_time=0.2
    )
    r_big = closed_loop_centralized(
        big, 0, requests_per_proc=30, service_time=0.2, think_time=0.2
    )
    # 4x the processors -> substantially more total time (near-linear).
    assert r_big.makespan > 2.0 * r_small.makespan


def test_arrow_scales_sublinearly_with_system_size():
    small = complete_graph(8)
    big = complete_graph(32)
    t_small = balanced_binary_overlay(small, 0)
    t_big = balanced_binary_overlay(big, 0)
    r_small = closed_loop_arrow(
        small, t_small, requests_per_proc=30, service_time=0.2, think_time=0.2
    )
    r_big = closed_loop_arrow(
        big, t_big, requests_per_proc=30, service_time=0.2, think_time=0.2
    )
    assert r_big.makespan < 2.0 * r_small.makespan
