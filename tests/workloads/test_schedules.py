"""Unit tests for workload generators."""

import pytest

from repro.errors import ScheduleError
from repro.workloads.schedules import (
    bursty,
    hotspot,
    one_shot,
    poisson,
    random_times,
    sequential,
)


def test_one_shot_all_at_zero():
    s = one_shot([3, 1, 4])
    assert all(r.time == 0.0 for r in s)
    assert sorted(r.node for r in s) == [1, 3, 4]


def test_sequential_spacing():
    s = sequential([0, 1, 2], gap=5.0, start=1.0)
    assert s.times == [1.0, 6.0, 11.0]
    with pytest.raises(ScheduleError):
        sequential([0], gap=0.0)


def test_poisson_count_rate_and_determinism():
    a = poisson(10, 50, rate=2.0, seed=3)
    b = poisson(10, 50, rate=2.0, seed=3)
    assert len(a) == 50
    assert a.times == b.times and a.nodes == b.nodes
    # Mean inter-arrival should be near 1/rate.
    gaps = [t2 - t1 for t1, t2 in zip(a.times, a.times[1:])]
    assert 0.2 < sum(gaps) / len(gaps) < 1.2
    with pytest.raises(ScheduleError):
        poisson(10, 5, rate=0.0)


def test_poisson_restricted_node_pool():
    s = poisson(10, 30, rate=1.0, seed=1, nodes=[2, 7])
    assert set(s.nodes) <= {2, 7}


def test_bursty_structure():
    s = bursty(8, bursts=3, burst_size=5, burst_span=2.0, idle_gap=20.0, seed=2)
    assert len(s) == 15
    times = s.times
    # Requests cluster in three windows separated by > idle_gap/2.
    assert max(times) >= 2 * (2.0 + 20.0)
    with pytest.raises(ScheduleError):
        bursty(8, 1, 1, -1.0, 0.0)


def test_hotspot_bias():
    s = hotspot(20, 300, rate=5.0, hot_nodes=[0, 1], hot_fraction=0.9, seed=4)
    hot = sum(1 for n in s.nodes if n in (0, 1))
    assert hot > 200
    with pytest.raises(ScheduleError):
        hotspot(20, 10, 1.0, [], 0.5)
    with pytest.raises(ScheduleError):
        hotspot(20, 10, 1.0, [0], 1.5)


def test_random_times_continuous_vs_integer():
    c = random_times(10, 40, horizon=20.0, seed=5)
    d = random_times(10, 40, horizon=20.0, seed=5, continuous=False)
    assert any(t != int(t) for t in c.times)
    assert all(t == int(t) for t in d.times)
    assert all(0 <= t <= 20.0 for t in c.times)


def test_random_times_deterministic():
    a = random_times(10, 20, horizon=5.0, seed=8)
    b = random_times(10, 20, horizon=5.0, seed=8)
    assert a.times == b.times and a.nodes == b.nodes
