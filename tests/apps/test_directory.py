"""Tests for the distributed-directory applications (§1 / §5.1)."""

import pytest

from repro.apps.directory import arrow_directory, home_directory
from repro.graphs import complete_graph, grid_graph
from repro.net.latency import UniformLatency
from repro.spanning import balanced_binary_overlay, bfs_tree


@pytest.fixture
def k8():
    g = complete_graph(8)
    return g, balanced_binary_overlay(g, root=0)


def test_arrow_directory_all_acquisitions_complete(k8):
    g, tree = k8
    res = arrow_directory(g, tree, acquisitions_per_proc=15)
    assert res.completions == 8 * 15
    assert len(res.intervals) == 120


def test_arrow_directory_mutual_exclusion(k8):
    g, tree = k8
    res = arrow_directory(g, tree, acquisitions_per_proc=25, cs_time=0.7)
    assert res.exclusion_holds()


def test_arrow_directory_async_mutual_exclusion(k8):
    g, tree = k8
    res = arrow_directory(
        g,
        tree,
        acquisitions_per_proc=15,
        latency=UniformLatency(0.2, 1.0),
        seed=3,
    )
    assert res.exclusion_holds()
    assert res.completions == 120


def test_arrow_directory_on_grid():
    g = grid_graph(3, 4)
    tree = bfs_tree(g, 0)
    res = arrow_directory(g, tree, acquisitions_per_proc=10)
    assert res.completions == 120
    assert res.exclusion_holds()


def test_home_directory_all_acquisitions_and_exclusion(k8):
    g, _ = k8
    res = home_directory(g, 0, acquisitions_per_proc=15, cs_time=0.7)
    assert res.completions == 120
    assert res.exclusion_holds()


def test_home_directory_message_count_per_op(k8):
    """dreq + dfwd + dobj + ddone per remote handoff: about 4/op."""
    g, _ = k8
    res = home_directory(g, 0, acquisitions_per_proc=20)
    per_op = res.messages_sent / res.total_acquisitions
    assert 3.0 <= per_op <= 4.0 + 1e-9


def test_arrow_directory_cheaper_handoffs(k8):
    """Arrow ships the object directly: fewer messages per acquisition."""
    g, tree = k8
    a = arrow_directory(g, tree, acquisitions_per_proc=25)
    h = home_directory(g, 0, acquisitions_per_proc=25)
    assert a.messages_sent < h.messages_sent


def test_arrow_directory_beats_home_based_makespan(k8):
    """The §5.1 headline: arrow directory completes sooner, 2..16 PEs."""
    for n in (2, 16):
        g = complete_graph(n)
        tree = balanced_binary_overlay(g, root=0)
        a = arrow_directory(g, tree, acquisitions_per_proc=20, service_time=0.1)
        h = home_directory(g, 0, acquisitions_per_proc=20, service_time=0.1)
        assert a.makespan < h.makespan


def test_directory_result_statistics(k8):
    g, tree = k8
    res = arrow_directory(g, tree, acquisitions_per_proc=5)
    assert res.total_acquisitions == 40
    assert res.mean_wait >= 0.0
    assert res.makespan > 0.0
