"""Unit tests for the bitonic layered reconstruction."""

import pytest

from repro.analysis.nearest_neighbor import predict_arrow_run
from repro.analysis.optimal import opt_bounds
from repro.analysis.verify import arrow_cost_of_order
from repro.errors import ScheduleError
from repro.lowerbound.layered import (
    layer_sweep_order,
    layered_instance,
    layered_requests,
)


def test_validates_parameters():
    with pytest.raises(ScheduleError):
        layered_requests(10, 2)
    with pytest.raises(ScheduleError):
        layered_requests(16, 0)


def test_dots_are_unique_positions_per_layer():
    pairs = layered_requests(64, 3)
    seen = set()
    for p, t in pairs:
        assert (p, t) not in seen
        seen.add((p, t))
        assert 0 <= p <= 64


def test_refinement_dots_hug_anchors():
    """Every layer has dots at distance 1 from both path endpoints."""
    pairs = set(layered_requests(64, 3))
    for t in (0.0, 1.0, 2.0):
        assert (1, t) in pairs or (0, t) in pairs
        assert (63, t) in pairs or (64, t) in pairs


def test_sweep_order_costs_one_sweep_per_layer():
    inst = layered_instance(64, 3)
    order = layer_sweep_order(inst.schedule)
    cost = arrow_cost_of_order(inst.tree, inst.schedule, order)
    # Each refinement layer spans the path once: cost ~ k D, plus at most
    # one extra D when the final request lands opposite the last sweep.
    assert cost >= inst.sweep_cost_target - inst.k
    assert cost <= inst.sweep_cost_target + 64 + inst.k


def test_realised_ratio_exceeds_literal_construction():
    from repro.lowerbound.construction import theorem41_instance

    D, k = 256, 4
    lay = layered_instance(D, k)
    lit = theorem41_instance(D, k)
    lay_cost = predict_arrow_run(lay.tree, lay.schedule, tie_break="min").arrow_cost
    lit_cost = max(
        predict_arrow_run(lit.tree, lit.schedule, tie_break=tb).arrow_cost
        for tb in ("min", "max")
    )
    lay_opt = opt_bounds(lay.graph, lay.tree, lay.schedule, 1.0, exact_limit=0)
    lit_opt = opt_bounds(lit.graph, lit.tree, lit.schedule, 1.0, exact_limit=0)
    assert lay_cost / lay_opt.upper > lit_cost / lit_opt.upper


def test_ratio_grows_with_diameter():
    """The lower-bound shape: measured ratio increases with D."""
    ratios = []
    for D, k in ((64, 3), (1024, 5)):
        inst = layered_instance(D, k)
        cost = predict_arrow_run(inst.tree, inst.schedule, tie_break="min").arrow_cost
        ob = opt_bounds(inst.graph, inst.tree, inst.schedule, 1.0, exact_limit=0)
        ratios.append(cost / ob.upper)
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 2.5  # well past the literal construction's flat 2.0


def test_opt_stays_linear_in_d():
    """The instances keep the optimal cost O(D) (the separation's other half)."""
    for D, k in ((64, 3), (256, 4)):
        inst = layered_instance(D, k)
        ob = opt_bounds(inst.graph, inst.tree, inst.schedule, 1.0, exact_limit=0)
        assert ob.upper <= 3.0 * D
