"""Unit tests for the Theorem 4.2 stretch construction."""

import pytest

from repro.errors import ScheduleError
from repro.lowerbound.stretch_graph import theorem42_instance
from repro.spanning.metrics import tree_stretch


@pytest.mark.parametrize("s", [1, 2, 4, 8])
def test_tree_stretch_equals_s(s):
    inst = theorem42_instance(16, s)
    assert tree_stretch(inst.graph, inst.tree).stretch == float(max(1, s))


def test_dimensions():
    inst = theorem42_instance(16, 4)
    assert inst.D == 64
    assert inst.graph.num_nodes == 65
    # Shortcuts exist between consecutive multiples of s.
    assert inst.graph.has_edge(0, 4)
    assert inst.graph.has_edge(60, 64)


def test_requests_placed_on_shortcut_endpoints():
    inst = theorem42_instance(16, 4)
    for r in inst.schedule:
        assert r.node % 4 == 0


def test_invalid_stretch_rejected():
    with pytest.raises(ScheduleError):
        theorem42_instance(16, 0)


def test_ratio_scales_with_stretch():
    from repro.experiments.lowerbound_sweep import worst_case_arrow_cost
    from repro.analysis.optimal import opt_bounds

    ratios = []
    for s in (1, 4):
        inst = theorem42_instance(16, s)
        cost = worst_case_arrow_cost(inst.tree, inst.schedule)
        stretch = tree_stretch(inst.graph, inst.tree).stretch
        ob = opt_bounds(inst.graph, inst.tree, inst.schedule, stretch, exact_limit=0)
        ratios.append(cost / ob.upper)
    assert ratios[1] >= 2.0 * ratios[0]
