"""Unit tests for the literal Theorem 4.1 construction.

Includes the reproduction-note regression: the literal transcription's
worst-case arrow cost is exactly ``2 D`` for deep recursions (it does not
force one sweep per layer), while ``k = 2`` realises the full ``k·D``.
This behaviour is documented in ``repro.lowerbound.layered`` and
EXPERIMENTS.md; these tests pin it so any future reinterpretation of the
construction shows up as a diff here.
"""

import math

import pytest

from repro.analysis.nearest_neighbor import predict_arrow_run
from repro.core.requests import RequestSchedule
from repro.errors import ScheduleError
from repro.lowerbound.construction import (
    default_k,
    theorem41_instance,
    theorem41_requests,
)


def test_default_k_is_even_and_grows():
    ks = [default_k(D) for D in (16, 256, 4096, 2**16)]
    assert all(k % 2 == 0 for k in ks)
    assert ks == sorted(ks)
    assert default_k(2) == 2


def test_requires_power_of_two():
    with pytest.raises(ScheduleError):
        theorem41_requests(48)
    with pytest.raises(ScheduleError):
        theorem41_requests(0)


def test_requires_even_positive_k():
    with pytest.raises(ScheduleError):
        theorem41_requests(16, k=3)
    with pytest.raises(ScheduleError):
        theorem41_requests(16, k=0)


def test_layer_counts_follow_binomials():
    """Layer t holds C(log D, k - t) recursion dots (plus boundaries)."""
    D, k = 64, 6
    pairs = theorem41_requests(D, k)
    logd = int(math.log2(D))
    by_time = {}
    for p, t in pairs:
        by_time.setdefault(t, set()).add(p)
    for t in range(k + 1):
        interior = {p for p in by_time[float(t)] if p not in (0, D)}
        want = math.comb(logd, k - t)
        # boundary dots may coincide with recursion dots only at 0 / D.
        assert len(interior) <= want
        if t == k:
            assert by_time[float(t)] == {D}


def test_boundary_columns_present():
    pairs = set(theorem41_requests(16, 2))
    for t in range(2):
        assert (0, float(t)) in pairs
        assert (16, float(t)) in pairs


def test_positions_stay_on_path():
    for D in (16, 64, 256):
        for p, _ in theorem41_requests(D):
            assert 0 <= p <= D


def test_instance_wires_graph_tree_schedule():
    inst = theorem41_instance(16, 2)
    assert inst.graph.num_nodes == 17
    assert inst.tree.root == 0
    assert inst.predicted_arrow_cost == 32.0
    assert isinstance(inst.schedule, RequestSchedule)


def test_k2_realises_full_kd_cost():
    """k = 2 instances force the full k*D sweep cost (ratio exactly 2)."""
    for D in (16, 64, 256):
        inst = theorem41_instance(D, 2)
        pred = predict_arrow_run(inst.tree, inst.schedule, tie_break="min")
        assert pred.arrow_cost == pytest.approx(2.0 * D)


def test_literal_deep_recursion_caps_at_2d():
    """Reproduction-note regression (see module docstring)."""
    for D, k in ((64, 6), (256, 4)):
        inst = theorem41_instance(D, k)
        lo = predict_arrow_run(inst.tree, inst.schedule, tie_break="min")
        hi = predict_arrow_run(inst.tree, inst.schedule, tie_break="max")
        assert max(lo.arrow_cost, hi.arrow_cost) <= 2.0 * D + 1e-9
