"""Unit tests for the comb MST bound."""


from repro.core.requests import RequestSchedule
from repro.lowerbound.comb import comb_cost_bound_formula, comb_mst_weight, comb_order
from repro.lowerbound.construction import theorem41_instance


def test_comb_weight_hand_instance():
    # Requests at nodes 2 (times 0, 3) and 5 (time 1): horizontal span
    # 0..5 (root at 0) = 5; vertical extents 3 + 0.
    sched = RequestSchedule([(2, 0.0), (5, 1.0), (2, 3.0)])
    assert comb_mst_weight(sched, root_pos=0) == 5.0 + 3.0


def test_comb_weight_empty():
    assert comb_mst_weight(RequestSchedule([])) == 0.0


def test_comb_weight_linear_in_d_on_theorem41():
    for D in (16, 64, 256):
        inst = theorem41_instance(D)
        w = comb_mst_weight(inst.schedule)
        assert w <= D + inst.k * (inst.k + 1) * 2 + 4 * D  # O(D)
        assert w >= D  # the horizontal chain alone spans the path


def test_comb_order_visits_every_request_once():
    inst = theorem41_instance(16, 2)
    order = comb_order(inst.schedule)
    assert sorted(order) == [r.rid for r in inst.schedule]
    # Grouped by node, ascending time inside each group.
    prev = None
    for rid in order:
        r = inst.schedule.by_rid(rid)
        if prev is not None and prev.node == r.node:
            assert prev.time <= r.time
        prev = r


def test_formula_is_o_of_d_for_paper_k():
    from repro.lowerbound.construction import default_k

    for D in (2**8, 2**12, 2**16):
        k = default_k(D)
        assert comb_cost_bound_formula(D, k) <= 25.0 * D


def test_formula_small_d_guard():
    assert comb_cost_bound_formula(2, 2) == 2 + 2
