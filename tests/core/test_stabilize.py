"""Unit tests for the self-stabilisation extension."""

import pytest

from repro.core.arrow import ArrowNode
from repro.core.stabilize import (
    count_sinks,
    find_violations,
    is_legal_configuration,
    sink_reached_from,
    stabilize,
)
from repro.graphs import random_geometric_graph
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.spanning import SpanningTree, bfs_tree


def make_nodes(tree, graph=None):
    g = graph if graph is not None else tree.to_graph()
    net = Network(g, Simulator())
    nodes = [ArrowNode(lambda *a: None) for _ in range(tree.num_nodes)]
    net.register_all(nodes)
    for nd in nodes:
        nd.init_pointers(tree)
    return net, nodes


def chain_tree(n):
    return SpanningTree([max(0, i - 1) for i in range(n)], root=0)


def test_initial_configuration_is_legal():
    tree = chain_tree(6)
    _, nodes = make_nodes(tree)
    assert is_legal_configuration(nodes, tree)
    assert count_sinks(nodes) == 1
    assert sink_reached_from(nodes, 5, 6) == 0


def test_two_cycle_detected_as_double():
    tree = chain_tree(4)
    _, nodes = make_nodes(tree)
    nodes[0].link = 1  # now 0 -> 1 and 1 -> 0
    v = find_violations(nodes, tree)
    assert any(x.kind == "double" for x in v)
    assert sink_reached_from(nodes, 3, 4) is None  # walk enters the 2-cycle


def test_abandoned_edge_detected_as_none():
    tree = chain_tree(4)
    _, nodes = make_nodes(tree)
    nodes[3].link = 3  # second sink; edge (3,2) crossed by nobody
    v = find_violations(nodes, tree)
    assert any(x.kind == "none" for x in v)
    assert count_sinks(nodes) == 2


def test_stabilize_fixes_double():
    tree = chain_tree(4)
    _, nodes = make_nodes(tree)
    nodes[0].link = 1
    fixes = stabilize(nodes, tree)
    assert fixes >= 1
    assert is_legal_configuration(nodes, tree)
    assert count_sinks(nodes) == 1


def test_stabilize_fixes_multiple_sinks():
    tree = chain_tree(6)
    _, nodes = make_nodes(tree)
    nodes[3].link = 3
    nodes[5].link = 5
    stabilize(nodes, tree)
    assert is_legal_configuration(nodes, tree)
    assert count_sinks(nodes) == 1
    sink = next(nd.node_id for nd in nodes if nd.link == nd.node_id)
    for v in range(6):
        assert sink_reached_from(nodes, v, 6) == sink


def test_stabilize_noop_on_legal_configuration():
    tree = chain_tree(8)
    _, nodes = make_nodes(tree)
    assert stabilize(nodes, tree) == 0


def test_protocol_works_after_stabilization():
    g = random_geometric_graph(15, 0.4, seed=2)
    tree = bfs_tree(g, 0)
    net, nodes = make_nodes(tree, g)
    # Corrupt arbitrarily: every node points at its first tree neighbour.
    for nd in nodes:
        nd.link = tree.neighbors(nd.node_id)[0]
    stabilize(nodes, tree)
    assert is_legal_configuration(nodes, tree)
    # Issue requests from every node; all must complete into one order.
    done = []
    for nd in nodes:
        nd._on_complete = lambda rid, pred, node, when, hops: done.append(rid)
    for i, nd in enumerate(nodes):
        net.sim.call_at(float(i), nd.initiate, i)
    net.sim.run()
    assert sorted(done) == list(range(15))


@pytest.mark.parametrize("seed", range(5))
def test_stabilize_from_random_corruption(seed):
    from repro.sim.rng import spawn_rng

    g = random_geometric_graph(20, 0.35, seed=seed)
    tree = bfs_tree(g, 0)
    _, nodes = make_nodes(tree, g)
    rng = spawn_rng(seed, "corrupt")
    for nd in nodes:
        choices = tree.neighbors(nd.node_id) + [nd.node_id]
        nd.link = choices[rng.integers(len(choices))]
    stabilize(nodes, tree)
    assert is_legal_configuration(nodes, tree)
    assert count_sinks(nodes) == 1


# ----------------------------------------------------------------------
# stabilisation as the live crash-repair step (driven by repro.faults)
# ----------------------------------------------------------------------
def test_stabilize_links_matches_node_based_stabilize():
    from repro.core.stabilize import find_violations_links, stabilize_links
    from repro.sim.rng import spawn_rng

    g = random_geometric_graph(18, 0.4, seed=11)
    tree = bfs_tree(g, 0)
    _, nodes = make_nodes(tree, g)
    rng = spawn_rng(11, "corrupt-links")
    for nd in nodes:
        choices = tree.neighbors(nd.node_id) + [nd.node_id]
        nd.link = choices[rng.integers(len(choices))]
    link = [nd.link for nd in nodes]
    fixes_nodes = stabilize(nodes, tree)
    fixes_links = stabilize_links(link, tree)
    assert fixes_links == fixes_nodes
    assert link == [nd.link for nd in nodes]
    assert not find_violations_links(link, tree)


@pytest.mark.parametrize("engine", ["fast", "batch", "message"])
def test_repair_after_crash_per_engine(engine):
    """A crash mid-run degrades the tree; the engines must route the
    repair through the stabilisation pass and finish every surviving
    request — stabilize is the live repair step, not a standalone demo."""
    from repro.faults import run_arrow_faulted
    from repro.graphs import complete_graph
    from repro.workloads.schedules import poisson

    graph = complete_graph(10)
    tree = bfs_tree(graph, 0)
    schedule = poisson(10, 60, 4.0, seed=4)
    result, report = run_arrow_faulted(
        graph, tree, schedule, "crash@3.0:2,crash@6.0:5",
        engine=engine, seed=5, service_time=0.1,
    )
    assert report.repairs_run >= 1
    assert report.corrections_applied >= 1
    assert report.final_violations == 0
    assert report.time_to_recovery > 0.0
    assert len(result.completions) + report.requests_lost == len(schedule)
