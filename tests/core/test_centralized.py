"""Unit tests for the §5 centralized baseline."""

import pytest

from repro.core.queueing import verify_total_order
from repro.core.requests import RequestSchedule
from repro.core.runner import run_centralized
from repro.graphs import complete_graph, path_graph
from repro.workloads.schedules import poisson


def test_requests_ordered_by_arrival_at_center():
    g = complete_graph(5)
    sched = RequestSchedule([(1, 0.0), (2, 0.5), (3, 1.2)])
    res = run_centralized(g, 0, sched)
    assert verify_total_order(res) == [0, 1, 2]


def test_center_own_request_skips_first_leg():
    g = complete_graph(4)
    sched = RequestSchedule([(0, 0.0)])
    res = run_centralized(g, 0, sched)
    rec = res.completions[0]
    assert rec.informed_node == 0
    assert rec.completed_at == 0.0
    assert rec.hops == 0


def test_two_messages_per_request_in_reply_mode():
    g = complete_graph(6)
    sched = poisson(6, 20, rate=0.5, seed=1)
    res = run_centralized(g, 0, sched, reply_mode=True, notify_origin=True)
    verify_total_order(res)
    # creq + queue_reply per non-centre request; centre requests use fewer.
    non_center = sum(1 for r in sched if r.node != 0)
    center_own = len(sched) - non_center
    assert res.network_stats["messages_sent"] == 2 * non_center + center_own


def test_inform_mode_completion_at_predecessor_issuer():
    g = complete_graph(5)
    sched = RequestSchedule([(1, 0.0), (2, 10.0)])
    res = run_centralized(g, 0, sched)
    # Request 1 queued behind request 0 -> node 1 (issuer of 0) informed.
    assert res.completions[1].informed_node == 1


def test_reply_mode_completion_at_center():
    g = complete_graph(5)
    sched = RequestSchedule([(1, 0.0), (2, 10.0)])
    res = run_centralized(g, 0, sched, reply_mode=True)
    assert res.completions[1].informed_node == 0


def test_latency_includes_both_legs():
    # Path graph: distances to the centre vary.
    g = path_graph(5)
    sched = RequestSchedule([(4, 0.0), (3, 20.0)])
    res = run_centralized(g, 0, sched)
    # r0: 4 hops to centre, inform travels back to centre? predecessor is
    # the virtual root held at the centre: inform goes centre->centre.
    assert res.latency(0) == 4.0
    # r1: 3 hops to centre, then inform centre -> node 4 (4 hops).
    assert res.latency(1) == 7.0


def test_creq_to_wrong_node_raises():
    from repro.core.centralized import CentralizedNode
    from repro.errors import ProtocolError
    from repro.net.message import Message
    from repro.net.network import Network
    from repro.sim.kernel import Simulator

    net = Network(complete_graph(3), Simulator())
    nodes = [CentralizedNode(0, lambda *a: None) for _ in range(3)]
    net.register_all(nodes)
    nodes[0].init_center()
    with pytest.raises(ProtocolError):
        nodes[1].on_message(Message("creq", 2, 1, {"rid": 0, "origin": 2}))


def test_concurrent_requests_all_complete(k16):
    sched = poisson(16, 120, rate=8.0, seed=3)
    res = run_centralized(k16, 0, sched, service_time=0.05)
    assert len(verify_total_order(res)) == 120
