"""Fault-injection axis: plan parsing, engine parity, pinned recovery.

The fault layer's contract has three parts, each tested here:

* the fault-plan mini-language round-trips through its canonical label
  and rejects malformed plans at parse time;
* all three engines produce *identical* results and recovery reports
  under the same plan (the bit-identity contract extends to faults), and
  the empty plan is bit-identical to the fault-free engines;
* recovery metrics for a small crash+loss grid are pinned to exact
  deterministic-seed values, so any change to fault semantics — drop
  ordering, repair timing, RNG stream — fails loudly instead of
  silently shifting published numbers.
"""

import pytest

from repro.core.fast_arrow import run_arrow_fast
from repro.errors import FaultPlanError, ProtocolError, SweepError
from repro.faults import (
    FaultPlan,
    epoch_rid,
    parse_fault_plan,
    run_arrow_faulted,
)
from repro.graphs import complete_graph, path_graph
from repro.monitors import ArrowMonitor
from repro.spanning import bfs_tree
from repro.workloads.schedules import poisson

ENGINES = ("fast", "batch", "message")


# ----------------------------------------------------------------------
# plan parsing and canonicalisation
# ----------------------------------------------------------------------
def test_parse_round_trips_through_label():
    for text in (
        "",
        "crash@3.0:1",
        "loss:0.05",
        "link@0-2:1.0-4.5",
        "crash@3.0:1,link@2-0:1.0-4.5,loss:0.05,crash@1.0:4",
    ):
        plan = parse_fault_plan(text)
        assert parse_fault_plan(plan.label()) == plan
        assert parse_fault_plan(plan.label()).label() == plan.label()


def test_plan_is_normalised():
    plan = parse_fault_plan("crash@5.0:1,crash@2.0:3,link@4-1:0.5-2.0")
    assert plan.crashes == ((3, 2.0), (1, 5.0))  # sorted by (time, node)
    assert plan.link_drops == ((1, 4, 0.5, 2.0),)  # endpoints normalised
    assert parse_fault_plan("crash@2.0:3,crash@5.0:1,link@1-4:0.5-2.0") == plan


def test_empty_plan():
    assert parse_fault_plan("").empty
    assert parse_fault_plan("").label() == ""
    assert not parse_fault_plan("loss:0.01").empty


@pytest.mark.parametrize(
    "bad",
    [
        "crash@3.0",  # missing node
        "crash@-1.0:2",  # negative time
        "crash@1.0:-2",  # negative node
        "loss:1.5",  # rate outside [0, 1)
        "loss:-0.1",
        "link@0-0:1.0-2.0",  # self-loop
        "link@0-1:3.0-2.0",  # empty window
        "meteor@1.0:0",  # unknown term
        "crash@x:1",  # unparsable number
    ],
)
def test_malformed_plans_rejected(bad):
    with pytest.raises(FaultPlanError):
        parse_fault_plan(bad)


def test_fault_plan_error_is_a_sweep_error():
    with pytest.raises(SweepError):
        parse_fault_plan("loss:2.0")


def test_plan_validates_node_bounds():
    plan = parse_fault_plan("crash@1.0:9")
    with pytest.raises(FaultPlanError):
        plan.validate_nodes(4)


def test_link_drop_must_be_a_tree_edge():
    graph = complete_graph(6)
    tree = bfs_tree(graph, 0)  # star: every node's parent is 0
    schedule = poisson(6, 12, 2.0, seed=0)
    with pytest.raises(FaultPlanError, match="tree edge"):
        run_arrow_faulted(graph, tree, schedule, "link@1-2:0.0-5.0")


def test_epoch_rids_are_distinct_from_sentinels():
    rids = [epoch_rid(k) for k in range(4)]
    assert rids == [-3, -4, -5, -6]
    assert len(set(rids)) == 4


# ----------------------------------------------------------------------
# empty-plan bit-identity and cross-engine parity
# ----------------------------------------------------------------------
def test_empty_plan_is_bit_identical_to_fault_free_engine():
    graph = complete_graph(10)
    tree = bfs_tree(graph, 0)
    schedule = poisson(10, 50, 4.0, seed=1)
    bare = run_arrow_fast(graph, tree, schedule, seed=4, service_time=0.2)
    faulted, report = run_arrow_faulted(
        graph, tree, schedule, "", seed=4, service_time=0.2
    )
    assert faulted.completions == bare.completions
    assert faulted.makespan == bare.makespan
    assert faulted.network_stats == bare.network_stats
    assert report.requests_lost == 0
    assert report.repairs_run == 0
    assert report.time_to_recovery == 0.0


@pytest.mark.parametrize(
    "plan", ["crash@2.5:2", "loss:0.04", "crash@2.5:2,loss:0.04"]
)
def test_three_engines_agree_under_faults(plan):
    graph = complete_graph(8)
    tree = bfs_tree(graph, 0)
    schedule = poisson(8, 40, 4.0, seed=3)
    outcomes = []
    for engine in ENGINES:
        monitor = ArrowMonitor(tree, deep=True)
        result, report = run_arrow_faulted(
            graph, tree, schedule, plan,
            engine=engine, seed=6, service_time=0.2, on_event=monitor,
        )
        monitor.finalize(expected=len(schedule))
        outcomes.append((result.completions, result.makespan, report))
    assert outcomes[0] == outcomes[1] == outcomes[2]


def test_conservation_every_request_completed_or_lost():
    graph = path_graph(9)
    tree = bfs_tree(graph, 0)
    schedule = poisson(9, 45, 3.0, seed=7)
    result, report = run_arrow_faulted(
        graph, tree, schedule, "crash@3.0:4,loss:0.05", seed=8
    )
    assert len(result.completions) + report.requests_lost == len(schedule)
    assert set(report.lost_rids).isdisjoint(result.completions)
    assert report.final_violations == 0


def test_negative_service_time_rejected():
    graph = complete_graph(4)
    tree = bfs_tree(graph, 0)
    schedule = poisson(4, 8, 2.0, seed=0)
    with pytest.raises(ProtocolError):
        run_arrow_faulted(graph, tree, schedule, "", service_time=-1.0)


def test_unknown_engine_rejected():
    graph = complete_graph(4)
    tree = bfs_tree(graph, 0)
    schedule = poisson(4, 8, 2.0, seed=0)
    with pytest.raises(ValueError):
        run_arrow_faulted(graph, tree, schedule, "", engine="quantum")


# ----------------------------------------------------------------------
# pinned deterministic-seed recovery metrics
# ----------------------------------------------------------------------
#: Exact recovery metrics of a small crash+loss grid (complete graph
#: n=8, BFS tree, poisson(8, 48, 4.0, seed=2), seed=9, service 0.2).
#: These values are a regression fence around the fault semantics: the
#: drop-check order, the quiescent-repair timing and the dedicated
#: ``fault-loss`` RNG stream all feed them.  If an intentional semantic
#: change shifts them, re-pin and say why in the commit.
_PINNED = {
    "crash@2:3": (4, 0, 1, 1, 5.961156451063407, (3, 4, 13, 20)),
    "loss:0.05": (1, 1, 1, 1, 5.9874654500707365, (30,)),
    "crash@2:3,crash@5:1,loss:0.03": (
        6, 1, 2, 1, 5.961156451063407, (3, 4, 13, 14, 15, 20)
    ),
}


@pytest.mark.parametrize("plan", sorted(_PINNED))
@pytest.mark.parametrize("engine", ENGINES)
def test_pinned_recovery_metrics(plan, engine):
    graph = complete_graph(8)
    tree = bfs_tree(graph, 0)
    schedule = poisson(8, 48, 4.0, seed=2)
    result, report = run_arrow_faulted(
        graph, tree, schedule, plan, engine=engine, seed=9, service_time=0.2
    )
    lost, dropped, corrections, repairs, ttr, rids = _PINNED[plan]
    assert report.requests_lost == lost
    assert report.messages_dropped == dropped
    assert report.corrections_applied == corrections
    assert report.repairs_run == repairs
    assert report.time_to_recovery == ttr
    assert report.lost_rids == rids
    assert result.makespan == 16.90401403481015
