"""Edge cases across the protocol stack."""


from repro.core.queueing import verify_total_order
from repro.core.requests import RequestSchedule
from repro.core.runner import run_arrow, run_centralized
from repro.errors import (
    AnalysisError,
    GraphError,
    NetworkError,
    ProtocolError,
    ReproError,
    ScheduleError,
    SimulationError,
    TreeError,
)
from repro.graphs import complete_graph, path_graph
from repro.spanning import SpanningTree, balanced_binary_overlay


def chain_tree(n):
    return SpanningTree([max(0, i - 1) for i in range(n)], root=0)


def test_error_hierarchy_rooted_at_repro_error():
    for exc in (
        SimulationError,
        NetworkError,
        GraphError,
        TreeError,
        ProtocolError,
        ScheduleError,
        AnalysisError,
    ):
        assert issubclass(exc, ReproError)
    assert issubclass(TreeError, GraphError)


def test_single_node_network_all_requests_local():
    g = complete_graph(2)  # smallest network with an edge
    tree = balanced_binary_overlay(g, 0)
    sched = RequestSchedule([(0, 0.0), (0, 1.0), (0, 2.0)])
    res = run_arrow(g, tree, sched)
    assert verify_total_order(res) == [0, 1, 2]
    assert res.total_hops == 0
    assert res.total_latency == 0.0


def test_many_duplicate_node_time_requests():
    g = complete_graph(4)
    tree = balanced_binary_overlay(g, 0)
    sched = RequestSchedule([(2, 1.0)] * 8)
    res = run_arrow(g, tree, sched)
    assert len(verify_total_order(res)) == 8
    # First one walks to the root; the rest are local (same node, sink).
    assert sum(1 for r in res.completions.values() if r.hops == 0) == 7


def test_all_nodes_request_at_once_on_a_path():
    n = 12
    g = path_graph(n)
    sched = RequestSchedule([(v, 0.0) for v in range(n)])
    res = run_arrow(g, chain_tree(n), sched)
    order = verify_total_order(res)
    assert len(order) == n
    # The root's own request wins instantly (it holds the sink).
    assert res.latency(order[0]) == 0.0


def test_far_future_request_after_long_idle():
    g = path_graph(5)
    sched = RequestSchedule([(4, 0.0), (1, 10_000.0)])
    res = run_arrow(g, chain_tree(5), sched)
    assert verify_total_order(res) == [0, 1]
    # Latency is the tree distance to the predecessor, not the idle gap.
    assert res.latency(1) == 3.0


def test_interleaved_times_microseconds_apart():
    g = complete_graph(8)
    tree = balanced_binary_overlay(g, 0)
    sched = RequestSchedule([(i, i * 1e-6) for i in range(1, 8)])
    res = run_arrow(g, tree, sched)
    assert len(verify_total_order(res)) == 7


def test_centralized_nonzero_center():
    g = complete_graph(6)
    sched = RequestSchedule([(0, 0.0), (5, 1.0)])
    res = run_centralized(g, 3, sched)
    assert verify_total_order(res) == [0, 1]


def test_request_at_float_integer_boundary_times():
    g = path_graph(4)
    sched = RequestSchedule([(3, 0.9999999), (1, 1.0000001)])
    res = run_arrow(g, chain_tree(4), sched)
    assert len(verify_total_order(res)) == 2
