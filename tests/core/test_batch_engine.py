"""Batch-engine internals: slabs, block streams, dispatch, integration.

The three-way differential suites prove the batch engine's *results*
match the other engines; this file pins the machinery those results rest
on — that slabs actually form (and truncate, and rewind the RNG stream)
on the workloads built to trigger them, that the block stream replays
the scalar draw order across refill boundaries, that model dispatch is
exact-type (a subclass must not inherit the vectorized path), and that
the engine plugs into the runner registry and the sweep executor.
"""

from __future__ import annotations

import pytest

import repro.core.batch as batch
from repro.core.batch import (
    BatchArrowEngine,
    _BlockStream,
    closed_loop_arrow_batch,
    run_arrow_batch,
)
from repro.core.fast_arrow import FastArrowEngine, arrow_runner, run_arrow_fast
from repro.core.fast_closed_loop import closed_loop_arrow_fast
from repro.core.requests import RequestSchedule
from repro.errors import SimulationError
from repro.graphs.generators import (
    balanced_binary_tree_graph,
    complete_graph,
    path_graph,
)
from repro.net.latency import (
    ExponentialCappedLatency,
    ScaledWeightLatency,
    UniformLatency,
    UnitLatency,
    WeightLatency,
)
from repro.sim.rng import spawn_rng
from repro.spanning.construct import balanced_binary_overlay, bfs_tree
from repro.workloads.schedules import one_shot, poisson


def assert_identical(a, b):
    assert a.completions == b.completions
    assert list(a.completions) == list(b.completions)
    assert a.makespan == b.makespan
    assert a.network_stats == b.network_stats


class _SlabCounter:
    """Monkeypatch wrapper proving a test actually exercised the slab path."""

    def __init__(self, monkeypatch):
        self.calls = 0
        self.candidates = 0
        self.committed = 0
        orig = BatchArrowEngine._slab

        def wrapped(engine, i, j, *args, **kwargs):
            self.calls += 1
            self.candidates += j - i
            out = orig(engine, i, j, *args, **kwargs)
            self.committed += out[0] - i
            return out

        monkeypatch.setattr(BatchArrowEngine, "_slab", wrapped)


# ----------------------------------------------------------------------
# the block stream
# ----------------------------------------------------------------------
def test_block_stream_replays_scalar_draw_order():
    """Interleaved one()/take() must replay the scalar stream exactly."""
    scalar = spawn_rng(3, "network-latency")
    stream = _BlockStream(
        spawn_rng(3, "network-latency"), lambda rng, size: rng.uniform(0.2, 1.0, size)
    )
    expected = [scalar.uniform(0.2, 1.0) for _ in range(500)]
    got = []
    k = 0
    while len(got) < 480:
        if k % 3 == 0:
            got.extend(stream.take(7).tolist())
        else:
            got.append(stream.one())
        k += 1
    assert got == expected[: len(got)]


def test_block_stream_refills_across_small_blocks(monkeypatch):
    """Tiny refill blocks exercise the buffer-boundary arithmetic."""
    monkeypatch.setattr(batch, "_BLOCK", 5)
    scalar = spawn_rng(9, "network-latency")
    stream = _BlockStream(
        spawn_rng(9, "network-latency"), lambda rng, size: rng.exponential(0.3, size)
    )
    expected = [scalar.exponential(0.3) for _ in range(64)]
    got = [stream.one() for _ in range(3)]
    got.extend(stream.take(13).tolist())  # larger than the block size
    got.extend(stream.one() for _ in range(48))
    assert got == expected


def test_block_stream_mark_rewind_release():
    """A rewound take is un-consumed; a released one is committed."""
    fill = lambda rng, size: rng.uniform(0.0, 1.0, size)
    scalar = spawn_rng(4, "network-latency")
    expected = [scalar.uniform(0.0, 1.0) for _ in range(40)]
    stream = _BlockStream(spawn_rng(4, "network-latency"), fill)
    head = stream.take(10).tolist()
    assert head == expected[:10]
    # Speculative take of 8, keep only 3.
    pos = stream.mark()
    spec = stream.take(8).tolist()
    assert spec == expected[10:18]
    stream.rewind(pos + 3)
    assert stream.one() == expected[13]
    # Speculative take fully committed.
    pos = stream.mark()
    stream.take(6)
    stream.release()
    assert stream.one() == expected[20]


def test_block_stream_rewind_survives_refill(monkeypatch):
    """A refill during a held mark must not invalidate the rewind point."""
    monkeypatch.setattr(batch, "_BLOCK", 4)
    fill = lambda rng, size: rng.uniform(0.0, 1.0, size)
    scalar = spawn_rng(8, "network-latency")
    expected = [scalar.uniform(0.0, 1.0) for _ in range(40)]
    stream = _BlockStream(spawn_rng(8, "network-latency"), fill)
    assert stream.take(3).tolist() == expected[:3]
    pos = stream.mark()
    # This take forces a refill while the mark is held.
    assert stream.take(17).tolist() == expected[3:20]
    stream.rewind(pos + 2)
    assert stream.one() == expected[5]


# ----------------------------------------------------------------------
# slab formation, truncation and RNG rewind
# ----------------------------------------------------------------------
def test_one_shot_storm_is_one_growing_slab(monkeypatch):
    """A one-shot storm commits fully through the heapify + cap-growth path."""
    counter = _SlabCounter(monkeypatch)
    n = 3000  # beyond _SLAB_CAP0, so the adaptive cap must grow
    g = balanced_binary_tree_graph(n)
    tree = bfs_tree(g, 0)
    sched = one_shot(list(range(n)))
    a = run_arrow_fast(g, tree, sched)
    b = run_arrow_batch(g, tree, sched)
    assert_identical(a, b)
    assert counter.calls >= 2  # capped first slab, grown follow-ups
    assert counter.committed == n  # every initiation went through a slab


def test_slab_truncation_with_sub_unit_delays(monkeypatch):
    """Short link delays force arrivals between initiations: slabs truncate."""
    counter = _SlabCounter(monkeypatch)
    n = 80
    g = path_graph(n)
    tree = bfs_tree(g, 0)
    # All nodes fire at t=0 and again at t=0.5; with delay 0.01 per link
    # the first sends arrive long before the second wave's initiations.
    sched = RequestSchedule(
        [(v, 0.0) for v in range(n)] + [(v, 0.5) for v in range(n)]
    )
    kw = dict(latency=ScaledWeightLatency(0.01), seed=2)
    a = run_arrow_fast(g, tree, sched, **kw)
    b = run_arrow_batch(g, tree, sched, **kw)
    assert_identical(a, b)
    assert counter.calls >= 1
    assert counter.committed < counter.candidates  # truncation happened


def test_slab_truncation_rewinds_stochastic_draws(monkeypatch):
    """Speculative draws of truncated sends must be un-consumed exactly."""
    monkeypatch.setattr(batch, "_SLAB_MIN", 8)
    monkeypatch.setattr(batch, "_BLOCK", 16)  # refills inside held marks
    counter = _SlabCounter(monkeypatch)
    n = 64
    g = path_graph(n)
    tree = bfs_tree(g, 0)
    sched = RequestSchedule(
        [(v, 0.002 * i) for i, v in enumerate(range(n))]
        + [(v, 0.5 + 0.002 * i) for i, v in enumerate(range(n))]
    )
    kw = dict(latency=UniformLatency(0.005, 0.05), seed=7)
    a = run_arrow_fast(g, tree, sched, **kw)
    b = run_arrow_batch(g, tree, sched, **kw)
    assert_identical(a, b)
    assert counter.calls >= 1
    assert counter.committed < counter.candidates


def test_slab_local_find_chains_and_duplicate_nodes(monkeypatch):
    """Repeated nodes inside one slab chain as local finds, preds intact."""
    monkeypatch.setattr(batch, "_SLAB_MIN", 4)
    counter = _SlabCounter(monkeypatch)
    g = complete_graph(8)
    tree = balanced_binary_overlay(g, 0)
    # Many same-instant requests at few nodes: slab must replay the
    # first-send-then-local-chain semantics per node.
    sched = RequestSchedule(
        [(3, 0.0)] * 5 + [(5, 0.0)] * 4 + [(3, 0.0)] * 2 + [(0, 0.0)] * 3
    )
    a = run_arrow_fast(g, tree, sched)
    b = run_arrow_batch(g, tree, sched)
    assert_identical(a, b)
    assert counter.calls >= 1
    preds = {rid: rec.predecessor for rid, rec in b.completions.items()}
    # The second wave of node 3's requests chains behind the first.
    assert preds[1] == 0 and preds[2] == 1


def test_max_events_crossing_inside_a_slab():
    """The livelock guard fires even when the limit lands mid-slab."""
    n = 200
    g = balanced_binary_tree_graph(n)
    tree = bfs_tree(g, 0)
    sched = one_shot(list(range(n)))
    full = run_arrow_fast(g, tree, sched)
    needed = full.network_stats["messages_sent"] + len(sched)
    for limit in (needed, needed - 1, n // 2, 5):
        outcomes = []
        for fn in (run_arrow_fast, run_arrow_batch):
            try:
                fn(g, tree, sched, max_events=limit)
                outcomes.append("ok")
            except SimulationError:
                outcomes.append("raised")
        assert outcomes[0] == outcomes[1], (limit, outcomes)


def test_service_time_slab_parity(monkeypatch):
    """The tagged (service > 0) drain uses slabs too."""
    monkeypatch.setattr(batch, "_SLAB_MIN", 8)
    counter = _SlabCounter(monkeypatch)
    g = complete_graph(40)
    tree = balanced_binary_overlay(g, 0)
    sched = one_shot(list(range(40)))
    kw = dict(service_time=0.25)
    a = run_arrow_fast(g, tree, sched, **kw)
    b = run_arrow_batch(g, tree, sched, **kw)
    assert_identical(a, b)
    assert counter.calls >= 1


# ----------------------------------------------------------------------
# model dispatch
# ----------------------------------------------------------------------
class _JitteredUniform(UniformLatency):
    """Stochastic subclass overriding sample: must NOT get the block path."""

    def sample(self, src, dst, weight, rng):
        return weight * rng.uniform(self.lo, self.hi) + 0.001 * ((src + dst) % 3)


class _ShiftedUnit(UnitLatency):
    """Deterministic subclass overriding sample: must NOT get np.ones."""

    def sample(self, src, dst, weight, rng):
        return 1.0 + 0.01 * (src % 5)

    def max_delay(self, weight):
        return 1.05


@pytest.mark.parametrize("latency", [_JitteredUniform(0.2, 1.0), _ShiftedUnit()])
def test_subclassed_models_take_the_exact_fallback(latency):
    """Exact-type dispatch: subclasses run per-call sample, still identical."""
    g = complete_graph(16)
    tree = balanced_binary_overlay(g, 0)
    sched = poisson(16, 120, rate=8.0, seed=5)
    kw = dict(latency=latency, seed=6)
    a = run_arrow_fast(g, tree, sched, **kw)
    b = run_arrow_batch(g, tree, sched, **kw)
    assert_identical(a, b)
    # And the results must differ from the base class's, or the override
    # was silently ignored somewhere.
    base = type(latency).__mro__[1]()
    assert b.makespan != run_arrow_batch(
        g, tree, sched, latency=base, seed=6
    ).makespan


@pytest.mark.parametrize(
    "latency",
    [UnitLatency(), WeightLatency(), ScaledWeightLatency(1.7)],
)
def test_det_tables_match_fast_engine(latency):
    """Vectorized delay tables carry the exact floats of the scalar build."""
    g = complete_graph(30)
    tree = balanced_binary_overlay(g, 0)
    fast = FastArrowEngine(g, tree, latency=latency, seed=1)
    vec = BatchArrowEngine(g, tree, latency=latency, seed=1)
    assert vec._det_up == fast._det_up
    assert vec._det_down == fast._det_down


def test_stochastic_engine_is_reusable():
    """Each run re-seeds its sampler: repeat runs are identical."""
    g = complete_graph(12)
    tree = balanced_binary_overlay(g, 0)
    eng = BatchArrowEngine(g, tree, latency=ExponentialCappedLatency(), seed=9)
    sched = poisson(12, 60, rate=6.0, seed=0)
    first = eng.run(sched)
    second = eng.run(sched)
    assert_identical(first, second)
    assert_identical(
        first,
        run_arrow_fast(g, tree, sched, latency=ExponentialCappedLatency(), seed=9),
    )


# ----------------------------------------------------------------------
# registry + sweep integration
# ----------------------------------------------------------------------
def test_arrow_runner_resolves_batch():
    assert arrow_runner("batch") is run_arrow_batch
    with pytest.raises(ValueError):
        arrow_runner("vectorized")


def test_closed_loop_batch_smoke_against_fast():
    g = complete_graph(10)
    tree = balanced_binary_overlay(g, 0)
    kw = dict(requests_per_proc=6, think_time=0.2, service_time=0.1, seed=4)
    assert closed_loop_arrow_batch(g, tree, **kw) == closed_loop_arrow_fast(
        g, tree, **kw
    )


def test_sweep_cells_run_identically_on_batch_engine():
    """Sweep rows must be engine-independent modulo the engine column."""
    from repro.sweep import execute_cell, smoke_grid

    fast_rows = [execute_cell(c) for c in smoke_grid(engine="fast").cells()]
    batch_rows = [execute_cell(c) for c in smoke_grid(engine="batch").cells()]
    for f, b in zip(fast_rows, batch_rows):
        assert f.pop("engine") == "fast"
        assert b.pop("engine") == "batch"
        assert f == b


def test_sweep_spec_accepts_batch_rejects_unknown():
    from repro.errors import ScheduleError
    from repro.sweep import smoke_grid

    assert smoke_grid(engine="batch").engine == "batch"
    with pytest.raises(ScheduleError):
        smoke_grid(engine="turbo")


def test_closed_loop_sweep_cell_on_batch_engine():
    from repro.sweep import execute_cell, fig10_grid

    spec_f = fig10_grid(sizes=(6,), requests_per_proc=10, engine="fast")
    spec_b = fig10_grid(sizes=(6,), requests_per_proc=10, engine="batch")
    for cf, cb in zip(spec_f.cells(), spec_b.cells()):
        f = execute_cell(cf)
        b = execute_cell(cb)
        f.pop("engine")
        b.pop("engine")
        assert f == b
