"""Hand-traced arrow executions: the paper's Figures 1-6 scenarios.

These tests pin the protocol's step-by-step behaviour on tiny instances
where the expected pointer flips, queue orders and latencies can be
verified by hand against Section 2 of the paper.
"""

import pytest

from repro.core.arrow import ArrowNode
from repro.core.requests import ROOT_RID, RequestSchedule
from repro.core.runner import run_arrow
from repro.core.queueing import verify_total_order
from repro.errors import ProtocolError
from repro.graphs import path_graph
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.spanning import SpanningTree


def chain_tree(n, root=0):
    if root == 0:
        return SpanningTree([max(0, i - 1) for i in range(n)], root=0)
    return SpanningTree([max(0, i - 1) for i in range(n)], root=0).reroot(root)


def setup_line(n, root):
    """Arrow nodes on a path graph with pointers toward the root."""
    g = path_graph(n)
    tree = chain_tree(n, root)
    sim = Simulator()
    net = Network(g, sim)
    done = []
    nodes = [
        ArrowNode(lambda rid, pred, node, when, hops: done.append(
            (rid, pred, node, when, hops)))
        for _ in range(n)
    ]
    net.register_all(nodes)
    for nd in nodes:
        nd.init_pointers(tree)
    return sim, nodes, done


def test_initial_pointers_lead_to_root():
    _, nodes, _ = setup_line(5, root=2)
    assert nodes[2].link == 2          # the sink
    assert nodes[2].last_rid == ROOT_RID
    assert nodes[0].link == 1 and nodes[1].link == 2
    assert nodes[4].link == 3 and nodes[3].link == 2
    assert nodes[0].is_sink is False and nodes[2].is_sink is True


def test_single_request_reverses_path_and_moves_sink():
    sim, nodes, done = setup_line(4, root=0)
    nodes[3].initiate(0)
    sim.run()
    # Completion at the old root after 3 hops / 3 time units.
    assert done == [(0, ROOT_RID, 0, 3.0, 3)]
    # Pointers now all lead to node 3 (the new sink).
    assert nodes[3].link == 3
    assert nodes[2].link == 3 and nodes[1].link == 2 and nodes[0].link == 1


def test_local_request_at_root_completes_instantly():
    sim, nodes, done = setup_line(3, root=0)
    nodes[0].initiate(0)
    sim.run()
    assert done == [(0, ROOT_RID, 0, 0.0, 0)]
    assert nodes[0].link == 0  # still the sink
    assert nodes[0].last_rid == 0


def test_two_sequential_requests_chain():
    sim, nodes, done = setup_line(4, root=0)
    nodes[2].initiate(0)
    sim.run()
    nodes[1].initiate(1)
    sim.run()
    assert done[0][:3] == (0, ROOT_RID, 0)
    # Second request finds its predecessor (request 0) at node 2.
    assert done[1][:3] == (1, 0, 2)
    assert done[1][4] == 1  # one hop from node 1 to node 2


def test_concurrent_requests_deflection_fig6():
    """Figure 6: root v in the middle; x and y request simultaneously.

    On the path x - u - v(root) - w - y with unit delays, both requests
    march toward v; one wins, the other is deflected toward the winner.
    Whichever wins, both are queued and the total order is consistent.
    """
    # nodes: 0=x, 1=u, 2=v(root), 3=w, 4=y
    g = path_graph(5)
    tree = chain_tree(5, root=2)
    sched = RequestSchedule([(0, 0.0), (4, 0.0)])
    res = run_arrow(g, tree, sched)
    order = verify_total_order(res)
    assert sorted(order) == [0, 1]
    first, second = order
    # The winner pays distance to the root (2); the loser is deflected and
    # pays the distance to the winner's node (4).
    assert res.latency(first) == 2.0
    assert res.latency(second) == 4.0


def test_same_node_rerequest_is_local_after_completion():
    sim, nodes, done = setup_line(4, root=0)
    nodes[3].initiate(0)
    sim.run()
    nodes[3].initiate(1)
    sim.run()
    assert done[1] == (1, 0, 3, 3.0, 0)  # local find, zero hops


def test_request_while_own_message_in_flight():
    """A node may issue again before its previous request completed."""
    sim, nodes, done = setup_line(5, root=0)
    nodes[4].initiate(0)
    sim.call_at(1.0, nodes[4].initiate, 1)
    sim.run()
    rids = sorted(rec[0] for rec in done)
    assert rids == [0, 1]
    # Request 1 is queued directly behind request 0, locally at node 4.
    rec1 = next(r for r in done if r[0] == 1)
    assert rec1[1] == 0 and rec1[2] == 4 and rec1[4] == 0


def test_unknown_message_kind_raises():
    sim, nodes, _ = setup_line(2, root=0)
    from repro.net.message import Message

    with pytest.raises(ProtocolError):
        nodes[0].on_message(Message("bogus", 1, 0))


def test_app_handler_receives_non_queue_messages():
    sim, nodes, _ = setup_line(2, root=0)
    from repro.net.message import Message

    got = []
    nodes[0].app_handler = got.append
    nodes[0].on_message(Message("queue_reply", 1, 0))
    assert len(got) == 1


def test_initiate_takes_only_a_rid_and_completes_at_sim_now():
    """The initiation contract: ``initiate(rid)``, issue time = sim clock.

    The old signature accepted (and silently ignored) an ``origin_time``
    argument; issue times come from the schedule / driver exclusively, so
    the parameter was dropped.  Pin both halves of the contract: the
    signature rejects a second positional argument, and a local find
    completes exactly at the simulation time of the initiation event.
    """
    sim, nodes, done = setup_line(3, root=0)
    with pytest.raises(TypeError):
        nodes[0].initiate(0, 0.0)
    sim.call_at(2.5, nodes[0].initiate, 0)
    sim.run()
    assert done == [(0, ROOT_RID, 0, 2.5, 0)]


def test_notify_origin_sends_reply():
    g = path_graph(3)
    tree = chain_tree(3, root=0)
    sched = RequestSchedule([(2, 0.0)])
    res = run_arrow(g, tree, sched, notify_origin=True)
    # 2 queue hops + 2 reply hops routed back.
    assert res.network_stats["routed_messages"] == 1
    assert res.network_stats["hops_total"] == 4
