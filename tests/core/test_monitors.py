"""Runtime protocol monitors: fault-free audits + synthetic violations.

Two angles: (1) attach an :class:`ArrowMonitor` to every engine on real
fault-free runs (open and closed loop) and require a clean audit; (2)
feed hand-built illegal event streams to the monitor and require each of
the five named invariant checkers to fire with the right
:class:`MonitorViolation` metadata.
"""

import pytest

from repro.core.batch import run_arrow_batch
from repro.core.fast_arrow import run_arrow_fast
from repro.core.fast_closed_loop import closed_loop_runner
from repro.core.requests import ROOT_RID
from repro.core.runner import run_arrow
from repro.errors import MonitorViolation, SweepError
from repro.graphs import complete_graph, path_graph
from repro.monitors import MONITOR_NAMES, ArrowMonitor
from repro.spanning import SpanningTree, bfs_tree
from repro.workloads.schedules import poisson

ENGINES = {
    "message": run_arrow,
    "fast": run_arrow_fast,
    "batch": run_arrow_batch,
}


def chain_tree(n):
    return SpanningTree([max(0, i - 1) for i in range(n)], root=0)


# ----------------------------------------------------------------------
# fault-free audits on real runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("service_time", [0.0, 0.5])
def test_open_loop_fault_free_audit(engine, service_time):
    graph = complete_graph(8)
    tree = bfs_tree(graph, 0)
    schedule = poisson(8, 40, 4.0, seed=2)
    monitor = ArrowMonitor(tree, deep=True)
    result = ENGINES[engine](
        graph, tree, schedule, seed=3, service_time=service_time,
        on_event=monitor,
    )
    monitor.finalize(expected=len(schedule))
    assert monitor.completed == set(result.completions)
    assert not monitor.lost
    assert monitor.violation_count == 0
    assert monitor.events_seen > len(schedule)


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_closed_loop_fault_free_audit(engine):
    graph = complete_graph(8)
    tree = bfs_tree(graph, 0)
    monitor = ArrowMonitor(tree, deep=True)
    runner = closed_loop_runner("arrow", engine)
    result = runner(
        graph, tree, requests_per_proc=5, seed=1, service_time=0.1,
        think_time=0.1, on_event=monitor,
    )
    monitor.finalize(expected=result.total_requests)
    assert len(monitor.completed) == result.total_requests


def test_monitored_run_results_identical_to_unmonitored():
    graph = path_graph(9)
    tree = bfs_tree(graph, 0)
    schedule = poisson(9, 36, 3.0, seed=5)
    for engine, runner in ENGINES.items():
        bare = runner(graph, tree, schedule, seed=7, service_time=0.3)
        monitor = ArrowMonitor(tree)
        watched = runner(
            graph, tree, schedule, seed=7, service_time=0.3, on_event=monitor
        )
        monitor.finalize(expected=len(schedule))
        assert watched.completions == bare.completions, engine
        assert watched.makespan == bare.makespan, engine
        assert watched.network_stats == bare.network_stats, engine


# ----------------------------------------------------------------------
# synthetic violation streams — one per named monitor
# ----------------------------------------------------------------------
def expect_violation(monitor_name):
    return pytest.raises(MonitorViolation, match=rf"\[{monitor_name}\]")


def test_names_are_stable():
    assert MONITOR_NAMES == (
        "one-pointer-per-edge",
        "unique-sink",
        "token-conservation",
        "total-order",
        "completion-accounting",
    )


def test_violation_is_a_sweep_error_with_metadata():
    m = ArrowMonitor(chain_tree(3))
    with pytest.raises(MonitorViolation) as exc:
        m("init", 0, 1, 1.0)
        m("init", 0, 2, 2.0)
    assert isinstance(exc.value, SweepError)
    assert exc.value.monitor == "token-conservation"
    assert exc.value.at == 2.0
    assert m.violation_count == 1


def test_duplicate_issue_is_token_conservation():
    m = ArrowMonitor(chain_tree(3))
    m("init", 0, 1, 1.0)
    with expect_violation("token-conservation"):
        m("init", 0, 1, 2.0)


def test_deliver_without_flight_is_token_conservation():
    m = ArrowMonitor(chain_tree(3))
    with expect_violation("token-conservation"):
        m("deliver", 4, 0, 1, 1.0)


def test_complete_without_sink_is_token_conservation():
    m = ArrowMonitor(chain_tree(3))
    with expect_violation("token-conservation"):
        m("complete", 0, ROOT_RID, 0, 1.0, 0)


def test_send_against_mirrored_pointer_is_one_pointer_per_edge():
    m = ArrowMonitor(chain_tree(3))
    m("init", 0, 2, 1.0)  # mirror mandates send 2 -> 1
    with expect_violation("one-pointer-per-edge"):
        m("send", 0, 1, 0, 1.0)


def test_non_tree_edge_is_one_pointer_per_edge():
    m = ArrowMonitor(chain_tree(4))
    m("init", 0, 3, 1.0)  # mandates 3 -> 2
    m("send", 0, 3, 2, 1.0)
    m("deliver", 0, 2, 3, 2.0)  # mandates 2 -> 1
    with expect_violation("one-pointer-per-edge"):
        m("send", 0, 2, 0, 2.0)  # (2, 0) is not a tree edge


def test_completion_at_wrong_node_is_unique_sink():
    m = ArrowMonitor(chain_tree(3))
    m("init", 0, 1, 1.0)
    m("send", 0, 1, 0, 1.0)
    m("deliver", 0, 0, 1, 2.0)  # node 0 is the sink
    with expect_violation("unique-sink"):
        m("complete", 0, ROOT_RID, 1, 2.0, 1)


def test_wrong_predecessor_is_total_order():
    m = ArrowMonitor(chain_tree(3))
    m("init", 0, 1, 1.0)
    m("send", 0, 1, 0, 1.0)
    m("deliver", 0, 0, 1, 2.0)
    with expect_violation("total-order"):
        m("complete", 0, 99, 0, 2.0, 1)


def test_missing_requests_are_completion_accounting():
    m = ArrowMonitor(chain_tree(3))
    m("init", 0, 0, 1.0)  # local find at the root sink
    m("complete", 0, ROOT_RID, 0, 1.0, 0)
    with expect_violation("completion-accounting"):
        m.finalize(expected=2)


def test_dangling_flight_fails_finalize():
    m = ArrowMonitor(chain_tree(3))
    m("init", 0, 1, 1.0)
    m("send", 0, 1, 0, 1.0)
    with expect_violation("token-conservation"):
        m.finalize()


def test_unknown_event_kind_rejected():
    m = ArrowMonitor(chain_tree(3))
    with expect_violation("token-conservation"):
        m("teleport", 0, 1, 1.0)
