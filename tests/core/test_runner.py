"""Unit tests for the protocol runners' plumbing and validation."""

import pytest

from repro.core.requests import RequestSchedule
from repro.core.runner import run_arrow, run_centralized
from repro.errors import ScheduleError, TreeError
from repro.graphs import complete_graph, path_graph
from repro.net.latency import UniformLatency
from repro.sim.trace import Tracer
from repro.spanning import SpanningTree, balanced_binary_overlay
from repro.workloads.schedules import poisson


def chain_tree(n):
    return SpanningTree([max(0, i - 1) for i in range(n)], root=0)


def test_bad_schedule_node_rejected():
    g = path_graph(3)
    with pytest.raises(ScheduleError):
        run_arrow(g, chain_tree(3), RequestSchedule([(9, 0.0)]))


def test_tree_must_span_graph_edges():
    g = path_graph(4)
    star = SpanningTree([0, 0, 0, 0], root=0)
    with pytest.raises(TreeError):
        run_arrow(g, star, RequestSchedule([(1, 0.0)]))


def test_empty_schedule_runs_cleanly():
    g = path_graph(3)
    res = run_arrow(g, chain_tree(3), RequestSchedule([]))
    assert res.total_latency == 0.0
    assert res.makespan == 0.0


def test_makespan_and_wall_seconds_populated():
    g = path_graph(5)
    res = run_arrow(g, chain_tree(5), RequestSchedule([(4, 0.0)]))
    assert res.makespan == 4.0
    assert res.wall_seconds >= 0.0


def test_network_stats_reported():
    g = path_graph(5)
    res = run_arrow(g, chain_tree(5), RequestSchedule([(4, 0.0)]))
    assert res.network_stats["link_messages"] == 4


def test_tracer_records_protocol_messages():
    g = path_graph(4)
    tr = Tracer()
    run_arrow(g, chain_tree(4), RequestSchedule([(3, 0.0)]), tracer=tr)
    sends = list(tr.of_kind("send"))
    assert len(sends) == 3
    assert all(r.payload["msg_kind"] == "queue" for r in sends)


def test_async_latency_model_completes_and_is_bounded():
    """§3.8: with delays <= 1, each request's latency is at most the tree
    distance to its (async-order) predecessor's issuer."""
    g = complete_graph(12)
    tree = balanced_binary_overlay(g, 0)
    sched = poisson(12, 60, rate=3.0, seed=5)
    res = run_arrow(g, tree, sched, latency=UniformLatency(0.2, 1.0), seed=7)
    assert len(res.completions) == 60
    for r in sched:
        rec = res.completions[r.rid]
        assert res.latency(r.rid) <= tree.distance(r.node, rec.informed_node) + 1e-9


def test_async_runs_deterministic_given_seed():
    g = complete_graph(10)
    tree = balanced_binary_overlay(g, 0)
    sched = poisson(10, 40, rate=2.0, seed=1)
    a = run_arrow(g, tree, sched, latency=UniformLatency(0.2, 1.0), seed=3)
    b = run_arrow(g, tree, sched, latency=UniformLatency(0.2, 1.0), seed=3)
    assert a.order == b.order
    assert a.total_latency == b.total_latency


def test_centralized_empty_schedule():
    g = complete_graph(3)
    res = run_centralized(g, 0, RequestSchedule([]))
    assert res.total_latency == 0.0


def test_service_time_delays_each_hop():
    """One request over a 4-hop chain: each hop adds latency + service."""
    g = path_graph(5)
    res = run_arrow(g, chain_tree(5), RequestSchedule([(4, 0.0)]), service_time=0.5)
    assert res.completions[0].completed_at == 4 * 1.5
