"""Differential suite: fast and batch closed loops vs the message simulator.

The fast and batch closed-loop engines' shared contract is
*bit-identical* output: same makespan, per-request hops, latencies,
issue/ack times, owners, message totals and tie-breaking — on every
graph family, spanning-tree strategy, latency model and (think_time,
service_time, requests_per_proc) point the drivers support, for both the
arrow and the centralized protocol.  Every instance runs **three ways**
(message, fast, batch) and asserts all pairs agree.  The suite enforces
the contract the same three ways as the open-loop differential suite
(``test_fast_arrow_differential.py``):

* a seeded cross-product grid (every graph generator × seeds × both
  protocols, plus tree-strategy, latency-model and loop-dynamics grids —
  over 150 instances) with randomized spanning trees;
* Hypothesis property tests drawing instance shape, tree strategy,
  latency model, think/service times and budgets freely;
* pinned regression cases for tie-heavy instances (every closed loop
  starts with an all-processors-at-t=0 tie storm), where deterministic
  tie-breaking is the whole story.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import (
    closed_loop_arrow_batch,
    closed_loop_centralized_batch,
)
from repro.core.fast_closed_loop import (
    closed_loop_arrow_fast,
    closed_loop_centralized_fast,
    closed_loop_runner,
)
from repro.graphs.generators import (
    balanced_binary_tree_graph,
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    gnp_connected_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    random_geometric_graph,
    star_graph,
    torus_graph,
)
from repro.net.latency import (
    ExponentialCappedLatency,
    ScaledWeightLatency,
    UniformLatency,
    UnitLatency,
    WeightLatency,
)
from repro.spanning.construct import (
    balanced_binary_overlay,
    bfs_tree,
    mst_kruskal,
    mst_prim,
    random_spanning_tree,
    star_overlay,
)
from repro.workloads.closed_loop import closed_loop_arrow, closed_loop_centralized

#: Every repro.graphs.generators family, at small sizes.
GRAPH_FAMILIES = {
    "path": lambda seed: path_graph(12),
    "cycle": lambda seed: cycle_graph(11),
    "star": lambda seed: star_graph(13),
    "complete": lambda seed: complete_graph(14),
    "binary_tree": lambda seed: balanced_binary_tree_graph(15),
    "grid": lambda seed: grid_graph(4, 4),
    "torus": lambda seed: torus_graph(3, 4),
    "hypercube": lambda seed: hypercube_graph(4),
    "geometric": lambda seed: random_geometric_graph(14, 0.45, seed=seed),
    "gnp": lambda seed: gnp_connected_graph(14, 0.3, seed=seed),
    "caterpillar": lambda seed: caterpillar_graph(5, 2),
    "lollipop": lambda seed: lollipop_graph(6, 6),
}

TREE_BUILDERS = {
    "bfs": lambda g, seed: bfs_tree(g, seed % g.num_nodes),
    "mst": lambda g, seed: mst_prim(g, seed % g.num_nodes),
    "kruskal": lambda g, seed: mst_kruskal(g, 0),
    "binary": lambda g, seed: balanced_binary_overlay(g, 0),
    "star": lambda g, seed: star_overlay(g, 0),
    "random": lambda g, seed: random_spanning_tree(
        g, seed % g.num_nodes, seed=seed + 17
    ),
}

#: (think_time, service_time) points indexed by seed in the main grid.
DYNAMICS = [(0.0, 0.0), (0.4, 0.1), (1.0, 0.0), (0.25, 0.25)]

SEEDS = [0, 1, 2, 3]

#: Every comparing field of ClosedLoopResult, for diagnosable mismatches.
FIELDS = (
    "protocol",
    "num_procs",
    "requests_per_proc",
    "makespan",
    "completions",
    "hops",
    "local_finds",
    "messages_sent",
    "issue_times",
    "ack_times",
    "owners",
    "latencies",
)


def assert_identical(a, b):
    """Field-for-field equality of two ClosedLoopResults (wall clock excluded)."""
    for f in FIELDS:
        assert getattr(a, f) == getattr(b, f), f"field {f!r} differs"
    # The dataclass eq must agree (wall_seconds is compare=False).
    assert a == b


def run_both_arrow(g, tree, **kw):
    """Message vs fast vs batch; the batch result is checked inline.

    Returns the (message, fast) pair for the call sites' own asserts —
    the batch engine's parity is asserted here so every instance in the
    suite covers all three engines.
    """
    a = closed_loop_arrow(g, tree, **kw)
    b = closed_loop_arrow_fast(g, tree, **kw)
    c = closed_loop_arrow_batch(g, tree, **kw)
    assert_identical(a, c)
    return a, b


def run_both_centralized(g, center, **kw):
    """Same three-way treatment for the centralized protocol."""
    a = closed_loop_centralized(g, center, **kw)
    b = closed_loop_centralized_fast(g, center, **kw)
    c = closed_loop_centralized_batch(g, center, **kw)
    assert_identical(a, c)
    return a, b


@pytest.mark.parametrize("gname", sorted(GRAPH_FAMILIES))
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("protocol", ["arrow", "centralized"])
def test_parity_grid(gname, seed, protocol):
    """96 randomized instances: every generator × seeds × both protocols."""
    g = GRAPH_FAMILIES[gname](seed)
    think, service = DYNAMICS[seed % len(DYNAMICS)]
    kw = dict(
        requests_per_proc=3,
        think_time=think,
        service_time=service,
        seed=seed,
    )
    if protocol == "arrow":
        tree = random_spanning_tree(g, root=seed % g.num_nodes, seed=seed + 17)
        a, b = run_both_arrow(g, tree, **kw)
    else:
        a, b = run_both_centralized(g, seed % g.num_nodes, **kw)
    assert_identical(a, b)


@pytest.mark.parametrize("tname", sorted(TREE_BUILDERS))
@pytest.mark.parametrize("think,service", [(0.0, 0.0), (0.3, 0.15)])
def test_parity_tree_strategies(tname, think, service):
    """Every spanning-tree construction drives the arrow loop identically."""
    g = gnp_connected_graph(13, 0.35, seed=5)
    if tname in ("binary", "star"):  # overlays need a complete host graph
        g = complete_graph(13)
    tree = TREE_BUILDERS[tname](g, 3)
    kw = dict(requests_per_proc=4, think_time=think, service_time=service, seed=2)
    a, b = run_both_arrow(g, tree, **kw)
    assert_identical(a, b)


@pytest.mark.parametrize(
    "latency,service",
    [
        (UnitLatency(), 0.15),
        (WeightLatency(), 0.0),
        (ScaledWeightLatency(2.5), 0.0),
        (UniformLatency(0.2, 1.0), 0.0),
        (UniformLatency(0.2, 1.0), 0.3),
        (ExponentialCappedLatency(), 0.1),
    ],
)
@pytest.mark.parametrize("think", [0.0, 0.7])
@pytest.mark.parametrize("protocol", ["arrow", "centralized"])
def test_parity_latency_models(latency, service, think, protocol):
    """Latency-model × service × think coverage, incl. stochastic models.

    Stochastic models work because the fast engine replays the Network's
    named RNG stream draw-for-draw in kernel event order — including the
    per-edge draws of routed ``queue_reply``/``creq`` paths.
    """
    g = grid_graph(4, 4)
    kw = dict(
        requests_per_proc=4,
        latency=latency,
        seed=11,
        service_time=service,
        think_time=think,
    )
    if protocol == "arrow":
        tree = bfs_tree(g, 5)
        a, b = run_both_arrow(g, tree, **kw)
    else:
        a, b = run_both_centralized(g, 5, **kw)
    assert_identical(a, b)


@pytest.mark.parametrize("think", [0.0, 0.5, 1.25])
@pytest.mark.parametrize("service", [0.0, 0.2])
@pytest.mark.parametrize("rpp", [1, 5])
@pytest.mark.parametrize("protocol", ["arrow", "centralized"])
def test_parity_loop_dynamics(think, service, rpp, protocol):
    """The (think_time, service_time, requests_per_proc) grid."""
    g = complete_graph(9)
    kw = dict(
        requests_per_proc=rpp, think_time=think, service_time=service, seed=3
    )
    if protocol == "arrow":
        tree = balanced_binary_overlay(g, 0)
        a, b = run_both_arrow(g, tree, **kw)
    else:
        a, b = run_both_centralized(g, 0, **kw)
    assert_identical(a, b)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    gname=st.sampled_from(sorted(GRAPH_FAMILIES)),
    tname=st.sampled_from(sorted(TREE_BUILDERS)),
    rpp=st.integers(1, 4),
    think=st.sampled_from([0.0, 0.0, 0.3, 1.0]),
    service=st.sampled_from([0.0, 0.0, 0.2]),
    stochastic=st.booleans(),
    protocol=st.sampled_from(["arrow", "centralized"]),
)
def test_parity_hypothesis(
    seed, gname, tname, rpp, think, service, stochastic, protocol
):
    """Property form: any combination of the above must stay identical."""
    g = GRAPH_FAMILIES[gname](seed % 50)
    latency = UniformLatency(0.1, 1.0) if stochastic else UnitLatency()
    kw = dict(
        requests_per_proc=rpp,
        latency=latency,
        seed=seed % 7,
        service_time=service,
        think_time=think,
    )
    if protocol == "arrow":
        if tname in ("binary", "star"):  # overlays need a complete host graph
            g = complete_graph(g.num_nodes)
        tree = TREE_BUILDERS[tname](g, seed)
        a, b = run_both_arrow(g, tree, **kw)
    else:
        a, b = run_both_centralized(g, seed % g.num_nodes, **kw)
    assert_identical(a, b)


# ----------------------------------------------------------------------
# pinned tie-heavy regressions
# ----------------------------------------------------------------------
def test_pinned_t0_tie_storm_on_path():
    """All processors fire at t=0 on a path: maximal simultaneity.

    Every closed loop *starts* as a tie storm (the driver schedules all
    first issues at t=0), so this exercises exactly the kernel's
    ``(time, seq)`` tie-breaking that the fast engine replays.
    """
    n = 17
    g = path_graph(n)
    tree = bfs_tree(g, root=n // 2)
    a, b = run_both_arrow(g, tree, requests_per_proc=3)
    assert_identical(a, b)
    # Pin the realised aggregate so silent tie-break changes are caught.
    assert b.completions == 51
    assert b.hops[:5] == a.hops[:5]


def test_pinned_star_center_contention():
    """Star: every leaf's first queue message collides at the centre at t=1."""
    g = star_graph(12)
    tree = bfs_tree(g, root=0)
    a, b = run_both_arrow(g, tree, requests_per_proc=4, service_time=0.2)
    assert_identical(a, b)


def test_pinned_centralized_center_pileup():
    """All creqs land at the centre simultaneously; service serialises them."""
    g = complete_graph(14)
    a, b = run_both_centralized(
        g, 0, requests_per_proc=5, service_time=0.25, think_time=0.0
    )
    assert_identical(a, b)
    # The centre handles every request: linear pile-up is visible.
    assert a.makespan >= 14 * 5 * 0.25 - 1e-9


def test_pinned_integer_latency_ties():
    """Integer-weighted edges + unit think times: everything collides."""
    from repro.graphs.graph import Graph

    base = grid_graph(3, 4)
    g = Graph(12)
    for i, (u, v, _) in enumerate(base.edges()):
        g.add_edge(u, v, float(1 + i % 3))
    tree = mst_prim(g, 0)
    kw = dict(
        requests_per_proc=3, latency=WeightLatency(), think_time=1.0, seed=4
    )
    a, b = run_both_arrow(g, tree, **kw)
    assert_identical(a, b)
    c, d = run_both_centralized(g, 6, **kw)
    assert_identical(c, d)


def test_pinned_two_processor_ping_pong():
    """n=2: the sink alternates every operation; acks and queues interleave."""
    g = complete_graph(2)
    tree = balanced_binary_overlay(g, 0)
    a, b = run_both_arrow(g, tree, requests_per_proc=20, think_time=1.0)
    assert_identical(a, b)
    assert a.completions == 40


def test_pinned_unit_think_ack_queue_collisions():
    """think_time == link latency: re-issues collide with in-flight queues."""
    g = hypercube_graph(3)
    tree = bfs_tree(g, 0)
    a, b = run_both_arrow(g, tree, requests_per_proc=6, think_time=1.0)
    assert_identical(a, b)


# ----------------------------------------------------------------------
# wall-clock exclusion and error parity
# ----------------------------------------------------------------------
def test_wall_seconds_excluded_from_comparison():
    """Two identical runs compare equal despite different wall clocks."""
    g = complete_graph(8)
    tree = balanced_binary_overlay(g, 0)
    a = closed_loop_arrow(g, tree, requests_per_proc=5)
    b = closed_loop_arrow(g, tree, requests_per_proc=5)
    assert a.wall_seconds >= 0.0 and b.wall_seconds >= 0.0
    a.wall_seconds, b.wall_seconds = 1.0, 2.0
    assert a == b  # wall time is measurement noise, not simulation state


def test_max_events_matches_message_driver():
    from repro.errors import SimulationError

    g = path_graph(10)
    tree = bfs_tree(g, 0)
    kw = dict(requests_per_proc=2, think_time=0.5)
    full = closed_loop_arrow(g, tree, **kw)
    # Events: n initial issues + per-message arrivals + think re-issues.
    for limit in (10, 50, 10_000):
        outcomes = []
        for fn in (
            closed_loop_arrow,
            closed_loop_arrow_fast,
            closed_loop_arrow_batch,
        ):
            try:
                fn(g, tree, max_events=limit, **kw)
                outcomes.append("ok")
            except SimulationError:
                outcomes.append("raised")
        assert len(set(outcomes)) == 1, (limit, outcomes)
    assert full.completions == 20


def test_closed_loop_runner_resolves_and_rejects():
    from repro.workloads.closed_loop import (
        closed_loop_arrow as msg_arrow,
        closed_loop_centralized as msg_central,
    )

    assert closed_loop_runner("arrow", "fast") is closed_loop_arrow_fast
    assert closed_loop_runner("arrow", "message") is msg_arrow
    assert closed_loop_runner("arrow", "batch") is closed_loop_arrow_batch
    assert closed_loop_runner("centralized", "fast") is closed_loop_centralized_fast
    assert closed_loop_runner("centralized", "message") is msg_central
    assert (
        closed_loop_runner("centralized", "batch") is closed_loop_centralized_batch
    )
    with pytest.raises(ValueError):
        closed_loop_runner("arrow", "open")
    with pytest.raises(ValueError):
        closed_loop_runner("ivy", "fast")
