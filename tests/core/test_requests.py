"""Unit tests for requests and schedules."""

import pytest

from repro.core.requests import NO_RID, ROOT_RID, Request, RequestSchedule
from repro.errors import ScheduleError


def test_canonical_order_is_time_major():
    s = RequestSchedule([(5, 3.0), (1, 1.0), (2, 2.0)])
    assert [r.node for r in s] == [1, 2, 5]
    assert [r.rid for r in s] == [0, 1, 2]


def test_ties_keep_insertion_order():
    s = RequestSchedule([(9, 1.0), (4, 1.0), (7, 1.0)])
    assert [r.node for r in s] == [9, 4, 7]


def test_negative_time_rejected():
    with pytest.raises(ScheduleError):
        RequestSchedule([(0, -1.0)])


def test_by_rid_lookup():
    s = RequestSchedule([(3, 0.0), (4, 1.0)])
    assert s.by_rid(1).node == 4
    with pytest.raises(ScheduleError):
        s.by_rid(7)


def test_nodes_times_vectors():
    s = RequestSchedule([(3, 0.5), (4, 1.5)])
    assert s.nodes == [3, 4]
    assert s.times == [0.5, 1.5]
    assert s.max_time() == 1.5


def test_empty_schedule():
    s = RequestSchedule([])
    assert len(s) == 0
    assert s.max_time() == 0.0


def test_validate_nodes():
    s = RequestSchedule([(3, 0.0)])
    s.validate_nodes(4)
    with pytest.raises(ScheduleError):
        s.validate_nodes(3)


def test_shifted_moves_selected_requests():
    s = RequestSchedule([(0, 0.0), (1, 5.0), (2, 9.0)])
    s2 = s.shifted([1, 2], -3.0)
    assert s2.times == [0.0, 2.0, 6.0]
    # Unshifted schedule is untouched (immutability).
    assert s.times == [0.0, 5.0, 9.0]


def test_shifted_reindexes_canonically():
    s = RequestSchedule([(0, 0.0), (1, 5.0)])
    s2 = s.shifted([1], -5.0)  # both now at t=0
    assert [r.time for r in s2] == [0.0, 0.0]
    assert sorted(r.rid for r in s2) == [0, 1]


def test_restricted_to_times():
    s = RequestSchedule([(0, 0.0), (1, 2.0), (2, 4.0)])
    got = s.restricted_to_times(1.0, 3.0)
    assert [r.node for r in got] == [1]


def test_reserved_ids_distinct():
    assert ROOT_RID != NO_RID
    assert ROOT_RID < 0 and NO_RID < 0


def test_request_frozen():
    r = Request(0, 1.0, 0)
    with pytest.raises(AttributeError):
        r.node = 5  # type: ignore[misc]
