"""Unit tests for RunResult bookkeeping and total-order verification."""

import pytest

from repro.core.queueing import CompletionRecord, RunResult, verify_total_order
from repro.core.requests import ROOT_RID, RequestSchedule
from repro.errors import ProtocolError


def sched3():
    return RequestSchedule([(0, 0.0), (1, 1.0), (2, 2.0)])


def rec(rid, pred, node=0, when=1.0, hops=1):
    return CompletionRecord(rid, pred, node, when, hops)


def test_order_reconstruction_follows_successor_chain():
    r = RunResult(sched3())
    r.record(rec(2, 0))
    r.record(rec(0, ROOT_RID))
    r.record(rec(1, 2))
    assert r.order == [0, 2, 1]
    assert verify_total_order(r) == [0, 2, 1]


def test_double_completion_rejected():
    r = RunResult(sched3())
    r.record(rec(0, ROOT_RID))
    with pytest.raises(ProtocolError):
        r.record(rec(0, ROOT_RID))


def test_two_requests_claiming_same_predecessor_rejected():
    r = RunResult(sched3())
    r.record(rec(0, ROOT_RID))
    r.record(rec(1, 0))
    r.record(rec(2, 0))
    with pytest.raises(ProtocolError):
        _ = r.order


def test_broken_chain_detected():
    r = RunResult(sched3())
    r.record(rec(0, ROOT_RID))
    r.record(rec(2, 1))  # predecessor 1 never completed
    with pytest.raises(ProtocolError):
        _ = r.order


def test_missing_completion_detected():
    r = RunResult(sched3())
    r.record(rec(0, ROOT_RID))
    with pytest.raises(ProtocolError, match="never completed"):
        verify_total_order(r)


def test_latency_and_totals():
    r = RunResult(sched3())
    r.record(CompletionRecord(0, ROOT_RID, 0, 2.0, 2))
    r.record(CompletionRecord(1, 0, 0, 4.0, 3))
    r.record(CompletionRecord(2, 1, 1, 2.5, 0))
    assert r.latency(0) == 2.0
    assert r.latency(1) == 3.0
    assert r.latency(2) == 0.5
    assert r.total_latency == pytest.approx(5.5)
    assert r.total_hops == 5
    assert r.mean_hops == pytest.approx(5 / 3)
    assert r.local_find_fraction() == pytest.approx(1 / 3)


def test_empty_result_statistics():
    r = RunResult(RequestSchedule([]))
    assert r.order == []
    assert r.total_latency == 0.0
    assert r.mean_hops == 0.0
    assert r.local_find_fraction() == 0.0
