"""Differential suite: fast and batch engines vs the message simulator.

The fast and batch engines' shared contract is *bit-identical* output:
same completions (order, predecessors, hop counts, times), same
makespan, same message counters, same tie-breaking — on every graph
family, spanning-tree strategy, schedule family and latency model the
runner supports.  Every instance here runs **three ways** (message,
fast, batch) and asserts all pairs agree.  The suite enforces the
contract three ways:

* a seeded cross-product grid (every graph generator × every schedule
  family × several seeds — well over 200 instances) with randomized
  spanning trees;
* Hypothesis property tests drawing instance shape, tree strategy,
  latency model and service time freely;
* pinned regression cases for tie-heavy one-shot instances, where
  the deterministic tie-breaking is the whole story.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import BatchArrowEngine, run_arrow_batch
from repro.core.fast_arrow import FastArrowEngine, run_arrow_fast
from repro.core.queueing import verify_total_order
from repro.core.requests import RequestSchedule
from repro.core.runner import run_arrow
from repro.graphs.generators import (
    balanced_binary_tree_graph,
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    gnp_connected_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    random_geometric_graph,
    star_graph,
    torus_graph,
)
from repro.net.latency import (
    ExponentialCappedLatency,
    ScaledWeightLatency,
    UniformLatency,
    UnitLatency,
    WeightLatency,
)
from repro.spanning.construct import (
    balanced_binary_overlay,
    bfs_tree,
    mst_prim,
    random_spanning_tree,
)
from repro.workloads.schedules import (
    bursty,
    hotspot,
    one_shot,
    poisson,
    random_times,
    sequential,
)

#: Every repro.graphs.generators family, at small sizes.
GRAPH_FAMILIES = {
    "path": lambda seed: path_graph(12),
    "cycle": lambda seed: cycle_graph(11),
    "star": lambda seed: star_graph(13),
    "complete": lambda seed: complete_graph(14),
    "binary_tree": lambda seed: balanced_binary_tree_graph(15),
    "grid": lambda seed: grid_graph(4, 4),
    "torus": lambda seed: torus_graph(3, 4),
    "hypercube": lambda seed: hypercube_graph(4),
    "geometric": lambda seed: random_geometric_graph(14, 0.45, seed=seed),
    "gnp": lambda seed: gnp_connected_graph(14, 0.3, seed=seed),
    "caterpillar": lambda seed: caterpillar_graph(5, 2),
    "lollipop": lambda seed: lollipop_graph(6, 6),
}

#: All five schedule families (plus the uniform-random integration one).
SCHEDULE_FAMILIES = {
    "one_shot": lambda n, seed: one_shot(list(range(n))),
    "sequential": lambda n, seed: sequential(list(range(n)), gap=3.0),
    "poisson": lambda n, seed: poisson(n, 4 * n, rate=0.5 * n, seed=seed),
    "bursty": lambda n, seed: bursty(n, 3, 2 * n, 2.0, 5.0, seed=seed),
    "hotspot": lambda n, seed: hotspot(n, 4 * n, 0.5 * n, [0, 1], seed=seed),
    "random": lambda n, seed: random_times(n, 3 * n, horizon=2.0 * n, seed=seed),
}

SEEDS = [0, 1, 2]


def assert_identical(a, b):
    """Field-for-field equality of two RunResults (wall clock excluded)."""
    assert a.completions == b.completions
    assert list(a.completions) == list(b.completions)  # completion order
    assert a.makespan == b.makespan
    assert a.network_stats == b.network_stats
    assert verify_total_order(a) == verify_total_order(b)


def run_engines(g, tree, sched, **kw):
    """Run all three engines; return (message, fast, batch) results."""
    return (
        run_arrow(g, tree, sched, **kw),
        run_arrow_fast(g, tree, sched, **kw),
        run_arrow_batch(g, tree, sched, **kw),
    )


def assert_three_way(g, tree, sched, **kw):
    """All three engines must agree pairwise; returns the message result."""
    a, b, c = run_engines(g, tree, sched, **kw)
    assert_identical(a, b)
    assert_identical(a, c)
    return a


@pytest.mark.parametrize("gname", sorted(GRAPH_FAMILIES))
@pytest.mark.parametrize("sname", sorted(SCHEDULE_FAMILIES))
@pytest.mark.parametrize("seed", SEEDS)
def test_differential_grid(gname, sname, seed):
    """216 randomized instances (×3 engines): generators × schedules."""
    g = GRAPH_FAMILIES[gname](seed)
    tree = random_spanning_tree(g, root=seed % g.num_nodes, seed=seed + 17)
    sched = SCHEDULE_FAMILIES[sname](g.num_nodes, seed)
    assert_three_way(g, tree, sched)


@pytest.mark.parametrize(
    "latency,service_time",
    [
        (UnitLatency(), 0.15),
        (WeightLatency(), 0.0),
        (ScaledWeightLatency(2.5), 0.0),
        (UniformLatency(0.2, 1.0), 0.0),
        (UniformLatency(0.2, 1.0), 0.3),
        (ExponentialCappedLatency(), 0.1),
    ],
)
@pytest.mark.parametrize("tree_builder", [bfs_tree, mst_prim])
def test_differential_latency_models(latency, service_time, tree_builder):
    """Latency-model × service-time coverage, incl. stochastic models.

    Stochastic models work because the fast engine replays the Network's
    named RNG stream draw-for-draw in kernel event order.
    """
    g = grid_graph(4, 5)
    tree = tree_builder(g, 0)
    sched = poisson(20, 80, rate=8.0, seed=5)
    kw = dict(latency=latency, seed=11, service_time=service_time)
    assert_three_way(g, tree, sched, **kw)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    gname=st.sampled_from(sorted(GRAPH_FAMILIES)),
    sname=st.sampled_from(sorted(SCHEDULE_FAMILIES)),
    tree_kind=st.sampled_from(["random", "bfs", "mst", "binary"]),
    service_time=st.sampled_from([0.0, 0.0, 0.2]),
    stochastic=st.booleans(),
)
def test_differential_hypothesis(seed, gname, sname, tree_kind, service_time, stochastic):
    """Property form: any combination of the above must stay identical."""
    g = GRAPH_FAMILIES[gname](seed % 50)
    if tree_kind == "random":
        tree = random_spanning_tree(g, root=seed % g.num_nodes, seed=seed)
    elif tree_kind == "bfs":
        tree = bfs_tree(g, root=seed % g.num_nodes)
    elif tree_kind == "mst":
        tree = mst_prim(g, root=seed % g.num_nodes)
    else:
        tree = balanced_binary_overlay(complete_graph(g.num_nodes), root=0)
        g = complete_graph(g.num_nodes)
    sched = SCHEDULE_FAMILIES[sname](g.num_nodes, seed % 100)
    latency = UniformLatency(0.1, 1.0) if stochastic else UnitLatency()
    kw = dict(latency=latency, seed=seed % 7, service_time=service_time)
    assert_three_way(g, tree, sched, **kw)


# ----------------------------------------------------------------------
# pinned tie-heavy regressions
# ----------------------------------------------------------------------
def test_pinned_one_shot_tie_storm_on_path():
    """All nodes fire at t=0 on a path: maximal simultaneity everywhere."""
    n = 17
    g = path_graph(n)
    tree = bfs_tree(g, root=n // 2)
    sched = one_shot(list(range(n)))
    a, b, c = run_engines(g, tree, sched)
    assert_identical(a, b)
    assert_identical(a, c)
    # Pin the realised order so silent tie-break changes are caught.
    assert verify_total_order(b) == verify_total_order(a)
    assert b.completions[0].predecessor == a.completions[0].predecessor
    assert c.completions[0].predecessor == a.completions[0].predecessor


def test_pinned_one_shot_on_star_center_contention():
    """Star: every leaf's queue message collides at the centre at t=1."""
    g = star_graph(12)
    tree = bfs_tree(g, root=0)
    sched = one_shot(list(range(1, 12)))
    assert_three_way(g, tree, sched)


def test_pinned_duplicate_node_time_requests():
    """Many requests from one node at one instant (pure local-find chain)."""
    g = complete_graph(6)
    tree = balanced_binary_overlay(g, 0)
    sched = RequestSchedule([(3, 1.0)] * 9 + [(2, 1.0)] * 3)
    a = assert_three_way(g, tree, sched)
    assert sum(1 for r in a.completions.values() if r.hops == 0) >= 9


def test_pinned_integer_latency_ties():
    """Integer-weighted edges + integer issue times: everything collides."""
    g = grid_graph(3, 4)
    # Reweight by rebuilding: integer weights 1..3 on the same topology.
    from repro.graphs.graph import Graph

    g2 = Graph(12)
    for i, (u, v, _) in enumerate(g.edges()):
        g2.add_edge(u, v, float(1 + i % 3))
    tree = mst_prim(g2, 0)
    sched = RequestSchedule([(v, float(t)) for t in range(4) for v in range(12)])
    kw = dict(latency=WeightLatency())
    assert_three_way(g2, tree, sched, **kw)


class _AsymmetricLatency(UnitLatency):
    """Deterministic but direction-dependent: the ABC permits this."""

    def sample(self, src, dst, weight, rng):
        return 1.0 if src < dst else 2.0

    def max_delay(self, weight):
        return 2.0


def test_differential_direction_dependent_deterministic_model():
    """Deterministic models may depend on (src, dst); parity must hold."""
    g = grid_graph(4, 4)
    tree = bfs_tree(g, root=5)
    sched = poisson(16, 60, rate=6.0, seed=3)
    kw = dict(latency=_AsymmetricLatency())
    a = assert_three_way(g, tree, sched, **kw)
    # The asymmetry must actually be visible, or this test checks nothing.
    sym = run_arrow_fast(g, tree, sched)
    assert sym.makespan != a.makespan


# ----------------------------------------------------------------------
# engine-object behaviour
# ----------------------------------------------------------------------
def test_engine_is_reusable_across_runs():
    """One engine instance replays many schedules independently."""
    g = complete_graph(10)
    tree = balanced_binary_overlay(g, 0)
    eng = FastArrowEngine(g, tree)
    beng = BatchArrowEngine(g, tree)
    for seed in range(3):
        sched = poisson(10, 50, rate=5.0, seed=seed)
        a = run_arrow(g, tree, sched)
        assert_identical(a, eng.run(sched))
        assert_identical(a, beng.run(sched))
    # Repeating the same schedule gives the same answer (no state leak).
    sched = poisson(10, 50, rate=5.0, seed=0)
    assert eng.run(sched).completions == eng.run(sched).completions
    assert beng.run(sched).completions == beng.run(sched).completions


def test_engine_rejects_non_spanning_tree():
    from repro.errors import GraphError
    from repro.spanning.tree import SpanningTree

    g = path_graph(5)
    bad = SpanningTree([0, 0, 0, 0, 0], root=0)  # star edges absent from path
    with pytest.raises(GraphError):
        FastArrowEngine(g, bad)
    with pytest.raises(GraphError):
        BatchArrowEngine(g, bad)


def test_engine_max_events_matches_runner():
    from repro.errors import SimulationError

    g = path_graph(20)
    tree = bfs_tree(g, 0)
    sched = one_shot(list(range(20)))
    full = run_arrow(g, tree, sched)
    needed = full.network_stats["messages_sent"] + len(sched)
    for limit in (needed, needed - 1, 5):
        outcomes = []
        for fn in (run_arrow, run_arrow_fast, run_arrow_batch):
            try:
                fn(g, tree, sched, max_events=limit)
                outcomes.append("ok")
            except SimulationError:
                outcomes.append("raised")
        assert len(set(outcomes)) == 1, (limit, outcomes)
