"""Unit tests for the NTA/Ivy adaptive-pointer baseline."""

import math

from repro.core.adaptive import run_adaptive
from repro.core.queueing import verify_total_order
from repro.graphs import complete_graph
from repro.workloads.schedules import one_shot, poisson, sequential


def test_sequential_requests_form_total_order():
    g = complete_graph(8)
    sched = sequential([3, 5, 1, 7], gap=10.0)
    res = run_adaptive(g, 0, sched)
    assert verify_total_order(res) == [0, 1, 2, 3]


def test_sequential_requests_take_one_forward_each_after_warmup():
    """Path compression: once pointers are compressed, finds are short."""
    g = complete_graph(8)
    sched = sequential([3, 5, 1, 7, 2, 6], gap=10.0)
    res = run_adaptive(g, 0, sched)
    # First request chases root (1 forward); later ones find the tail in
    # one hop because everyone visited re-pointed at the newest requester.
    hops = [res.completions[r.rid].hops for r in sched]
    assert hops[0] == 1
    assert all(h <= 2 for h in hops)


def test_concurrent_one_shot_completes():
    g = complete_graph(12)
    res = run_adaptive(g, 0, one_shot(list(range(1, 12))))
    assert len(verify_total_order(res)) == 11


def test_poisson_workload_totally_ordered():
    g = complete_graph(20)
    sched = poisson(20, 150, rate=5.0, seed=2)
    res = run_adaptive(g, 0, sched)
    assert len(verify_total_order(res)) == 150


def test_mean_messages_logarithmic_scaling():
    """Ginat et al.: amortised Θ(log n) messages per op.

    We check the weaker empirical fact that the per-op message count grows
    much slower than n: going 8 -> 64 nodes (8x) should far less than
    double the per-op forwards under a uniform one-shot workload.
    """
    means = []
    for n in (8, 64):
        g = complete_graph(n)
        res = run_adaptive(g, 0, one_shot(list(range(1, n))))
        means.append(res.network_stats["messages_sent"] / (n - 1))
    assert means[1] <= means[0] * 2.0
    assert means[1] <= 2.0 * math.log2(64)


def test_local_repeat_request_is_free():
    g = complete_graph(6)
    sched = sequential([4, 4], gap=10.0)
    res = run_adaptive(g, 0, sched)
    assert res.completions[1].hops == 0
    assert res.latency(1) == 0.0
