"""Unit tests for the Graph data structure."""

import pytest

from repro.errors import GraphError
from repro.graphs.graph import Graph


def test_empty_graph_rejected():
    with pytest.raises(GraphError):
        Graph(0)


def test_add_edge_and_query():
    g = Graph(3)
    g.add_edge(0, 1, 2.5)
    assert g.has_edge(0, 1) and g.has_edge(1, 0)
    assert g.weight(0, 1) == 2.5
    assert g.num_edges == 1


def test_readding_edge_overwrites_weight():
    g = Graph(2)
    g.add_edge(0, 1, 1.0)
    g.add_edge(0, 1, 3.0)
    assert g.weight(0, 1) == 3.0
    assert g.num_edges == 1


def test_self_loop_rejected():
    g = Graph(2)
    with pytest.raises(GraphError):
        g.add_edge(1, 1)


def test_nonpositive_weight_rejected():
    g = Graph(2)
    with pytest.raises(GraphError):
        g.add_edge(0, 1, 0.0)


def test_out_of_range_node_rejected():
    g = Graph(2)
    with pytest.raises(GraphError):
        g.add_edge(0, 5)


def test_missing_edge_weight_raises():
    g = Graph(3)
    with pytest.raises(GraphError):
        g.weight(0, 2)


def test_neighbors_and_degree():
    g = Graph(4)
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    assert sorted(g.neighbors(0)) == [1, 2]
    assert g.degree(0) == 2
    assert g.degree(3) == 0


def test_neighbor_weights():
    g = Graph(3)
    g.add_edge(0, 1, 2.0)
    assert dict(g.neighbor_weights(0)) == {1: 2.0}


def test_edges_iterates_each_edge_once():
    g = Graph(4)
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    g.add_edge(2, 3)
    edges = list(g.edges())
    assert len(edges) == 3
    assert all(u < v for u, v, _ in edges)


def test_from_edges_with_and_without_weights():
    g = Graph.from_edges(3, [(0, 1), (1, 2, 5.0)])
    assert g.weight(0, 1) == 1.0
    assert g.weight(1, 2) == 5.0


def test_is_unit_weighted():
    g = Graph.from_edges(3, [(0, 1), (1, 2)])
    assert g.is_unit_weighted()
    g.add_edge(0, 2, 2.0)
    assert not g.is_unit_weighted()


def test_copy_is_deep():
    g = Graph.from_edges(3, [(0, 1)])
    h = g.copy()
    h.add_edge(1, 2)
    assert g.num_edges == 1 and h.num_edges == 2


def test_nodes_range():
    assert list(Graph(3).nodes()) == [0, 1, 2]
