"""Unit tests for graph/tree validation helpers."""

import pytest

from repro.errors import GraphError, TreeError
from repro.graphs import (
    Graph,
    complete_graph,
    is_tree,
    path_graph,
    require_connected,
    require_spanning_subgraph,
    require_tree,
)


def test_require_connected_passes_and_fails():
    require_connected(path_graph(4))
    g = Graph(3)
    g.add_edge(0, 1)
    with pytest.raises(GraphError):
        require_connected(g)


def test_is_tree():
    assert is_tree(path_graph(5))
    assert not is_tree(complete_graph(4))
    g = Graph(4)
    g.add_edge(0, 1)
    g.add_edge(2, 3)
    assert not is_tree(g)


def test_require_tree_wrong_edge_count():
    with pytest.raises(TreeError):
        require_tree(complete_graph(3))


def test_require_tree_disconnected():
    g = Graph(4)
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    g.add_edge(1, 2)  # 3 edges on 4 nodes, but node 3 isolated
    with pytest.raises(TreeError):
        require_tree(g)


def test_require_spanning_subgraph():
    g = complete_graph(4)
    require_spanning_subgraph(g, [(0, 1), (1, 2), (2, 3)])
    h = path_graph(4)
    with pytest.raises(TreeError):
        require_spanning_subgraph(h, [(0, 3)])
