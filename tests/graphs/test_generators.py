"""Unit tests for topology generators (networkx as independent oracle)."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graphs import (
    balanced_binary_tree_graph,
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    gnp_connected_graph,
    grid_graph,
    hypercube_graph,
    is_connected,
    is_tree,
    lollipop_graph,
    path_graph,
    random_geometric_graph,
    star_graph,
    torus_graph,
)


def to_nx(g):
    G = nx.Graph()
    G.add_nodes_from(range(g.num_nodes))
    G.add_weighted_edges_from(g.edges())
    return G


def test_path_graph_shape():
    g = path_graph(5)
    assert g.num_edges == 4
    assert is_tree(g)
    assert g.degree(0) == 1 and g.degree(2) == 2


def test_cycle_graph_shape():
    g = cycle_graph(6)
    assert g.num_edges == 6
    assert all(g.degree(v) == 2 for v in g.nodes())
    with pytest.raises(GraphError):
        cycle_graph(2)


def test_star_graph_shape():
    g = star_graph(7)
    assert g.degree(0) == 6
    assert is_tree(g)


def test_complete_graph_shape():
    g = complete_graph(8)
    assert g.num_edges == 8 * 7 // 2
    assert all(g.degree(v) == 7 for v in g.nodes())


def test_balanced_binary_tree_depth():
    g = balanced_binary_tree_graph(15)
    assert is_tree(g)
    # Heap layout: node 14's ancestors are 6, 2, 0 -> depth 3 = log2(15+1)-1.
    assert g.has_edge(14, 6) and g.has_edge(6, 2) and g.has_edge(2, 0)


def test_grid_graph_matches_networkx():
    g = grid_graph(4, 5)
    G = to_nx(g)
    H = nx.grid_2d_graph(4, 5)
    assert G.number_of_edges() == H.number_of_edges()
    assert is_connected(g)
    with pytest.raises(GraphError):
        grid_graph(0, 3)


def test_torus_graph_is_4_regular():
    g = torus_graph(4, 5)
    assert all(g.degree(v) == 4 for v in g.nodes())
    with pytest.raises(GraphError):
        torus_graph(2, 5)


def test_hypercube_matches_networkx():
    g = hypercube_graph(4)
    H = nx.hypercube_graph(4)
    assert g.num_nodes == 16
    assert g.num_edges == H.number_of_edges()
    assert all(g.degree(v) == 4 for v in g.nodes())
    with pytest.raises(GraphError):
        hypercube_graph(0)


def test_random_geometric_connected_and_deterministic():
    g1 = random_geometric_graph(30, 0.25, seed=5)
    g2 = random_geometric_graph(30, 0.25, seed=5)
    assert is_connected(g1)
    assert sorted(g1.edges()) == sorted(g2.edges())


def test_random_geometric_euclidean_weights():
    g = random_geometric_graph(20, 0.4, seed=1, euclidean_weights=True)
    assert all(0 < w <= 2.0**0.5 + 1e-9 for _, _, w in g.edges())


def test_gnp_connected():
    g = gnp_connected_graph(25, 0.2, seed=3)
    assert is_connected(g)
    with pytest.raises(GraphError):
        gnp_connected_graph(10, 0.0)


def test_caterpillar_shape():
    g = caterpillar_graph(4, 2)
    assert g.num_nodes == 12
    assert is_tree(g)


def test_lollipop_shape():
    g = lollipop_graph(5, 3)
    assert g.num_nodes == 8
    assert g.num_edges == 10 + 3
    assert is_connected(g)
