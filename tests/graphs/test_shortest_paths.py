"""Unit tests for shortest paths vs networkx oracles."""

import math

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graphs import (
    Graph,
    all_pairs_distances,
    bfs_distances,
    connected_components,
    dijkstra,
    eccentricity,
    gnp_connected_graph,
    graph_diameter,
    grid_graph,
    is_connected,
    path_graph,
    random_geometric_graph,
    shortest_path,
    single_source_distances,
)


def to_nx(g):
    G = nx.Graph()
    G.add_nodes_from(range(g.num_nodes))
    G.add_weighted_edges_from(g.edges())
    return G


def test_bfs_distances_on_path():
    g = path_graph(6)
    assert bfs_distances(g, 0) == [0, 1, 2, 3, 4, 5]


def test_bfs_unreachable_is_inf():
    g = Graph(3)
    g.add_edge(0, 1)
    assert math.isinf(bfs_distances(g, 0)[2])


def test_dijkstra_matches_networkx_weighted():
    g = random_geometric_graph(25, 0.35, seed=2, euclidean_weights=True)
    G = to_nx(g)
    dist, _ = dijkstra(g, 0)
    want = nx.single_source_dijkstra_path_length(G, 0)
    for v in range(25):
        assert dist[v] == pytest.approx(want[v])


def test_single_source_dispatches_by_weights():
    g = path_graph(4)
    assert single_source_distances(g, 0) == [0, 1, 2, 3]
    g.add_edge(0, 3, 0.5)
    assert single_source_distances(g, 0)[3] == 0.5


def test_all_pairs_matrix_symmetric_and_correct():
    g = grid_graph(3, 4)
    M = all_pairs_distances(g)
    G = to_nx(g)
    want = dict(nx.all_pairs_shortest_path_length(G))
    for u in range(12):
        for v in range(12):
            assert M[u, v] == want[u][v]
            assert M[u, v] == M[v, u]


def test_shortest_path_endpoints_and_length():
    g = grid_graph(4, 4)
    p = shortest_path(g, 0, 15)
    assert p[0] == 0 and p[-1] == 15
    assert len(p) - 1 == 6  # Manhattan distance in the mesh
    for a, b in zip(p, p[1:]):
        assert g.has_edge(a, b)


def test_shortest_path_unreachable_raises():
    g = Graph(3)
    g.add_edge(0, 1)
    with pytest.raises(GraphError):
        shortest_path(g, 0, 2)


def test_connected_components():
    g = Graph(5)
    g.add_edge(0, 1)
    g.add_edge(2, 3)
    comps = connected_components(g)
    assert sorted(map(tuple, comps)) == [(0, 1), (2, 3), (4,)]
    assert not is_connected(g)


def test_eccentricity_and_diameter():
    g = path_graph(7)
    assert eccentricity(g, 0) == 6
    assert eccentricity(g, 3) == 3
    assert graph_diameter(g) == 6


def test_diameter_matches_networkx_on_random_graph():
    g = gnp_connected_graph(20, 0.2, seed=11)
    assert graph_diameter(g) == nx.diameter(to_nx(g))
