"""Property-based tests for the Lemma 3.11 transformation."""

from hypothesis import given, settings, strategies as st

from repro.analysis.nearest_neighbor import predict_arrow_run
from repro.analysis.optimal import opt_bounds
from repro.analysis.transform import compress_idle_time, max_gap_slack
from repro.core.requests import RequestSchedule
from repro.spanning import SpanningTree


@st.composite
def chain_instance(draw, max_nodes=10, max_requests=7):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    tree = SpanningTree([max(0, i - 1) for i in range(n)], root=0)
    m = draw(st.integers(min_value=1, max_value=max_requests))
    pairs = [
        (
            draw(st.integers(min_value=0, max_value=n - 1)),
            float(draw(st.integers(min_value=0, max_value=100))),
        )
        for _ in range(m)
    ]
    return tree, RequestSchedule(pairs)


@given(chain_instance())
@settings(max_examples=50, deadline=None)
def test_compression_reaches_fixed_point(inst):
    tree, sched = inst
    rep = compress_idle_time(tree, sched)
    assert max_gap_slack(tree, rep.schedule) <= 1e-9


@given(chain_instance())
@settings(max_examples=50, deadline=None)
def test_times_nonnegative_and_not_increased(inst):
    tree, sched = inst
    rep = compress_idle_time(tree, sched)
    assert all(t >= -1e-12 for t in rep.schedule.times)
    assert rep.schedule.max_time() <= sched.max_time() + 1e-12


@given(chain_instance())
@settings(max_examples=40, deadline=None)
def test_arrow_cost_invariant(inst):
    """Lemma 3.11: arrow's cost unchanged (on tie-free instances exactly;
    with ties the executor's favourable-policy cost is compared)."""
    tree, sched = inst
    before = predict_arrow_run(tree, sched)
    rep = compress_idle_time(tree, sched)
    after = predict_arrow_run(tree, rep.schedule)
    if not (before.had_ties or after.had_ties):
        assert abs(after.arrow_cost - before.arrow_cost) < 1e-9


@given(chain_instance(max_requests=6))
@settings(max_examples=30, deadline=None)
def test_exact_opt_not_increased(inst):
    tree, sched = inst
    g = tree.to_graph()
    before = opt_bounds(g, tree, sched, 1.0)
    rep = compress_idle_time(tree, sched)
    after = opt_bounds(g, tree, rep.schedule, 1.0)
    assert before.exact and after.exact
    assert after.upper <= before.upper + 1e-9
