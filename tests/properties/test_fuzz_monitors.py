"""Property-based fuzz harness: monitors as the oracle over random runs.

Each example draws a random spanning tree, a random open-loop schedule,
a random fault plan (possibly empty) and a service-time mode, then runs
all three engines with a deep-checking :class:`ArrowMonitor` attached.
The monitor *is* the oracle: every per-event invariant plus the O(n)
configuration rescan must hold on every engine's trace, the three
engines must agree bit-for-bit on results and recovery reports, and
completion accounting must balance.

The profile is pinned (``derandomize=True``, fixed example budget) so CI
explores the identical corpus every run: 70 examples x 3 engines = 210
schedule x fault x engine cases.
"""

from hypothesis import given, settings, strategies as st

from repro.core.requests import RequestSchedule
from repro.faults import FaultPlan, run_arrow_faulted
from repro.monitors import ArrowMonitor
from repro.spanning import SpanningTree

ENGINES = ("fast", "batch", "message")

_times = st.floats(
    min_value=0.0, max_value=20.0, allow_nan=False, allow_infinity=False
)


@st.composite
def fuzz_case(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    parent = [0] + [
        draw(st.integers(min_value=0, max_value=i - 1)) for i in range(1, n)
    ]
    tree = SpanningTree(parent, root=0)

    pairs = draw(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=n - 1), _times),
            min_size=1,
            max_size=30,
        )
    )
    schedule = RequestSchedule(pairs)

    crashes = tuple(
        draw(
            st.lists(
                st.tuples(st.integers(min_value=0, max_value=n - 1), _times),
                max_size=3,
            )
        )
    )
    drops = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        child = draw(st.integers(min_value=1, max_value=n - 1))
        t0 = draw(_times)
        dt = draw(
            st.floats(
                min_value=0.1, max_value=10.0,
                allow_nan=False, allow_infinity=False,
            )
        )
        drops.append((child, parent[child], t0, t0 + dt))
    loss = draw(
        st.one_of(
            st.just(0.0),
            st.floats(
                min_value=0.0, max_value=0.3,
                allow_nan=False, allow_infinity=False, exclude_max=True,
            ),
        )
    )
    plan = FaultPlan(
        crashes=crashes, link_drops=tuple(drops), loss_rate=loss
    )
    service_time = draw(st.sampled_from([0.0, 0.5]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return tree, schedule, plan, service_time, seed


@given(fuzz_case())
@settings(max_examples=70, derandomize=True, deadline=None)
def test_monitors_hold_and_engines_agree(case):
    tree, schedule, plan, service_time, seed = case
    graph = tree.to_graph()
    outcomes = []
    for engine in ENGINES:
        monitor = ArrowMonitor(tree, deep=True)
        result, report = run_arrow_faulted(
            graph, tree, schedule, plan,
            engine=engine, seed=seed, service_time=service_time,
            on_event=monitor,
        )
        # The oracle: every invariant held per event; the books balance.
        monitor.finalize(expected=len(schedule))
        assert monitor.violation_count == 0
        assert monitor.completed == set(result.completions)
        assert monitor.lost == set(report.lost_rids)
        assert len(result.completions) + report.requests_lost == len(schedule)
        assert report.final_violations == 0
        outcomes.append((result.completions, result.makespan, report))
    assert outcomes[0] == outcomes[1] == outcomes[2]


@given(fuzz_case())
@settings(max_examples=25, derandomize=True, deadline=None)
def test_monitored_run_equals_unmonitored(case):
    """Monitors are observers: attaching one never perturbs the run."""
    tree, schedule, plan, service_time, seed = case
    graph = tree.to_graph()
    bare, bare_report = run_arrow_faulted(
        graph, tree, schedule, plan, seed=seed, service_time=service_time
    )
    monitor = ArrowMonitor(tree, deep=True)
    watched, report = run_arrow_faulted(
        graph, tree, schedule, plan,
        seed=seed, service_time=service_time, on_event=monitor,
    )
    monitor.finalize(expected=len(schedule))
    assert watched.completions == bare.completions
    assert watched.makespan == bare.makespan
    assert report == bare_report
