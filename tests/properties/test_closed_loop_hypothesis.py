"""Property tests for closed-loop invariants, on both engines.

The §5 measurement loop has structural invariants that hold for *every*
graph, tree, latency model and loop parameterisation — independent of the
bit-identity contract checked by the differential suite:

* completion count: exactly ``num_procs * requests_per_proc`` requests
  complete, each processor owning exactly its budget;
* ack discipline: a processor's request k+1 is issued exactly
  ``think_time`` after the acknowledgement of request k was handled, and
  its first request is issued at t = 0;
* causality: no acknowledgement precedes its request's issue; every
  recorded latency is non-negative;
* think-time lower bound: every processor's serial chain alone forces
  ``makespan >= (requests_per_proc - 1) * think_time`` — a bound that
  grows monotonically in the think time on every instance;
* think-time monotonicity of the realised makespan, on a deterministic
  ladder of uncontended configurations.  (It is *not* a universal law:
  on highly contended topologies a longer think time can reshuffle the
  path-reversal dynamics into shorter queue paths — both engines agree
  on those dips, which the differential suite pins.)
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fast_closed_loop import closed_loop_runner
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    gnp_connected_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    star_graph,
)
from repro.net.latency import UniformLatency, UnitLatency
from repro.spanning.construct import random_spanning_tree

GRAPHS = {
    "path": lambda: path_graph(9),
    "cycle": lambda: cycle_graph(8),
    "complete": lambda: complete_graph(10),
    "star": lambda: star_graph(9),
    "grid": lambda: grid_graph(3, 3),
    "hypercube": lambda: hypercube_graph(3),
    "gnp": lambda: gnp_connected_graph(10, 0.4, seed=3),
}

ENGINES = ["fast", "message"]


def run_closed(protocol, engine, g, *, seed=0, **kw):
    runner = closed_loop_runner(protocol, engine)
    if protocol == "arrow":
        tree = random_spanning_tree(g, root=seed % g.num_nodes, seed=seed + 17)
        return runner(g, tree, **kw, seed=seed)
    return runner(g, seed % g.num_nodes, **kw, seed=seed)


def assert_closed_loop_invariants(res, n, rpp, think):
    total = n * rpp
    # Completion accounting.
    assert res.completions == total
    assert len(res.hops) == total
    assert len(res.latencies) == total
    assert len(res.issue_times) == len(res.ack_times) == len(res.owners) == total
    assert res.local_finds == sum(1 for h in res.hops if h == 0)
    assert all(lat >= 0.0 for lat in res.latencies)
    # Each processor issues exactly its budget.
    for p in range(n):
        rids = res.rids_of(p)
        assert len(rids) == rpp
        # First request at t = 0; request k+1 exactly think_time after the
        # acknowledgement of request k was handled at p.
        assert res.issue_times[rids[0]] == 0.0
        for prev, nxt in zip(rids, rids[1:]):
            assert res.ack_times[prev] >= res.issue_times[prev]
            assert res.issue_times[nxt] == res.ack_times[prev] + think
        # The final ack lands inside the run.
        assert 0.0 <= res.ack_times[rids[-1]] <= res.makespan
    # The serial issue chain alone bounds the run length from below,
    # monotonically in the think time (1e-9 absorbs float re-association).
    if total > 0:
        assert res.makespan >= (rpp - 1) * think - 1e-9


@settings(max_examples=25, deadline=None)
@given(
    gname=st.sampled_from(sorted(GRAPHS)),
    protocol=st.sampled_from(["arrow", "centralized"]),
    engine=st.sampled_from(ENGINES),
    rpp=st.integers(1, 4),
    think=st.sampled_from([0.0, 0.25, 1.0]),
    service=st.sampled_from([0.0, 0.2]),
    stochastic=st.booleans(),
    seed=st.integers(0, 1_000),
)
def test_closed_loop_invariants_hypothesis(
    gname, protocol, engine, rpp, think, service, stochastic, seed
):
    g = GRAPHS[gname]()
    latency = UniformLatency(0.1, 1.0) if stochastic else UnitLatency()
    res = run_closed(
        protocol,
        engine,
        g,
        seed=seed,
        requests_per_proc=rpp,
        think_time=think,
        service_time=service,
        latency=latency,
    )
    assert_closed_loop_invariants(res, g.num_nodes, rpp, think)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("protocol", ["arrow", "centralized"])
def test_completions_scale_with_budget(engine, protocol):
    g = complete_graph(6)
    for rpp in (0, 1, 7):
        res = run_closed(
            protocol, engine, g, requests_per_proc=rpp, think_time=0.1
        )
        assert res.completions == 6 * rpp == res.total_requests


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "protocol,gname",
    [
        # Centralized dynamics are routing-invariant: monotone on every
        # topology.  Arrow is monotone where queue paths stay short
        # (low-diameter trees); on higher-diameter topologies a longer
        # think time can reshuffle path reversals into *shorter* paths —
        # a real effect both engines agree on — so those configurations
        # are covered by the lower-bound invariant instead.
        ("arrow", "complete"),
        ("arrow", "star"),
        ("centralized", "complete"),
        ("centralized", "grid"),
        ("centralized", "hypercube"),
    ],
)
def test_makespan_monotone_in_think_time(engine, protocol, gname):
    """Stretching the think time never shortens these closed loops.

    Deterministic ladder (unit latency, fixed seed): more local
    processing between operations only delays issues, completions, acks.
    """
    g = GRAPHS[gname]()
    spans = []
    for think in (0.0, 0.2, 0.5, 1.0, 2.0):
        res = run_closed(
            protocol,
            engine,
            g,
            requests_per_proc=4,
            think_time=think,
            service_time=0.1,
        )
        spans.append(res.makespan)
    assert spans == sorted(spans), spans


@pytest.mark.parametrize("engine", ENGINES)
def test_ack_spacing_is_exact_not_approximate(engine):
    """The think-time offset is exact float arithmetic, not a tolerance."""
    g = complete_graph(5)
    think = 0.3  # not exactly representable: exactness must still hold
    res = run_closed(
        "arrow", engine, g, requests_per_proc=3, think_time=think
    )
    for p in range(5):
        rids = res.rids_of(p)
        for prev, nxt in zip(rids, rids[1:]):
            assert res.issue_times[nxt] == res.ack_times[prev] + think
