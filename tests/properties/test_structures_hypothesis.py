"""Property-based tests for the substrate data structures."""


from hypothesis import given, settings, strategies as st

from repro.graphs import bfs_distances
from repro.sim.events import EventQueue
from repro.spanning import SpanningTree, UnionFind


@st.composite
def parent_array(draw, max_nodes=14):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    parent = [0] * n
    for i in range(1, n):
        parent[i] = draw(st.integers(min_value=0, max_value=i - 1))
    return parent


@given(parent_array())
@settings(max_examples=80, deadline=None)
def test_lca_distance_matches_bfs(parent):
    tree = SpanningTree(parent, root=0)
    g = tree.to_graph()
    n = len(parent)
    for src in range(0, n, max(1, n // 3)):
        oracle = bfs_distances(g, src)
        for v in range(n):
            assert tree.hop_distance(src, v) == oracle[v]


@given(parent_array())
@settings(max_examples=60, deadline=None)
def test_tree_path_is_simple_and_adjacent(parent):
    tree = SpanningTree(parent, root=0)
    n = len(parent)
    u, v = 0, n - 1
    path = tree.path(u, v)
    assert path[0] == u and path[-1] == v
    assert len(set(path)) == len(path)
    for a, b in zip(path, path[1:]):
        assert tree.parent[a] == b or tree.parent[b] == a


@given(
    st.lists(
        st.tuples(st.integers(0, 19), st.integers(0, 19)), min_size=0, max_size=40
    )
)
@settings(max_examples=80, deadline=None)
def test_union_find_matches_naive_partition(unions):
    uf = UnionFind(20)
    naive = {i: {i} for i in range(20)}
    for a, b in unions:
        uf.union(a, b)
        sa, sb = naive[a], naive[b]
        if sa is not sb:
            merged = sa | sb
            for x in merged:
                naive[x] = merged
    for a in range(20):
        for b in range(20):
            assert (uf.find(a) == uf.find(b)) == (naive[a] is naive[b])
    assert uf.components == len({id(s) for s in naive.values()})


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.integers(0, 3),
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=80, deadline=None)
def test_event_queue_pops_in_total_order(items):
    q = EventQueue()
    for t, prio in items:
        q.push(t, lambda: None, priority=prio)
    popped = []
    while q:
        ev = q.pop()
        popped.append((ev.time, ev.priority, ev.seq))
    assert popped == sorted(popped)


@given(parent_array(max_nodes=12))
@settings(max_examples=40, deadline=None)
def test_reroot_preserves_tree_metric(parent):
    tree = SpanningTree(parent, root=0)
    n = len(parent)
    other = tree.reroot(n - 1)
    for u in range(n):
        for v in range(n):
            assert tree.hop_distance(u, v) == other.hop_distance(u, v)
