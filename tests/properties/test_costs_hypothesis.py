"""Property-based tests for the cost measures' algebraic structure."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.costs import c_m_matrix, c_o_matrix, c_t_matrix


@st.composite
def positions_times(draw, max_m=12):
    """Random 1-D positions (a path metric) and times."""
    m = draw(st.integers(min_value=2, max_value=max_m))
    pos = np.array(
        [draw(st.integers(min_value=0, max_value=50)) for _ in range(m)],
        dtype=float,
    )
    times = np.array(
        [
            draw(st.floats(min_value=0.0, max_value=40.0, allow_nan=False))
            for _ in range(m)
        ]
    )
    D = np.abs(pos[:, None] - pos[None, :])
    return D, times


@given(positions_times())
@settings(max_examples=80, deadline=None)
def test_c_m_is_a_metric(dt):
    D, times = dt
    CM = c_m_matrix(D, times)
    m = len(times)
    assert np.allclose(CM, CM.T)
    assert np.allclose(np.diag(CM), 0.0)
    for k in range(m):
        via = CM[:, k][:, None] + CM[k, :][None, :]
        assert np.all(CM <= via + 1e-9)


@given(positions_times())
@settings(max_examples=80, deadline=None)
def test_c_t_dominated_by_c_m_and_nonnegative(dt):
    D, times = dt
    CT = c_t_matrix(D, times)
    CM = c_m_matrix(D, times)
    assert np.all(CT >= -1e-12)
    assert np.all(CT <= CM + 1e-9)


@given(positions_times())
@settings(max_examples=80, deadline=None)
def test_c_o_between_distance_and_manhattan(dt):
    D, times = dt
    CO = c_o_matrix(D, times)
    CM = c_m_matrix(D, times)
    assert np.all(CO >= D - 1e-9)
    assert np.all(CO <= CM + 1e-9)


@given(positions_times())
@settings(max_examples=80, deadline=None)
def test_lemma_3_15_pointwise_inequality(dt):
    """c_O >= (D + max(0, t_i - t_j)) / 2 — the proof's eq. (8)."""
    D, times = dt
    CO = c_o_matrix(D, times)
    bound = (D + np.maximum(0.0, times[:, None] - times[None, :])) / 2.0
    assert np.all(CO >= bound - 1e-9)


@given(positions_times())
@settings(max_examples=60, deadline=None)
def test_c_t_diag_zero(dt):
    D, times = dt
    CT = c_t_matrix(D, times)
    assert np.allclose(np.diag(CT), 0.0)
