"""Property-based tests: stabilisation from arbitrary corruption."""

from hypothesis import given, settings, strategies as st

from repro.core.arrow import ArrowNode
from repro.core.stabilize import (
    count_sinks,
    is_legal_configuration,
    sink_reached_from,
    stabilize,
)
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.spanning import SpanningTree


@st.composite
def corrupted_configuration(draw, max_nodes=12):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    parent = [0] * n
    for i in range(1, n):
        parent[i] = draw(st.integers(min_value=0, max_value=i - 1))
    tree = SpanningTree(parent, root=0)
    net = Network(tree.to_graph(), Simulator())
    nodes = [ArrowNode(lambda *a: None) for _ in range(n)]
    net.register_all(nodes)
    # Arbitrary corruption: each pointer targets any tree neighbour or self.
    for nd in nodes:
        choices = tree.neighbors(nd.node_id) + [nd.node_id]
        nd.link = choices[draw(st.integers(0, len(choices) - 1))]
    return tree, nodes


@given(corrupted_configuration())
@settings(max_examples=80, deadline=None)
def test_one_pass_restores_legality(cfg):
    tree, nodes = cfg
    stabilize(nodes, tree)
    assert is_legal_configuration(nodes, tree)
    assert count_sinks(nodes) == 1


@given(corrupted_configuration())
@settings(max_examples=80, deadline=None)
def test_all_chains_reach_the_unique_sink(cfg):
    tree, nodes = cfg
    stabilize(nodes, tree)
    sinks = {nd.node_id for nd in nodes if nd.link == nd.node_id}
    assert len(sinks) == 1
    sink = sinks.pop()
    for v in range(tree.num_nodes):
        assert sink_reached_from(nodes, v, tree.num_nodes) == sink


@given(corrupted_configuration())
@settings(max_examples=40, deadline=None)
def test_stabilize_is_idempotent(cfg):
    tree, nodes = cfg
    stabilize(nodes, tree)
    assert stabilize(nodes, tree) == 0
