"""Property-based tests for asynchronous executions (§3.8)."""

from hypothesis import given, settings, strategies as st

from repro.core.queueing import verify_total_order
from repro.core.requests import RequestSchedule
from repro.core.runner import run_arrow
from repro.net.latency import UniformLatency
from repro.spanning import SpanningTree


@st.composite
def async_instance(draw, max_nodes=10, max_requests=8):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    parent = [0] * n
    for i in range(1, n):
        parent[i] = draw(st.integers(min_value=0, max_value=i - 1))
    tree = SpanningTree(parent, root=0)
    m = draw(st.integers(min_value=1, max_value=max_requests))
    pairs = [
        (
            draw(st.integers(min_value=0, max_value=n - 1)),
            float(draw(st.integers(min_value=0, max_value=20))),
        )
        for _ in range(m)
    ]
    lo = draw(st.sampled_from([0.1, 0.3, 0.6]))
    seed = draw(st.integers(min_value=0, max_value=1000))
    return tree, RequestSchedule(pairs), UniformLatency(lo, 1.0), seed


@given(async_instance())
@settings(max_examples=60, deadline=None)
def test_async_always_forms_total_order(inst):
    tree, sched, model, seed = inst
    res = run_arrow(tree.to_graph(), tree, sched, latency=model, seed=seed)
    assert len(verify_total_order(res)) == len(sched)


@given(async_instance())
@settings(max_examples=60, deadline=None)
def test_async_direct_path_and_latency_bound(inst):
    """Messages travel the direct tree path; delays are <= 1 per hop."""
    tree, sched, model, seed = inst
    res = run_arrow(tree.to_graph(), tree, sched, latency=model, seed=seed)
    for r in sched:
        rec = res.completions[r.rid]
        assert rec.hops == tree.hop_distance(r.node, rec.informed_node)
        assert res.latency(r.rid) <= tree.distance(r.node, rec.informed_node) + 1e-9
        assert res.latency(r.rid) >= 0.0


@given(async_instance())
@settings(max_examples=40, deadline=None)
def test_async_lemma_3_9_still_holds(inst):
    """Time-separated requests stay ordered even under async delays.

    If t_j - t_i > d_T(v_i, v_j) then even the slowest messages cannot
    reorder them: Lemma 3.9's proof only uses the NN characterisation,
    which Lemma 3.20 extends to asynchronous executions.
    """
    from repro.analysis.verify import check_lemma_3_9

    tree, sched, model, seed = inst
    res = run_arrow(tree.to_graph(), tree, sched, latency=model, seed=seed)
    assert check_lemma_3_9(tree, sched, res.order)
