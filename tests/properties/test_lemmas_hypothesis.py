"""Property-based tests (hypothesis): the Section 3 lemmas on random input.

Strategy: random parent-array trees + random (node, time) schedules; run
the message-level protocol; check the structural lemmas on the realised
execution.  Times are drawn from a coarse float grid so that both tie-free
and tie-heavy instances are generated.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.nearest_neighbor import predict_arrow_run
from repro.analysis.verify import (
    check_direct_path_property,
    check_fact_3_6,
    check_lemma_3_8,
    check_lemma_3_9,
    lemma_3_10_identity_gap,
)
from repro.core.queueing import verify_total_order
from repro.core.requests import RequestSchedule
from repro.core.runner import run_arrow
from repro.spanning import SpanningTree


@st.composite
def tree_and_schedule(draw, max_nodes=12, max_requests=10):
    """A random rooted tree plus a random request schedule on it."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    # Random parent array: parent[i] < i gives a valid rooted tree at 0.
    parent = [0] * n
    for i in range(1, n):
        parent[i] = draw(st.integers(min_value=0, max_value=i - 1))
    tree = SpanningTree(parent, root=0)
    m = draw(st.integers(min_value=1, max_value=max_requests))
    pairs = []
    for _ in range(m):
        node = draw(st.integers(min_value=0, max_value=n - 1))
        time = draw(
            st.floats(min_value=0.0, max_value=30.0, allow_nan=False).map(
                lambda x: round(x * 4) / 4  # grid of 0.25 -> frequent ties
            )
        )
        pairs.append((node, time))
    return tree, RequestSchedule(pairs)


@given(tree_and_schedule())
@settings(max_examples=60, deadline=None)
def test_lemma_3_8_nn_property(ts):
    tree, sched = ts
    res = run_arrow(tree.to_graph(), tree, sched)
    order = verify_total_order(res)
    assert check_lemma_3_8(tree, sched, order)


@given(tree_and_schedule())
@settings(max_examples=60, deadline=None)
def test_lemma_3_9_time_separation(ts):
    tree, sched = ts
    res = run_arrow(tree.to_graph(), tree, sched)
    assert check_lemma_3_9(tree, sched, res.order)


@given(tree_and_schedule())
@settings(max_examples=60, deadline=None)
def test_fact_3_6_ct_nonnegative(ts):
    tree, sched = ts
    assert check_fact_3_6(tree, sched)


@given(tree_and_schedule())
@settings(max_examples=60, deadline=None)
def test_lemma_3_10_identity(ts):
    tree, sched = ts
    res = run_arrow(tree.to_graph(), tree, sched)
    assert lemma_3_10_identity_gap(tree, sched, res.order) < 1e-6


@given(tree_and_schedule())
@settings(max_examples=60, deadline=None)
def test_direct_path_theorem(ts):
    tree, sched = ts
    res = run_arrow(tree.to_graph(), tree, sched)
    assert check_direct_path_property(tree, res)


@given(tree_and_schedule())
@settings(max_examples=40, deadline=None)
def test_executor_cost_matches_simulation_or_ties(ts):
    """Tie-free: exact match.  Ties: simulated cost is NN-valid anyway."""
    tree, sched = ts
    res = run_arrow(tree.to_graph(), tree, sched)
    pred = predict_arrow_run(tree, sched)
    if not pred.had_ties:
        assert res.order == pred.order
        assert abs(res.total_latency - pred.arrow_cost) < 1e-9
