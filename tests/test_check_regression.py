"""The CI bench regression gate (``benchmarks/check_regression.py``).

Run as a subprocess against crafted BENCH JSON files, exactly as the CI
job invokes it.
"""

import json
import os
import subprocess
import sys

SCRIPT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "check_regression.py",
)


def run_gate(tmp_path, baseline, fresh, tolerance="0.25"):
    base_path = tmp_path / "baseline.json"
    fresh_path = tmp_path / "fresh.json"
    base_path.write_text(json.dumps(baseline))
    fresh_path.write_text(json.dumps(fresh))
    return subprocess.run(
        [sys.executable, SCRIPT, "--baseline", str(base_path),
         "--fresh", str(fresh_path), "--tolerance", tolerance],
        capture_output=True, text=True,
    )


BASE = {
    "open_loop_uniform": {"speedup": 1.6},
    "closed_loop_uniform": {"speedup": 1.4},
}


def test_within_tolerance_passes(tmp_path):
    fresh = {
        "open_loop_uniform": {"speedup": 1.3},   # -19%, inside ±25%
        "closed_loop_uniform": {"speedup": 1.5},  # improvement
    }
    proc = run_gate(tmp_path, BASE, fresh)
    assert proc.returncode == 0, proc.stderr
    assert "bench-gate OK" in proc.stdout


def test_regression_beyond_tolerance_fails(tmp_path):
    fresh = {
        "open_loop_uniform": {"speedup": 1.1},   # -31% < floor 1.2
        "closed_loop_uniform": {"speedup": 1.4},
    }
    proc = run_gate(tmp_path, BASE, fresh)
    assert proc.returncode == 1
    assert "open_loop_uniform" in proc.stderr and "REGRESSION" in proc.stderr
    assert "bench-gate FAILED" in proc.stderr


def test_missing_scenario_fails(tmp_path):
    proc = run_gate(tmp_path, BASE, {"open_loop_uniform": {"speedup": 1.6}})
    assert proc.returncode == 1
    assert "missing from fresh results" in proc.stderr


def test_below_parity_baseline_reported_not_gated(tmp_path):
    # "No worse" scenarios (baseline speedup < 1.0, e.g. the
    # deterministic storm) are the most machine-sensitive ratios; parity
    # is asserted in-suite, so the gate only reports them.
    base = {**BASE, "one_shot_storm": {"speedup": 0.93}}
    fresh = {
        "open_loop_uniform": {"speedup": 1.6},
        "closed_loop_uniform": {"speedup": 1.4},
        "one_shot_storm": {"speedup": 0.5},  # huge drop, still not gated
    }
    proc = run_gate(tmp_path, base, fresh)
    assert proc.returncode == 0, proc.stderr
    assert "no-worse contract" in proc.stdout


def test_new_unbaselined_scenario_reported_not_gated(tmp_path):
    fresh = {
        **{k: dict(v) for k, v in BASE.items()},
        "brand_new": {"speedup": 0.1},
    }
    proc = run_gate(tmp_path, BASE, fresh)
    assert proc.returncode == 0
    assert "new scenario" in proc.stdout


def test_unreadable_input_fails_without_traceback(tmp_path):
    proc = subprocess.run(
        [sys.executable, SCRIPT, "--baseline", str(tmp_path / "nope.json"),
         "--fresh", str(tmp_path / "nope.json")],
        capture_output=True, text=True,
    )
    assert proc.returncode == 1
    assert "bench-gate FAILED" in proc.stderr
    assert "Traceback" not in proc.stderr
