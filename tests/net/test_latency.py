"""Unit tests for latency models."""

import pytest

from repro.errors import NetworkError
from repro.net.latency import (
    ExponentialCappedLatency,
    ScaledWeightLatency,
    UniformLatency,
    UnitLatency,
    WeightLatency,
)
from repro.sim.rng import spawn_rng


@pytest.fixture
def rng():
    return spawn_rng(0, "latency-tests")


def test_unit_latency_always_one(rng):
    m = UnitLatency()
    assert m.sample(0, 1, 7.5, rng) == 1.0
    assert m.max_delay(7.5) == 1.0
    assert not m.stochastic


def test_weight_latency_returns_weight(rng):
    m = WeightLatency()
    assert m.sample(0, 1, 2.5, rng) == 2.5
    assert m.max_delay(2.5) == 2.5


def test_scaled_weight_latency(rng):
    m = ScaledWeightLatency(0.5)
    assert m.sample(0, 1, 4.0, rng) == 2.0
    assert m.max_delay(4.0) == 2.0


def test_scaled_weight_rejects_nonpositive_factor():
    with pytest.raises(NetworkError):
        ScaledWeightLatency(0.0)


def test_uniform_latency_within_bounds(rng):
    m = UniformLatency(0.2, 1.0)
    samples = [m.sample(0, 1, 3.0, rng) for _ in range(500)]
    assert all(0.6 - 1e-12 <= s <= 3.0 + 1e-12 for s in samples)
    assert m.max_delay(3.0) == 3.0
    assert m.stochastic


def test_uniform_latency_validates_range():
    with pytest.raises(NetworkError):
        UniformLatency(0.0, 1.0)
    with pytest.raises(NetworkError):
        UniformLatency(0.9, 0.5)


def test_exponential_capped_within_bounds(rng):
    m = ExponentialCappedLatency(mean=0.3, cap=1.0, floor=0.05)
    samples = [m.sample(0, 1, 2.0, rng) for _ in range(500)]
    assert all(0.1 - 1e-12 <= s <= 2.0 + 1e-12 for s in samples)
    assert m.max_delay(2.0) == 2.0


def test_exponential_capped_validates():
    with pytest.raises(NetworkError):
        ExponentialCappedLatency(mean=-1.0)
    with pytest.raises(NetworkError):
        ExponentialCappedLatency(floor=2.0, cap=1.0)


def test_stochastic_models_respect_normalised_max_delay(rng):
    """§3.8: the analysis scales delays so the slowest message takes 1."""
    for model in (UniformLatency(0.1, 1.0), ExponentialCappedLatency()):
        for _ in range(200):
            assert model.sample(0, 1, 1.0, rng) <= model.max_delay(1.0) + 1e-12
