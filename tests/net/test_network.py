"""Unit tests for the Network layer: sends, routing, service times, stats."""

import pytest

from repro.errors import NetworkError
from repro.graphs import complete_graph, path_graph
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import ProtocolNode
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer


class Recorder(ProtocolNode):
    """Records deliveries with their times."""

    def __init__(self):
        super().__init__()
        self.got = []

    def on_message(self, msg: Message):
        self.got.append((msg.kind, msg.src, self.net.sim.now, msg.hops))


def make_net(graph, **kw):
    net = Network(graph, Simulator(), **kw)
    nodes = [Recorder() for _ in range(graph.num_nodes)]
    net.register_all(nodes)
    return net, nodes


def test_send_link_delivers_with_unit_latency():
    net, nodes = make_net(path_graph(3))
    net.send_link(0, 1, "ping", {"x": 1})
    net.sim.run()
    assert nodes[1].got == [("ping", 0, 1.0, 1)]


def test_send_link_requires_edge():
    net, _ = make_net(path_graph(3))
    with pytest.raises(NetworkError):
        net.send_link(0, 2, "ping")


def test_send_routed_delivers_along_shortest_path():
    net, nodes = make_net(path_graph(5))
    net.send_routed(0, 4, "far")
    net.sim.run()
    kind, src, when, hops = nodes[4].got[0]
    assert (kind, src) == ("far", 0)
    assert when == 4.0  # 4 unit-latency hops
    assert hops == 4


def test_send_routed_to_self_is_immediate_event():
    net, nodes = make_net(path_graph(3))
    net.send_routed(1, 1, "self")
    net.sim.run()
    assert nodes[1].got[0][2] == 0.0


def test_forward_accumulates_hops():
    net, nodes = make_net(path_graph(4))

    class Chain(Recorder):
        def on_message(self, msg):
            super().on_message(msg)
            if self.node_id < 3:
                self.net.forward(msg, self.node_id + 1)

    chain = [Chain() for _ in range(4)]
    net2 = Network(path_graph(4), Simulator())
    net2.register_all(chain)
    net2.send_link(0, 1, "hop")
    net2.sim.run()
    assert chain[3].got[0][3] == 3  # three link traversals accumulated


def test_service_time_serialises_deliveries():
    """Two simultaneous arrivals at one node are processed 1 service apart."""
    g = complete_graph(3)
    net, nodes = make_net(g, service_time=0.5)
    net.send_link(1, 0, "a")
    net.send_link(2, 0, "b")
    net.sim.run()
    times = sorted(t for _, _, t, _ in nodes[0].got)
    assert times == [1.5, 2.0]  # arrival 1.0 + 0.5 service, then +0.5 more


def test_zero_service_time_processes_in_parallel():
    g = complete_graph(3)
    net, nodes = make_net(g)
    net.send_link(1, 0, "a")
    net.send_link(2, 0, "b")
    net.sim.run()
    assert sorted(t for _, _, t, _ in nodes[0].got) == [1.0, 1.0]


def test_negative_service_time_rejected():
    with pytest.raises(NetworkError):
        Network(path_graph(2), Simulator(), service_time=-1.0)


def test_stats_count_messages_and_hops():
    net, _ = make_net(path_graph(5))
    net.send_link(0, 1, "x")
    net.send_routed(0, 4, "y")
    net.sim.run()
    assert net.stats.messages_sent == 2
    assert net.stats.link_messages == 1
    assert net.stats.routed_messages == 1
    assert net.stats.hops_total == 5
    d = net.stats.as_dict()
    assert d["messages_sent"] == 2


def test_per_node_received_counter():
    net, _ = make_net(path_graph(3))
    net.send_link(0, 1, "x")
    net.send_link(2, 1, "y")
    net.sim.run()
    assert net.stats.per_node_received[1] == 2


def test_register_all_validates_length():
    net = Network(path_graph(3), Simulator())
    with pytest.raises(NetworkError):
        net.register_all([Recorder()])


def test_delivery_to_unregistered_node_raises():
    net = Network(path_graph(2), Simulator())
    net.register(0, Recorder())
    net.send_link(0, 1, "x")
    with pytest.raises(NetworkError):
        net.sim.run()


def test_node_accessor():
    net, nodes = make_net(path_graph(2))
    assert net.node(0) is nodes[0]
    empty = Network(path_graph(2), Simulator())
    with pytest.raises(NetworkError):
        empty.node(0)


def test_tracer_sees_sends_and_deliveries():
    tr = Tracer()
    net = Network(path_graph(2), Simulator(), tracer=tr)
    net.register_all([Recorder(), Recorder()])
    net.send_link(0, 1, "x")
    net.sim.run()
    assert tr.counts["send"] == 1
    assert tr.counts["deliver"] == 1


def test_routed_unreachable_raises():
    from repro.graphs.graph import Graph
    g = Graph(3)
    g.add_edge(0, 1)
    net = Network(g, Simulator())
    net.register_all([Recorder() for _ in range(3)])
    with pytest.raises(NetworkError):
        net.send_routed(0, 2, "x")
