"""Unit tests for Message bookkeeping."""

from repro.net.message import Message


def test_uids_are_unique_and_increasing():
    msgs = [Message("m", 0, 1) for _ in range(10)]
    uids = [m.uid for m in msgs]
    assert len(set(uids)) == 10
    assert uids == sorted(uids)


def test_defaults():
    m = Message("queue", 2, 3)
    assert m.payload == {}
    assert m.hops == 0
    assert m.sent_at == 0.0


def test_payload_not_shared_between_messages():
    a = Message("m", 0, 1)
    b = Message("m", 0, 1)
    a.payload["x"] = 1
    assert "x" not in b.payload
