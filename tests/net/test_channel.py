"""Unit tests for FIFO channel semantics."""

from repro.net.channel import FifoChannel
from repro.net.latency import UniformLatency, UnitLatency
from repro.net.message import Message
from repro.sim.kernel import Simulator
from repro.sim.rng import spawn_rng


def test_unit_latency_delivery_time():
    sim = Simulator()
    ch = FifoChannel(0, 1, 1.0)
    got = []
    at = ch.transmit(sim, UnitLatency(), spawn_rng(0, "t"), Message("m", 0, 1), got.append)
    assert at == 1.0
    sim.run()
    assert len(got) == 1
    assert sim.now == 1.0


def test_fifo_clamps_overtaking_messages():
    """A fast later message must not overtake a slow earlier one."""
    sim = Simulator()
    ch = FifoChannel(0, 1, 1.0)
    rng = spawn_rng(3, "fifo")
    order = []

    class FirstSlow:
        calls = 0
        def sample(self, src, dst, w, rng):
            FirstSlow.calls += 1
            return 0.9 if FirstSlow.calls == 1 else 0.1
        def max_delay(self, w):
            return w
        stochastic = True

    m1 = Message("m1", 0, 1)
    m2 = Message("m2", 0, 1)
    ch.transmit(sim, FirstSlow(), rng, m1, lambda m: order.append((m.kind, sim.now)))
    sim.call_at(0.2, lambda: ch.transmit(
        sim, FirstSlow(), rng, m2, lambda m: order.append((m.kind, sim.now))
    ))
    sim.run()
    assert [k for k, _ in order] == ["m1", "m2"]
    # m2's natural arrival (0.3) was clamped to m1's arrival (0.9).
    assert order[1][1] >= order[0][1]


def test_fifo_many_random_messages_preserve_order():
    sim = Simulator()
    ch = FifoChannel(0, 1, 1.0)
    rng = spawn_rng(9, "fifo-many")
    model = UniformLatency(0.05, 1.0)
    seen = []
    for i in range(50):
        msg = Message("m", 0, 1, {"i": i})
        sim.call_at(i * 0.01, ch.transmit, sim, model, rng, msg,
                    lambda m: seen.append(m.payload["i"]))
    sim.run()
    assert seen == list(range(50))


def test_distinct_channels_do_not_interfere():
    sim = Simulator()
    a = FifoChannel(0, 1, 1.0)
    b = FifoChannel(1, 0, 1.0)
    times = {}
    a.transmit(sim, UnitLatency(), spawn_rng(0, "x"), Message("a", 0, 1),
               lambda m: times.setdefault("a", sim.now))
    b.transmit(sim, UnitLatency(), spawn_rng(0, "y"), Message("b", 1, 0),
               lambda m: times.setdefault("b", sim.now))
    sim.run()
    assert times == {"a": 1.0, "b": 1.0}
