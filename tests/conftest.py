"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.graphs import complete_graph, grid_graph, path_graph
from repro.spanning import SpanningTree, balanced_binary_overlay, bfs_tree


@pytest.fixture
def k16():
    """Complete graph on 16 nodes (SP2 model, small)."""
    return complete_graph(16)


@pytest.fixture
def k16_tree(k16):
    """Balanced binary overlay on K16 rooted at 0."""
    return balanced_binary_overlay(k16, root=0)


@pytest.fixture
def path9():
    """Path graph on 9 nodes."""
    return path_graph(9)


@pytest.fixture
def path9_tree(path9):
    """The path itself as a spanning tree rooted at node 0."""
    return SpanningTree([max(0, i - 1) for i in range(9)], root=0)


@pytest.fixture
def grid5x5():
    """5x5 mesh."""
    return grid_graph(5, 5)


@pytest.fixture
def grid5x5_tree(grid5x5):
    """BFS tree of the mesh rooted at its corner."""
    return bfs_tree(grid5x5, root=0)
