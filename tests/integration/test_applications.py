"""Integration: the applications the paper motivates (§1).

Distributed queuing's point is what you build on it: mutual exclusion for
a mobile object, totally ordered multicast, distributed counting.  These
tests implement each application over the public API and verify its
correctness property end to end.
"""

from repro.core.queueing import verify_total_order
from repro.core.runner import run_arrow
from repro.graphs import complete_graph, grid_graph
from repro.net.latency import UniformLatency
from repro.spanning import balanced_binary_overlay, bfs_tree
from repro.workloads.schedules import poisson


def test_mutual_exclusion_token_passing():
    """Pass a token down the queue; intervals must never overlap.

    The holder of request r releases after a fixed critical-section time;
    the object travels d_G to the successor's issuer.  Exclusion holds
    because the queue hands the object over only after release.
    """
    graph = grid_graph(4, 4)
    tree = bfs_tree(graph, 0)
    sched = poisson(16, 40, rate=2.0, seed=3)
    res = run_arrow(graph, tree, sched)
    order = verify_total_order(res)

    cs_time = 0.5
    intervals = []
    # The token starts at the root, already released at t=0.
    release_time = 0.0
    holder = tree.root
    from repro.graphs.shortest_paths import dijkstra

    dist_cache = {}

    def dg(u, v):
        if u not in dist_cache:
            dist_cache[u] = dijkstra(graph, u)[0]
        return dist_cache[u][v]

    for rid in order:
        req = res.schedule.by_rid(rid)
        # Earliest possible acquisition: the object must have been released
        # and must travel from the previous holder; also the request must
        # have been issued.
        acquire = max(req.time, release_time + dg(holder, req.node))
        release = acquire + cs_time
        intervals.append((acquire, release))
        holder = req.node
        release_time = release

    for (a1, r1), (a2, r2) in zip(intervals, intervals[1:]):
        assert r1 <= a2 + 1e-12, "critical sections overlap"


def test_totally_ordered_multicast_agreement():
    """Every node delivers multicasts in the queue order (§1: multicast).

    Each multicast is a queuing request; the sequence number is the
    position in the queue order.  All replicas applying messages by
    sequence number end in the same state.
    """
    graph = complete_graph(12)
    tree = balanced_binary_overlay(graph, 0)
    sched = poisson(12, 50, rate=5.0, seed=9)
    res = run_arrow(graph, tree, sched, latency=UniformLatency(0.3, 1.0), seed=1)
    order = verify_total_order(res)
    seqno = {rid: i for i, rid in enumerate(order)}

    # Replay at every replica: apply (seqno, payload) sorted by seqno.
    def replica_state():
        log = sorted((seqno[r.rid], r.node) for r in sched)
        state = 0
        for s, origin in log:
            state = state * 31 + (s + 1) * (origin + 7)
        return state

    states = {replica_state() for _ in range(5)}
    assert len(states) == 1


def test_distributed_counter_uniqueness():
    """Fetch&increment via the queue: every request gets a unique value."""
    graph = complete_graph(10)
    tree = balanced_binary_overlay(graph, 0)
    sched = poisson(10, 60, rate=10.0, seed=4)
    res = run_arrow(graph, tree, sched)
    order = verify_total_order(res)
    values = {rid: i for i, rid in enumerate(order)}
    assert sorted(values.values()) == list(range(60))


def test_queue_chaining_across_multiple_rounds():
    """Three consecutive request batches extend one global order."""
    graph = grid_graph(3, 4)
    tree = bfs_tree(graph, 0)
    batches = [poisson(12, 15, rate=3.0, seed=s) for s in range(3)]
    pairs = []
    offset = 0.0
    for b in batches:
        pairs.extend((r.node, r.time + offset) for r in b)
        offset += b.max_time() + 10.0
    from repro.core.requests import RequestSchedule

    merged = RequestSchedule(pairs)
    res = run_arrow(graph, tree, merged)
    assert len(verify_total_order(res)) == 45
