"""Integration: asynchronous executions (§3.8).

Under arbitrary (bounded) message delays the protocol must still produce
a single total order; latencies are bounded by the tree distance to the
realised predecessor (delays normalised to <= 1); and the competitive
ceiling of Theorem 3.21 holds against the offline bracket.
"""

import pytest

from repro.analysis.competitive import measure_competitive_ratio
from repro.core.queueing import verify_total_order
from repro.core.runner import run_arrow
from repro.graphs import complete_graph, grid_graph
from repro.net.latency import ExponentialCappedLatency, UniformLatency
from repro.spanning import balanced_binary_overlay, bfs_tree
from repro.workloads.schedules import one_shot, poisson

MODELS = [
    UniformLatency(0.1, 1.0),
    UniformLatency(0.5, 1.0),
    ExponentialCappedLatency(mean=0.3, cap=1.0),
]


@pytest.mark.parametrize("model", MODELS, ids=["uniform-wide", "uniform-tight", "exp"])
@pytest.mark.parametrize("seed", range(3))
def test_async_total_order_and_latency_bound(model, seed):
    graph = grid_graph(5, 5)
    tree = bfs_tree(graph, 0)
    sched = poisson(25, 80, rate=4.0, seed=seed)
    res = run_arrow(graph, tree, sched, latency=model, seed=seed)
    order = verify_total_order(res)
    assert len(order) == 80
    for r in sched:
        rec = res.completions[r.rid]
        # Direct path with per-hop delay <= weight (normalised model).
        assert res.latency(r.rid) <= tree.distance(r.node, rec.informed_node) + 1e-9
        assert rec.hops == tree.hop_distance(r.node, rec.informed_node)


@pytest.mark.parametrize("seed", range(3))
def test_async_one_shot_correctness(seed):
    graph = complete_graph(20)
    tree = balanced_binary_overlay(graph, 0)
    sched = one_shot(list(range(20)))
    res = run_arrow(graph, tree, sched, latency=UniformLatency(0.2, 1.0), seed=seed)
    assert len(verify_total_order(res)) == 20


def test_async_order_may_differ_from_sync():
    """Delays reorder concurrent requests — the freedom §3.8 allows."""
    graph = complete_graph(16)
    tree = balanced_binary_overlay(graph, 0)
    sched = poisson(16, 60, rate=30.0, seed=11)
    sync_order = run_arrow(graph, tree, sched).order
    orders = {
        tuple(
            run_arrow(
                graph, tree, sched, latency=UniformLatency(0.1, 1.0), seed=s
            ).order
        )
        for s in range(5)
    }
    assert len(orders | {tuple(sync_order)}) > 1


def test_theorem_321_ceiling_holds_async():
    graph = grid_graph(4, 4)
    tree = bfs_tree(graph, 0)
    sched = poisson(16, 14, rate=2.0, seed=2)
    rep = measure_competitive_ratio(
        graph, tree, sched, latency=UniformLatency(0.2, 1.0), seed=4, exact_limit=14
    )
    assert rep.within_ceiling
