"""Integration: the message-level simulation against the NN executor.

Lemma 3.8 says arrow's order *is* the nearest-neighbour path under
``c_T``.  On tie-free instances (continuous times make ties measure-zero)
the DES order must match the executor's exactly, completion for
completion; with ties, the DES order must still satisfy the NN property.
This is the strongest cross-validation in the repository: two independent
implementations of the protocol's semantics must agree.
"""

import pytest

from repro.analysis.nearest_neighbor import predict_arrow_run
from repro.analysis.verify import (
    check_direct_path_property,
    check_lemma_3_8,
    check_lemma_3_9,
    lemma_3_10_identity_gap,
)
from repro.core.queueing import verify_total_order
from repro.core.runner import run_arrow
from repro.graphs import (
    complete_graph,
    grid_graph,
    hypercube_graph,
    random_geometric_graph,
)
from repro.spanning import (
    balanced_binary_overlay,
    bfs_tree,
    mst_prim,
    random_spanning_tree,
)
from repro.workloads.schedules import bursty, one_shot, poisson, random_times

CASES = [
    ("k16/binary", lambda: complete_graph(16), balanced_binary_overlay),
    ("grid5x6/bfs", lambda: grid_graph(5, 6), bfs_tree),
    ("hypercube4/bfs", lambda: hypercube_graph(4), bfs_tree),
    ("geometric25/mst", lambda: random_geometric_graph(25, 0.35, seed=1), mst_prim),
    (
        "grid4x4/random-tree",
        lambda: grid_graph(4, 4),
        lambda g, r: random_spanning_tree(g, r, seed=3),
    ),
]


@pytest.mark.parametrize("name,make_graph,make_tree", CASES, ids=[c[0] for c in CASES])
@pytest.mark.parametrize("seed", range(3))
def test_des_matches_nn_executor_tie_free(name, make_graph, make_tree, seed):
    graph = make_graph()
    tree = make_tree(graph, 0)
    sched = random_times(graph.num_nodes, 35, horizon=20.0, seed=seed)
    res = run_arrow(graph, tree, sched)
    order = verify_total_order(res)
    pred = predict_arrow_run(tree, sched)
    assert check_lemma_3_8(tree, sched, order)
    assert check_lemma_3_9(tree, sched, order)
    assert check_direct_path_property(tree, res)
    assert lemma_3_10_identity_gap(tree, sched, order) < 1e-9
    if not pred.had_ties:
        assert order == pred.order
        assert res.total_latency == pytest.approx(pred.arrow_cost)


@pytest.mark.parametrize("name,make_graph,make_tree", CASES, ids=[c[0] for c in CASES])
def test_one_shot_concurrent_orders_satisfy_nn(name, make_graph, make_tree):
    """All-at-t=0 (the [10] setting): ties abound, NN property must hold."""
    graph = make_graph()
    tree = make_tree(graph, 0)
    sched = one_shot(list(range(graph.num_nodes)))
    res = run_arrow(graph, tree, sched)
    order = verify_total_order(res)
    assert check_lemma_3_8(tree, sched, order)
    assert check_direct_path_property(tree, res)


@pytest.mark.parametrize("seed", range(3))
def test_bursty_workload_cross_validates(seed):
    graph = grid_graph(4, 5)
    tree = bfs_tree(graph, 0)
    sched = bursty(20, bursts=3, burst_size=8, burst_span=1.5, idle_gap=25.0, seed=seed)
    res = run_arrow(graph, tree, sched)
    order = verify_total_order(res)
    assert check_lemma_3_8(tree, sched, order)
    pred = predict_arrow_run(tree, sched)
    if not pred.had_ties:
        assert order == pred.order


def test_high_contention_poisson_all_complete():
    graph = complete_graph(24)
    tree = balanced_binary_overlay(graph, 0)
    sched = poisson(24, 400, rate=50.0, seed=7)
    res = run_arrow(graph, tree, sched)
    assert len(verify_total_order(res)) == 400
    assert check_lemma_3_8(tree, sched, res.order)
