"""Trace-level verification of message routes.

Stronger than the latency/hops checks: reconstruct every queue message's
actual route from the network trace and compare it, node by node, with
the unique tree path from the request's origin to its predecessor's
issuer — the direct-path theorem of [4] at full resolution.  Also replays
the paper's Figures 1–5 walkthrough (two concurrent requests, one
deflected) against the exact expected pointer states.
"""

from collections import defaultdict

from repro.core.arrow import ArrowNode
from repro.core.requests import ROOT_RID
from repro.core.runner import run_arrow
from repro.core.queueing import verify_total_order
from repro.graphs import grid_graph, path_graph
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer
from repro.spanning import SpanningTree, bfs_tree
from repro.workloads.schedules import random_times


def test_queue_message_routes_follow_tree_paths():
    """Each request's hop sequence equals the tree path to its predecessor."""
    graph = grid_graph(4, 5)
    tree = bfs_tree(graph, 0)
    sched = random_times(20, 25, horizon=15.0, seed=3)

    # Patch-level tracing: wrap Network.forward/send_link by running with a
    # tracer and matching sends to requests via (time, src, dst) replay.
    tracer = Tracer()
    res = run_arrow(graph, tree, sched, tracer=tracer)
    verify_total_order(res)

    # Expected: multiset of traversed directed edges == union over
    # requests of the direct tree path edges toward the informed node.
    expected = defaultdict(int)
    for rid, rec in res.completions.items():
        req = sched.by_rid(rid)
        path = tree.path(req.node, rec.informed_node)
        for a, b in zip(path, path[1:]):
            expected[(a, b)] += 1
    actual = defaultdict(int)
    for rec in tracer.of_kind("send"):
        if rec.payload["msg_kind"] == "queue":
            actual[(rec.payload["src"], rec.payload["dst"])] += 1
    assert actual == expected


def test_paper_figures_1_to_5_walkthrough():
    """The running example of Section 2: two requests, one deflection.

    Tree (a path, relabelled): z - v - y - x - u - w with initial sink x
    (arrows lead to x).  v issues m1 at t=0; w issues m2 at t=0.  m1
    reaches x first (distance 2 vs 3... here both move, and whoever wins
    at the meeting point deflects the other toward its origin — the
    figures show m2 deflected towards v and queued behind m1.
    """
    # Node ids: z=0, v=1, y=2, x=3, u=4, w=5 along a path.
    g = path_graph(6)
    tree = SpanningTree([0, 0, 1, 2, 3, 4], root=0).reroot(3)
    sim = Simulator()
    net = Network(g, sim)
    done = []
    nodes = [
        ArrowNode(lambda rid, pred, node, when, hops: done.append((rid, pred, node)))
        for _ in range(6)
    ]
    net.register_all(nodes)
    for nd in nodes:
        nd.init_pointers(tree)
    assert nodes[3].link == 3  # x is the initial sink (Fig. 1)

    sim.call_at(0.0, nodes[1].initiate, 0)  # m1 from v (Fig. 2)
    sim.call_at(0.0, nodes[5].initiate, 1)  # m2 from w (Fig. 3)
    sim.run()

    # m1 (distance 2 to x) wins the race; m2 (distance 2... w=5 -> u=4 ->
    # x=3) ties at x; processing order resolves it: one is queued behind
    # the root request, the other behind the winner (Figs. 4-5).
    assert sorted(r[0] for r in done) == [0, 1]
    preds = {rid: pred for rid, pred, _ in done}
    winner = next(rid for rid, pred in preds.items() if pred == ROOT_RID)
    loser = 1 - winner
    assert preds[loser] == winner
    # Final state: the loser's origin is the unique sink (new tail).
    loser_origin = 1 if loser == 0 else 5
    assert nodes[loser_origin].link == loser_origin
    assert sum(1 for nd in nodes if nd.is_sink) == 1
    # Every pointer chain now leads to the new tail (Fig. 5's invariant).
    from repro.core.stabilize import sink_reached_from

    for v in range(6):
        assert sink_reached_from(nodes, v, 6) == loser_origin
