"""Unit tests for spanning-tree constructions (networkx MST as oracle)."""

import networkx as nx
import pytest

from repro.errors import GraphError, TreeError
from repro.graphs import Graph, complete_graph, grid_graph, random_geometric_graph
from repro.spanning import (
    UnionFind,
    balanced_binary_overlay,
    bfs_tree,
    mst_kruskal,
    mst_prim,
    random_spanning_tree,
    star_overlay,
)


def to_nx(g):
    G = nx.Graph()
    G.add_nodes_from(range(g.num_nodes))
    G.add_weighted_edges_from(g.edges())
    return G


def tree_weight(t):
    return sum(w for _, _, w in t.edges())


@pytest.fixture
def weighted_graph():
    return random_geometric_graph(30, 0.35, seed=4, euclidean_weights=True)


def test_mst_prim_matches_networkx_weight(weighted_graph):
    ours = tree_weight(mst_prim(weighted_graph, 0))
    theirs = nx.minimum_spanning_tree(to_nx(weighted_graph)).size(weight="weight")
    assert ours == pytest.approx(theirs)


def test_mst_kruskal_matches_prim(weighted_graph):
    assert tree_weight(mst_kruskal(weighted_graph, 0)) == pytest.approx(
        tree_weight(mst_prim(weighted_graph, 0))
    )


def test_mst_on_disconnected_raises():
    g = Graph(4)
    g.add_edge(0, 1)
    with pytest.raises(GraphError):
        mst_prim(g, 0)
    with pytest.raises(GraphError):
        mst_kruskal(g, 0)


def test_bfs_tree_preserves_root_distances():
    g = grid_graph(5, 5)
    t = bfs_tree(g, 12)
    from repro.graphs import bfs_distances

    oracle = bfs_distances(g, 12)
    for v in range(25):
        assert t.distance(12, v) == oracle[v]


def test_bfs_tree_disconnected_raises():
    g = Graph(3)
    g.add_edge(0, 1)
    with pytest.raises(GraphError):
        bfs_tree(g, 0)


def test_balanced_overlay_depth_is_logarithmic():
    g = complete_graph(31)
    t = balanced_binary_overlay(g, root=0)
    assert max(t.depth) == 4  # log2(32) - 1


def test_balanced_overlay_respects_root():
    g = complete_graph(8)
    t = balanced_binary_overlay(g, root=5)
    assert t.root == 5
    assert t.depth[5] == 0


def test_balanced_overlay_requires_edges():
    from repro.graphs import path_graph

    with pytest.raises(TreeError):
        balanced_binary_overlay(path_graph(7), root=0)


def test_star_overlay():
    g = complete_graph(6)
    t = star_overlay(g, center=2)
    assert t.root == 2
    assert all(t.distance(2, v) == 1 for v in range(6) if v != 2)
    from repro.graphs import path_graph

    with pytest.raises(TreeError):
        star_overlay(path_graph(5), center=0)


def test_random_spanning_tree_valid_and_deterministic():
    g = grid_graph(5, 5)
    t1 = random_spanning_tree(g, 0, seed=9)
    t2 = random_spanning_tree(g, 0, seed=9)
    assert t1.parent == t2.parent
    # Every tree edge must be a graph edge.
    for u, v, _ in t1.edges():
        assert g.has_edge(u, v)


def test_random_spanning_trees_vary_with_seed():
    g = grid_graph(5, 5)
    trees = {tuple(random_spanning_tree(g, 0, seed=s).parent) for s in range(6)}
    assert len(trees) > 1


def test_union_find_basics():
    uf = UnionFind(5)
    assert uf.union(0, 1)
    assert not uf.union(1, 0)
    assert uf.find(0) == uf.find(1)
    assert uf.components == 4
    uf.union(2, 3)
    uf.union(0, 3)
    assert uf.find(2) == uf.find(1)
    assert uf.components == 2
