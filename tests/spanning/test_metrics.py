"""Unit tests for tree quality metrics: stretch, diameter, radius, center."""

import networkx as nx
import pytest

from repro.graphs import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_geometric_graph,
)
from repro.spanning import (
    SpanningTree,
    average_stretch,
    balanced_binary_overlay,
    bfs_tree,
    mst_prim,
    star_overlay,
    tree_center,
    tree_diameter,
    tree_radius,
    tree_stretch,
    tree_stretch_brute_force,
)


def test_stretch_of_path_in_itself_is_one():
    g = path_graph(8)
    t = SpanningTree([max(0, i - 1) for i in range(8)], root=0)
    assert tree_stretch(g, t).stretch == 1.0


def test_stretch_of_cycle_spanning_path():
    # Dropping one edge of C_n forces stretch n-1 across that edge.
    g = cycle_graph(8)
    t = SpanningTree([max(0, i - 1) for i in range(8)], root=0)
    rep = tree_stretch(g, t)
    assert rep.stretch == 7.0
    assert sorted(rep.witness) == [0, 7]


def test_stretch_edge_scan_matches_brute_force():
    for seed in range(3):
        g = random_geometric_graph(25, 0.35, seed=seed)
        t = mst_prim(g, 0)
        assert tree_stretch(g, t).stretch == pytest.approx(
            tree_stretch_brute_force(g, t)
        )


def test_stretch_detects_foreign_tree_edges():
    from repro.errors import TreeError

    g = path_graph(4)
    bad = SpanningTree([0, 0, 0, 0], root=0)  # star edges not in the path
    with pytest.raises(TreeError):
        tree_stretch(g, bad)


def test_star_overlay_stretch_on_complete_graph():
    g = complete_graph(10)
    t = star_overlay(g, 0)
    assert tree_stretch(g, t).stretch == 2.0  # leaf-to-leaf via centre


def test_balanced_overlay_stretch_equals_leaf_pair_depth():
    g = complete_graph(15)
    t = balanced_binary_overlay(g, 0)
    assert tree_stretch(g, t).stretch == tree_diameter(t)


def test_average_stretch_at_most_max():
    g = random_geometric_graph(20, 0.4, seed=1)
    t = mst_prim(g, 0)
    assert 1.0 <= average_stretch(g, t) <= tree_stretch(g, t).stretch


def test_diameter_of_chain_and_star():
    chain = SpanningTree([max(0, i - 1) for i in range(9)], root=0)
    assert tree_diameter(chain) == 8.0
    star = SpanningTree([0] + [0] * 8, root=0)
    assert tree_diameter(star) == 2.0


def test_diameter_matches_networkx_on_random_trees():
    for seed in range(3):
        g = random_geometric_graph(30, 0.3, seed=seed)
        t = bfs_tree(g, 0)
        G = nx.Graph()
        G.add_nodes_from(range(30))
        G.add_edges_from((u, v) for u, v, _ in t.edges())
        assert tree_diameter(t) == nx.diameter(G)


def test_weighted_diameter():
    t = SpanningTree([0, 0, 1], root=0, edge_weights=[0, 2.0, 5.0])
    assert tree_diameter(t) == 7.0


def test_radius_and_center_of_chain():
    chain = SpanningTree([max(0, i - 1) for i in range(9)], root=0)
    center, ecc = tree_center(chain)
    assert center == 4
    assert ecc == 4.0
    assert tree_radius(chain) == 4.0


def test_radius_le_diameter_le_twice_radius():
    for seed in range(3):
        g = grid_graph(4, 6)
        t = bfs_tree(g, seed)
        r, d = tree_radius(t), tree_diameter(t)
        assert r <= d <= 2 * r
