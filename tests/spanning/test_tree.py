"""Unit tests for SpanningTree: structure, LCA distances, paths."""

import pytest

from repro.errors import TreeError
from repro.graphs import bfs_distances, random_geometric_graph
from repro.spanning import SpanningTree, mst_prim


def chain_tree(n, root=0):
    return SpanningTree([max(0, i - 1) for i in range(n)], root=root)


def test_parent_array_validation_root_self():
    with pytest.raises(TreeError):
        SpanningTree([1, 1, 1], root=0)  # parent[0] != 0


def test_parent_array_cycle_detected():
    with pytest.raises(TreeError):
        SpanningTree([0, 2, 1], root=0)  # 1 <-> 2 cycle


def test_non_root_self_parent_detected():
    with pytest.raises(TreeError):
        SpanningTree([0, 1, 0], root=0)  # node 1 its own parent


def test_depths_on_chain():
    t = chain_tree(5)
    assert t.depth == [0, 1, 2, 3, 4]
    assert t.wdepth == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_lca_and_distance_on_binary_tree():
    # heap-shaped tree on 7 nodes
    t = SpanningTree([0, 0, 0, 1, 1, 2, 2], root=0)
    assert t.lca(3, 4) == 1
    assert t.lca(3, 5) == 0
    assert t.lca(3, 3) == 3
    assert t.distance(3, 4) == 2
    assert t.distance(3, 5) == 4
    assert t.hop_distance(6, 3) == 4


def test_distance_matches_bfs_oracle_on_random_tree():
    g = random_geometric_graph(40, 0.3, seed=7)
    t = mst_prim(g, 0)
    tg = t.to_graph()
    for src in (0, 7, 23):
        oracle = bfs_distances(tg, src)
        for v in range(40):
            assert t.hop_distance(src, v) == oracle[v]


def test_weighted_distance():
    t = SpanningTree([0, 0, 1], root=0, edge_weights=[0.0, 2.0, 3.0])
    assert t.distance(0, 2) == 5.0
    assert t.hop_distance(0, 2) == 2


def test_path_endpoints_and_adjacency():
    t = chain_tree(6)
    p = t.path(5, 1)
    assert p == [5, 4, 3, 2, 1]
    t2 = SpanningTree([0, 0, 0, 1, 1, 2, 2], root=0)
    assert t2.path(3, 6) == [3, 1, 0, 2, 6]


def test_next_hop_towards():
    t = SpanningTree([0, 0, 0, 1, 1, 2, 2], root=0)
    assert t.next_hop_towards(3, 0) == 1
    assert t.next_hop_towards(0, 3) == 1
    assert t.next_hop_towards(1, 4) == 4
    assert t.next_hop_towards(2, 2) == 2


def test_neighbors_and_degree():
    t = SpanningTree([0, 0, 0, 1], root=0)
    assert sorted(t.neighbors(0)) == [1, 2]
    assert sorted(t.neighbors(1)) == [0, 3]
    assert t.degree(0) == 2 and t.degree(3) == 1


def test_from_edges_roundtrip():
    t = SpanningTree.from_edges(4, [(0, 1), (1, 2), (2, 3)], root=2)
    assert t.root == 2
    assert t.distance(0, 3) == 3


def test_from_edges_wrong_count():
    with pytest.raises(TreeError):
        SpanningTree.from_edges(4, [(0, 1)], root=0)


def test_from_edges_disconnected():
    with pytest.raises(TreeError):
        SpanningTree.from_edges(4, [(0, 1), (0, 1), (2, 3)], root=0)


def test_reroot_preserves_distances():
    t = chain_tree(6)
    r = t.reroot(3)
    assert r.root == 3
    for u in range(6):
        for v in range(6):
            assert t.distance(u, v) == r.distance(u, v)


def test_subtree_nodes():
    t = SpanningTree([0, 0, 0, 1, 1, 2, 2], root=0)
    assert sorted(t.subtree_nodes(1)) == [1, 3, 4]
    assert sorted(t.subtree_nodes(0)) == list(range(7))


def test_leaves():
    t = SpanningTree([0, 0, 0, 1, 1, 2, 2], root=0)
    assert sorted(t.leaves()) == [3, 4, 5, 6]


def test_to_graph_roundtrip():
    t = chain_tree(5)
    g = t.to_graph()
    assert g.num_edges == 4
    t2 = SpanningTree.from_graph(g, root=0)
    assert t2.parent == t.parent


def test_single_node_tree():
    t = SpanningTree([0], root=0)
    assert t.distance(0, 0) == 0.0
    assert t.path(0, 0) == [0]
