"""Unit tests for experiment records and rendering."""

import pytest

from repro.experiments.records import ExperimentResult, Series
from repro.experiments.tables import format_kv, format_table
from repro.experiments.ascii_plot import plot


def sample_result():
    return ExperimentResult(
        experiment_id="demo",
        title="Demo result",
        xlabel="n",
        series=[
            Series("a", [1.0, 2.0, 3.0], [10.0, 20.0, 30.0], "ms"),
            Series("b", [1.0, 2.0, 3.0], [5.0, 5.5, 6.0]),
        ],
        params={"seed": 0},
        notes=["hello"],
    )


def test_series_length_mismatch_rejected():
    with pytest.raises(ValueError):
        Series("bad", [1.0], [1.0, 2.0])


def test_series_by_name():
    r = sample_result()
    assert r.series_by_name("a").unit == "ms"
    with pytest.raises(KeyError):
        r.series_by_name("zzz")


def test_json_roundtrip():
    r = sample_result()
    back = ExperimentResult.from_json(r.to_json())
    assert back.experiment_id == r.experiment_id
    assert back.series[0].ys == r.series[0].ys
    assert back.notes == r.notes
    assert back.params == {"seed": 0}


def test_format_table_contains_all_cells():
    text = format_table(sample_result())
    assert "Demo result" in text
    assert "a [ms]" in text
    assert "30" in text and "5.500" in text
    assert "note: hello" in text


def test_format_kv_alignment():
    text = format_kv({"alpha": 1, "b": 2}, title="t")
    lines = text.splitlines()
    assert lines[0] == "== t =="
    assert lines[1].startswith("alpha")
    assert ":" in lines[2]


def test_plot_renders_marks_and_legend():
    text = plot(sample_result(), width=30, height=8)
    assert "o a" in text and "x b" in text
    assert "o" in text.splitlines()[1] or any(
        "o" in line for line in text.splitlines()
    )


def test_plot_empty_result():
    r = ExperimentResult("e", "Empty", "x", [])
    assert "Empty" in plot(r)


def test_plot_degenerate_single_point():
    r = ExperimentResult("e", "One", "x", [Series("s", [1.0], [2.0])])
    assert "One" in plot(r)
