"""Golden-string coverage for the ASCII renderers (tables + plots).

These are the exact bytes the CLI prints and the bench logs archive, so
they are pinned as goldens: float formatting (whole floats render as
ints, others as ``.3f``), the mismatched-series padding note, and the
plot's empty/partial-series guards all have one canonical rendering.
"""

from __future__ import annotations

import pytest

from repro.experiments.ascii_plot import plot
from repro.experiments.records import ExperimentResult, Series
from repro.experiments.tables import format_kv, format_table


def test_table_golden_with_float_formatting_edges():
    result = ExperimentResult(
        experiment_id="fig10",
        title="Arrow vs centralized",
        xlabel="n",
        series=[
            Series("arrow", [8.0, 16.0, 32.0], [1.0, 2.5, 10.0 / 3.0],
                   "sim time"),
            Series("central", [8.0, 16.0, 32.0], [4.0, 8.0, 16.0]),
        ],
        notes=["closed loop"],
    )
    assert format_table(result) == (
        "== fig10: Arrow vs centralized ==\n"
        "n  | arrow [sim time] | central\n"
        "---+------------------+--------\n"
        " 8 |                1 |       4\n"
        "16 |            2.500 |       8\n"
        "32 |            3.333 |      16\n"
        "note: closed loop"
    )


def test_table_pads_mismatched_series_and_notes_it():
    """A series that ran short pads with '-' instead of misaligning."""
    short = Series("partial", [8.0, 16.0], [5.0, 6.0])
    short.ys = [5.0]  # post-construction drift (incremental fill)
    result = ExperimentResult(
        "mix", "Mismatch", "n",
        series=[Series("full", [8.0, 16.0, 32.0], [1.0, 2.0, 3.0]), short],
    )
    assert format_table(result) == (
        "== mix: Mismatch ==\n"
        "n  | full | partial\n"
        "---+------+--------\n"
        " 8 |    1 |       5\n"
        "16 |    2 |       -\n"
        "32 |    3 |       -\n"
        "note: series lengths differ — x column follows the longest "
        "series (3 points); padded: partial (2 points)"
    )


def test_table_x_column_follows_the_longest_series():
    a = Series("a", [1.0], [10.0])
    b = Series("b", [1.0, 2.0, 3.0], [10.0, 20.0, 30.0])
    table = format_table(ExperimentResult("t", "T", "x", series=[a, b]))
    assert table.count("\n") == 6  # title + header + sep + 3 rows + note
    assert "a (1 points)" in table


def test_table_with_no_series_and_no_rows():
    assert format_table(ExperimentResult("t", "T", "x")) == (
        "== t: T ==\nx\n-"
    )


def test_float_fmt_is_overridable():
    result = ExperimentResult(
        "t", "T", "x", series=[Series("s", [1.0], [2.34567])]
    )
    assert "2.3457" in format_table(result, float_fmt="{:.4f}")
    assert "2.346" in format_table(result)


def test_format_kv_alignment():
    assert format_kv({"a": 1, "long_key": 2}, title="t") == (
        "== t ==\na        : 1\nlong_key : 2"
    )


def test_plot_golden_small_grid():
    result = ExperimentResult(
        "p", "Tiny", "n", series=[Series("a", [0.0, 1.0], [0.0, 2.0])]
    )
    assert plot(result, width=8, height=4) == (
        "Tiny  (y: 0..2)\n"
        "|       o\n"
        "|        \n"
        "|        \n"
        "|o       \n"
        "+--------\n"
        " x: n 0..1\n"
        " o a"
    )


def test_plot_guards_series_with_xs_but_no_ys():
    """Regression: non-empty xs + empty ys used to crash min() — now the
    series contributes nothing and is marked in the legend."""
    broken = Series("b", [1.0], [9.0])
    broken.ys = []
    result = ExperimentResult(
        "p2", "Guarded", "n",
        series=[Series("a", [0.0, 1.0], [0.0, 2.0]), broken],
    )
    assert plot(result, width=8, height=4) == (
        "Guarded  (y: 0..2)\n"
        "|       o\n"
        "|        \n"
        "|        \n"
        "|o       \n"
        "+--------\n"
        " x: n 0..1\n"
        " o a  x b (no data)"
    )


def test_plot_with_no_plottable_points_is_a_stub():
    broken = Series("b", [1.0], [9.0])
    broken.ys = []
    result = ExperimentResult("p3", "Nothing", "n", series=[broken])
    assert plot(result) == "(empty plot: Nothing)"
    assert plot(ExperimentResult("p4", "Bare", "n")) == "(empty plot: Bare)"


def test_plot_partial_series_plots_only_paired_prefix():
    lagging = Series("lag", [0.0, 1.0, 2.0], [0.0, 1.0, 2.0])
    lagging.ys = [0.0, 1.0]  # third point not yet filled in
    out = plot(
        ExperimentResult("p5", "Lag", "n", series=[lagging]),
        width=8, height=4,
    )
    # The axis range only spans the paired points (x stops at 1, y at 1).
    assert "x: n 0..1" in out
    assert "(y: 0..1)" in out
    assert "(no data)" not in out


def test_series_constructor_still_validates_lengths():
    with pytest.raises(ValueError, match="2 xs vs 1 ys"):
        Series("s", [1.0, 2.0], [1.0])
