"""Experiment-harness tests: theorem sweeps and ablations at small scale."""


from repro.experiments.ablations import (
    run_protocol_ablation,
    run_service_time_ablation,
    run_tree_ablation,
)
from repro.experiments.competitive import run_async_comparison, run_competitive_sweep
from repro.experiments.lowerbound_sweep import run_theorem41_sweep, run_theorem42_sweep


def test_competitive_sweep_within_ceiling():
    res = run_competitive_sweep([8, 16, 32], requests=25, seed=1)
    hi = res.series_by_name("ratio (vs opt lower bd)").ys
    ceil = res.series_by_name("O(s log D) ceiling").ys
    assert all(h <= c for h, c in zip(hi, ceil))
    lo = res.series_by_name("ratio (vs opt upper bd)").ys
    assert all(l <= h for l, h in zip(lo, hi))
    # lo may dip slightly below 1 (the heuristic upper bound overshoots
    # the true optimum); it must stay positive and near-or-above 1.
    assert all(l > 0.8 for l in lo)


def test_async_comparison_costs_positive_and_bounded():
    res = run_async_comparison([8, 16], requests=20, seed=2)
    sync = res.series_by_name("sync total latency").ys
    asyn = res.series_by_name("async total latency").ys
    assert all(a > 0 for a in asyn)
    # Hop-for-hop delays are <= 1, so async total is at most ~sync total
    # plus reordering slack; sanity: within 2x.
    assert all(a <= 2.0 * s + 1e-9 for a, s in zip(asyn, sync))


def test_theorem41_sweep_layered_dominates_literal():
    res = run_theorem41_sweep([16, 64, 256])
    lit = res.series_by_name("literal construction").ys
    lay = res.series_by_name("bitonic layered").ys
    assert lay[-1] > lit[-1]
    assert lay[-1] > lay[0] - 0.25  # non-degenerate growth trend


def test_theorem42_sweep_ratio_scales_with_stretch():
    res = run_theorem42_sweep([1, 2, 4], D_over_s=16)
    ratios = res.series_by_name("measured ratio").ys
    stretch = res.series_by_name("measured tree stretch").ys
    assert stretch == [1.0, 2.0, 4.0]
    assert ratios[2] >= 2.0 * ratios[0] - 1e-9


def test_tree_ablation_lower_stretch_lower_cost():
    res = run_tree_ablation(num_nodes=30, requests=80, seed=1)
    stretch = res.series_by_name("stretch").ys
    cost = res.series_by_name("arrow total latency").ys
    # The min-stretch tree should not lose to the max-stretch tree.
    best, worst = stretch.index(min(stretch)), stretch.index(max(stretch))
    if stretch[best] < stretch[worst]:
        assert cost[best] <= cost[worst] * 1.25


def test_protocol_ablation_message_counts():
    res = run_protocol_ablation(num_nodes=24, requests=120, seed=2)
    msgs = res.series_by_name("messages/op").ys
    arrow_bin, arrow_star, nta, central = msgs
    # Centralized: <= 2 messages/op by construction; NTA compresses paths.
    assert central <= 2.0 + 1e-9
    assert nta <= arrow_bin + 2.0
    assert all(m >= 0 for m in msgs)


def test_service_time_ablation_widens_gap():
    res = run_service_time_ablation(
        num_procs=24, requests_per_proc=60, service_times=[0.0, 0.3]
    )
    a = res.series_by_name("arrow").ys
    c = res.series_by_name("centralized").ys
    gap_low = c[0] - a[0]
    gap_high = c[1] - a[1]
    assert gap_high > gap_low
