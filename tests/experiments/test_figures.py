"""Experiment-harness tests: each figure's qualitative shape at small scale.

The full-size regenerations live in ``benchmarks/``; these tests run the
same code paths at reduced scale and assert the *shape* claims hold, so a
regression in any experiment is caught by ``pytest tests/``.
"""

import pytest

from repro.experiments.fig9 import render_instance, run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11
from repro.experiments.sequential import run_sequential_experiment


PROCS = [2, 8, 24, 48]
KW = dict(requests_per_proc=80, service_time=0.1, think_time=0.1)


@pytest.fixture(scope="module")
def fig10():
    return run_fig10(PROCS, **KW)


@pytest.fixture(scope="module")
def fig11():
    return run_fig11(PROCS, **KW)


def test_fig10_centralized_grows_superlinearly(fig10):
    c = fig10.series_by_name("centralized").ys
    assert c[-1] > 2.0 * c[0]


def test_fig10_arrow_stays_subquadratic_flat(fig10):
    a = fig10.series_by_name("arrow").ys
    # 24x more processors, less than 2x total time: the paper's "nearly
    # constant with increasing system size".
    assert a[-1] < 2.0 * a[0]


def test_fig10_arrow_beats_centralized_at_scale(fig10):
    a = fig10.series_by_name("arrow").ys
    c = fig10.series_by_name("centralized").ys
    assert a[-1] < c[-1]


def test_fig11_mean_hops_below_one(fig11):
    hops = fig11.series_by_name("mean hops/op").ys
    assert all(h < 1.2 for h in hops)
    assert all(h < 1.0 for h in hops[1:])  # beyond the 2-proc ping-pong


def test_fig11_local_finds_are_common(fig11):
    frac = fig11.series_by_name("local-find fraction").ys
    assert all(f > 0.3 for f in frac[1:])


def test_fig9_literal_and_layered_reports():
    lit = run_fig9(64, 4, variant="literal")
    lay = run_fig9(64, 4, variant="layered")
    assert lit.num_requests > 0 and lay.num_requests > 0
    assert lay.ratio > lit.ratio * 0.9
    assert lay.opt_upper <= 3 * 64
    with pytest.raises(ValueError):
        run_fig9(64, 4, variant="nope")


def test_fig9_picture_dimensions():
    rep = run_fig9(64, 4, variant="layered")
    lines = rep.picture.splitlines()
    assert len(lines) == 5  # one row per time layer 0..4
    assert all("*" in line for line in lines)


def test_render_instance_marks_requests():
    from repro.core.requests import RequestSchedule

    sched = RequestSchedule([(0, 0.0), (8, 1.0)])
    pic = render_instance(sched, 8, width=9)
    rows = pic.splitlines()
    assert rows[0].count("*") == 1
    assert rows[1].count("*") == 1


def test_sequential_experiment_bounds():
    res = run_sequential_experiment(num_requests=15, seed=1)
    max_cost = res.series_by_name("max per-op latency").ys
    diam = res.series_by_name("tree diameter D").ys
    ratio = res.series_by_name("total ratio (vs seq opt)").ys
    stretch = res.series_by_name("tree stretch s").ys
    for c, d in zip(max_cost, diam):
        assert c <= d + 1e-9  # Demmer-Herlihy per-op bound
    for r, s in zip(ratio, stretch):
        assert r <= s + 1e-9  # sequential competitive ratio <= stretch
