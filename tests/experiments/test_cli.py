"""CLI smoke tests (tiny parameter sets)."""

import json

import pytest

from repro.cli import main


def test_fig10_command(capsys):
    assert main(["fig10", "--procs", "2,6", "--requests-per-proc", "20"]) == 0
    out = capsys.readouterr().out
    assert "fig10" in out and "centralized" in out


def test_fig11_command(capsys):
    assert main(["fig11", "--procs", "2,6", "--requests-per-proc", "20"]) == 0
    assert "mean hops/op" in capsys.readouterr().out


def test_fig9_command(capsys):
    assert main(["fig9", "-D", "16", "-k", "2", "--variant", "layered"]) == 0
    out = capsys.readouterr().out
    assert "measured ratio" in out
    assert "*" in out  # the picture


def test_thm319_command(capsys):
    assert main(["thm319", "--diameters", "8,16", "--requests", "12"]) == 0
    assert "ceiling" in capsys.readouterr().out


def test_thm42_command(capsys):
    assert main(["thm42", "--stretches", "1,2"]) == 0
    assert "stretch" in capsys.readouterr().out


def test_sequential_command(capsys):
    assert main(["sequential"]) == 0
    assert "Sequential" in capsys.readouterr().out


def test_json_output(tmp_path, capsys):
    path = tmp_path / "out.json"
    assert main(["--json", str(path), "fig11", "--procs", "2,4",
                 "--requests-per-proc", "10"]) == 0
    docs = json.loads(path.read_text())
    assert docs[0]["experiment_id"] == "fig11"


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["nope"])


def test_directory_command(capsys):
    assert main(["directory", "--procs", "2,4", "--acquisitions-per-proc", "10"]) == 0
    assert "home-based" in capsys.readouterr().out


def test_oneshot_command(capsys):
    assert main(["oneshot"]) == 0
    assert "One-shot" in capsys.readouterr().out


def test_fig11_fast_engine_command(capsys):
    assert main(["fig11", "--procs", "2,6", "--requests-per-proc", "20",
                 "--engine", "fast"]) == 0
    assert "mean hops/op" in capsys.readouterr().out


def test_fig9_engine_cross_check_command(capsys):
    assert main(["fig9", "-D", "16", "-k", "2", "--engine", "fast"]) == 0
    assert "simulated cost (fast)" in capsys.readouterr().out


def test_sweep_command_writes_and_resumes(tmp_path, capsys):
    out = tmp_path / "sweep.jsonl"
    argv = ["sweep", "--grid", "fig11", "--sizes", "4,8", "--per-node", "5",
            "--seeds", "0", "--workers", "2", "--out", str(out)]
    assert main(argv) == 0
    assert "2 written" in capsys.readouterr().out
    first = out.read_bytes()
    assert main(argv) == 0
    assert "2 skipped" in capsys.readouterr().out
    assert out.read_bytes() == first
    docs = [json.loads(line) for line in out.read_text().strip().split("\n")]
    assert [d["graph"] for d in docs] == ["complete(n=4)", "complete(n=8)"]


def test_sweep_command_honours_seeds_on_smoke_grid(tmp_path):
    out = tmp_path / "smoke.jsonl"
    assert main(["sweep", "--grid", "smoke", "--seeds", "5", "--out", str(out)]) == 0
    docs = [json.loads(line) for line in out.read_text().strip().split("\n")]
    assert {d["seed"] for d in docs} == {5}


def test_sweep_command_rejects_fig11_flags_on_other_grids(tmp_path):
    with pytest.raises(SystemExit):
        main(["sweep", "--grid", "smoke", "--sizes", "4,8",
              "--out", str(tmp_path / "x.jsonl")])


def test_sweep_command_batch_engine_rows_match_fast(tmp_path):
    fast = tmp_path / "fast.jsonl"
    bat = tmp_path / "batch.jsonl"
    base = ["sweep", "--grid", "smoke", "--out"]
    assert main(base + [str(fast), "--engine", "fast"]) == 0
    assert main(base + [str(bat), "--engine", "batch", "--workers", "2"]) == 0
    f_docs = [json.loads(line) for line in fast.read_text().strip().split("\n")]
    b_docs = [json.loads(line) for line in bat.read_text().strip().split("\n")]
    for f, b in zip(f_docs, b_docs):
        assert f.pop("engine") == "fast"
        assert b.pop("engine") == "batch"
        assert f == b


def test_fig10_batch_engine_command(capsys):
    assert main(["fig10", "--procs", "2,6", "--requests-per-proc", "10",
                 "--engine", "batch"]) == 0
    assert "centralized" in capsys.readouterr().out


def test_sweep_verify_accepts_identical_files(tmp_path, capsys):
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    assert main(["sweep", "--grid", "smoke", "--engine", "fast",
                 "--out", str(a)]) == 0
    assert main(["sweep", "--grid", "smoke", "--engine", "batch",
                 "--out", str(b)]) == 0
    capsys.readouterr()
    assert main(["sweep-verify", "--a", str(a), "--b", str(b),
                 "--expect-cells", "4"]) == 0
    assert "4 rows identical" in capsys.readouterr().out


def test_sweep_verify_flags_divergent_rows(tmp_path, capsys):
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    assert main(["sweep", "--grid", "smoke", "--out", str(a)]) == 0
    rows = [json.loads(line) for line in a.read_text().strip().split("\n")]
    rows[1]["makespan"] += 1.0
    b.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
    capsys.readouterr()
    assert main(["sweep-verify", "--a", str(a), "--b", str(b)]) == 1
    err = capsys.readouterr().err
    assert "makespan" in err and "FAILED" in err


def test_sweep_verify_flags_wrong_cell_count(tmp_path, capsys):
    a = tmp_path / "a.jsonl"
    assert main(["sweep", "--grid", "smoke", "--out", str(a)]) == 0
    capsys.readouterr()
    assert main(["sweep-verify", "--a", str(a), "--b", str(a),
                 "--expect-cells", "7"]) == 1
    assert "expected 7 rows" in capsys.readouterr().err


def test_sweep_verify_flags_corrupt_histogram(tmp_path, capsys):
    a = tmp_path / "a.jsonl"
    assert main(["sweep", "--grid", "smoke", "--out", str(a)]) == 0
    rows = [json.loads(line) for line in a.read_text().strip().split("\n")]
    rows[0]["latency_hist"][0] += 2  # mass no longer matches requests
    b = tmp_path / "b.jsonl"
    b.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
    capsys.readouterr()
    assert main(["sweep-verify", "--a", str(b), "--b", str(b)]) == 1
    assert "latency_hist" in capsys.readouterr().err


def test_sweep_orchestrated_command_matches_one_shot(tmp_path, capsys):
    one_shot = tmp_path / "one_shot.jsonl"
    merged = tmp_path / "merged.jsonl"
    assert main(["sweep", "--grid", "smoke", "--out", str(one_shot)]) == 0
    assert main(["sweep", "--grid", "smoke", "--shards", "2", "--workers", "2",
                 "--out", str(merged)]) == 0
    captured = capsys.readouterr()
    assert "4 rows merged from 2 shard(s)" in captured.out
    assert "[shard 0]" in captured.err  # per-shard progress streamed
    assert merged.read_bytes() == one_shot.read_bytes()


def test_sweep_rejects_shard_with_shards(tmp_path):
    with pytest.raises(SystemExit):
        main(["sweep", "--grid", "smoke", "--shard", "0/2", "--shards", "2",
              "--out", str(tmp_path / "x.jsonl")])


def test_sweep_orchestrated_rejects_bad_pool_arguments(tmp_path):
    # Usage errors exit via argparse, never an orchestrator traceback.
    with pytest.raises(SystemExit):
        main(["sweep", "--grid", "smoke", "--shards", "2", "--workers", "0",
              "--out", str(tmp_path / "x.jsonl")])
    with pytest.raises(SystemExit):
        main(["sweep", "--grid", "smoke", "--shards", "2",
              "--max-retries", "-1", "--out", str(tmp_path / "x.jsonl")])


def test_sweep_merge_unwritable_output_exits_cleanly(tmp_path, capsys):
    shard = tmp_path / "s.jsonl"
    assert main(["sweep", "--grid", "smoke", "--shard", "0/1",
                 "--out", str(shard)]) == 0
    capsys.readouterr()
    # Output directory does not exist: the reason and path must land on
    # stderr with a non-zero exit, not as an unhandled traceback.
    assert main(["sweep-merge", "--out", str(tmp_path / "nodir" / "m.jsonl"),
                 str(shard) + ".shard0-1.jsonl"]) == 1
    err = capsys.readouterr().err
    assert "sweep-merge FAILED" in err and "nodir" in err


def test_sweep_verify_missing_file_exits_cleanly(tmp_path, capsys):
    missing = str(tmp_path / "nope.jsonl")
    assert main(["sweep-verify", "--a", missing, "--b", missing]) == 1
    err = capsys.readouterr().err
    assert "sweep-verify FAILED" in err and "nope.jsonl" in err


def test_sweep_verify_flags_torn_trailing_line(tmp_path, capsys):
    """A killed run's torn tail must FAIL verification (resume tolerates
    it, but a verification primitive exists to catch exactly that)."""
    a = tmp_path / "a.jsonl"
    assert main(["sweep", "--grid", "smoke", "--out", str(a)]) == 0
    b = tmp_path / "b.jsonl"
    b.write_text(a.read_text() + '{"cell_id": "torn', encoding="utf-8")
    capsys.readouterr()
    assert main(["sweep-verify", "--a", str(a), "--b", str(b)]) == 1
    err = capsys.readouterr().err
    assert "corrupt JSONL row" in err
