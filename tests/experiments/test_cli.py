"""CLI smoke tests (tiny parameter sets)."""

import json

import pytest

from repro.cli import main


def test_fig10_command(capsys):
    assert main(["fig10", "--procs", "2,6", "--requests-per-proc", "20"]) == 0
    out = capsys.readouterr().out
    assert "fig10" in out and "centralized" in out


def test_fig11_command(capsys):
    assert main(["fig11", "--procs", "2,6", "--requests-per-proc", "20"]) == 0
    assert "mean hops/op" in capsys.readouterr().out


def test_fig9_command(capsys):
    assert main(["fig9", "-D", "16", "-k", "2", "--variant", "layered"]) == 0
    out = capsys.readouterr().out
    assert "measured ratio" in out
    assert "*" in out  # the picture


def test_thm319_command(capsys):
    assert main(["thm319", "--diameters", "8,16", "--requests", "12"]) == 0
    assert "ceiling" in capsys.readouterr().out


def test_thm42_command(capsys):
    assert main(["thm42", "--stretches", "1,2"]) == 0
    assert "stretch" in capsys.readouterr().out


def test_sequential_command(capsys):
    assert main(["sequential"]) == 0
    assert "Sequential" in capsys.readouterr().out


def test_json_output(tmp_path, capsys):
    path = tmp_path / "out.json"
    assert main(["--json", str(path), "fig11", "--procs", "2,4",
                 "--requests-per-proc", "10"]) == 0
    docs = json.loads(path.read_text())
    assert docs[0]["experiment_id"] == "fig11"


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["nope"])


def test_directory_command(capsys):
    assert main(["directory", "--procs", "2,4", "--acquisitions-per-proc", "10"]) == 0
    assert "home-based" in capsys.readouterr().out


def test_oneshot_command(capsys):
    assert main(["oneshot"]) == 0
    assert "One-shot" in capsys.readouterr().out
