"""Unit tests for seeded RNG streams."""

import numpy as np

from repro.sim.rng import RngRegistry, spawn_rng


def test_same_seed_and_name_reproduces():
    a = spawn_rng(42, "latency").random(10)
    b = spawn_rng(42, "latency").random(10)
    assert np.array_equal(a, b)


def test_different_names_differ():
    a = spawn_rng(42, "latency").random(10)
    b = spawn_rng(42, "workload").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = spawn_rng(1, "latency").random(10)
    b = spawn_rng(2, "latency").random(10)
    assert not np.array_equal(a, b)


def test_registry_caches_streams():
    reg = RngRegistry(7)
    assert reg.stream("x") is reg.stream("x")


def test_registry_reset_restarts_sequences():
    reg = RngRegistry(7)
    first = reg.stream("x").random(5)
    reg.reset()
    second = reg.stream("x").random(5)
    assert np.array_equal(first, second)


def test_registry_streams_are_independent_of_creation_order():
    r1 = RngRegistry(3)
    a_first = r1.stream("a").random(4)
    r2 = RngRegistry(3)
    r2.stream("b")  # create b first this time
    a_second = r2.stream("a").random(4)
    assert np.array_equal(a_first, a_second)
