"""Unit tests for the simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_run_advances_clock_to_last_event():
    sim = Simulator()
    sim.call_at(7.5, lambda: None)
    assert sim.run() == 7.5
    assert sim.now == 7.5


def test_call_in_is_relative():
    sim = Simulator()
    seen = []
    def later():
        seen.append(sim.now)
        if len(seen) < 3:
            sim.call_in(2.0, later)
    sim.call_in(1.0, later)
    sim.run()
    assert seen == [1.0, 3.0, 5.0]


def test_scheduling_in_past_raises():
    sim = Simulator()
    sim.call_at(5.0, lambda: sim.call_at(1.0, lambda: None))
    with pytest.raises(SimulationError):
        sim.run()


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_in(-1.0, lambda: None)


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.call_at(1.0, fired.append, 1)
    sim.call_at(5.0, fired.append, 5)
    sim.run(until=3.0)
    assert fired == [1]
    assert sim.now == 3.0
    assert sim.pending == 1
    sim.run()
    assert fired == [1, 5]


def test_run_until_includes_boundary_events():
    sim = Simulator()
    fired = []
    sim.call_at(3.0, fired.append, 3)
    sim.run(until=3.0)
    assert fired == [3]


def test_events_fired_counter():
    sim = Simulator()
    for i in range(4):
        sim.call_at(float(i), lambda: None)
    sim.run()
    assert sim.events_fired == 4


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    ev = sim.call_at(1.0, fired.append, "x")
    sim.cancel(ev)
    sim.run()
    assert fired == []
    assert sim.pending == 0


def test_cancel_twice_is_safe():
    sim = Simulator()
    ev = sim.call_at(1.0, lambda: None)
    sim.cancel(ev)
    sim.cancel(ev)
    assert sim.pending == 0


def test_max_events_guard_detects_livelock():
    sim = Simulator(max_events=100)
    def spin():
        sim.call_in(0.0, spin)
    sim.call_at(0.0, spin)
    with pytest.raises(SimulationError, match="livelock"):
        sim.run()


def test_handler_exceptions_propagate():
    sim = Simulator()
    def boom():
        raise ValueError("boom")
    sim.call_at(1.0, boom)
    with pytest.raises(ValueError):
        sim.run()
    # The simulator is usable again after the failure.
    sim.call_at(2.0, lambda: None)
    sim.run()


def test_zero_delay_event_runs_at_same_instant_after_current():
    sim = Simulator()
    seq = []
    def first():
        seq.append(("first", sim.now))
        sim.call_in(0.0, second)
    def second():
        seq.append(("second", sim.now))
    sim.call_at(2.0, first)
    sim.run()
    assert seq == [("first", 2.0), ("second", 2.0)]
