"""Unit tests for the event queue: ordering, ties, cancellation."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import PRIORITY_DEFAULT, PRIORITY_LATE, EventQueue


def test_pop_orders_by_time():
    q = EventQueue()
    fired = []
    q.push(3.0, fired.append, ("c",))
    q.push(1.0, fired.append, ("a",))
    q.push(2.0, fired.append, ("b",))
    while q:
        ev = q.pop()
        ev.fn(*ev.args)
    assert fired == ["a", "b", "c"]


def test_same_time_fires_in_scheduling_order():
    q = EventQueue()
    order = []
    for i in range(10):
        q.push(5.0, order.append, (i,))
    while q:
        ev = q.pop()
        ev.fn(*ev.args)
    assert order == list(range(10))


def test_priority_orders_within_same_time():
    q = EventQueue()
    out = []
    q.push(1.0, out.append, ("late",), priority=PRIORITY_LATE)
    q.push(1.0, out.append, ("default",), priority=PRIORITY_DEFAULT)
    while q:
        ev = q.pop()
        ev.fn(*ev.args)
    assert out == ["default", "late"]


def test_cancelled_event_is_skipped():
    q = EventQueue()
    out = []
    ev = q.push(1.0, out.append, ("x",))
    q.push(2.0, out.append, ("y",))
    ev.cancel()
    q.note_cancelled()
    assert len(q) == 1
    got = q.pop()
    got.fn(*got.args)
    assert out == ["y"]


def test_pop_empty_raises():
    q = EventQueue()
    with pytest.raises(SimulationError):
        q.pop()


def test_peek_time_skips_cancelled():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    q.push(4.0, lambda: None)
    ev.cancel()
    q.note_cancelled()
    assert q.peek_time() == 4.0


def test_peek_empty_raises():
    q = EventQueue()
    with pytest.raises(SimulationError):
        q.peek_time()


def test_nan_time_rejected():
    q = EventQueue()
    with pytest.raises(SimulationError):
        q.push(float("nan"), lambda: None)


def test_len_tracks_live_events():
    q = EventQueue()
    evs = [q.push(float(i), lambda: None) for i in range(5)]
    assert len(q) == 5
    evs[2].cancel()
    q.note_cancelled()
    assert len(q) == 4
    q.pop()
    assert len(q) == 3


def test_bool_conversion():
    q = EventQueue()
    assert not q
    q.push(0.0, lambda: None)
    assert q
