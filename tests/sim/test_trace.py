"""Unit tests for the tracer."""

from repro.sim.trace import NullTracer, Tracer


def test_emit_records_and_counts():
    tr = Tracer()
    tr.emit(1.0, "send", src=0, dst=1)
    tr.emit(2.0, "send", src=1, dst=2)
    tr.emit(2.0, "deliver", src=0, dst=1)
    assert tr.counts["send"] == 2
    assert tr.counts["deliver"] == 1
    assert len(tr.records) == 3
    assert tr.records[0].payload["src"] == 0


def test_disabled_tracer_keeps_counts_only():
    tr = Tracer(enabled=False)
    tr.emit(1.0, "send")
    assert tr.counts["send"] == 1
    assert tr.records == []


def test_of_kind_filters():
    tr = Tracer()
    tr.emit(1.0, "a")
    tr.emit(2.0, "b")
    tr.emit(3.0, "a")
    assert [r.time for r in tr.of_kind("a")] == [1.0, 3.0]


def test_clear_resets_everything():
    tr = Tracer()
    tr.emit(1.0, "a")
    tr.clear()
    assert not tr.records and not tr.counts


def test_null_tracer_drops_everything():
    tr = NullTracer()
    tr.emit(1.0, "send")
    assert not tr.records and not tr.counts
