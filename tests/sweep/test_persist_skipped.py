"""Damaged-line accounting in the lenient JSONL readers.

The lenient parse has always *dropped* a torn trailing line (the
signature of a killed run); what ingest and resume callers need on top
is that the drop is reported, not silent — ``iter_rows``/``compact``
collect one entry per tolerated line into a caller-supplied ``skipped``
list, while mid-file corruption keeps raising.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.sweep.persist import compact, dumps_row, iter_rows

ROWS = [
    {"cell_id": "a", "index": 0, "n": 4},
    {"cell_id": "b", "index": 1, "n": 8},
]


def write_jsonl(path, rows, tail=""):
    text = "".join(dumps_row(r) + "\n" for r in rows) + tail
    path.write_text(text, encoding="utf-8")


def test_torn_tail_is_reported_in_skipped(tmp_path):
    path = tmp_path / "sweep.jsonl"
    write_jsonl(path, ROWS, tail='{"cell_id": "c", "ind')
    skipped: list[str] = []
    rows = list(iter_rows(str(path), skipped=skipped))
    assert rows == ROWS
    assert len(skipped) == 1
    assert skipped[0].startswith(f"{path}:3:")
    assert "torn trailing line dropped" in skipped[0]


def test_clean_file_reports_nothing(tmp_path):
    path = tmp_path / "sweep.jsonl"
    write_jsonl(path, ROWS)
    skipped: list[str] = []
    assert list(iter_rows(str(path), skipped=skipped)) == ROWS
    assert skipped == []


def test_without_skipped_list_the_drop_stays_tolerated(tmp_path):
    path = tmp_path / "sweep.jsonl"
    write_jsonl(path, ROWS, tail="not json")
    assert list(iter_rows(str(path))) == ROWS


def test_mid_file_corruption_still_raises(tmp_path):
    path = tmp_path / "sweep.jsonl"
    path.write_text(
        dumps_row(ROWS[0]) + "\n{broken\n" + dumps_row(ROWS[1]) + "\n",
        encoding="utf-8",
    )
    skipped: list[str] = []
    with pytest.raises(ReproError, match="corrupt JSONL row mid-file"):
        list(iter_rows(str(path), skipped=skipped))


def test_compact_reports_the_dropped_tail(tmp_path):
    path = tmp_path / "sweep.jsonl"
    write_jsonl(path, ROWS, tail='{"torn"')
    skipped: list[str] = []
    ids = compact(str(path), skipped=skipped)
    assert ids == {"a", "b"}
    assert len(skipped) == 1
    # The rewrite healed the file: a second read is clean.
    again: list[str] = []
    assert list(iter_rows(str(path), skipped=again)) == ROWS
    assert again == []
