"""Streaming ``merge_shards``: constant-memory path + rejection coverage.

``tests/sweep/test_shard.py`` covers the merge's historical rejection
paths (contiguity, duplicates, torn lines, mixed shardings, histogram
invariants) against real sweep output; this module pins down what the
streaming rewrite adds — peak memory independent of grid size, bounded
problem messages, in-file ordering — on synthetic shard files.
"""

import os
import tracemalloc

import pytest

from repro.sweep import dumps_row, merge_shards
from repro.sweep.persist import diff_rows


def write_shard(path, indices, pad=0):
    with open(path, "w", encoding="utf-8") as fh:
        for i in indices:
            row = {"index": i, "cell_id": f"c{i}"}
            if pad:
                row["pad"] = "x" * pad
            fh.write(dumps_row(row) + "\n")
    return str(path)


def round_robin_shards(tmp_path, n, m, pad=0, tag=""):
    return [
        write_shard(tmp_path / f"{tag}s{i}-{m}.jsonl", range(i, n, m), pad=pad)
        for i in range(m)
    ]


def merge_peak_bytes(tmp_path, n, pad):
    """Peak traced allocation while merging an n-cell grid of fat rows."""
    shards = round_robin_shards(tmp_path, n, 3, pad=pad, tag=f"g{n}")
    out = str(tmp_path / f"merged{n}.jsonl")
    tracemalloc.start()
    try:
        rows, problems = merge_shards(shards, out, expect_cells=n)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    assert problems == [] and rows == n
    return peak, out


def test_peak_memory_independent_of_grid_size(tmp_path):
    pad = 2000  # ~2KB per row: 3000 rows ≈ 6MB of row data on disk
    small_peak, _ = merge_peak_bytes(tmp_path, 60, pad)
    large_peak, out = merge_peak_bytes(tmp_path, 3000, pad)
    # A buffering merge holds every parsed row (≈3x the on-disk bytes in
    # dict form); the streaming merge holds one row per shard plus file
    # buffers.  The absolute cap fails buffering by an order of
    # magnitude while leaving the streaming path a wide margin.
    assert large_peak < 1_500_000, f"peak {large_peak} bytes looks buffered"
    assert large_peak < max(4 * small_peak, 1_000_000)
    # And the streamed output is still the canonical grid-order file.
    with open(out, encoding="utf-8") as fh:
        for expected, line in enumerate(fh):
            assert f'"index":{expected}' in line.replace(" ", "")


def test_merged_bytes_match_single_writer_output(tmp_path):
    shards = round_robin_shards(tmp_path, 10, 2)
    reference = write_shard(tmp_path / "reference.jsonl", range(10))
    out = tmp_path / "merged.jsonl"
    rows, problems = merge_shards(shards, str(out), expect_cells=10)
    assert problems == [] and rows == 10
    assert out.read_bytes() == open(reference, "rb").read()


def test_out_of_order_shard_file_is_rejected(tmp_path):
    bad = write_shard(tmp_path / "bad.jsonl", [1, 0])
    out = tmp_path / "merged.jsonl"
    rows, problems = merge_shards([bad], str(out))
    assert any("out of order" in p for p in problems)
    assert not out.exists()


def test_non_object_rows_are_problems_not_crashes(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text(
        dumps_row({"index": 0, "cell_id": "c0"}) + "\n[1,2,3]\n", encoding="utf-8"
    )
    rows, problems = merge_shards([str(bad)], str(tmp_path / "merged.jsonl"))
    assert any("not a JSON object" in p for p in problems)


def test_problem_index_lists_are_capped(tmp_path):
    # Only the even-residue shard of a 200-cell 2-sharding exists: the
    # odd indices are missing (99 detectable gaps — the final index 199
    # trails every surviving row, the documented expect_cells blind
    # spot), but the message names at most 10 of them.
    shards = [
        write_shard(tmp_path / "s0-2.jsonl", range(0, 200, 2)),
        str(tmp_path / "s1-2.jsonl"),  # never written
    ]
    rows, problems = merge_shards(shards, str(tmp_path / "merged.jsonl"))
    missing = [p for p in problems if "missing cell indices" in p]
    assert len(missing) == 1
    assert "(+89 more)" in missing[0]
    assert missing[0].count(",") <= 10


def test_duplicate_index_lists_are_capped(tmp_path):
    same = write_shard(tmp_path / "dup.jsonl", range(0, 40, 2))
    shards = [same, write_shard(tmp_path / "dup2.jsonl", range(0, 40, 2))]
    rows, problems = merge_shards(shards, str(tmp_path / "merged.jsonl"))
    dupes = [p for p in problems if "duplicate cell indices" in p]
    assert len(dupes) == 1
    assert "(+10 more)" in dupes[0]  # 20 duplicated indices, 10 shown


def test_wholly_damaged_shard_problems_are_capped(tmp_path):
    # Constant memory must hold on the reject path too: a shard of 500
    # corrupt lines records a bounded problem list plus one suppression
    # notice, not one string per line.
    bad = tmp_path / "bad.jsonl"
    bad.write_text("{broken\n" * 500, encoding="utf-8")
    rows, problems = merge_shards([str(bad)], str(tmp_path / "merged.jsonl"))
    per_file = [p for p in problems if "bad.jsonl" in p]
    assert len(per_file) <= 51  # _PROBLEMS_PER_FILE_CAP + suppression notice
    assert any("450 further problem(s) suppressed" in p for p in problems)


def test_no_tmp_sidecar_left_behind_on_rejection(tmp_path):
    bad = write_shard(tmp_path / "bad.jsonl", [0, 2])  # gap at 1, m=1
    out = tmp_path / "merged.jsonl"
    rows, problems = merge_shards([bad], str(out))
    assert problems
    assert not out.exists()
    assert not os.path.exists(str(out) + ".tmp")


def test_unwritable_output_raises_oserror_with_path(tmp_path):
    shard = write_shard(tmp_path / "s0-1.jsonl", [0, 1])
    with pytest.raises(OSError):
        merge_shards([shard], str(tmp_path / "no-such-dir" / "out.jsonl"))


def test_diff_rows_flags_non_object_rows(tmp_path):
    a = tmp_path / "a.jsonl"
    a.write_text('["not", "a", "row"]\n', encoding="utf-8")
    rows, problems = diff_rows(str(a), str(a))
    assert any("not a JSON object" in p for p in problems)
