"""Edge cases of the latency-distribution columns (``repro.sweep.stats``).

The executor calls :func:`latency_columns` on *whatever* a run produced —
including zero-request cells, single-request cells, and degenerate
distributions where every latency is identical (or zero).  These shapes
must keep the schema stable and the histogram mass exactly equal to the
request count, because the ``sweep-verify`` CI primitive asserts both.
"""

from __future__ import annotations

import pytest

from repro.sweep.stats import (
    DEFAULT_BINS,
    latency_columns,
    percentile_nearest_rank,
)


def test_empty_latency_list_yields_all_zero_columns():
    cols = latency_columns([])
    assert cols["latency_mean"] == 0.0
    assert cols["latency_p50"] == 0.0
    assert cols["latency_p90"] == 0.0
    assert cols["latency_p99"] == 0.0
    assert cols["latency_max"] == 0.0
    assert cols["latency_hist"] == [0] * DEFAULT_BINS


def test_single_request_histogram_is_one_spike_in_the_top_bin():
    """n=1: the lone value *is* the max, so it lands in the last bucket."""
    cols = latency_columns([3.25])
    assert cols["latency_mean"] == 3.25
    assert cols["latency_p50"] == 3.25
    assert cols["latency_p99"] == 3.25
    assert cols["latency_max"] == 3.25
    hist = cols["latency_hist"]
    assert sum(hist) == 1
    assert hist[-1] == 1  # top edge is inclusive


def test_all_identical_latencies_degenerate_bins():
    """Every value equals the max: the whole mass sits in the top bucket."""
    cols = latency_columns([2.5] * 40)
    assert cols["latency_mean"] == 2.5
    assert cols["latency_p50"] == cols["latency_p90"] == cols["latency_p99"] == 2.5
    hist = cols["latency_hist"]
    assert sum(hist) == 40
    assert hist[-1] == 40
    assert all(c == 0 for c in hist[:-1])


def test_all_zero_latencies_spike_in_first_zero_width_bucket():
    """All-local-find cells: max == 0, the zero-width histogram still sums."""
    cols = latency_columns([0.0] * 17)
    assert cols["latency_max"] == 0.0
    hist = cols["latency_hist"]
    assert hist[0] == 17
    assert sum(hist) == 17


def test_single_zero_latency():
    cols = latency_columns([0.0])
    assert cols["latency_hist"][0] == 1
    assert cols["latency_max"] == 0.0


def test_histogram_mass_always_equals_count():
    """Float edge rounding must never drop or double-count a request."""
    vals = [0.1 * k for k in range(1, 101)] + [10.0, 10.0, 9.999999999999998]
    cols = latency_columns(vals)
    assert sum(cols["latency_hist"]) == len(vals)


def test_custom_bins_and_prefix():
    cols = latency_columns([1.0, 2.0, 4.0], bins=4, prefix="lat_")
    assert len(cols["lat_hist"]) == 4
    assert sum(cols["lat_hist"]) == 3
    assert cols["lat_max"] == 4.0


def test_bins_must_be_positive():
    with pytest.raises(ValueError):
        latency_columns([1.0], bins=0)
    with pytest.raises(ValueError):
        latency_columns([1.0], bins=-3)


def test_percentile_nearest_rank_edges():
    vals = [1.0, 2.0, 3.0, 4.0]
    assert percentile_nearest_rank(vals, 100) == 4.0
    assert percentile_nearest_rank(vals, 0.0001) == 1.0  # smallest rank is 1
    assert percentile_nearest_rank(vals, 50) == 2.0
    assert percentile_nearest_rank([7.0], 50) == 7.0


def test_percentile_rejects_empty_and_out_of_range():
    with pytest.raises(ValueError):
        percentile_nearest_rank([], 50)
    with pytest.raises(ValueError):
        percentile_nearest_rank([1.0], 0)
    with pytest.raises(ValueError):
        percentile_nearest_rank([1.0], 101)


def test_accumulation_order_cannot_leak():
    """Columns are functions of the multiset: any permutation agrees."""
    vals = [5.0, 0.25, 3.5, 3.5, 1.0, 0.0, 2.75]
    assert latency_columns(vals) == latency_columns(sorted(vals))
    assert latency_columns(vals) == latency_columns(sorted(vals, reverse=True))
