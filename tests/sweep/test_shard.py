"""Sharded sweep tests: partition, merge, guards against shared files."""

import json

import pytest

from repro.errors import SweepError
from repro.sweep import (
    GraphSpec,
    ScheduleSpec,
    SweepSpec,
    dumps_row,
    merge_shards,
    run_sweep,
    shard_path,
)


def tiny_spec():
    return SweepSpec(
        name="tiny",
        graphs=(GraphSpec.of("complete", n=6), GraphSpec.of("path", n=7)),
        trees=("bfs",),
        schedules=(ScheduleSpec.of("poisson", per_node=4, rate_per_node=0.5),),
        seeds=(0, 1, 2),
    )


def run_shards(tmp_path, count, workers=1):
    paths = []
    for i in range(count):
        p = shard_path(str(tmp_path / "sweep.jsonl"), i, count)
        summary = run_sweep(tiny_spec(), p, workers=workers, shard=(i, count))
        assert summary["shard"] == f"{i}/{count}"
        paths.append(p)
    return paths


def test_shard_path_naming():
    assert shard_path("sweep.jsonl", 0, 2) == "sweep.shard0-2.jsonl"
    assert shard_path("out/f.jsonl", 3, 16) == "out/f.shard3-16.jsonl"


def test_shard_merge_round_trip_byte_identical(tmp_path):
    whole = tmp_path / "whole.jsonl"
    run_sweep(tiny_spec(), str(whole))
    shards = run_shards(tmp_path, 2)
    merged = tmp_path / "merged.jsonl"
    rows, problems = merge_shards(shards, str(merged), expect_cells=6)
    assert problems == [] and rows == 6
    assert merged.read_bytes() == whole.read_bytes()


def test_shards_partition_without_overlap(tmp_path):
    shards = run_shards(tmp_path, 3)
    indices = []
    for i, p in enumerate(shards):
        with open(p) as fh:
            for line in fh:
                row = json.loads(line)
                assert row["index"] % 3 == i
                indices.append(row["index"])
    assert sorted(indices) == list(range(6))


def test_shard_resumes_like_an_unsharded_file(tmp_path):
    (shard0, shard1) = run_shards(tmp_path, 2)
    whole = open(shard1, "rb").read()
    lines = whole.decode().strip().split("\n")
    with open(shard1, "w") as fh:
        fh.write(lines[0] + "\n" + lines[1][:30])  # torn tail
    summary = run_sweep(tiny_spec(), shard1, shard=(1, 2))
    assert summary["skipped"] == 1 and summary["written"] == 2
    assert open(shard1, "rb").read() == whole


def test_merge_rejects_missing_shard(tmp_path):
    shards = run_shards(tmp_path, 2)
    merged = tmp_path / "merged.jsonl"
    rows, problems = merge_shards(
        [shards[0], str(tmp_path / "nope.jsonl")], str(merged)
    )
    assert any("missing shard file" in p for p in problems)
    assert any("missing cell indices" in p for p in problems)
    assert not merged.exists()


def test_merge_rejects_duplicate_rows(tmp_path):
    shards = run_shards(tmp_path, 2)
    rows, problems = merge_shards(
        [shards[0], shards[0], shards[1]], str(tmp_path / "merged.jsonl")
    )
    assert any("duplicate cell indices" in p for p in problems)


def test_merge_rejects_mixed_shardings(tmp_path):
    """A file whose indices span several residues is not one shard of
    this grid — e.g. an unsharded file passed alongside real shards."""
    shards = run_shards(tmp_path, 2)
    whole = tmp_path / "whole.jsonl"
    run_sweep(tiny_spec(), str(whole))
    rows, problems = merge_shards(
        [str(whole), shards[1]], str(tmp_path / "merged.jsonl")
    )
    assert any("span residues" in p for p in problems)


def test_merge_detects_lost_tail_via_expect_cells(tmp_path):
    """A shard that lost only trailing cells looks internally complete;
    only expect_cells (= SweepSpec.num_cells()) closes that gap."""
    shards = run_shards(tmp_path, 2)
    lines = open(shards[1]).read().strip().split("\n")
    with open(shards[1], "w") as fh:
        fh.write("\n".join(lines[:-1]) + "\n")  # drop the final cell
    merged = tmp_path / "merged.jsonl"
    rows, problems = merge_shards(shards, str(merged), expect_cells=6)
    assert any("expected 6 rows" in p for p in problems)
    assert not merged.exists()


def test_merge_rejects_wrong_expect_cells(tmp_path):
    shards = run_shards(tmp_path, 2)
    rows, problems = merge_shards(
        shards, str(tmp_path / "merged.jsonl"), expect_cells=7
    )
    assert any("expected 7 rows" in p for p in problems)


def test_merge_rejects_torn_tail_and_rowless_lines(tmp_path):
    shards = run_shards(tmp_path, 2)
    with open(shards[1], "a") as fh:
        fh.write('{"torn":')
    rows, problems = merge_shards(shards, str(tmp_path / "merged.jsonl"))
    assert any("corrupt JSONL row" in p for p in problems)


def test_merge_rejects_rows_without_index(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text(dumps_row({"cell_id": "x"}) + "\n")
    rows, problems = merge_shards([str(bad)], str(tmp_path / "merged.jsonl"))
    assert any("no integer 'index'" in p for p in problems)


def test_invalid_shard_tuples_rejected(tmp_path):
    for bad in ((2, 2), (-1, 2), (0, 0)):
        with pytest.raises(SweepError):
            run_sweep(tiny_spec(), str(tmp_path / "s.jsonl"), shard=bad)


def test_single_shard_of_one_equals_whole_grid(tmp_path):
    whole = tmp_path / "whole.jsonl"
    single = tmp_path / "single.jsonl"
    run_sweep(tiny_spec(), str(whole))
    summary = run_sweep(tiny_spec(), str(single), shard=(0, 1))
    assert summary["written"] == 6
    assert single.read_bytes() == whole.read_bytes()


def test_concurrent_writer_guard(tmp_path):
    fcntl = pytest.importorskip("fcntl")
    out = str(tmp_path / "guarded.jsonl")
    with open(out + ".lock", "w") as holder:
        fcntl.flock(holder.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        with pytest.raises(SweepError):
            run_sweep(tiny_spec(), out)
    # Lock released: the same file now sweeps fine.
    summary = run_sweep(tiny_spec(), out)
    assert summary["written"] == 6
