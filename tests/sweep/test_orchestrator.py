"""Orchestrator tests: supervised shard pool, retry, streaming auto-merge.

The kill-and-retry scenarios use the orchestrator's fault-injection hook
(``REPRO_ORCH_FAULT``), which SIGKILLs a shard worker mid-run — the same
mechanism the CI orchestrator smoke drives through the CLI.  Signal
semantics make these POSIX-only.
"""

import os

import pytest

from repro.errors import MergeError, OrchestratorError, ShardFailedError
from repro.sweep import (
    GraphSpec,
    ScheduleSpec,
    SweepSpec,
    dumps_row,
    orchestrate_sweep,
    run_sweep,
    shard_path,
)
from repro.sweep.orchestrator import FAULT_ENV

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="worker supervision relies on POSIX signals"
)

POLL = 0.05


def tiny_spec():
    return SweepSpec(
        name="tiny",
        graphs=(GraphSpec.of("complete", n=6), GraphSpec.of("path", n=7)),
        trees=("bfs",),
        schedules=(ScheduleSpec.of("poisson", per_node=4, rate_per_node=0.5),),
        seeds=(0, 1, 2),
    )


def one_shot_bytes(tmp_path):
    whole = tmp_path / "whole.jsonl"
    run_sweep(tiny_spec(), str(whole))
    return whole.read_bytes()


def test_orchestrated_sweep_matches_one_shot_run(tmp_path):
    out = tmp_path / "orch.jsonl"
    events = []
    summary = orchestrate_sweep(
        tiny_spec(), str(out), shards=3, workers=2,
        poll_interval=POLL, progress=events.append,
    )
    assert summary["rows"] == 6
    assert summary["retries_used"] == 0
    assert summary["merged"] is True
    assert out.read_bytes() == one_shot_bytes(tmp_path)
    # Shard files survive the merge for audit/resume.
    for i in range(3):
        assert os.path.exists(shard_path(str(out), i, 3))
    kinds = {e["event"] for e in events}
    assert {"launch", "shard-done", "progress"} <= kinds
    final = [e for e in events if e["event"] == "progress"][-1]
    assert final["done"] == 6 and final["total"] == 6
    assert all("rate" in s for s in final["shards"])


def test_killed_shard_is_retried_and_merge_is_byte_identical(
    tmp_path, monkeypatch
):
    # Shard 0 of 2 (cells 0, 2, 4) dies to SIGKILL after one row, leaving
    # a torn half-row; the retry must resume its file and finish.
    monkeypatch.setenv(FAULT_ENV, "0:1")
    out = tmp_path / "orch.jsonl"
    summary = orchestrate_sweep(
        tiny_spec(), str(out), shards=2, workers=2,
        max_retries=2, poll_interval=POLL,
    )
    assert summary["retries_used"] == 1
    assert out.read_bytes() == one_shot_bytes(tmp_path)
    state0 = summary["shard_states"][0]
    assert state0["attempts"] == 2 and state0["status"] == "done"
    assert "killed by signal" in state0["failures"][0]
    sidecar = shard_path(str(out), 0, 2) + ".failures.log"
    assert "killed by signal" in open(sidecar).read()


def test_retry_budget_exhaustion_raises_with_failure_log(
    tmp_path, monkeypatch
):
    monkeypatch.setenv(FAULT_ENV, "1:always")
    out = tmp_path / "orch.jsonl"
    with pytest.raises(ShardFailedError) as excinfo:
        orchestrate_sweep(
            tiny_spec(), str(out), shards=2, workers=2,
            max_retries=1, poll_interval=POLL,
        )
    # 1 first attempt + 1 retry, both logged for the failed shard.
    assert list(excinfo.value.failures) == [1]
    assert len(excinfo.value.failures[1]) == 2
    # The surviving shard's completed work stays on disk for a rerun.
    healthy = shard_path(str(out), 0, 2)
    assert os.path.exists(healthy) and os.path.getsize(healthy) > 0
    assert not out.exists()


def test_more_shards_than_cells_still_merges(tmp_path):
    out = tmp_path / "orch.jsonl"
    summary = orchestrate_sweep(
        tiny_spec(), str(out), shards=8, workers=3, poll_interval=POLL
    )
    assert summary["rows"] == 6
    assert out.read_bytes() == one_shot_bytes(tmp_path)
    # Shards beyond the grid ran zero cells but still produced files.
    assert summary["shard_states"][7]["total"] == 0


def test_stale_alien_rows_fail_the_final_merge(tmp_path):
    # A leftover row from some other grid poisons shard 0's file; resume
    # keeps it (unknown cell_id), so the auto-merge must reject the run.
    out = tmp_path / "orch.jsonl"
    stale = shard_path(str(out), 0, 2)
    with open(stale, "w", encoding="utf-8") as fh:
        fh.write(dumps_row({"index": 99, "cell_id": "alien"}) + "\n")
    with pytest.raises(MergeError) as excinfo:
        orchestrate_sweep(
            tiny_spec(), str(out), shards=2, workers=2, poll_interval=POLL
        )
    assert excinfo.value.problems
    assert not out.exists()


def test_no_resume_discards_stale_shard_files(tmp_path):
    # Same poisoned shard file, but resume=False deletes it up front.
    out = tmp_path / "orch.jsonl"
    stale = shard_path(str(out), 0, 2)
    with open(stale, "w", encoding="utf-8") as fh:
        fh.write(dumps_row({"index": 99, "cell_id": "alien"}) + "\n")
    summary = orchestrate_sweep(
        tiny_spec(), str(out), shards=2, workers=2,
        resume=False, poll_interval=POLL,
    )
    assert summary["rows"] == 6
    assert out.read_bytes() == one_shot_bytes(tmp_path)


def test_merge_false_skips_the_merge(tmp_path):
    out = tmp_path / "orch.jsonl"
    summary = orchestrate_sweep(
        tiny_spec(), str(out), shards=2, workers=2,
        merge=False, poll_interval=POLL,
    )
    assert summary["rows"] is None and summary["merged"] is False
    assert not out.exists()
    assert os.path.exists(shard_path(str(out), 0, 2))


def test_malformed_fault_env_fails_fast(tmp_path, monkeypatch):
    # A typo'd hook must fail in the supervisor with the real message,
    # not burn the retry budget on children dying to the parse error.
    monkeypatch.setenv(FAULT_ENV, "0-1")
    with pytest.raises(OrchestratorError, match="I:R"):
        orchestrate_sweep(
            tiny_spec(), str(tmp_path / "orch.jsonl"), shards=2,
            poll_interval=POLL,
        )


def test_bad_arguments_rejected(tmp_path):
    out = str(tmp_path / "orch.jsonl")
    with pytest.raises(OrchestratorError):
        orchestrate_sweep(tiny_spec(), out, shards=0)
    with pytest.raises(OrchestratorError):
        orchestrate_sweep(tiny_spec(), out, shards=2, workers=0)
    with pytest.raises(OrchestratorError):
        orchestrate_sweep(tiny_spec(), out, shards=2, max_retries=-1)


def test_orchestrator_errors_are_sweep_errors():
    from repro.errors import SweepError

    assert issubclass(OrchestratorError, SweepError)
    assert issubclass(ShardFailedError, OrchestratorError)
    assert issubclass(MergeError, SweepError)
