"""Latency histogram/percentile columns: stats unit tests + JSONL contracts.

The byte-identity contract of sweep files extends to the latency columns:
bins and percentiles must be byte-identical across worker counts and
across resume-from-partial, for open- and closed-loop cells alike.
"""


import pytest

from repro.sweep import (
    GraphSpec,
    ScheduleSpec,
    SweepSpec,
    execute_cell,
    fig10_grid,
    iter_rows,
    latency_columns,
    percentile_nearest_rank,
    run_sweep,
)
from repro.sweep.stats import DEFAULT_BINS

LATENCY_KEYS = {
    "latency_mean",
    "latency_p50",
    "latency_p90",
    "latency_p99",
    "latency_max",
    "latency_hist",
}


def closed_spec(engine="fast"):
    return fig10_grid(
        sizes=(5, 9), requests_per_proc=8, seeds=(0,), engine=engine
    )


# ----------------------------------------------------------------------
# stats unit tests
# ----------------------------------------------------------------------
def test_percentile_nearest_rank_known_values():
    vals = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
    assert percentile_nearest_rank(vals, 50) == 5.0
    assert percentile_nearest_rank(vals, 90) == 9.0
    assert percentile_nearest_rank(vals, 99) == 10.0
    assert percentile_nearest_rank(vals, 100) == 10.0
    assert percentile_nearest_rank(vals, 1) == 1.0
    with pytest.raises(ValueError):
        percentile_nearest_rank([], 50)
    with pytest.raises(ValueError):
        percentile_nearest_rank(vals, 0)


def test_latency_columns_summary_and_histogram():
    cols = latency_columns([0.0, 1.0, 2.0, 3.0], bins=4)
    assert set(cols) == LATENCY_KEYS
    assert cols["latency_mean"] == 1.5
    assert cols["latency_p50"] == 1.0  # nearest rank on 4 values
    assert cols["latency_max"] == 3.0
    # Equal-width buckets on [0, latency_max]; the top edge is inclusive.
    assert cols["latency_hist"] == [1, 1, 1, 1]
    assert sum(cols["latency_hist"]) == 4


def test_latency_columns_empty_and_degenerate():
    empty = latency_columns([])
    assert empty["latency_hist"] == [0] * DEFAULT_BINS
    assert empty["latency_max"] == 0.0
    # All-zero latencies (every request a local find): one spike, bin 0.
    zeros = latency_columns([0.0] * 7, bins=4)
    assert zeros["latency_hist"] == [7, 0, 0, 0]
    assert zeros["latency_max"] == 0.0
    with pytest.raises(ValueError):
        latency_columns([1.0], bins=0)


def test_latency_columns_order_independent():
    fwd = latency_columns([3.0, 0.5, 2.0, 0.5, 9.0])
    rev = latency_columns([9.0, 0.5, 2.0, 0.5, 3.0])
    assert fwd == rev


# ----------------------------------------------------------------------
# JSONL contracts
# ----------------------------------------------------------------------
def test_every_row_kind_carries_latency_columns():
    open_cell = SweepSpec(
        name="o",
        graphs=(GraphSpec.of("complete", n=6),),
        trees=("bfs",),
        schedules=(ScheduleSpec.of("poisson", per_node=4, rate_per_node=0.5),),
        seeds=(0,),
    ).cells()[0]
    for cell in [open_cell, *closed_spec().cells()[:2]]:
        row = execute_cell(cell)
        assert LATENCY_KEYS <= set(row), cell.cell_id
        assert len(row["latency_hist"]) == DEFAULT_BINS
        assert sum(row["latency_hist"]) == row["requests"]
        assert row["latency_p50"] <= row["latency_p90"] <= row["latency_max"]


def test_closed_loop_rows_identical_across_engines():
    for cf, cm in zip(closed_spec("fast").cells(), closed_spec("message").cells()):
        rf, rm = execute_cell(cf), execute_cell(cm)
        assert rf.pop("engine") == "fast" and rm.pop("engine") == "message"
        assert rf == rm


def test_closed_sweep_worker_count_never_changes_bytes(tmp_path):
    p1 = tmp_path / "w1.jsonl"
    p3 = tmp_path / "w3.jsonl"
    s1 = run_sweep(closed_spec(), str(p1), workers=1)
    s3 = run_sweep(closed_spec(), str(p3), workers=3)
    assert s1["written"] == s3["written"] == 4
    assert p1.read_bytes() == p3.read_bytes()
    for row in iter_rows(str(p1)):
        assert LATENCY_KEYS <= set(row)


def test_resume_preserves_histogram_bins_byte_identically(tmp_path):
    """Truncate mid-grid, resume with a different worker count: same bytes."""
    p = tmp_path / "resume.jsonl"
    run_sweep(closed_spec(), str(p), workers=1)
    whole = p.read_bytes()
    lines = whole.decode().strip().split("\n")
    # Keep one complete row plus a truncated second one (killed-run shape).
    p.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 3])
    summary = run_sweep(closed_spec(), str(p), workers=4)
    assert summary["skipped"] == 1 and summary["written"] == 3
    assert p.read_bytes() == whole
    hists = [row["latency_hist"] for row in iter_rows(str(p))]
    assert all(isinstance(h, list) and len(h) == DEFAULT_BINS for h in hists)


def test_closed_and_open_cells_mix_in_one_grid(tmp_path):
    """A single spec can sweep open and closed workloads side by side."""
    spec = SweepSpec(
        name="mix",
        graphs=(GraphSpec.of("complete", n=6),),
        trees=("bfs",),
        schedules=(
            ScheduleSpec.of("one_shot"),
            ScheduleSpec.of("closed_arrow", requests_per_proc=5, think_time=0.2),
            ScheduleSpec.of("closed_centralized", requests_per_proc=5),
        ),
        seeds=(0,),
    )
    p = tmp_path / "mix.jsonl"
    summary = run_sweep(spec, str(p), workers=2)
    assert summary["written"] == 3
    rows = list(iter_rows(str(p)))
    assert [r["schedule"].split("(")[0] for r in rows] == [
        "one_shot",
        "closed_arrow",
        "closed_centralized",
    ]
    assert rows[1]["requests"] == rows[2]["requests"] == 30
    for r in rows:
        assert LATENCY_KEYS <= set(r)


def test_closed_loop_schedule_axis_validates_params():
    from repro.errors import ScheduleError
    from repro.sweep import build_schedule

    with pytest.raises(ScheduleError):
        ScheduleSpec.of("closed_arrow", center=3)  # centralized-only param
    with pytest.raises(ScheduleError):
        ScheduleSpec.of("closed_arrow", requests_per_procc=5)  # typo
    # Closed-loop families never build open-loop schedules.
    with pytest.raises(ScheduleError):
        build_schedule(ScheduleSpec.of("closed_arrow"), 8, 0)
