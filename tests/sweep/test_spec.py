"""Sweep spec tests: grid expansion, ordering, per-cell seed derivation."""

import pytest

from repro.errors import ScheduleError, SweepError
from repro.sweep import (
    GraphSpec,
    ScheduleSpec,
    SweepSpec,
    build_graph,
    build_schedule,
    build_tree,
    cell_seed,
    directory_grid,
    fig11_grid,
    mixed_grid,
    smoke_grid,
)


def small_spec(engine="fast"):
    return SweepSpec(
        name="t",
        graphs=(GraphSpec.of("complete", n=8), GraphSpec.of("grid", rows=3, cols=3)),
        trees=("bfs", "random"),
        schedules=(
            ScheduleSpec.of("one_shot"),
            ScheduleSpec.of("poisson", per_node=3, rate_per_node=0.5),
            ScheduleSpec.of("random", per_node=3),
        ),
        seeds=(0, 1),
        engine=engine,
    )


def test_expansion_count_is_axis_product():
    spec = small_spec()
    cells = spec.cells()
    assert len(cells) == 2 * 2 * 3 * 2
    assert spec.num_cells() == len(cells)


def test_expansion_order_is_nested_loop_order():
    cells = small_spec().cells()
    # indexes are sequential and the innermost axis (seeds) varies fastest
    assert [c.index for c in cells] == list(range(len(cells)))
    assert [c.seed for c in cells[:4]] == [0, 1, 0, 1]
    assert cells[0].graph.family == "complete" and cells[-1].graph.family == "grid"
    # cell ids are unique and stable across expansions
    ids = [c.cell_id for c in cells]
    assert len(set(ids)) == len(ids)
    assert ids == [c.cell_id for c in small_spec().cells()]


def test_cell_seed_is_deterministic_and_axis_keyed():
    cells = small_spec().cells()
    seeds = [cell_seed(c) for c in cells]
    assert seeds == [cell_seed(c) for c in small_spec().cells()]
    # distinct axes -> distinct derived seeds (no collisions at this size)
    assert len(set(seeds)) == len(seeds)
    # derived seed depends on the axes, not the cell's position in the grid
    reordered = SweepSpec(
        name="t2",
        graphs=(GraphSpec.of("grid", rows=3, cols=3), GraphSpec.of("complete", n=8)),
        trees=("random", "bfs"),
        schedules=(ScheduleSpec.of("one_shot"),),
        seeds=(1, 0),
    ).cells()
    by_id = {c.cell_id: cell_seed(c) for c in cells}
    for c in reordered:
        if c.cell_id in by_id:
            assert cell_seed(c) == by_id[c.cell_id]


def test_builders_instantiate_every_axis_value():
    for c in mixed_grid(seeds=(0,)).cells():
        s = cell_seed(c)
        g = build_graph(c.graph, s)
        tree = build_tree(c.tree, g, s)
        sched = build_schedule(c.schedule, g.num_nodes, s)
        assert tree.num_nodes == g.num_nodes
        assert len(sched) > 0


def test_relative_schedule_params_scale_with_n():
    spec = ScheduleSpec.of("poisson", per_node=5, rate_per_node=1.0)
    assert len(build_schedule(spec, 8, 0)) == 40
    assert len(build_schedule(spec, 16, 0)) == 80
    absolute = ScheduleSpec.of("poisson", count=30, rate=2.0)
    assert len(build_schedule(absolute, 8, 0)) == 30
    assert len(build_schedule(absolute, 16, 0)) == 30


def test_unknown_axis_values_rejected():
    # SweepError subclasses ScheduleError, so both spellings catch these.
    with pytest.raises(SweepError):
        GraphSpec.of("klein_bottle", n=8)
    with pytest.raises(SweepError):
        GraphSpec.of("gnp", n=24, prob=0.3)  # generator kwarg typo
    with pytest.raises(SweepError):
        ScheduleSpec.of("thundering_herd")
    with pytest.raises(ScheduleError):
        ScheduleSpec.of("poisson", rate_pernode=2.0)  # typo'd key fails loudly
    with pytest.raises(SweepError):
        ScheduleSpec.of("one_shot", count=5)  # param the family ignores
    with pytest.raises(SweepError):
        SweepSpec(
            name="bad",
            graphs=(GraphSpec.of("complete", n=4),),
            trees=("fibonacci",),
            schedules=(ScheduleSpec.of("one_shot"),),
            seeds=(0,),
        )
    with pytest.raises(SweepError):
        smoke_grid(engine="warp")


def test_explicit_zero_count_and_rate_rejected():
    """count=0 / rate=0.0 used to be silently rerouted to the per-node
    defaults by a falsy-fallback — running a different workload than the
    cell id claimed.  Both validation layers must refuse them."""
    # At spec-build time (the registry validator)...
    with pytest.raises(SweepError):
        ScheduleSpec.of("poisson", count=0)
    with pytest.raises(SweepError):
        ScheduleSpec.of("poisson", rate=0.0)
    with pytest.raises(SweepError):
        ScheduleSpec.of("hotspot", count=-3)
    with pytest.raises(SweepError):
        ScheduleSpec.of("poisson", per_node=0)
    # ...and at build time for directly constructed specs.
    with pytest.raises(SweepError):
        build_schedule(ScheduleSpec("poisson", (("count", 0),)), 8, 0)
    with pytest.raises(SweepError):
        build_schedule(ScheduleSpec("poisson", (("rate", 0.0),)), 8, 0)
    # Positive explicit values still win over the per-node defaults.
    assert len(build_schedule(ScheduleSpec.of("poisson", count=7), 8, 0)) == 7


def test_directory_grid_expands_both_designs():
    spec = directory_grid(sizes=(2, 4), acquisitions_per_proc=5)
    assert spec.num_cells() == 4
    families = {c.schedule.family for c in spec.cells()}
    assert families == {"directory_arrow", "directory_home"}


def test_service_time_is_part_of_cell_identity():
    base = small_spec()
    with_service = SweepSpec(
        name="t",
        graphs=base.graphs,
        trees=base.trees,
        schedules=base.schedules,
        seeds=base.seeds,
        service_time=0.1,
    )
    ids_a = {c.cell_id for c in base.cells()}
    ids_b = {c.cell_id for c in with_service.cells()}
    # Re-running a grid with a different service model must not resume
    # into the old file's rows.
    assert ids_a.isdisjoint(ids_b)


def test_arrow_runner_rejects_unknown_engine():
    from repro.core.fast_arrow import arrow_runner, run_arrow_fast
    from repro.core.runner import run_arrow

    assert arrow_runner("fast") is run_arrow_fast
    assert arrow_runner("message") is run_arrow
    for bad in ("Fast", "msg", ""):
        with pytest.raises(ValueError):
            arrow_runner(bad)


def test_named_grids_expand():
    assert fig11_grid((8, 16), seeds=(0,)).num_cells() == 2
    assert smoke_grid().num_cells() == 4
    assert mixed_grid().num_cells() == 4 * 3 * 3 * 2
