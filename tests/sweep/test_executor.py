"""Executor + persistence tests: determinism across workers, resume."""

import json
import os

import pytest

from repro.errors import ReproError
from repro.sweep import (
    GraphSpec,
    ScheduleSpec,
    SweepSpec,
    completed_ids,
    dumps_row,
    execute_cell,
    iter_rows,
    map_jobs,
    run_sweep,
    smoke_grid,
)


def tiny_spec(engine="fast"):
    return SweepSpec(
        name="tiny",
        graphs=(GraphSpec.of("complete", n=6), GraphSpec.of("path", n=7)),
        trees=("bfs",),
        schedules=(ScheduleSpec.of("poisson", per_node=4, rate_per_node=0.5),),
        seeds=(0, 1, 2),
        engine=engine,
    )


def test_one_vs_four_workers_identical_jsonl(tmp_path):
    p1 = tmp_path / "w1.jsonl"
    p4 = tmp_path / "w4.jsonl"
    s1 = run_sweep(tiny_spec(), str(p1), workers=1)
    s4 = run_sweep(tiny_spec(), str(p4), workers=4)
    assert s1["written"] == s4["written"] == 6
    assert p1.read_bytes() == p4.read_bytes()


def test_rows_are_in_grid_order_and_complete(tmp_path):
    p = tmp_path / "out.jsonl"
    run_sweep(tiny_spec(), str(p), workers=2)
    rows = list(iter_rows(str(p)))
    assert [r["index"] for r in rows] == list(range(6))
    assert {r["cell_id"] for r in rows} == {c.cell_id for c in tiny_spec().cells()}
    for r in rows:
        assert r["requests"] > 0
        assert r["makespan"] >= 0.0


def test_resume_skips_completed_cells(tmp_path):
    p = tmp_path / "out.jsonl"
    full = run_sweep(tiny_spec(), str(p), workers=1)
    assert full["skipped"] == 0
    whole = p.read_bytes()
    # Keep only the first two rows; resume must compute exactly the rest.
    lines = whole.decode().strip().split("\n")
    p.write_text("\n".join(lines[:2]) + "\n")
    summary = run_sweep(tiny_spec(), str(p), workers=1)
    assert summary["skipped"] == 2 and summary["written"] == 4
    assert p.read_bytes() == whole


def test_resume_drops_truncated_trailing_line(tmp_path):
    p = tmp_path / "out.jsonl"
    run_sweep(tiny_spec(), str(p), workers=1)
    whole = p.read_bytes()
    lines = whole.decode().strip().split("\n")
    p.write_text("\n".join(lines[:3]) + "\n" + lines[4][: len(lines[4]) // 2])
    summary = run_sweep(tiny_spec(), str(p), workers=1)
    assert summary["skipped"] == 3
    assert p.read_bytes() == whole


def test_resume_tolerates_blank_line_after_truncated_row(tmp_path):
    p = tmp_path / "out.jsonl"
    run_sweep(tiny_spec(), str(p), workers=1)
    whole = p.read_bytes()
    lines = whole.decode().strip().split("\n")
    # A killed run's partial row followed by a stray newline must still
    # resume (blank lines never promote the truncation to a hard error).
    p.write_text("\n".join(lines[:2]) + "\n" + lines[3][:20] + "\n\n")
    summary = run_sweep(tiny_spec(), str(p), workers=1)
    assert summary["skipped"] == 2 and summary["written"] == 4
    assert p.read_bytes() == whole


def test_no_resume_recomputes_from_scratch(tmp_path):
    p = tmp_path / "out.jsonl"
    run_sweep(tiny_spec(), str(p), workers=1)
    whole = p.read_bytes()
    summary = run_sweep(tiny_spec(), str(p), workers=1, resume=False)
    assert summary["written"] == 6 and summary["skipped"] == 0
    assert p.read_bytes() == whole


def test_fast_and_message_engines_produce_identical_metrics():
    fast_cells = tiny_spec("fast").cells()
    msg_cells = tiny_spec("message").cells()
    for cf, cm in zip(fast_cells[:2], msg_cells[:2]):
        rf, rm = execute_cell(cf), execute_cell(cm)
        assert rf.pop("engine") == "fast" and rm.pop("engine") == "message"
        assert rf == rm


def test_corrupt_mid_file_raises():
    import tempfile

    with tempfile.NamedTemporaryFile("w", suffix=".jsonl", delete=False) as fh:
        fh.write(dumps_row({"cell_id": "a"}) + "\n")
        fh.write("{broken\n")
        fh.write(dumps_row({"cell_id": "b"}) + "\n")
        path = fh.name
    try:
        with pytest.raises(ReproError):
            list(iter_rows(path))
    finally:
        os.unlink(path)


def test_completed_ids_of_missing_file_is_empty(tmp_path):
    assert completed_ids(str(tmp_path / "nope.jsonl")) == set()


def test_map_jobs_inline_matches_pool():
    jobs = list(range(10))
    inline = map_jobs(_square, jobs, workers=1)
    pooled = map_jobs(_square, jobs, workers=3)
    assert inline == pooled == [j * j for j in jobs]


def _square(x):
    return x * x


def test_smoke_grid_end_to_end(tmp_path):
    p = tmp_path / "smoke.jsonl"
    summary = run_sweep(smoke_grid(), str(p), workers=2)
    assert summary["written"] == 4
    rows = [json.loads(line) for line in p.read_text().strip().split("\n")]
    assert all(row["engine"] == "fast" for row in rows)
