"""Cell-family registry tests: builtins, new families, custom plugins."""

import math

import pytest

from repro.errors import ReproError, ScheduleError, SweepError
from repro.sweep import (
    CellFamily,
    GraphSpec,
    ScheduleSpec,
    SweepSpec,
    directory_grid,
    execute_cell,
    family_names,
    get_family,
    iter_rows,
    register_family,
    run_sweep,
)


def one_cell(schedule, *, graph=None, tree="bfs", seed=0, engine="fast"):
    spec = SweepSpec(
        name="one",
        graphs=(graph or GraphSpec.of("complete", n=8),),
        trees=(tree,),
        schedules=(schedule,),
        seeds=(seed,),
        engine=engine,
    )
    (cell,) = spec.cells()
    return execute_cell(cell)


# ----------------------------------------------------------------------
# registry mechanics
# ----------------------------------------------------------------------
def test_builtin_families_registered():
    names = family_names()
    for expected in (
        "one_shot",
        "sequential",
        "poisson",
        "bursty",
        "hotspot",
        "random",
        "closed_arrow",
        "closed_centralized",
        "directory_arrow",
        "directory_home",
        "adaptive",
    ):
        assert expected in names


def test_unknown_family_raises_sweep_error():
    with pytest.raises(SweepError):
        get_family("thundering_herd")
    with pytest.raises(SweepError):
        ScheduleSpec.of("thundering_herd")


def test_sweep_error_is_backward_compatible():
    # Callers that wrapped spec construction in `except ScheduleError`
    # keep working: SweepError subclasses it (and ReproError).
    assert issubclass(SweepError, ScheduleError)
    assert issubclass(SweepError, ReproError)
    with pytest.raises(ScheduleError):
        ScheduleSpec.of("poisson", rate_pernode=2.0)


def test_bootstrap_failure_is_not_latched(monkeypatch):
    """A failed builtin import must resurface on the next lookup, not
    decay into 'unknown cell family ... know []'."""
    import builtins

    from repro.sweep import registry as reg

    monkeypatch.setattr(reg, "_BOOTSTRAPPED", False)
    real_import = builtins.__import__

    def broken(name, *a, **kw):
        if name == "repro.sweep.families":
            raise ImportError("transient environment breakage")
        return real_import(name, *a, **kw)

    monkeypatch.setattr(builtins, "__import__", broken)
    with pytest.raises(ImportError, match="transient"):
        get_family("poisson")
    # Same real error again — the flag was not latched by the failure.
    with pytest.raises(ImportError, match="transient"):
        get_family("poisson")
    monkeypatch.setattr(builtins, "__import__", real_import)
    assert get_family("poisson").name == "poisson"


def test_duplicate_registration_rejected_unless_replace():
    family = get_family("one_shot")
    with pytest.raises(SweepError):
        register_family(family)
    # replace=True re-registers the identical family: a no-op.
    assert register_family(family, replace=True) is family


def test_custom_family_runs_through_executor(tmp_path):
    def build(cell, derived):
        return {"n": 5}

    def to_row(cell, derived, built):
        return {"n": built["n"], "requests": 1, "answer": derived % 97}

    register_family(
        CellFamily(
            name="test_constant",
            accepted=frozenset({"level"}),
            build=build,
            to_row=to_row,
        ),
        replace=True,
    )
    row = one_cell(ScheduleSpec.of("test_constant", level=3))
    assert row["answer"] == row["cell_seed"] % 97
    assert row["schedule"] == "test_constant(level=3)"
    with pytest.raises(SweepError):
        ScheduleSpec.of("test_constant", levle=3)


def test_validator_hook_rejects_bad_values():
    with pytest.raises(SweepError):
        ScheduleSpec.of("directory_arrow", acquisitions_per_proc=0)
    with pytest.raises(SweepError):
        ScheduleSpec.of("closed_arrow", requests_per_proc=-5)
    with pytest.raises(SweepError):
        ScheduleSpec.of("adaptive", schedule="closed_arrow")
    with pytest.raises(SweepError):
        ScheduleSpec.of("adaptive", schedule="sequential", rate=2.0)


# ----------------------------------------------------------------------
# directory families (§5.1)
# ----------------------------------------------------------------------
def test_directory_grid_rows_hold_exclusion_on_every_row(tmp_path):
    out = tmp_path / "dir.jsonl"
    spec = directory_grid(sizes=(2, 4, 8), acquisitions_per_proc=10)
    summary = run_sweep(spec, str(out))
    assert summary["written"] == 6
    rows = list(iter_rows(str(out)))
    assert {r["protocol"] for r in rows} == {"arrow-directory", "home-directory"}
    for r in rows:
        assert r["exclusion_ok"] is True
        assert r["requests"] == r["n"] * 10
        assert r["messages_sent"] > 0
        assert r["makespan"] > 0


def test_directory_arrow_cheaper_than_home_per_acquisition():
    arrow = one_cell(ScheduleSpec.of("directory_arrow", acquisitions_per_proc=20))
    home = one_cell(ScheduleSpec.of("directory_home", acquisitions_per_proc=20))
    assert arrow["msgs_per_acquisition"] < home["msgs_per_acquisition"]


def test_directory_home_out_of_range_home_fails_loudly():
    with pytest.raises(SweepError):
        one_cell(ScheduleSpec.of("directory_home", home=99))


def test_directory_families_ignore_engine_axis():
    rows = [
        one_cell(
            ScheduleSpec.of("directory_arrow", acquisitions_per_proc=5),
            engine=engine,
        )
        for engine in ("fast", "message")
    ]
    assert not get_family("directory_arrow").uses_engine
    a, b = rows
    assert a.pop("engine") == "fast" and b.pop("engine") == "message"
    assert a == b


# ----------------------------------------------------------------------
# adaptive family (§1.1 NTA/Ivy baseline)
# ----------------------------------------------------------------------
def test_adaptive_vs_arrow_message_sanity_on_complete_graphs():
    """Path shorting keeps per-op messages logarithmic; same ballpark as
    arrow on a complete graph (where the tree overlay is shallow too)."""
    for n in (8, 32):
        g = GraphSpec.of("complete", n=n)
        sched_kwargs = dict(per_node=10, rate_per_node=0.5)
        adaptive = one_cell(
            ScheduleSpec.of("adaptive", **sched_kwargs), graph=g
        )
        arrow = one_cell(ScheduleSpec.of("poisson", **sched_kwargs), graph=g)
        assert adaptive["requests"] == arrow["requests"] == 10 * n
        per_op = adaptive["messages_sent"] / adaptive["requests"]
        assert 0 < per_op <= 2.0 * math.log2(n)
        ratio = adaptive["messages_sent"] / arrow["messages_sent"]
        assert 0.5 <= ratio <= 1.5


def test_adaptive_rows_carry_latency_histogram_invariant():
    from repro.sweep import DEFAULT_BINS

    row = one_cell(ScheduleSpec.of("adaptive", per_node=5, rate_per_node=0.5))
    assert row["protocol"] == "adaptive"
    assert len(row["latency_hist"]) == DEFAULT_BINS
    assert sum(row["latency_hist"]) == row["requests"]


def test_adaptive_nested_schedule_families():
    row = one_cell(ScheduleSpec.of("adaptive", schedule="one_shot"))
    assert row["requests"] == 8
    row = one_cell(ScheduleSpec.of("adaptive", schedule="sequential", gap=8.0))
    assert row["requests"] == 8
