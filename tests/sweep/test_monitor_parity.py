"""Monitor transparency: monitored sweeps write byte-identical JSONL.

Monitors are pure observers — the differential here runs the same grid
with monitors off and on, for every engine, and requires the *files* to
match byte for byte (not just row-wise), including on faulted grids
where the monitor also audits the recovery path.
"""

import dataclasses

import pytest

from repro.sweep.executor import run_sweep
from repro.sweep.spec import smoke_grid


def sweep_bytes(tmp_path, spec, name):
    out = str(tmp_path / f"{name}.jsonl")
    summary = run_sweep(spec, out, resume=False)
    assert summary["written"] == spec.num_cells()
    with open(out, "rb") as fh:
        return fh.read()


@pytest.mark.parametrize("engine", ["fast", "batch", "message"])
def test_monitors_do_not_change_fault_free_jsonl(tmp_path, engine):
    spec = smoke_grid(engine=engine)
    off = sweep_bytes(tmp_path, spec, f"{engine}-off")
    on = sweep_bytes(
        tmp_path, dataclasses.replace(spec, monitors=True), f"{engine}-on"
    )
    assert on == off


def test_monitors_do_not_change_faulted_jsonl(tmp_path):
    spec = dataclasses.replace(
        smoke_grid(), faults=("", "crash@3.0:1,loss:0.02")
    )
    off = sweep_bytes(tmp_path, spec, "faulted-off")
    on = sweep_bytes(
        tmp_path, dataclasses.replace(spec, monitors=True), "faulted-on"
    )
    assert on == off


def test_engines_agree_on_monitored_faulted_grid(tmp_path):
    spec = dataclasses.replace(
        smoke_grid(),
        faults=("crash@3.0:1,loss:0.02",),
        monitors=True,
    )
    fast = sweep_bytes(tmp_path, spec, "fast")
    message = sweep_bytes(
        tmp_path, dataclasses.replace(spec, engine="message"), "message"
    )
    assert fast.replace(b'"engine":"fast"', b'"engine":"message"') == message
