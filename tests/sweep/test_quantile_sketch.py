"""The mergeable quantile sketch behind every latency column.

Two contracts matter, and both are differential:

* **Exact mode is the historical algorithm, byte for byte.**  Per-row
  columns now route through an exact-mode :class:`QuantileSketch`, so a
  vendored copy of the original direct computation must agree with
  :func:`latency_columns` on every corpus — including the float-rounding
  and accumulation-order traps.  Any drift here would change persisted
  JSONL bytes and break the engines' bit-identity contract.
* **Compressed mode has a documented rank tolerance.**  A quantile
  query on a sketch with compression ``delta`` returns a value whose
  true rank is within ``ceil(2 n / delta)`` of the requested rank, and
  merging is exactly commutative (pure function of the centroid
  multiset) — the property the store's streaming grid aggregation
  relies on.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.sweep.stats import (
    DEFAULT_BINS,
    QuantileSketch,
    latency_columns,
    percentile_nearest_rank,
)


def direct_columns(latencies, *, bins=DEFAULT_BINS, prefix="latency_"):
    """The pre-sketch implementation, vendored verbatim as the oracle."""
    vals = sorted(float(x) for x in latencies)
    n = len(vals)
    if n == 0:
        return {
            f"{prefix}mean": 0.0,
            f"{prefix}p50": 0.0,
            f"{prefix}p90": 0.0,
            f"{prefix}p99": 0.0,
            f"{prefix}max": 0.0,
            f"{prefix}hist": [0] * bins,
        }
    mx = vals[-1]
    counts = [0] * bins
    if mx <= 0.0:
        counts[0] = n
    else:
        scale = bins / mx
        for v in vals:
            idx = int(v * scale)
            if idx >= bins:
                idx = bins - 1
            counts[idx] += 1
    return {
        f"{prefix}mean": sum(vals) / n,
        f"{prefix}p50": percentile_nearest_rank(vals, 50),
        f"{prefix}p90": percentile_nearest_rank(vals, 90),
        f"{prefix}p99": percentile_nearest_rank(vals, 99),
        f"{prefix}max": mx,
        f"{prefix}hist": counts,
    }


def corpora():
    """Latency lists covering the shapes real cells produce."""
    rng = random.Random(0xC0FFEE)
    yield []
    yield [0.0]
    yield [3.25]
    yield [2.5] * 40
    yield [0.0] * 17
    yield [0.1 * k for k in range(1, 101)] + [10.0, 10.0, 9.999999999999998]
    for trial in range(30):
        n = rng.randrange(1, 400)
        shape = trial % 3
        if shape == 0:
            yield [rng.expovariate(1.0) for _ in range(n)]
        elif shape == 1:
            # Heavy duplication: integer-ish latencies (hop counts).
            yield [float(rng.randrange(0, 8)) for _ in range(n)]
        else:
            yield [rng.uniform(0.0, 50.0) for _ in range(n)]


def test_exact_mode_matches_direct_computation_byte_for_byte():
    for vals in corpora():
        assert latency_columns(vals) == direct_columns(vals)


def test_exact_mode_is_insertion_order_independent():
    vals = [random.Random(7).expovariate(1.0) for _ in range(200)]
    fwd = QuantileSketch.from_values(vals)
    rev = QuantileSketch.from_values(reversed(sorted(vals)))
    assert fwd.to_dict() == rev.to_dict()
    assert fwd.mean() == sum(sorted(vals)) / len(vals)


def test_exact_merge_equals_single_sketch():
    rng = random.Random(11)
    a = [rng.uniform(0, 10) for _ in range(150)]
    b = [rng.uniform(0, 10) for _ in range(77)]
    merged = QuantileSketch.from_values(a).merge(QuantileSketch.from_values(b))
    assert merged.to_dict() == QuantileSketch.from_values(a + b).to_dict()


@pytest.mark.parametrize("compression", [16, 100, 400])
def test_compressed_rank_error_within_documented_bound(compression):
    """≥10k samples: every queried percentile honours ceil(2n/delta)."""
    rng = random.Random(42)
    vals = [rng.expovariate(0.5) for _ in range(12_000)]
    sk = QuantileSketch.from_values(vals, compression=compression)
    assert sk.num_centroids <= 2 * compression
    n = len(vals)
    tol = math.ceil(2 * n / compression)
    svals = sorted(vals)
    for p in (1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9):
        rank = math.ceil(p / 100.0 * n)
        got = sk.quantile(p)
        # True rank range of the returned value (duplicates inclusive).
        lo = next(i for i, v in enumerate(svals) if v >= got)
        hi = n - next(i for i, v in enumerate(reversed(svals)) if v <= got)
        assert lo - tol <= rank <= hi + tol, (
            f"p{p}: value {got} has true rank [{lo + 1}, {hi}], "
            f"requested {rank}, tolerance {tol}"
        )


def test_compressed_merge_is_commutative():
    rng = random.Random(99)
    a = QuantileSketch.from_values(
        (rng.uniform(0, 100) for _ in range(5_000)), compression=64
    )
    b = QuantileSketch.from_values(
        (rng.expovariate(1.0) for _ in range(5_000)), compression=64
    )
    ab, ba = a.merge(b), b.merge(a)
    assert ab.to_dict() == ba.to_dict()
    assert ab.count == 10_000
    assert ab.max_value() == max(a.max_value(), b.max_value())
    assert ab.min_value() == min(a.min_value(), b.min_value())


def test_merge_takes_the_tighter_compression():
    exact = QuantileSketch.from_values([1.0, 2.0])
    loose = QuantileSketch.from_values([3.0], compression=100)
    tight = QuantileSketch.from_values([4.0], compression=16)
    assert exact.merge(loose).compression == 100
    assert loose.merge(exact).compression == 100
    assert loose.merge(tight).compression == 16


def test_exact_max_survives_compression_and_merging():
    rng = random.Random(5)
    shards = [
        QuantileSketch.from_values(
            (rng.uniform(0, 100) for _ in range(1_000)), compression=32
        )
        for _ in range(8)
    ]
    merged = shards[0]
    for s in shards[1:]:
        merged = merged.merge(s)
    assert merged.count == 8_000
    assert merged.max_value() == max(s.max_value() for s in shards)
    assert not merged.is_exact


def test_from_histogram_reconstructs_to_bucket_resolution():
    rng = random.Random(13)
    vals = [rng.expovariate(1.0) for _ in range(2_000)]
    cols = latency_columns(vals)
    sk = QuantileSketch.from_histogram(cols["latency_hist"], cols["latency_max"])
    assert sk.count == len(vals)
    assert sk.max_value() == cols["latency_max"]
    width = cols["latency_max"] / DEFAULT_BINS
    svals = sorted(vals)
    for p in (50.0, 90.0, 99.0):
        true = percentile_nearest_rank(svals, p)
        assert abs(sk.quantile(p) - true) <= width, f"p{p} off by > 1 bucket"


def test_from_histogram_degenerate_all_zero_max():
    sk = QuantileSketch.from_histogram([17] + [0] * 15, 0.0)
    assert sk.count == 17
    assert sk.quantile(50) == 0.0
    assert QuantileSketch.from_histogram([0] * 16, 0.0).count == 0


def test_single_overweight_value_stays_exact_under_compression():
    """One heavily-duplicated value must never smear into neighbours."""
    sk = QuantileSketch(compression=8)
    sk.add(5.0, weight=10_000)
    for k in range(100):
        sk.add(float(k) / 10.0)
    assert sk.quantile(50) == 5.0


def test_serialisation_round_trip():
    rng = random.Random(3)
    for compression in (None, 32):
        sk = QuantileSketch.from_values(
            (rng.uniform(0, 9) for _ in range(500)), compression=compression
        )
        clone = QuantileSketch.from_dict(sk.to_dict())
        assert clone.to_dict() == sk.to_dict()
        assert clone.quantile(90) == sk.quantile(90)
        assert clone.mean() == sk.mean()
    empty = QuantileSketch.from_dict(QuantileSketch().to_dict())
    assert empty.count == 0


def test_empty_and_invalid_inputs_raise():
    sk = QuantileSketch()
    with pytest.raises(ValueError):
        sk.quantile(50)
    with pytest.raises(ValueError):
        sk.mean()
    with pytest.raises(ValueError):
        sk.max_value()
    with pytest.raises(ValueError):
        sk.add(1.0, weight=0)
    with pytest.raises(ValueError):
        QuantileSketch(compression=4)
    with pytest.raises(ValueError):
        QuantileSketch.from_values([1.0]).quantile(0)


def test_histogram_mass_conserved_under_compression():
    rng = random.Random(21)
    sk = QuantileSketch.from_values(
        (rng.uniform(0, 30) for _ in range(10_000)), compression=50
    )
    assert sum(sk.histogram(DEFAULT_BINS)) == 10_000
