"""The fault axis on the sweep grid: identity, columns, validation.

The axis contract: fault-free grids are byte-compatible with
pre-fault-axis sweeps (same cell ids, same columns), faulted cells carry
a ``/f[...]`` id suffix plus the recovery-metric columns, and only the
open-loop arrow families accept a fault plan at all.
"""

import dataclasses

import pytest

from repro.errors import SweepError
from repro.sweep.executor import execute_cell
from repro.sweep.registry import get_family
from repro.sweep.spec import (
    GraphSpec,
    ScheduleSpec,
    SweepSpec,
    smoke_grid,
)

FAULT_COLUMNS = (
    "requests_lost",
    "messages_dropped",
    "corrections_applied",
    "repairs_run",
    "time_to_recovery",
)


def open_spec(**overrides):
    base = dict(
        name="t",
        graphs=(GraphSpec.of("complete", n=6),),
        trees=("bfs",),
        schedules=(ScheduleSpec.of("poisson", per_node=4, rate_per_node=0.5),),
        seeds=(0,),
    )
    base.update(overrides)
    return SweepSpec(**base)


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------
def test_default_spec_is_fault_free_and_unchanged():
    spec = smoke_grid()
    assert spec.faults == ("",)
    assert spec.monitors is False
    cells = spec.cells()
    assert spec.num_cells() == len(cells) == 4
    for cell in cells:
        assert cell.faults == ""
        assert cell.monitors is False
        assert "/f[" not in cell.cell_id


def test_fault_axis_multiplies_the_grid():
    spec = dataclasses.replace(smoke_grid(), faults=("", "loss:0.02"))
    assert spec.num_cells() == 8
    cells = spec.cells()
    assert len(cells) == 8
    # faults is the innermost axis: adjacent cells share the other axes.
    assert cells[0].cell_id + "/f[loss:0.02]" == cells[1].cell_id
    assert [c.index for c in cells] == list(range(8))


def test_fault_label_is_canonicalised_in_cell_id():
    spec = open_spec(faults=("crash@3.0:1,loss:0.020",))
    (cell,) = spec.cells()
    assert cell.faults == "crash@3:1,loss:0.02"
    assert cell.cell_id.endswith("/f[crash@3:1,loss:0.02]")


def test_malformed_plan_rejected_at_spec_build():
    with pytest.raises(SweepError):
        open_spec(faults=("loss:2.0",))


def test_empty_fault_axis_rejected():
    with pytest.raises(SweepError, match="axis must not be empty"):
        open_spec(faults=())


@pytest.mark.parametrize(
    "family,params",
    [
        ("closed_arrow", {"requests_per_proc": 3}),
        ("closed_centralized", {"requests_per_proc": 3}),
        ("directory_arrow", {"acquisitions_per_proc": 2}),
        ("adaptive", {}),
    ],
)
def test_non_open_loop_families_reject_faults(family, params):
    with pytest.raises(SweepError, match="does not support the fault axis"):
        open_spec(
            trees=("binary",),
            schedules=(ScheduleSpec.of(family, **params),),
            faults=("crash@1.0:0",),
        )


def test_supports_faults_registry_flags():
    assert get_family("poisson").supports_faults
    assert get_family("one_shot").supports_faults
    assert not get_family("closed_arrow").supports_faults
    assert not get_family("directory_arrow").supports_faults


# ----------------------------------------------------------------------
# rows
# ----------------------------------------------------------------------
def test_fault_columns_only_on_faulted_rows():
    spec = open_spec(faults=("", "crash@2.0:1,loss:0.02"))
    clean_row, fault_row = (execute_cell(c) for c in spec.cells())
    for col in FAULT_COLUMNS + ("faults",):
        assert col not in clean_row
        assert col in fault_row
    assert fault_row["faults"] == "crash@2:1,loss:0.02"
    assert fault_row["requests"] == clean_row["requests"]
    assert (
        sum(fault_row["latency_hist"])
        == fault_row["requests"] - fault_row["requests_lost"]
    )


@pytest.mark.parametrize("engine", ["fast", "batch", "message"])
def test_faulted_rows_engine_independent(engine):
    base = open_spec(faults=("crash@2.0:1,loss:0.02",))
    want = execute_cell(base.cells()[0])
    got = execute_cell(dataclasses.replace(base, engine=engine).cells()[0])
    want.pop("engine"), got.pop("engine")
    assert got == want


def test_monitors_flag_reaches_cells_without_changing_identity():
    spec = open_spec(monitors=True)
    (cell,) = spec.cells()
    assert cell.monitors is True
    (bare,) = open_spec().cells()
    assert cell.cell_id == bare.cell_id
