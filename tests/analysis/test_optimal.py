"""Unit tests for the optimal-offline machinery."""

import itertools

import numpy as np
import pytest

from repro.analysis.costs import c_m_matrix
from repro.analysis.optimal import (
    best_heuristic_path,
    held_karp_path,
    manhattan_mst_weight,
    opt_bounds,
    or_opt_improve,
)
from repro.core.requests import RequestSchedule
from repro.errors import AnalysisError
from repro.graphs import complete_graph, path_graph
from repro.sim.rng import spawn_rng
from repro.spanning import SpanningTree, balanced_binary_overlay


def brute_force_path(C):
    m = C.shape[0]
    best = float("inf")
    for perm in itertools.permutations(range(1, m)):
        seq = [0, *perm]
        cost = sum(C[a, b] for a, b in zip(seq, seq[1:]))
        best = min(best, cost)
    return best


@pytest.mark.parametrize("seed", range(4))
def test_held_karp_matches_brute_force(seed):
    rng = spawn_rng(seed, "hk")
    C = rng.random((7, 7)) * 10
    np.fill_diagonal(C, 0.0)
    cost, path = held_karp_path(C)
    assert cost == pytest.approx(brute_force_path(C))
    # The returned path realises the cost and visits everything once.
    assert sorted(path) == list(range(7)) and path[0] == 0
    realized = sum(C[a, b] for a, b in zip(path, path[1:]))
    assert realized == pytest.approx(cost)


def test_held_karp_asymmetric_costs():
    C = np.array(
        [
            [0.0, 1.0, 10.0],
            [10.0, 0.0, 1.0],
            [1.0, 10.0, 0.0],
        ]
    )
    cost, path = held_karp_path(C)
    assert path == [0, 1, 2]
    assert cost == 2.0


def test_held_karp_trivial_sizes():
    assert held_karp_path(np.zeros((1, 1))) == (0.0, [0])
    cost, path = held_karp_path(np.array([[0.0, 3.0], [3.0, 0.0]]))
    assert cost == 3.0 and path == [0, 1]


def test_held_karp_size_guard():
    with pytest.raises(AnalysisError):
        held_karp_path(np.zeros((23, 23)))


@pytest.mark.parametrize("seed", range(3))
def test_or_opt_never_worsens_and_stays_valid(seed):
    rng = spawn_rng(seed, "oropt")
    C = rng.random((10, 10)) * 5
    np.fill_diagonal(C, 0.0)
    from repro.analysis.nearest_neighbor import nn_order

    nn = nn_order(C)
    improved_cost, path = or_opt_improve(nn.indices, C)
    assert improved_cost <= nn.total_cost + 1e-9
    assert sorted(path) == list(range(10)) and path[0] == 0


def test_best_heuristic_upper_bounds_exact():
    rng = spawn_rng(5, "bh")
    C = rng.random((9, 9)) * 7
    np.fill_diagonal(C, 0.0)
    heur, _ = best_heuristic_path(C)
    exact, _ = held_karp_path(C)
    assert heur >= exact - 1e-9
    assert heur <= brute_force_path(C) * 3  # sane, not wild


def test_manhattan_mst_weight_vs_networkx():
    import networkx as nx

    rng = spawn_rng(2, "mst")
    pts_t = rng.random(8) * 10
    pts_x = rng.integers(0, 10, 8)
    D = np.abs(pts_x[:, None] - pts_x[None, :]).astype(float)
    CM = c_m_matrix(D, pts_t)
    G = nx.Graph()
    for i in range(8):
        for j in range(i + 1, 8):
            G.add_edge(i, j, weight=CM[i, j])
    want = nx.minimum_spanning_tree(G).size(weight="weight")
    assert manhattan_mst_weight(CM) == pytest.approx(want)


def test_manhattan_mst_trivial():
    assert manhattan_mst_weight(np.zeros((1, 1))) == 0.0


def test_opt_bounds_exact_small_instance():
    g = complete_graph(6)
    tree = balanced_binary_overlay(g, 0)
    sched = RequestSchedule([(3, 0.0), (5, 1.0), (2, 1.5)])
    b = opt_bounds(g, tree, sched, stretch=2.0)
    assert b.exact
    assert b.lower == b.upper
    assert "exact" in b.parts


def test_opt_bounds_bracket_ordering_large_instance():
    g = path_graph(20)
    tree = SpanningTree([max(0, i - 1) for i in range(20)], root=0)
    from repro.workloads.schedules import random_times

    sched = random_times(20, 30, horizon=10.0, seed=1)
    b = opt_bounds(g, tree, sched, stretch=1.0, exact_limit=5)
    assert not b.exact
    assert 0 < b.lower <= b.upper
    lo, hi = b.ratio_bracket(100.0)
    assert lo <= hi


def test_opt_bounds_mst_chain_is_valid_lower_bound():
    """The Lemma 3.17 chain bound never exceeds the exact optimum."""
    g = complete_graph(7)
    tree = balanced_binary_overlay(g, 0)
    from repro.workloads.schedules import random_times

    for seed in range(4):
        sched = random_times(7, 8, horizon=6.0, seed=seed)
        from repro.spanning import tree_stretch

        s = tree_stretch(g, tree).stretch
        b = opt_bounds(g, tree, sched, stretch=s)
        assert b.exact
        assert b.parts["mst_manhattan"] <= b.parts["exact"] + 1e-9
        assert b.parts["per_request_min"] <= b.parts["exact"] + 1e-9
        assert b.parts["root_reach"] <= b.parts["exact"] + 1e-9


def test_opt_bounds_empty_schedule():
    g = complete_graph(3)
    tree = balanced_binary_overlay(g, 0)
    b = opt_bounds(g, tree, RequestSchedule([]), stretch=1.0)
    assert b.lower == b.upper == 0.0
