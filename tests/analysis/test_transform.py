"""Unit tests for the Lemma 3.11/3.12 idle-time compression."""

import pytest

from repro.analysis.nearest_neighbor import predict_arrow_run
from repro.analysis.optimal import opt_bounds
from repro.analysis.transform import compress_idle_time, max_gap_slack
from repro.analysis.verify import max_ct_edge_on_order
from repro.core.requests import RequestSchedule
from repro.graphs import path_graph
from repro.spanning import SpanningTree, tree_diameter


def chain_tree(n):
    return SpanningTree([max(0, i - 1) for i in range(n)], root=0)


def test_idle_gap_is_compressed():
    tree = chain_tree(5)
    # Two bursts separated by a huge idle period.
    sched = RequestSchedule([(1, 0.0), (2, 1.0), (3, 100.0), (4, 101.0)])
    rep = compress_idle_time(tree, sched)
    assert rep.shifts_applied >= 1
    assert rep.total_shift > 0
    assert rep.schedule.max_time() < 100.0
    assert max_gap_slack(tree, rep.schedule) <= 1e-9


def test_compression_is_idempotent():
    tree = chain_tree(5)
    sched = RequestSchedule([(1, 0.0), (4, 50.0)])
    once = compress_idle_time(tree, sched)
    twice = compress_idle_time(tree, once.schedule)
    assert twice.shifts_applied == 0


def test_no_shift_when_requests_tight():
    tree = chain_tree(6)
    sched = RequestSchedule([(5, 0.0), (4, 1.0), (3, 2.0)])
    rep = compress_idle_time(tree, sched)
    assert rep.shifts_applied == 0
    assert rep.schedule.times == sched.times


def test_arrow_cost_invariant_under_compression():
    """Lemma 3.11: arrow's cost is unchanged by the transformation."""
    tree = chain_tree(9)
    sched = RequestSchedule(
        [(8, 0.0), (2, 1.0), (5, 40.0), (7, 41.0), (1, 90.0)]
    )
    before = predict_arrow_run(tree, sched)
    rep = compress_idle_time(tree, sched)
    after = predict_arrow_run(tree, rep.schedule)
    assert after.arrow_cost == pytest.approx(before.arrow_cost)


def test_opt_not_increased_by_compression():
    """Lemma 3.11: the exact offline optimum does not increase."""
    g = path_graph(7)
    tree = chain_tree(7)
    sched = RequestSchedule([(6, 0.0), (1, 1.0), (4, 30.0), (2, 31.0)])
    before = opt_bounds(g, tree, sched, 1.0)
    rep = compress_idle_time(tree, sched)
    after = opt_bounds(g, tree, rep.schedule, 1.0)
    assert before.exact and after.exact
    assert after.upper <= before.upper + 1e-9


def test_times_remain_nonnegative():
    tree = chain_tree(4)
    sched = RequestSchedule([(3, 20.0), (2, 50.0)])
    rep = compress_idle_time(tree, sched)
    assert all(t >= -1e-12 for t in rep.schedule.times)


def test_lemma_3_13_max_ct_edge_after_compression():
    """On compressed schedules, arrow's largest c_T edge is <= 3 D."""
    tree = chain_tree(10)
    D = tree_diameter(tree)
    from repro.workloads.schedules import random_times

    for seed in range(5):
        sched = random_times(10, 12, horizon=60.0, seed=seed)
        rep = compress_idle_time(tree, sched)
        pred = predict_arrow_run(tree, rep.schedule)
        assert max_ct_edge_on_order(tree, rep.schedule, pred.order) <= 3 * D + 1e-9


def test_empty_schedule_compression():
    tree = chain_tree(3)
    rep = compress_idle_time(tree, RequestSchedule([]))
    assert rep.shifts_applied == 0
    assert max_gap_slack(tree, rep.schedule) == 0.0
