"""Unit tests for the cost measures against brute-force definitions."""

import numpy as np
import pytest

from repro.analysis.costs import (
    augmented_nodes_times,
    c_a_matrix,
    c_m_matrix,
    c_o_matrix,
    c_t_matrix,
    indices_to_order,
    order_to_indices,
    path_cost,
    request_distance_matrix,
)
from repro.core.requests import RequestSchedule
from repro.errors import AnalysisError
from repro.graphs import grid_graph
from repro.spanning import SpanningTree, bfs_tree


@pytest.fixture
def setup():
    tree = SpanningTree([max(0, i - 1) for i in range(6)], root=0)
    sched = RequestSchedule([(5, 0.0), (2, 1.0), (4, 3.5), (0, 4.0)])
    nodes, times = augmented_nodes_times(sched, tree.root)
    D = request_distance_matrix(tree, nodes)
    return tree, sched, nodes, times, D


def test_augmented_vectors_put_root_first(setup):
    _, _, nodes, times, _ = setup
    assert nodes[0] == 0 and times[0] == 0.0
    assert list(nodes[1:]) == [5, 2, 4, 0]
    assert list(times[1:]) == [0.0, 1.0, 3.5, 4.0]


def test_tree_distances_match_pairwise_queries(setup):
    tree, _, nodes, _, D = setup
    m = len(nodes)
    for i in range(m):
        for j in range(m):
            assert D[i, j] == tree.distance(int(nodes[i]), int(nodes[j]))


def test_graph_distance_matrix_uses_graph_metric():
    g = grid_graph(3, 3)
    tree = bfs_tree(g, 0)
    sched = RequestSchedule([(8, 0.0), (2, 1.0)])
    nodes, _ = augmented_nodes_times(sched, tree.root)
    DG = request_distance_matrix(g, nodes)
    DT = request_distance_matrix(tree, nodes)
    assert np.all(DG <= DT + 1e-12)  # tree paths can only be longer


def test_c_t_matches_definition_brute_force(setup):
    _, _, nodes, times, D = setup
    CT = c_t_matrix(D, times)
    m = len(nodes)
    for i in range(m):
        for j in range(m):
            d = times[j] - times[i] + D[i, j]
            want = d if d >= 0 else times[i] - times[j] + D[i, j]
            assert CT[i, j] == pytest.approx(want)


def test_c_t_asymmetric(setup):
    _, _, _, times, D = setup
    CT = c_t_matrix(D, times)
    # Requests (5, t=0) and (2, t=1), dT = 3: forward cost 1+3 = 4 but
    # backward cost 3-1 = 2 (the d < 0 branch of Definition 3.5).
    assert CT[1, 2] == pytest.approx(4.0)
    assert CT[2, 1] == pytest.approx(2.0)


def test_c_m_is_manhattan(setup):
    _, _, nodes, times, D = setup
    CM = c_m_matrix(D, times)
    m = len(nodes)
    for i in range(m):
        for j in range(m):
            assert CM[i, j] == pytest.approx(D[i, j] + abs(times[i] - times[j]))
    assert np.allclose(CM, CM.T)


def test_c_o_matches_eq3(setup):
    _, _, nodes, times, D = setup
    CO = c_o_matrix(D, times)
    m = len(nodes)
    for i in range(m):
        for j in range(m):
            assert CO[i, j] == pytest.approx(max(D[i, j], times[i] - times[j]))


def test_cost_dominance_chain(setup):
    """0 <= c_T <= c_M and c_O <= c_M everywhere."""
    _, _, _, times, D = setup
    CT, CM, CO = c_t_matrix(D, times), c_m_matrix(D, times), c_o_matrix(D, times)
    assert np.all(CT >= -1e-12)
    assert np.all(CT <= CM + 1e-12)
    assert np.all(CO <= CM + 1e-12)


def test_c_a_is_distance(setup):
    _, _, _, _, D = setup
    assert np.array_equal(c_a_matrix(D), D)


def test_path_cost_sums_consecutive(setup):
    _, _, _, _, D = setup
    assert path_cost([0, 1, 2], D) == pytest.approx(D[0, 1] + D[1, 2])
    assert path_cost([0], D) == 0.0


def test_order_index_roundtrip():
    order = [2, 0, 1]
    idx = order_to_indices(order)
    assert idx == [0, 3, 1, 2]
    assert indices_to_order(idx) == order
    with pytest.raises(AnalysisError):
        indices_to_order([1, 0])


def test_disconnected_distance_matrix_raises():
    from repro.graphs.graph import Graph

    g = Graph(3)
    g.add_edge(0, 1)
    sched = RequestSchedule([(2, 0.0)])
    nodes, _ = augmented_nodes_times(sched, 0)
    with pytest.raises(AnalysisError):
        request_distance_matrix(g, nodes)
