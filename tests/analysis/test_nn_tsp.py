"""Unit tests for the Theorem 3.18 machinery."""

import numpy as np
import pytest

from repro.analysis.nn_tsp import (
    check_theorem_318,
    nn_tour,
    optimal_tour_cost,
    tour_cost,
    validate_dominated_pair,
)
from repro.errors import AnalysisError
from repro.sim.rng import spawn_rng


def random_metric(m, seed):
    """Random shortest-path-closed metric from random symmetric costs."""
    rng = spawn_rng(seed, "metric")
    C = rng.random((m, m)) * 10
    C = (C + C.T) / 2
    np.fill_diagonal(C, 0.0)
    # Floyd-Warshall closure makes it a metric.
    for k in range(m):
        C = np.minimum(C, C[:, k][:, None] + C[k, :][None, :])
    return C


def test_tour_cost_closes_loop():
    C = np.array([[0.0, 1.0, 2.0], [1.0, 0.0, 3.0], [2.0, 3.0, 0.0]])
    assert tour_cost([0, 1, 2], C) == 1 + 3 + 2


def test_nn_tour_includes_closing_edge():
    C = np.array([[0.0, 1.0, 2.0], [1.0, 0.0, 3.0], [2.0, 3.0, 0.0]])
    cost, indices, max_edge, min_nonzero = nn_tour(C)
    assert indices == [0, 1, 2]
    assert cost == 1 + 3 + 2
    assert max_edge == 3.0
    assert min_nonzero == 1.0


def test_optimal_tour_exact_small():
    C = random_metric(6, 1)
    exact = optimal_tour_cost(C)
    # Brute force oracle
    import itertools

    best = min(
        tour_cost([0, *perm], C) for perm in itertools.permutations(range(1, 6))
    )
    assert exact == pytest.approx(best)


def test_validate_dominated_pair_accepts_valid():
    Do = random_metric(6, 2)
    Dn = Do * 0.5
    validate_dominated_pair(Dn, Do)


def test_validate_rejects_asymmetric_do():
    Do = random_metric(4, 3)
    bad = Do.copy()
    bad[0, 1] += 1.0
    with pytest.raises(AnalysisError, match="symmetric"):
        validate_dominated_pair(bad * 0.5, bad)


def test_validate_rejects_triangle_violation():
    Do = np.array(
        [[0.0, 1.0, 5.0], [1.0, 0.0, 1.0], [5.0, 1.0, 0.0]]
    )  # 0-2 direct 5 > 1+1
    with pytest.raises(AnalysisError, match="triangle"):
        validate_dominated_pair(Do * 0.5, Do)


def test_validate_rejects_undominated_dn():
    Do = random_metric(5, 4)
    with pytest.raises(AnalysisError, match="dominated"):
        validate_dominated_pair(Do * 1.5, Do)


def test_validate_rejects_negative_dn():
    Do = random_metric(5, 5)
    Dn = Do * 0.5
    Dn[1, 2] = -0.1
    with pytest.raises(AnalysisError, match="non-negative"):
        validate_dominated_pair(Dn, Do)


@pytest.mark.parametrize("seed", range(6))
def test_theorem_318_holds_on_random_dominated_pairs(seed):
    rng = spawn_rng(seed, "dominated")
    Do = random_metric(9, seed + 100)
    Dn = Do * rng.uniform(0.1, 1.0, size=Do.shape)
    Dn = np.minimum(Dn, Dn.T * 0 + Dn)  # keep >= 0 and <= Do
    np.fill_diagonal(Dn, 0.0)
    rep = check_theorem_318(Dn, Do, exact_limit=8)
    assert rep.holds
    assert rep.nn_cost <= rep.bound_value + 1e-9


def test_theorem_318_on_arrow_cost_pair():
    """The actual (c_T, c_M) pair from a simulated schedule satisfies it."""
    from repro.analysis.costs import (
        augmented_nodes_times,
        c_m_matrix,
        c_t_matrix,
        request_distance_matrix,
    )
    from repro.core.requests import RequestSchedule
    from repro.spanning import SpanningTree

    tree = SpanningTree([max(0, i - 1) for i in range(8)], root=0)
    sched = RequestSchedule([(7, 0.0), (3, 1.0), (5, 2.0), (1, 2.5), (6, 4.0)])
    nodes, times = augmented_nodes_times(sched, tree.root)
    D = request_distance_matrix(tree, nodes)
    rep = check_theorem_318(c_t_matrix(D, times), c_m_matrix(D, times))
    assert rep.holds


def test_theorem_318_degenerate_all_zero():
    Z = np.zeros((4, 4))
    rep = check_theorem_318(Z, Z)
    assert rep.holds
