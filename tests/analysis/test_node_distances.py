"""Unit tests for the per-source node distance helpers."""

import numpy as np
import pytest

from repro.analysis.costs import graph_node_distances, tree_node_distances
from repro.graphs import grid_graph, random_geometric_graph
from repro.spanning import SpanningTree, bfs_tree, mst_prim


def test_tree_node_distances_weighted():
    tree = SpanningTree([0, 0, 1], root=0, edge_weights=[0.0, 2.0, 3.0])
    d = tree_node_distances(tree, np.array([2]))
    assert d[2][0] == 5.0 and d[2][1] == 3.0 and d[2][2] == 0.0


def test_tree_node_distances_only_computes_requested_sources():
    g = grid_graph(4, 4)
    tree = bfs_tree(g, 0)
    d = tree_node_distances(tree, np.array([3, 3, 7]))
    assert set(d) == {3, 7}


def test_tree_node_distances_match_lca_queries():
    g = random_geometric_graph(20, 0.4, seed=6)
    tree = mst_prim(g, 0)
    d = tree_node_distances(tree, np.array([5, 11]))
    for src in (5, 11):
        for v in range(20):
            assert d[src][v] == pytest.approx(tree.distance(src, v))


def test_graph_node_distances_match_dijkstra():
    g = grid_graph(3, 5)
    d = graph_node_distances(g, np.array([0, 14]))
    from repro.graphs import dijkstra

    for src in (0, 14):
        want = dijkstra(g, src)[0]
        assert list(d[src]) == want
