"""Unit tests for the lemma checkers (positive and negative cases)."""

import numpy as np
import pytest

from repro.analysis.nearest_neighbor import predict_arrow_run
from repro.analysis.verify import (
    arrow_cost_of_order,
    check_fact_3_6,
    check_lemma_3_8,
    check_lemma_3_9,
    is_nn_path,
    lemma_3_10_identity_gap,
    max_ct_edge_on_order,
)
from repro.core.requests import RequestSchedule
from repro.core.runner import run_arrow
from repro.graphs import path_graph
from repro.spanning import SpanningTree


def chain_tree(n):
    return SpanningTree([max(0, i - 1) for i in range(n)], root=0)


@pytest.fixture
def instance():
    tree = chain_tree(8)
    sched = RequestSchedule([(7, 0.0), (3, 1.0), (5, 2.5), (1, 3.0)])
    return path_graph(8), tree, sched


def test_is_nn_path_accepts_greedy_and_rejects_others():
    C = np.array(
        [
            [0.0, 1.0, 5.0],
            [1.0, 0.0, 2.0],
            [5.0, 2.0, 0.0],
        ]
    )
    assert is_nn_path([0, 1, 2], C)
    assert not is_nn_path([0, 2, 1], C)
    assert not is_nn_path([0, 1], C)  # incomplete


def test_is_nn_path_tolerates_ties():
    C = np.array(
        [
            [0.0, 2.0, 2.0],
            [2.0, 0.0, 1.0],
            [2.0, 1.0, 0.0],
        ]
    )
    assert is_nn_path([0, 1, 2], C)
    assert is_nn_path([0, 2, 1], C)


def test_lemma_3_8_on_simulated_run(instance):
    g, tree, sched = instance
    res = run_arrow(g, tree, sched)
    assert check_lemma_3_8(tree, sched, res.order)


def test_lemma_3_8_rejects_wrong_order(instance):
    g, tree, sched = instance
    res = run_arrow(g, tree, sched)
    wrong = list(reversed(res.order))
    assert not check_lemma_3_8(tree, sched, wrong)


def test_lemma_3_9_on_simulated_run(instance):
    g, tree, sched = instance
    res = run_arrow(g, tree, sched)
    assert check_lemma_3_9(tree, sched, res.order)


def test_lemma_3_9_rejects_time_inversion():
    tree = chain_tree(4)
    # (0, t=0) and (0, t=99): same node, far apart in time.
    sched = RequestSchedule([(0, 0.0), (0, 99.0)])
    assert not check_lemma_3_9(tree, sched, [1, 0])


def test_fact_3_6_nonnegative(instance):
    _, tree, sched = instance
    assert check_fact_3_6(tree, sched)


def test_lemma_3_10_gap_zero_on_arrow_order(instance):
    g, tree, sched = instance
    res = run_arrow(g, tree, sched)
    assert lemma_3_10_identity_gap(tree, sched, res.order) == pytest.approx(0.0)


def test_arrow_cost_of_order_matches_total_latency(instance):
    g, tree, sched = instance
    res = run_arrow(g, tree, sched)
    assert arrow_cost_of_order(tree, sched, res.order) == pytest.approx(
        res.total_latency
    )


def test_max_ct_edge_on_trivial_order():
    tree = chain_tree(3)
    sched = RequestSchedule([(2, 0.0)])
    pred = predict_arrow_run(tree, sched)
    assert max_ct_edge_on_order(tree, sched, pred.order) == pytest.approx(2.0)
