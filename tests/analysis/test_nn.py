"""Unit tests for NN ordering and the fast arrow executor."""

import numpy as np
import pytest

from repro.analysis.nearest_neighbor import nn_order, predict_arrow_run
from repro.core.requests import RequestSchedule
from repro.errors import AnalysisError
from repro.spanning import SpanningTree


def test_nn_order_simple_matrix():
    C = np.array(
        [
            [0.0, 5.0, 1.0, 9.0],
            [5.0, 0.0, 2.0, 3.0],
            [1.0, 2.0, 0.0, 7.0],
            [9.0, 3.0, 7.0, 0.0],
        ]
    )
    res = nn_order(C)
    assert res.indices == [0, 2, 1, 3]
    assert res.total_cost == pytest.approx(1 + 2 + 3)
    assert not res.had_ties
    assert res.max_edge == 3.0
    assert res.min_nonzero_edge == 1.0


def test_nn_order_detects_and_breaks_ties():
    C = np.array(
        [
            [0.0, 2.0, 2.0],
            [2.0, 0.0, 1.0],
            [2.0, 1.0, 0.0],
        ]
    )
    lo = nn_order(C, tie_break="min")
    hi = nn_order(C, tie_break="max")
    assert lo.had_ties and hi.had_ties
    assert lo.indices == [0, 1, 2]
    assert hi.indices == [0, 2, 1]


def test_nn_order_validates_inputs():
    C = np.zeros((3, 3))
    with pytest.raises(AnalysisError):
        nn_order(C, start=5)
    with pytest.raises(AnalysisError):
        nn_order(C, tie_break="bogus")
    with pytest.raises(AnalysisError):
        nn_order(np.zeros((2, 3)))


def test_nn_order_from_nonzero_start():
    C = np.array([[0.0, 1.0, 4.0], [1.0, 0.0, 2.0], [4.0, 2.0, 0.0]])
    res = nn_order(C, start=2)
    assert res.indices[0] == 2


def test_predict_arrow_run_hand_instance():
    """Path 0-1-2-3-4, root 0, requests hand-traceable via c_T."""
    tree = SpanningTree([max(0, i - 1) for i in range(5)], root=0)
    sched = RequestSchedule([(4, 0.0), (1, 0.0)])
    # c_T(root, (1,0)) = 1 < c_T(root, (4,0)) = 4: request at 1 queued
    # first; then (4,0) behind it at c_T = 3.
    pred = predict_arrow_run(tree, sched)
    assert pred.order == [1, 0]
    assert pred.arrow_cost == pytest.approx(1 + 3)
    assert pred.t_last == 0.0
    assert pred.ct_total == pytest.approx(4.0)


def test_lemma_3_10_identity_on_prediction():
    """cost_arrow == C_T - t_last along arrow's own order."""
    tree = SpanningTree([max(0, i - 1) for i in range(7)], root=0)
    sched = RequestSchedule([(6, 0.0), (3, 2.0), (1, 2.5), (5, 6.0)])
    pred = predict_arrow_run(tree, sched)
    assert pred.arrow_cost == pytest.approx(pred.ct_total - pred.t_last)


def test_predict_empty_schedule():
    tree = SpanningTree([0], root=0)
    pred = predict_arrow_run(tree, RequestSchedule([]))
    assert pred.order == [] and pred.arrow_cost == 0.0
