"""Unit tests for competitive-ratio measurement."""

import pytest

from repro.analysis.competitive import measure_competitive_ratio, theorem_319_ceiling
from repro.core.requests import RequestSchedule
from repro.errors import AnalysisError
from repro.graphs import complete_graph, path_graph
from repro.net.latency import UniformLatency
from repro.spanning import SpanningTree, balanced_binary_overlay


def chain_tree(n):
    return SpanningTree([max(0, i - 1) for i in range(n)], root=0)


def test_ceiling_grows_with_stretch_and_diameter():
    assert theorem_319_ceiling(2.0, 16) > theorem_319_ceiling(1.0, 16)
    assert theorem_319_ceiling(1.0, 1024) > theorem_319_ceiling(1.0, 16)


def test_report_fields_consistent():
    g = path_graph(9)
    sched = RequestSchedule([(8, 0.0), (2, 1.0), (5, 3.0)])
    rep = measure_competitive_ratio(g, chain_tree(9), sched)
    assert rep.simulated
    assert rep.stretch == 1.0
    assert rep.diameter == 8.0
    assert rep.ratio_lower <= rep.ratio_upper
    assert rep.within_ceiling
    assert rep.arrow_cost > 0


def test_fast_executor_mode_matches_simulation_on_tie_free():
    from repro.workloads.schedules import random_times

    g = path_graph(12)
    tree = chain_tree(12)
    sched = random_times(12, 10, horizon=8.0, seed=3)
    sim = measure_competitive_ratio(g, tree, sched, simulate=True)
    fast = measure_competitive_ratio(g, tree, sched, simulate=False)
    assert fast.arrow_cost == pytest.approx(sim.arrow_cost)


def test_fast_executor_rejects_latency_model():
    g = path_graph(4)
    sched = RequestSchedule([(3, 0.0)])
    with pytest.raises(AnalysisError):
        measure_competitive_ratio(
            g, chain_tree(4), sched, simulate=False, latency=UniformLatency()
        )


def test_empty_schedule_rejected():
    g = path_graph(4)
    with pytest.raises(AnalysisError):
        measure_competitive_ratio(g, chain_tree(4), RequestSchedule([]))


def test_exact_bracket_collapses_for_small_instances():
    g = complete_graph(6)
    tree = balanced_binary_overlay(g, 0)
    sched = RequestSchedule([(2, 0.0), (5, 0.5), (3, 2.0)])
    rep = measure_competitive_ratio(g, tree, sched)
    assert rep.opt.exact
    assert rep.ratio_lower == pytest.approx(rep.ratio_upper)
    assert rep.ratio_lower >= 1.0 - 1e-9  # arrow can't beat the optimum


def test_async_report_within_ceiling():
    g = complete_graph(8)
    tree = balanced_binary_overlay(g, 0)
    from repro.workloads.schedules import poisson

    sched = poisson(8, 12, rate=2.0, seed=1)
    rep = measure_competitive_ratio(
        g, tree, sched, latency=UniformLatency(0.3, 1.0), seed=2
    )
    assert rep.within_ceiling
