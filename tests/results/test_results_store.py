"""The content-addressed results store (``repro.results.store``).

The store's contracts are all about *not* doing work twice and *never*
accepting wrong data: re-ingesting an already-stored file is a no-op
down to the mtime, a partial grid fills in per cell on later ingests,
and rows that don't belong to the spec (foreign cell, shifted index,
conflicting content) are rejected loudly.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ResultsError
from repro.results import ResultsStore
from repro.sweep import run_sweep, smoke_grid
from repro.sweep.persist import dumps_row, iter_rows


@pytest.fixture(scope="module")
def smoke_run(tmp_path_factory):
    """One real smoke sweep shared by the module's tests (read-only)."""
    root = tmp_path_factory.mktemp("smoke-run")
    spec = smoke_grid()
    path = root / "smoke.jsonl"
    run_sweep(spec, str(path))
    return spec, str(path), list(iter_rows(str(path)))


def test_ingest_roundtrip_and_manifest(tmp_path, smoke_run):
    spec, path, rows = smoke_run
    store = ResultsStore(str(tmp_path / "store"))
    report = store.ingest(spec, path)
    assert report.new_rows == len(rows) == report.total_rows
    assert report.complete and report.updated
    assert report.damaged_skipped == 0
    assert list(store.rows(spec.spec_hash())) == rows
    manifest = store.manifest("smoke")
    assert manifest["spec_hash"] == spec.spec_hash()
    assert manifest["complete"] is True
    assert manifest["cells"] == len(rows)


def test_reingest_is_a_no_op_down_to_the_mtime(tmp_path, smoke_run):
    spec, path, rows = smoke_run
    store = ResultsStore(str(tmp_path / "store"))
    store.ingest(spec, path)
    run_files = {
        p: os.path.getmtime(p)
        for p in (
            store.rows_path(spec.spec_hash()),
            os.path.join(store.run_dir(spec.spec_hash()), "spec.json"),
            os.path.join(store.run_dir(spec.spec_hash()), "manifest.json"),
        )
    }
    contents = {p: open(p, encoding="utf-8").read() for p in run_files}
    os.utime(path)  # touching the *source* must not matter
    report = store.ingest(spec, path)
    assert report.new_rows == 0 and not report.updated
    for p, mtime in run_files.items():
        assert os.path.getmtime(p) == mtime, f"{p} was rewritten"
        assert open(p, encoding="utf-8").read() == contents[p]


def test_partial_grid_fills_in_per_cell(tmp_path, smoke_run):
    spec, _, rows = smoke_run
    store = ResultsStore(str(tmp_path / "store"))
    first = tmp_path / "first.jsonl"
    rest = tmp_path / "rest.jsonl"
    first.write_text("".join(dumps_row(r) + "\n" for r in rows[:1]))
    rest.write_text("".join(dumps_row(r) + "\n" for r in rows[1:]))

    r1 = store.ingest(spec, str(first))
    assert r1.new_rows == 1 and not r1.complete
    assert store.manifest("smoke")["complete"] is False

    r2 = store.ingest(spec, str(rest))
    assert r2.new_rows == len(rows) - 1 and r2.complete
    # Rows land back in grid order regardless of ingest order.
    assert list(store.rows("smoke")) == rows


def test_foreign_cell_id_is_rejected(tmp_path, smoke_run):
    spec, _, rows = smoke_run
    store = ResultsStore(str(tmp_path / "store"))
    bad = dict(rows[0], cell_id="not-in-this-grid")
    src = tmp_path / "bad.jsonl"
    src.write_text(dumps_row(bad) + "\n")
    with pytest.raises(ResultsError, match="does not.*belong|belong"):
        store.ingest(spec, str(src))


def test_index_mismatch_is_rejected(tmp_path, smoke_run):
    spec, _, rows = smoke_run
    store = ResultsStore(str(tmp_path / "store"))
    bad = dict(rows[0], index=rows[0]["index"] + 1)
    src = tmp_path / "bad.jsonl"
    src.write_text(dumps_row(bad) + "\n")
    with pytest.raises(ResultsError, match="file and spec disagree"):
        store.ingest(spec, str(src))


def test_conflicting_cell_content_is_rejected(tmp_path, smoke_run):
    spec, path, rows = smoke_run
    store = ResultsStore(str(tmp_path / "store"))
    store.ingest(spec, path)
    tampered = dict(rows[0], makespan=rows[0].get("makespan", 0.0) + 1.0)
    src = tmp_path / "tampered.jsonl"
    src.write_text(dumps_row(tampered) + "\n")
    with pytest.raises(ResultsError, match="conflicts with the"):
        store.ingest(spec, str(src))


def test_damaged_tail_is_counted_not_fatal(tmp_path, smoke_run):
    spec, _, rows = smoke_run
    store = ResultsStore(str(tmp_path / "store"))
    src = tmp_path / "torn.jsonl"
    src.write_text(
        "".join(dumps_row(r) + "\n" for r in rows) + '{"cell_id": "tor'
    )
    report = store.ingest(spec, str(src))
    assert report.damaged_skipped == 1
    assert report.complete
    assert "1 damaged line(s) skipped" in report.summary()


def test_resolve_by_hash_prefix_name_and_failures(tmp_path, smoke_run):
    spec, path, _ = smoke_run
    store = ResultsStore(str(tmp_path / "store"))
    store.ingest(spec, path)
    full = spec.spec_hash()
    assert store.resolve(full) == full
    assert store.resolve(full[:8]) == full
    assert store.resolve("smoke") == full
    with pytest.raises(ResultsError, match="no stored run matches"):
        store.resolve("fig10")
    with pytest.raises(ResultsError, match="no stored run matches"):
        ResultsStore(str(tmp_path / "empty")).resolve("smoke")


def test_grid_sketch_merges_all_row_histograms(tmp_path, smoke_run):
    spec, path, rows = smoke_run
    store = ResultsStore(str(tmp_path / "store"))
    store.ingest(spec, path)
    sketch = store.grid_sketch("smoke")
    expected = sum(
        sum(r["latency_hist"]) for r in rows if "latency_hist" in r
    )
    assert sketch.count == expected
    assert sketch.max_value() == max(r["latency_max"] for r in rows)
    assert 0.0 < sketch.quantile(50) <= sketch.max_value()


def test_spec_hash_is_stable_and_sensitive(smoke_run):
    spec, _, _ = smoke_run
    assert spec.spec_hash() == smoke_grid().spec_hash()
    assert spec.spec_hash() != smoke_grid(seeds=(0, 1, 2)).spec_hash()
    assert spec.spec_hash() != smoke_grid(engine="message").spec_hash()
    doc = json.dumps(spec.canonical())
    assert "monitor" not in doc  # monitors never change rows


def test_experiment_documents_round_trip_idempotently(tmp_path):
    from repro.experiments.records import ExperimentResult, Series

    store = ResultsStore(str(tmp_path / "store"))
    result = ExperimentResult(
        experiment_id="figX",
        title="t",
        xlabel="n",
        series=[Series("s", [1.0], [2.0])],
    )
    path = store.put_experiment(result)
    mtime = os.path.getmtime(path)
    assert store.put_experiment(result) == path
    assert os.path.getmtime(path) == mtime
    assert store.get_experiment("figX").to_json() == result.to_json()
    assert store.list_experiments() == ["figX"]
    with pytest.raises(ResultsError, match="no stored experiment"):
        store.get_experiment("missing")
