"""End-to-end ``repro-arrow results`` subcommands through ``cli.main``.

The full pipeline a CI job runs: sweep -> ingest -> table/plot ->
compare, plus the idempotence and failure exit codes the job relies on.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.sweep.persist import dumps_row, iter_rows


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """sweep + ingest once; tests read the resulting store."""
    root = tmp_path_factory.mktemp("results-cli")
    jsonl = str(root / "smoke.jsonl")
    store = str(root / "store")
    assert main(["sweep", "--grid", "smoke", "--out", jsonl]) == 0
    assert main(
        ["results", "ingest", jsonl, "--store", store, "--grid", "smoke"]
    ) == 0
    return root, jsonl, store


def test_ingest_reports_and_is_idempotent(pipeline, capsys):
    root, jsonl, store = pipeline
    runs = os.path.join(store, "runs")
    (run_dir,) = os.listdir(runs)
    rows_path = os.path.join(runs, run_dir, "rows.jsonl")
    mtime = os.path.getmtime(rows_path)
    assert main(
        ["results", "ingest", jsonl, "--store", store, "--grid", "smoke"]
    ) == 0
    out = capsys.readouterr().out
    assert "0 new row(s), 4/4 cells (complete)" in out
    assert os.path.getmtime(rows_path) == mtime


def test_list_table_plot(pipeline, capsys):
    _, _, store = pipeline
    assert main(["results", "list", "--store", store]) == 0
    assert "smoke" in capsys.readouterr().out
    assert main(
        ["results", "table", "smoke", "--store", store, "--percentiles"]
    ) == 0
    out = capsys.readouterr().out
    assert "Grid 'smoke' summary" in out
    assert "grid latency percentiles" in out
    assert main(["results", "plot", "smoke", "--store", store]) == 0
    assert "n (nodes)" in capsys.readouterr().out


def test_compare_store_key_against_source_file(pipeline, capsys, tmp_path):
    _, jsonl, store = pipeline
    out_doc = str(tmp_path / "BENCH_results.json")
    assert main(
        ["results", "compare", "--store", store, "--a", "smoke",
         "--b", jsonl, "--max-delta-pct", "0.0", "--out", out_doc]
    ) == 0
    assert "results compare OK" in capsys.readouterr().out
    with open(out_doc, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["ok"] is True and doc["mode"] == "rows"


def test_compare_flags_a_drifted_cell(pipeline, capsys, tmp_path):
    _, jsonl, store = pipeline
    rows = list(iter_rows(jsonl))
    rows[0]["makespan"] = rows[0]["makespan"] * 1.5
    drifted = tmp_path / "drifted.jsonl"
    drifted.write_text("".join(dumps_row(r) + "\n" for r in rows))
    assert main(
        ["results", "compare", "--store", store, "--a", "smoke",
         "--b", str(drifted), "--max-delta-pct", "1.0"]
    ) == 1
    err = capsys.readouterr().err
    assert "results compare FAILED" in err and "beyond" in err


def test_compare_bench_mode_gate(tmp_path, capsys):
    baseline = tmp_path / "base.json"
    fresh = tmp_path / "fresh.json"
    baseline.write_text(json.dumps({"s": {"speedup": 2.0}}))
    fresh.write_text(json.dumps({"s": {"speedup": 1.9}}))
    assert main(
        ["results", "compare", "--baseline", str(baseline),
         "--fresh", str(fresh), "--tolerance", "0.25"]
    ) == 0
    assert "no regressions" in capsys.readouterr().out
    fresh.write_text(json.dumps({"s": {"speedup": 1.0}}))
    assert main(
        ["results", "compare", "--baseline", str(baseline),
         "--fresh", str(fresh), "--tolerance", "0.25"]
    ) == 1
    assert "REGRESSION" in capsys.readouterr().err


def test_compare_mode_flags_are_mutually_exclusive(pipeline, tmp_path):
    _, jsonl, store = pipeline
    with pytest.raises(SystemExit) as exc:
        main(["results", "compare", "--store", store, "--a", "smoke",
              "--baseline", jsonl])
    assert exc.value.code == 2
    with pytest.raises(SystemExit):
        main(["results", "compare", "--store", store, "--a", "smoke"])


def test_unknown_run_key_fails_cleanly(pipeline, capsys):
    _, _, store = pipeline
    assert main(["results", "table", "fig10", "--store", store]) == 1
    assert "no stored run matches" in capsys.readouterr().err


def test_store_flag_archives_experiment_documents(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(["--store", store, "fig9", "-D", "8", "-k", "2"]) == 0
    assert "archived fig9" in capsys.readouterr().out
    from repro.results import ResultsStore

    result = ResultsStore(store).get_experiment("fig9")
    assert result.experiment_id == "fig9"
    # Idempotent: a second run rewrites nothing.
    path = os.path.join(store, "experiments", "fig9.json")
    mtime = os.path.getmtime(path)
    assert main(["--store", store, "fig9", "-D", "8", "-k", "2"]) == 0
    assert os.path.getmtime(path) == mtime
