"""Canonical figures rebuilt from stored rows (``repro.results.figures``)."""

from __future__ import annotations

import pytest

from repro.errors import ResultsError
from repro.results import figure_from_rows, fig9_result


def row(**kw):
    base = {
        "cell_id": "c",
        "index": 0,
        "n": 8,
        "seed": 0,
        "graph": "complete(n=8)",
        "tree": "bfs",
        "schedule": "poisson(rate=1)",
        "makespan": 10.0,
        "mean_hops": 1.5,
    }
    base.update(kw)
    return base


def test_series_split_by_schedule_family_and_seed_average():
    rows = [
        row(seed=0, makespan=10.0),
        row(seed=1, makespan=14.0),
        row(seed=0, n=16, makespan=20.0),
        row(seed=1, n=16, makespan=24.0),
        row(schedule="burst(k=3)", makespan=50.0),
        row(schedule="burst(k=3)", n=16, makespan=60.0),
    ]
    result = figure_from_rows("fig10", rows)
    assert result.experiment_id == "fig10"
    assert [s.name for s in result.series] == ["burst", "poisson"]
    poisson = result.series[1]
    assert poisson.xs == [8.0, 16.0]
    assert poisson.ys == [12.0, 22.0]  # seeds averaged per x
    assert result.params["metric"] == "makespan"
    assert any("2 seed(s)" in n for n in result.notes)


def test_axes_join_the_label_only_when_swept():
    rows = [
        row(tree="bfs"),
        row(tree="mst", makespan=11.0),
    ]
    result = figure_from_rows("smoke", rows)
    assert [s.name for s in result.series] == ["poisson/bfs", "poisson/mst"]
    # Single tree, many graph families -> graph joins instead.
    rows = [row(), row(graph="path(n=8)", makespan=9.0)]
    result = figure_from_rows("smoke", rows)
    assert [s.name for s in result.series] == [
        "poisson/complete",
        "poisson/path",
    ]


def test_fault_plans_never_average_with_fault_free_rows():
    rows = [row(), row(faults="crash@1.0:3", makespan=99.0)]
    result = figure_from_rows("smoke", rows)
    assert [s.name for s in result.series] == [
        "poisson",
        "poisson/f[crash@1.0:3]",
    ]


def test_default_metric_per_figure_and_override():
    rows = [row()]
    assert figure_from_rows("fig11", rows).params["metric"] == "mean_hops"
    result = figure_from_rows("fig11", rows, metric="makespan")
    assert result.params["metric"] == "makespan"
    assert "makespan" in result.title


def test_missing_metric_lists_numeric_columns():
    with pytest.raises(ResultsError, match="numeric columns:.*makespan"):
        figure_from_rows("fig10", [row()], metric="nope")
    with pytest.raises(ResultsError, match="no rows"):
        figure_from_rows("fig10", [])
    with pytest.raises(ResultsError, match="not numeric"):
        figure_from_rows("fig10", [row(makespan="oops")])


def test_fig9_result_adapter():
    from repro.experiments import run_fig9

    rep = run_fig9(16, 2, variant="layered")
    result = fig9_result(rep)
    assert result.experiment_id == "fig9"
    names = [s.name for s in result.series]
    assert "arrow cost" in names and "ratio" in names
    assert all(s.xs == [float(rep.D)] for s in result.series)
    assert result.params["variant"] == "layered"
    # Round-trips through the records JSON codec (store format).
    from repro.experiments.records import ExperimentResult

    assert ExperimentResult.from_json(result.to_json()).series[0].ys == (
        result.series[0].ys
    )
