"""Cross-run comparison (``repro.results.compare``).

Row mode is the per-cell diff with percent deltas; bench mode must be
*the same function* the historical ``benchmarks/check_regression.py``
gate runs, verified here against the committed baseline file.
"""

from __future__ import annotations

import json
import os

from repro.results.compare import (
    bench_doc,
    compare_bench,
    compare_rows,
)

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
BASELINE = os.path.join(REPO, "benchmarks", "bench_baseline.json")


def rows_a():
    return [
        {"cell_id": "c0", "index": 0, "makespan": 10.0, "engine": "fast",
         "graph": "complete(n=8)"},
        {"cell_id": "c1", "index": 1, "makespan": 20.0, "engine": "fast",
         "graph": "path(n=8)"},
    ]


def test_identical_rows_compare_ok():
    cmp = compare_rows(rows_a(), rows_a(), max_delta_pct=0.0)
    assert cmp.ok
    assert cmp.compared == 2
    assert cmp.columns["makespan"]["changed"] == 0.0
    assert cmp.top_deltas == []
    doc = cmp.to_doc()
    assert doc["ok"] is True and doc["mode"] == "rows"
    json.dumps(doc)  # canonical doc must be JSON-able


def test_percent_deltas_and_tolerance_gate():
    b = rows_a()
    b[1]["makespan"] = 22.0  # +10%
    loose = compare_rows(rows_a(), b, max_delta_pct=15.0)
    assert loose.ok
    assert loose.columns["makespan"]["max_abs_pct"] == 10.0
    assert loose.top_deltas[0][1:3] == ("c1", "makespan")
    tight = compare_rows(rows_a(), b, max_delta_pct=5.0)
    assert not tight.ok
    assert "beyond" in tight.exceeding[0]
    assert any("+10.00%" in line for line in tight.report_lines())


def test_engine_label_ignored_but_other_strings_must_match():
    b = rows_a()
    b[0]["engine"] = "batch"  # engines are bit-identical: ignored
    assert compare_rows(rows_a(), b).ok
    b[0]["graph"] = "ring(n=8)"
    cmp = compare_rows(rows_a(), b)
    assert not cmp.ok
    assert "non-numeric column 'graph' differs" in cmp.problems[0]


def test_missing_cells_and_zero_baseline_are_problems():
    cmp = compare_rows(rows_a(), rows_a()[:1])
    assert not cmp.ok and "only in A" in cmp.problems[0]
    a = [{"cell_id": "c", "index": 0, "x": 0.0}]
    b = [{"cell_id": "c", "index": 0, "x": 3.0}]
    cmp = compare_rows(a, b)
    assert not cmp.ok
    assert "percent delta undefined" in cmp.problems[0]


def test_bench_mode_matches_check_regression_verdict_on_baseline():
    """The script's gate and the library gate are one function."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "check_regression",
        os.path.join(REPO, "benchmarks", "check_regression.py"),
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)

    with open(BASELINE, encoding="utf-8") as fh:
        baseline = json.load(fh)
    # Self-compare: every gated scenario is exactly at baseline -> OK.
    report, regressions = compare_bench(baseline, baseline, 0.25)
    assert (report, regressions) == mod.compare(baseline, baseline, 0.25)
    assert regressions == []
    # A regressed fresh copy fails both identically.
    regressed = {
        k: {"speedup": v["speedup"] * 0.5} for k, v in baseline.items()
    }
    ours = compare_bench(baseline, regressed, 0.25)
    assert ours == mod.compare(baseline, regressed, 0.25)
    assert ours[1], "halving every speedup must regress"


def test_bench_doc_is_canonical_and_carries_the_verdict():
    baseline = {"s1": {"speedup": 2.0}, "gone": {"speedup": 1.5}}
    fresh = {"s1": {"speedup": 1.0}, "new": {"speedup": 3.0}}
    report, regressions = compare_bench(baseline, fresh, 0.25)
    doc = bench_doc(baseline, fresh, 0.25, report, regressions)
    assert doc["ok"] is False
    assert set(doc["scenarios"]) == {"s1", "gone", "new"}
    assert doc["scenarios"]["gone"]["fresh"] is None
    assert doc["scenarios"]["new"]["baseline"] is None
    assert json.dumps(doc, sort_keys=True)  # deterministic trajectory
