"""The checked-in golden store must match a freshly-run smoke grid.

``tests/golden/results_store`` is the fixture the CI results-pipeline
job compares against; this test keeps it honest locally — if an engine
change legitimately alters smoke-grid rows, regenerate the fixture::

    PYTHONPATH=src python -m repro.cli sweep --grid smoke --out /tmp/s.jsonl
    rm -rf tests/golden/results_store
    PYTHONPATH=src python -m repro.cli results ingest /tmp/s.jsonl \
        --store tests/golden/results_store --grid smoke
"""

from __future__ import annotations

import os

from repro.results import ResultsStore, compare_rows
from repro.sweep import run_sweep, smoke_grid
from repro.sweep.persist import iter_rows

GOLDEN = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "golden",
    "results_store",
)


def test_golden_store_matches_a_fresh_smoke_run(tmp_path):
    spec = smoke_grid()
    jsonl = tmp_path / "smoke.jsonl"
    run_sweep(spec, str(jsonl))

    store = ResultsStore(GOLDEN)
    manifest = store.manifest("smoke")
    assert manifest["spec_hash"] == spec.spec_hash(), (
        "the smoke grid's spec hash moved — regenerate the golden store "
        "(see module docstring)"
    )
    assert manifest["complete"] is True
    cmp = compare_rows(store.rows("smoke"), iter_rows(str(jsonl)),
                       max_delta_pct=0.0)
    assert cmp.ok, cmp.problems + cmp.exceeding
    assert cmp.compared == manifest["cells"]


def test_golden_rows_file_is_byte_canonical():
    """Stored bytes == canonical re-serialisation (no drift on re-ingest)."""
    from repro.sweep.persist import dumps_row

    store = ResultsStore(GOLDEN)
    path = store.rows_path(store.resolve("smoke"))
    with open(path, "r", encoding="utf-8") as fh:
        raw = fh.read()
    assert raw == "".join(dumps_row(r) + "\n" for r in iter_rows(path))
