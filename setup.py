"""Legacy setup shim; metadata lives in pyproject.toml (see note there)."""

from setuptools import setup

setup()
